"""Table IV: benchmark MemComp/DataComp ratios.

Paper values: axpy 1.5/1.5, matvec 1+0.5/N / 0.5+1/N, matmul 1.5/N / 1.5/N,
stencil 0.5 / 1/13, sum 1/1, bm 0.5/0.06.
"""

import pytest

from repro.bench.figures import table4_characteristics
from repro.bench.workloads import workload


def test_table4(bench_once):
    result = bench_once(table4_characteristics, name="table4")
    print("\n" + result.text)
    ratios = result.extra["ratios"]

    assert ratios["axpy"] == (pytest.approx(1.5), pytest.approx(1.5))
    assert ratios["sum"] == (pytest.approx(1.0), pytest.approx(1.0))

    mv = workload("matvec")
    assert ratios["matvec"][0] == pytest.approx(1 + 0.5 / mv.n_iters)
    assert ratios["matvec"][1] == pytest.approx(0.5 + 1.0 / mv.n_iters)

    mm = workload("matmul")
    assert ratios["matmul"][0] == pytest.approx(1.5 / mm.n_iters)
    assert ratios["matmul"][1] == pytest.approx(1.5 / mm.n_iters)

    # paper rounds stencil MemComp to 0.5 and bm DataComp to 0.06
    assert ratios["stencil"][0] == pytest.approx(0.54, abs=0.02)
    assert ratios["stencil"][1] == pytest.approx(1 / 13)
    assert ratios["bm"][0] == pytest.approx(0.5)
    assert ratios["bm"][1] == pytest.approx(0.06, abs=0.01)

    classes = result.extra["classes"]
    assert classes["axpy"] == "data-intensive"
    assert classes["sum"] == "data-intensive"
    assert classes["matvec"] == "compute-data balanced"
    assert classes["matmul"] == "compute-intensive"
    assert classes["stencil"] == "compute-intensive"
    assert classes["bm"] == "compute-intensive"
