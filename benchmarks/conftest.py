"""Benchmark-suite helpers.

Every benchmark regenerates one figure or table of the paper, asserts its
qualitative shape, and writes the rendered text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite a concrete
artefact.  Simulations are deterministic, so one round is meaningful;
``bench_once`` wraps ``benchmark.pedantic`` accordingly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def bench_once(benchmark, results_dir):
    """Run ``fn`` once under pytest-benchmark and persist its text output."""

    def _run(fn, *, name: str):
        result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
        text = getattr(result, "text", None)
        if text:
            (results_dir / f"{name}.txt").write_text(text + "\n")
        return result

    return _run
