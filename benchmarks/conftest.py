"""Benchmark-suite helpers.

Every benchmark regenerates one figure or table of the paper, asserts its
qualitative shape, and writes the rendered text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite a concrete
artefact.  Simulations are deterministic, so one round is meaningful;
``bench_once`` wraps ``benchmark.pedantic`` accordingly.
"""

from __future__ import annotations

import os
import sys

# Pin BLAS/OpenMP pools to one thread BEFORE numpy loads: the kernels here
# issue thousands of small-array operations, and multi-threaded BLAS burns
# minutes of sys time in thread churn on them (the seed suite spent 3m29s
# of sys time this way).  Process-pool workers inherit the pins (fork), and
# the runner's worker initializer re-applies them for spawn platforms.
# Must happen at conftest import, which pytest guarantees precedes the test
# modules (and therefore the first `import numpy`).
_THREAD_PINS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)
if "numpy" not in sys.modules:
    for _var in _THREAD_PINS:
        os.environ.setdefault(_var, "1")

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def bench_once(benchmark, results_dir):
    """Run ``fn`` once under pytest-benchmark and persist its text output."""

    def _run(fn, *, name: str):
        result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
        text = getattr(result, "text", None)
        if text:
            (results_dir / f"{name}.txt").write_text(text + "\n")
        return result

    return _run
