"""Ablation: PCIe contention between the K40 pairs of a K80 card.

The paper's node packages its four K40s as two K80 cards — two GPUs per
PCIe slot.  The calibrated `gpu4_node` gives every GPU a dedicated link
(the usual idealisation); `gpu4_k80_paired_node` models the shared slots.
Findings: transfer-bound kernels lose close to the full 2x under BLOCK;
and dynamic chunking — whose whole advantage is per-chunk transfer
pipelining — suffers *more* than BLOCK (its many small transfers
serialise on the shared slot), so slot sharing erodes exactly the effect
that makes SCHED_DYNAMIC win in Fig. 5.
"""

from repro.bench.figures import FigureResult
from repro.bench.workloads import workload
from repro.engine.simulator import OffloadEngine
from repro.machine.presets import gpu4_k80_paired_node, gpu4_node
from repro.sched.block import BlockScheduler
from repro.sched.dynamic import DynamicScheduler
from repro.util.tables import render_table

KERNELS = ("axpy", "sum", "matvec", "matmul", "stencil", "bm")


def build() -> FigureResult:
    rows = []
    data = {}
    for name in KERNELS:
        cell = {}
        for label, machine in (("dedicated", gpu4_node()),
                               ("k80-paired", gpu4_k80_paired_node())):
            block = OffloadEngine(machine=machine).run(
                workload(name), BlockScheduler()
            ).total_time_ms
            dyn = OffloadEngine(machine=machine).run(
                workload(name), DynamicScheduler(0.02)
            ).total_time_ms
            cell[label] = (block, dyn)
        penalty_block = cell["k80-paired"][0] / cell["dedicated"][0]
        penalty_dyn = cell["k80-paired"][1] / cell["dedicated"][1]
        data[name] = (penalty_block, penalty_dyn)
        rows.append([name, cell["dedicated"][0], cell["k80-paired"][0],
                     penalty_block, penalty_dyn])
    text = render_table(
        ["kernel", "dedicated BLOCK (ms)", "paired BLOCK (ms)",
         "BLOCK penalty", "DYNAMIC penalty"],
        rows,
        title="PCIe-slot contention (K80 pairing) on 4 GPUs",
    )
    return FigureResult(name="pcie", grid=None, text=text, extra={"data": data})


def test_contention_shapes(bench_once):
    result = bench_once(build, name="ablation_pcie")
    print("\n" + result.text)
    data = result.extra["data"]
    for name, (p_block, p_dyn) in data.items():
        assert 1.0 <= p_block < 2.3, name
        assert 1.0 <= p_dyn < 3.6, name
    # data-intensive kernels approach the full 2x under BLOCK
    assert data["axpy"][0] > 1.6
    assert data["sum"][0] > 1.6
    # dynamic chunking's many small transfers serialise on the shared
    # slot: it loses at least as much as BLOCK does
    assert data["axpy"][1] >= data["axpy"][0] - 0.05