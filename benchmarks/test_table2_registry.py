"""Table II: the seven loop-distribution algorithms and their taxonomy."""

from repro.bench.figures import FigureResult
from repro.sched.registry import ALGORITHM_TABLE, SCHEDULERS
from repro.util.tables import render_table


def build_table2() -> FigureResult:
    rows = [
        [r.approach, r.algorithm, r.notation, r.stages, r.overhead,
         r.load_balancing, r.description]
        for r in ALGORITHM_TABLE
    ]
    text = render_table(
        ["Approach", "Algorithm", "Notation", "Stages", "Overhead",
         "Load balancing", "Description"],
        rows,
        title="Table II — loop distribution algorithms",
    )
    return FigureResult(name="Table II", grid=None, text=text)


def test_table2(bench_once):
    result = bench_once(build_table2, name="table2")
    print("\n" + result.text)
    # seven algorithms, three approaches, all constructible
    assert len(ALGORITHM_TABLE) == 7
    assert {r.approach for r in ALGORITHM_TABLE} == {
        "Chunk Scheduling", "Analytical Modeling", "Sample Profiling"
    }
    for row in ALGORITHM_TABLE:
        assert row.notation.split(",")[0] in SCHEDULERS
