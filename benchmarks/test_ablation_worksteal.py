"""Ablation: work stealing vs HOMP's central-queue dynamic chunking.

The paper's related work contrasts HOMP with work-stealing runtimes
(StarPU, Harmony).  On a heterogeneous node, both rebalance; stealing
starts from a BLOCK layout (locality, no shared cursor) and only pays
contention when a device actually runs dry.
"""

from repro.bench.figures import FigureResult
from repro.bench.workloads import workload
from repro.engine.simulator import OffloadEngine
from repro.machine.presets import cpu_mic_node, full_node, gpu4_node
from repro.sched.block import BlockScheduler
from repro.sched.dynamic import DynamicScheduler
from repro.sched.worksteal import WorkStealingScheduler
from repro.util.tables import render_table

MACHINES = (("gpu4", gpu4_node), ("cpu2+mic2", cpu_mic_node), ("full", full_node))


def build() -> FigureResult:
    rows = []
    data = {}
    for mname, factory in MACHINES:
        machine = factory()
        times = {}
        for label, sched in (
            ("BLOCK", BlockScheduler()),
            ("SCHED_DYNAMIC", DynamicScheduler(0.02)),
            ("WORK_STEALING", WorkStealingScheduler(0.02)),
        ):
            r = OffloadEngine(machine=machine).run(workload("axpy"), sched)
            times[label] = r.total_time_ms
            steals = getattr(sched, "steals", "-")
            rows.append([mname, label, r.total_time_ms, steals])
        data[mname] = times
    text = render_table(
        ["machine", "policy", "time (ms)", "steals"],
        rows,
        title="Work stealing vs dynamic chunking vs BLOCK (axpy)",
    )
    return FigureResult(name="worksteal", grid=None, text=text, extra={"data": data})


def test_worksteal_comparison(bench_once):
    result = bench_once(build, name="ablation_worksteal")
    print("\n" + result.text)
    data = result.extra["data"]
    for mname, times in data.items():
        # stealing always beats the static split it starts from
        assert times["WORK_STEALING"] <= times["BLOCK"] * 1.02, mname
    # on the strongly heterogeneous nodes it lands in dynamic's league
    for mname in ("cpu2+mic2", "full"):
        times = data[mname]
        assert times["WORK_STEALING"] < 2.0 * times["SCHED_DYNAMIC"], mname
        assert times["WORK_STEALING"] < 0.8 * times["BLOCK"], mname