"""Fig. 5: offloading time on 4 identical K40s, 6 kernels x 7 policies.

Paper shape: the compute-intensive kernels (matmul, stencil, bm) run best
under BLOCK; the data-intensive / balanced kernels (axpy, sum, matvec) run
better under SCHED_DYNAMIC (or guided), because chunked scheduling overlaps
data movement with computation.
"""

from repro.bench.figures import fig5_gpu4

COMPUTE_INTENSIVE = ("matmul", "stencil", "bm")
DATA_SIDE = ("axpy", "sum", "matvec")
CHUNKED = ("SCHED_DYNAMIC", "SCHED_GUIDED")


def test_fig5(bench_once):
    result = bench_once(fig5_gpu4, name="fig5")
    print("\n" + result.text)
    grid = result.grid

    for kernel in COMPUTE_INTENSIVE:
        best = grid.best_policy(kernel)
        assert best in ("BLOCK", "MODEL_1_AUTO", "MODEL_2_AUTO"), (kernel, best)
        # on identical devices the three upfront policies coincide; BLOCK
        # must specifically beat both chunked policies
        for chunked in CHUNKED:
            assert grid.time_ms(kernel, "BLOCK") < grid.time_ms(kernel, chunked)

    for kernel in DATA_SIDE:
        chunked_best = min(grid.time_ms(kernel, p) for p in CHUNKED)
        assert chunked_best < grid.time_ms(kernel, "BLOCK"), kernel

    # profiling algorithms pay their stage-1 overhead but stay in the same
    # order of magnitude as the best policy
    for kernel in grid.results:
        best = grid.time_ms(kernel, grid.best_policy(kernel))
        assert grid.time_ms(kernel, "SCHED_PROFILE_AUTO") < 5 * best
