"""Table V: speedup from the 15% CUTOFF ratio on the full node.

Paper reports speedups from 0.56x (matvec-48k — the model mispredicted and
cut genuinely useful devices) to 3.43x (stencil2d-256 — slow devices'
unmodeled per-offload overheads dwarfed their contribution), with
per-workload surviving device sets.

We assert the same structure: a wide spread containing both >1 wins and a
<1 loss, mispredict-driven losses on the data-heavy kernels, and gains on
the small compute-intensive kernels.  (At paper-size scales the matmul row
also reproduces its "4 GPUs survive" set; see EXPERIMENTS.md.)
"""

from repro.bench.figures import table5_cutoff


def test_table5(bench_once):
    result = bench_once(table5_cutoff, name="table5")
    print("\n" + result.text)
    speedups = result.extra["speedups"]
    survivors = result.extra["survivors"]

    # the paper's overall claim: speedups span roughly 0.5x - 3.4x
    assert min(speedups.values()) < 0.8          # cutoff can hurt...
    assert max(speedups.values()) > 1.8          # ...and can win big
    assert all(0.3 < s < 5.0 for s in speedups.values())

    # matvec is the paper's mispredict row (0.56x): cutoff hurts it here too
    assert speedups["matvec"] < 0.9

    # the small compute-intensive kernels gain: dropping high-setup-cost
    # devices that the models can't price wins outright
    assert speedups["stencil"] > 1.5
    assert speedups["axpy"] > 1.1

    # every workload keeps at least one device, never more than all eight
    for name, names in survivors.items():
        assert 1 <= len(names) <= 8, name
