"""Ablation: CUTOFF-ratio sweep (paper §IV.E).

The paper fixes the ratio at the average per-device contribution (15% for
its 7-effective-device node).  Sweeping it shows the mechanism: at 0% all
devices participate (slow ones drag in their unmodeled setup costs); as
the ratio rises, weak devices are dropped and small compute-intensive
offloads speed up; past a point the cutoff starts discarding genuinely
useful capacity.
"""

from repro.bench.figures import FigureResult
from repro.bench.runner import run_one
from repro.bench.workloads import workload
from repro.machine.presets import full_node
from repro.util.tables import render_table

RATIOS = (0.0, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60)


def build() -> FigureResult:
    machine = full_node()
    rows = []
    data = {}
    for kernel_name in ("stencil", "matvec"):
        times = {}
        for ratio in RATIOS:
            r = run_one(
                machine, workload(kernel_name), "MODEL_2_AUTO",
                cutoff_ratio=ratio,
            )
            times[ratio] = (r.total_time_ms, r.devices_used)
            rows.append([kernel_name, f"{ratio:.0%}", r.total_time_ms,
                         r.devices_used])
        data[kernel_name] = times
    text = render_table(
        ["kernel", "cutoff", "time (ms)", "devices"],
        rows,
        title="CUTOFF-ratio sweep under MODEL_2_AUTO on the full node",
    )
    return FigureResult(name="cutoff sweep", grid=None, text=text,
                        extra={"data": data})


def test_cutoff_sweep(bench_once):
    result = bench_once(build, name="ablation_cutoff_sweep")
    print("\n" + result.text)
    data = result.extra["data"]

    stencil = data["stencil"]
    # the paper's 15% point beats no-cutoff for the small stencil offload
    assert stencil[0.15][0] < stencil[0.0][0]
    # devices monotonically drop (never re-join) as the ratio rises
    counts = [stencil[r][1] for r in RATIOS]
    assert all(a >= b for a, b in zip(counts, counts[1:]))

    matvec = data["matvec"]
    # matvec-48k is the paper's 0.56x row: cutting devices hurts it
    assert matvec[0.15][0] > matvec[0.0][0]
