"""Fig. 8: offloading time on 2 CPUs + 2 MICs (hybrid heterogeneous).

Paper claims: using peak performance as a guideline (MODEL_1_AUTO) is
effective for the computation-intensive kernels; for the other kernels
SCHED_DYNAMIC is an effective option.
"""

from repro.bench.figures import fig8_cpu_mic

COMPUTE_INTENSIVE = ("matmul", "stencil", "bm")
DATA_SIDE = ("axpy", "sum", "matvec")


def test_fig8(bench_once):
    result = bench_once(fig8_cpu_mic, name="fig8")
    print("\n" + result.text)
    grid = result.grid

    # MODEL_1 beats the naive even split for the flops-bound kernel, the
    # case the paper highlights (capability-proportional distribution)
    assert grid.time_ms("matmul", "MODEL_1_AUTO") < grid.time_ms("matmul", "BLOCK") * 1.3

    # dynamic chunking is an effective option for the data-side kernels:
    # always well ahead of BLOCK on this heterogeneous pair
    for kernel in DATA_SIDE:
        assert grid.time_ms(kernel, "SCHED_DYNAMIC") < grid.time_ms(kernel, "BLOCK")

    # MODEL_1's blind spot: it overloads the MICs on data-intensive loops
    # (it ignores the slow PCIe link), so MODEL_2 beats it decisively there
    for kernel in ("axpy", "sum"):
        assert grid.time_ms(kernel, "MODEL_2_AUTO") < 0.7 * grid.time_ms(kernel, "MODEL_1_AUTO")
