"""Ablation: the algorithm-selection heuristics of paper §VI.D.

For each kernel on the full heterogeneous node, compare the heuristically
selected algorithm against the full 7-policy sweep: the selection should
always avoid the worst policy and stay within a small factor of the best.
"""

from repro.bench.figures import FigureResult
from repro.bench.runner import ALL_POLICIES, run_grid, run_one
from repro.bench.workloads import workload
from repro.machine.presets import full_node
from repro.sched.selector import select_algorithm
from repro.util.tables import render_table

KERNELS = ("axpy", "sum", "matvec", "matmul", "stencil", "bm")


def build() -> FigureResult:
    machine = full_node()
    grid = run_grid(
        machine, {k: (lambda n=k: workload(n)) for k in KERNELS}
    )
    rows = []
    stats = {}
    for kernel in KERNELS:
        choice = select_algorithm(workload(kernel), machine)
        times = {p: grid.time_ms(kernel, p) for p in ALL_POLICIES}
        chosen = times[choice]
        best = min(times.values())
        worst = max(times.values())
        stats[kernel] = (choice, chosen, best, worst)
        rows.append([kernel, choice, chosen, best, worst, chosen / best])
    text = render_table(
        ["kernel", "selected", "selected ms", "best ms", "worst ms", "ratio"],
        rows,
        title="Selector heuristics vs exhaustive policy sweep (full node)",
    )
    return FigureResult(name="selector", grid=grid, text=text,
                        extra={"stats": stats})


def test_selector_quality(bench_once):
    result = bench_once(build, name="ablation_selector")
    print("\n" + result.text)
    for kernel, (choice, chosen, best, worst) in result.extra["stats"].items():
        # never the worst policy
        assert chosen < worst, (kernel, choice)
    # on the large kernels the three-way rule lands close to the optimum
    for kernel in ("axpy", "sum", "matvec", "matmul"):
        choice, chosen, best, _ = result.extra["stats"][kernel]
        assert chosen <= 3.0 * best, (kernel, choice)
    # the data-intensive picks are essentially optimal
    for kernel in ("axpy", "sum"):
        choice, chosen, best, _ = result.extra["stats"][kernel]
        assert choice == "MODEL_2_AUTO"
        assert chosen <= 1.7 * best
    # Known divergence, documented in EXPERIMENTS.md: on the sub-millisecond
    # stencil-256/bm-256 offloads the paper's rule (MODEL_1 on heterogeneous
    # devices) pays the MICs' unmodeled setup costs, exactly the effect the
    # paper's own Table V stencil row (3.43x from CUTOFF) reveals.  The
    # heuristic still avoids catastrophe:
    for kernel in ("stencil", "bm"):
        choice, chosen, best, worst = result.extra["stats"][kernel]
        assert chosen <= 12.0 * best, (kernel, choice)
