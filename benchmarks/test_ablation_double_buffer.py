"""Ablation: the transfer/compute overlap behind SCHED_DYNAMIC's wins.

The paper attributes dynamic chunking's Fig. 5 advantage on data-intensive
kernels to "overlapping of data movement and computation when scheduling
multiple chunks to the same device".  Turning the engine's double
buffering off removes that overlap while changing nothing else; if the
paper's explanation is right, SCHED_DYNAMIC should lose its edge over
BLOCK exactly then.
"""

from repro.bench.figures import FigureResult
from repro.bench.workloads import workload
from repro.engine.simulator import OffloadEngine
from repro.machine.presets import gpu4_node
from repro.sched.block import BlockScheduler
from repro.sched.dynamic import DynamicScheduler
from repro.util.tables import render_table


def build() -> FigureResult:
    machine = gpu4_node()
    rows = []
    data = {}
    for kernel_name in ("axpy", "sum", "matvec"):
        cell = {}
        for db in (True, False):
            engine = OffloadEngine(machine=machine, double_buffer=db)
            block = engine.run(workload(kernel_name), BlockScheduler()).total_time_ms
            engine = OffloadEngine(machine=machine, double_buffer=db)
            dyn = engine.run(
                workload(kernel_name), DynamicScheduler(0.02)
            ).total_time_ms
            cell[db] = (block, dyn)
            rows.append(
                [kernel_name, "on" if db else "off", block, dyn, block / dyn]
            )
        data[kernel_name] = cell
    text = render_table(
        ["kernel", "double buffer", "BLOCK ms", "DYNAMIC ms", "BLOCK/DYN"],
        rows,
        title="Overlap ablation: dynamic chunking with double buffering on/off",
    )
    return FigureResult(name="double buffer", grid=None, text=text,
                        extra={"data": data})


def test_overlap_is_the_mechanism(bench_once):
    result = bench_once(build, name="ablation_double_buffer")
    print("\n" + result.text)
    for kernel_name, cell in result.extra["data"].items():
        block_on, dyn_on = cell[True]
        block_off, dyn_off = cell[False]
        # with overlap, dynamic beats BLOCK (the Fig. 5 result)
        assert dyn_on < block_on, kernel_name
        # BLOCK's single chunk has nothing to overlap: unaffected
        assert block_off == block_on, kernel_name
        # without overlap, dynamic's advantage disappears entirely
        assert dyn_off > block_off, kernel_name
