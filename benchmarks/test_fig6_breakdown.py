"""Fig. 6: accumulated breakdown (%) of offloading time on 4 GPUs, with
the load-imbalance curve.

Paper claims: scheduling overhead is small (barrier/imbalance "below 5% in
average"), data movement dominates the data-intensive kernels and compute
dominates the compute-intensive ones.
"""

import statistics

from repro.bench.figures import fig6_breakdown


def test_fig6(bench_once):
    result = bench_once(fig6_breakdown, name="fig6")
    print("\n" + result.text)
    grid = result.grid
    imbalances = result.extra["imbalances"]

    # the paper's headline: average incurred load imbalance below 5%
    assert statistics.mean(imbalances.values()) < 5.0

    # identical devices + upfront split: essentially no imbalance
    assert imbalances["matmul/BLOCK"] < 0.5
    assert imbalances["axpy/BLOCK"] < 0.5

    # per-kernel breakdown character: data movement dominates the
    # data-intensive kernel, and the compute share grows with arithmetic
    # intensity (matmul's compute fraction is far above axpy's; at the
    # paper's full 6144 size it crosses 50%, see EXPERIMENTS.md)
    axpy_block = grid.results["axpy"]["BLOCK"].breakdown_pct()
    assert axpy_block["data"] > axpy_block["compute"]

    mm_block = grid.results["matmul"]["BLOCK"].breakdown_pct()
    assert mm_block["compute"] > 3 * axpy_block["compute"]

    # pure scheduling (chunk-acquisition CAS) cost is tiny everywhere; the
    # "sched" display bucket also carries one-off device setup, which can
    # dominate sub-millisecond offloads, so assert on the raw trace field
    for row in grid.results.values():
        for r in row.values():
            for t in r.participating:
                total = t.busy_s + t.barrier_s
                assert t.sched_s < 0.05 * total
