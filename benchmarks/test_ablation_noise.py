"""Ablation: execution-time variance vs scheduling strategy.

The classic argument for dynamic chunking (paper §IV.A.2): when per-chunk
times vary, a static even split strands the unlucky device while dynamic
chunking rebalances.  Injecting multiplicative lognormal noise into the
device model shows static BLOCK's imbalance growing with the noise level
while SCHED_DYNAMIC's stays bounded.
"""

from repro.bench.figures import FigureResult
from repro.engine.simulator import OffloadEngine
from repro.bench.workloads import workload
from repro.machine.presets import gpu4_node
from repro.sched.block import BlockScheduler
from repro.sched.dynamic import DynamicScheduler
from repro.util.tables import render_table

NOISE_LEVELS = (0.0, 0.1, 0.2, 0.4)
SEEDS = range(5)


def mean_imbalance(machine, scheduler_factory, seed):
    k = workload("matmul")
    engine = OffloadEngine(machine=machine, seed=seed, execute_numerically=False)
    return engine.run(k, scheduler_factory()).imbalance_pct()


def build() -> FigureResult:
    rows = []
    curves = {"BLOCK": [], "SCHED_DYNAMIC": []}
    for noise in NOISE_LEVELS:
        machine = gpu4_node(noise=noise)
        for name, factory in (
            ("BLOCK", BlockScheduler),
            ("SCHED_DYNAMIC", lambda: DynamicScheduler(0.02)),
        ):
            imb = sum(mean_imbalance(machine, factory, s) for s in SEEDS) / len(SEEDS)
            curves[name].append(imb)
            rows.append([name, f"{noise:.1f}", imb])
    text = render_table(
        ["policy", "noise sigma", "mean imbalance %"],
        rows,
        title="Load imbalance vs execution noise (matmul, 4 GPUs)",
    )
    return FigureResult(name="noise", grid=None, text=text, extra={"curves": curves})


def test_dynamic_absorbs_variance(bench_once):
    result = bench_once(build, name="ablation_noise")
    print("\n" + result.text)
    curves = result.extra["curves"]

    block = curves["BLOCK"]
    dyn = curves["SCHED_DYNAMIC"]

    # noiseless: BLOCK is perfectly balanced
    assert block[0] < 0.5
    # BLOCK's imbalance grows materially with noise
    assert block[-1] > 5 * max(block[0], 1.0) or block[-1] > 10.0
    # dynamic stays well below static at the highest noise level
    assert dyn[-1] < 0.5 * block[-1]
