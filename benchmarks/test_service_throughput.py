"""Service throughput: direct calls vs engine pooling vs batch coalescing.

The perf artifact for ``repro.service``: one deterministic 10k-job plan
(vectorizable-heavy policy mix, three tenants, two workload templates)
is served three ways and the measured jobs/sec land in
``benchmarks/results/service_throughput.json``:

* ``direct``  — the no-service baseline: a plain loop of
  ``parallel_for`` calls, one fresh runtime-bound engine per job.
* ``pooled``  — the service with coalescing off: admission, weighted-fair
  queueing, and reusable pooled engines, one job per engine lease.
* ``coalesced`` — the full service: compatible queued jobs grouped into
  single ``BatchEngine.run_many`` calls.

Coalescing's win is structural: a batch pays kernel construction and
numeric execution once per (workload, seed) group where the pooled path
pays them once per job, and one executor round-trip serves the whole
group.  Results stay byte-identical to direct ``parallel_for`` calls
(pinned exhaustively by ``tests/service/test_determinism.py``; spot
checked here), so the CI floor asserts coalesced > pooled jobs/sec with
nothing traded away.

``REPRO_SERVICE_BENCH_JOBS`` overrides the plan size (the acceptance
artifact uses the default 10000; CI smoke may shrink it).
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import time

from repro.machine.presets import gpu4_node
from repro.runtime.runtime import HompRuntime
from repro.service import (
    OffloadService,
    TenantQuota,
    TrafficSpec,
    WorkloadTemplate,
    plan_traffic,
    run_load,
)

JOBS = int(os.environ.get("REPRO_SERVICE_BENCH_JOBS", "10000"))
POOL_SIZE = 2

SPEC = TrafficSpec(
    jobs=JOBS,
    seed=2026,
    tenants={"a": 2.0, "b": 1.0, "c": 1.0},
    templates=(
        WorkloadTemplate("axpy", 2048, seed=1),
        WorkloadTemplate("axpy", 2048, seed=2),
    ),
    # vectorizable-heavy mix with a dynamic minority that must run solo
    policies=("BLOCK", "MODEL_1_AUTO", "MODEL_2_AUTO",
              "SCHED_PROFILE_AUTO", "SCHED_DYNAMIC"),
    mean_interarrival_s=0.0,
)


def _direct_seconds(machine, plan):
    """Baseline: no service, one parallel_for call per planned job."""
    runtimes = {}
    t0 = time.perf_counter()
    for arrival in plan:
        job = arrival.job
        rt = runtimes.get(job.seed)
        if rt is None:
            rt = runtimes[job.seed] = HompRuntime(machine, seed=job.seed)
        rt.parallel_for(
            job.factory(),
            schedule=job.policy,
            cutoff_ratio=job.cutoff_ratio,
        )
    return time.perf_counter() - t0


def _served_report(machine, plan, *, coalesce):
    async def main():
        async with OffloadService(
            machine,
            pool_size=POOL_SIZE,
            coalesce=coalesce,
            use_cache=False,
            queue_capacity=len(plan) + 1,
            default_quota=TenantQuota(max_in_flight=len(plan)),
        ) as svc:
            return await run_load(svc, plan)

    return asyncio.run(main())


def _spot_check(machine, plan, stride):
    """Every stride-th job must byte-match its direct parallel_for run."""
    async def main():
        async with OffloadService(
            machine, pool_size=POOL_SIZE, use_cache=False,
            default_quota=TenantQuota(max_in_flight=len(plan)),
        ) as svc:
            sample = plan[::stride]
            handles = [await svc.submit(a.job) for a in sample]
            return await asyncio.gather(*(h.wait() for h in handles))

    for res in asyncio.run(main()):
        assert res.ok, res.error
        rt = HompRuntime(machine, seed=res.job.seed)
        direct = rt.parallel_for(
            res.job.factory(), schedule=res.job.policy,
            cutoff_ratio=res.job.cutoff_ratio,
        )
        assert pickle.dumps(res.result) == pickle.dumps(direct), res.job.tag


def test_service_throughput(results_dir):
    machine = gpu4_node()
    plan = plan_traffic(SPEC)
    assert len(plan) == JOBS

    # Warm kernel-input pools so no mode pays one-time generation costs.
    for template in SPEC.templates:
        template()

    direct_s = _direct_seconds(machine, plan)
    pooled = _served_report(machine, plan, coalesce=False)
    coalesced = _served_report(machine, plan, coalesce=True)

    for name, report in (("pooled", pooled), ("coalesced", coalesced)):
        assert report.completed == JOBS, (name, report.to_dict())
        assert report.failed == report.rejected == 0, (name, report.to_dict())
        assert report.lost == report.duplicated == 0, (name, report.to_dict())
    assert pooled.coalesce_ratio == 0.0
    assert coalesced.coalesce_ratio > 0.0

    _spot_check(machine, plan, stride=max(1, JOBS // 50))

    artifact = {
        "plan": {
            "jobs": JOBS,
            "seed": SPEC.seed,
            "tenants": SPEC.tenant_weights(),
            "templates": [t.fingerprint() for t in SPEC.templates],
            "policies": list(SPEC.policies),
        },
        "pool_size": POOL_SIZE,
        "cpus": os.cpu_count(),
        "modes": {
            "direct": {
                "seconds": round(direct_s, 4),
                "jobs_per_s": round(JOBS / direct_s, 2),
            },
            "pooled": {
                "seconds": round(pooled.duration_s, 4),
                "jobs_per_s": round(pooled.jobs_per_s, 2),
                "p50_latency_s": round(pooled.p50_latency_s, 6),
                "p99_latency_s": round(pooled.p99_latency_s, 6),
            },
            "coalesced": {
                "seconds": round(coalesced.duration_s, 4),
                "jobs_per_s": round(coalesced.jobs_per_s, 2),
                "p50_latency_s": round(coalesced.p50_latency_s, 6),
                "p99_latency_s": round(coalesced.p99_latency_s, 6),
                "coalesce_ratio": round(coalesced.coalesce_ratio, 4),
                "batches": coalesced.batches,
            },
        },
        "speedup": {
            "coalesced_vs_pooled": round(
                coalesced.jobs_per_s / pooled.jobs_per_s, 3
            ),
        },
    }
    (results_dir / "service_throughput.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    print("\n" + json.dumps(artifact, indent=2))

    # CI floor: batching compatible jobs must beat serving them one by one.
    assert coalesced.jobs_per_s > pooled.jobs_per_s, artifact
