"""Fig. 9: offloading time on the full node (2 CPUs + 4 GPUs + 2 MICs),
plus the minimum time with the 15% CUTOFF ratio applied.

Paper claims: "when computational resources vary significantly in
performance, SCHED_DYNAMIC yields decent performance for most kernels",
and the CUTOFF column automatically selects appropriate devices.
"""

from repro.bench.figures import fig9_full_node

KERNELS = ("axpy", "matvec", "matmul", "stencil", "sum", "bm")


def test_fig9(bench_once):
    result = bench_once(fig9_full_node, name="fig9")
    print("\n" + result.text)
    grid = result.grid

    # SCHED_DYNAMIC is "decent for most kernels": never the worst policy,
    # and within 3x of the per-kernel best for at least four of six
    decent = 0
    for kernel in KERNELS:
        times = {p: grid.time_ms(kernel, p) for p in grid.policies}
        dyn = times["SCHED_DYNAMIC"]
        assert dyn < max(times.values()) or len(set(times.values())) == 1
        if dyn <= 3.0 * min(times.values()):
            decent += 1
    assert decent >= 4

    # dynamic chunking clearly beats the naive even split on this strongly
    # heterogeneous machine for the data-side kernels
    for kernel in ("axpy", "sum", "matvec"):
        assert grid.time_ms(kernel, "SCHED_DYNAMIC") < grid.time_ms(kernel, "BLOCK")

    # the CUTOFF column is the minimum over the model/profile algorithms
    # with cutoff: it must never lose badly to the same minimum without
    cutoff_best = result.extra["cutoff_best_ms"]
    for kernel in KERNELS:
        plain_min = min(
            grid.time_ms(kernel, p)
            for p in ("MODEL_1_AUTO", "MODEL_2_AUTO", "SCHED_PROFILE_AUTO",
                      "MODEL_PROFILE_AUTO")
        )
        assert cutoff_best[kernel] < 2.5 * plain_min, kernel
