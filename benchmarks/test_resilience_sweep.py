"""Resilience sweep: makespan degradation under injected faults.

Not a paper figure — the paper assumes well-behaved devices — but the
inverse of its load-balancing story: the same adaptivity that balances a
heterogeneous machine (Table II, chunked and profiled algorithms) is what
degrades gracefully when a device misbehaves, while static BLOCK has no
mechanism to route around trouble.

Shape asserted on 4 identical K40s with the paper-size axpy (10M):

* **straggler** (one device 4x slower for the whole offload): BLOCK
  collapses (its even split waits on the slow device end to end) while
  SCHED_DYNAMIC barely notices and SCHED_PROFILE_AUTO lands in between
  (its stage-1 profile sees the slowdown and shrinks the victim's share);
* **dropout** (one device lost at 50% of BLOCK's fault-free makespan,
  the same instant for every policy): everyone completes, with BLOCK
  degrading worst — it can only re-split the lost block after the fact;
* every faulted run's output is **bit-identical** to its fault-free run
  (axpy is elementwise, so chunking does not perturb the answer).

All of it is deterministic: fixed seeds, virtual time, counter-based
fault draws — the JSON artifact regenerates byte-identically.
"""

import json
from functools import partial

from repro.bench.resilience import (
    block_reference_makespan,
    dropout_plan,
    resilience_sweep,
    straggler_plan,
)
from repro.kernels.registry import paper_workload
from repro.machine.presets import gpu4_node

POLICIES = ("BLOCK", "SCHED_DYNAMIC", "SCHED_PROFILE_AUTO")
VICTIM = 1  # k40-1

#: Paper-size axpy (10M iterations) — the calibrated scenario where the
#: shared drop time separates the policies' recovery behaviour.
AXPY_FULL = partial(paper_workload, "axpy", scale=1.0, seed=0)


def _sweep():
    machine = gpu4_node()
    base_s = block_reference_makespan(machine, AXPY_FULL)
    plans = [
        straggler_plan(VICTIM, 4.0),
        dropout_plan(VICTIM, 0.5 * base_s),
    ]
    return resilience_sweep(
        machine, AXPY_FULL, policies=POLICIES, plans=plans,
    )


def test_resilience_sweep(bench_once, results_dir):
    result = bench_once(_sweep, name="resilience")
    print("\n" + result.text)
    deg = result.extra["degradation"]
    checks = result.extra["checksums_match"]
    straggler, dropout = deg  # insertion order: straggler first

    # Output identity: resilience never buys time with a wrong answer.
    for plan, by_policy in checks.items():
        for policy, same in by_policy.items():
            assert same, (plan, policy)

    # Straggler: BLOCK collapses, SCHED_DYNAMIC shrugs, PROFILE between.
    assert deg[straggler]["BLOCK"] > 3.0
    assert deg[straggler]["SCHED_DYNAMIC"] < 1.5
    assert (
        deg[straggler]["SCHED_DYNAMIC"]
        < deg[straggler]["SCHED_PROFILE_AUTO"]
        < deg[straggler]["BLOCK"]
    )

    # Dropout at the shared instant: everyone completes (the lost device's
    # work is reassigned), BLOCK measurably worst.
    for policy in POLICIES:
        assert deg[dropout][policy] < 1.5, policy
    assert deg[dropout]["BLOCK"] > deg[dropout]["SCHED_DYNAMIC"] + 0.02
    assert deg[dropout]["BLOCK"] > deg[dropout]["SCHED_PROFILE_AUTO"] + 0.02

    # Every faulted cell really saw its fault (dropout cells lost k40-1).
    for cell in result.extra["payload"]["cells"]:
        if cell["plan"] == dropout:
            assert cell["lost"] == ["k40-1"]
            assert cell["fault_events"] >= 1

    (results_dir / "resilience.json").write_text(
        json.dumps(result.extra["payload"], indent=2, sort_keys=True) + "\n"
    )


def test_resilience_smoke(results_dir):
    """Cheap one-cell variant for the cached-benchmark CI job: one policy,
    one dropout, default bench scale."""
    from repro.bench.workloads import WorkloadFactory

    machine = gpu4_node()
    factory = WorkloadFactory("axpy", seed=0)
    base_s = block_reference_makespan(machine, factory)
    fig = resilience_sweep(
        machine, factory,
        policies=("SCHED_DYNAMIC",),
        plans=[dropout_plan(VICTIM, 0.5 * base_s)],
    )
    (plan,) = fig.extra["degradation"]
    assert fig.extra["checksums_match"][plan]["SCHED_DYNAMIC"]
    assert 1.0 <= fig.extra["degradation"][plan]["SCHED_DYNAMIC"] < 2.0
