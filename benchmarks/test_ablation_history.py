"""Ablation: history-guided vs analytical distribution (future work).

The paper's conclusion lists "improving prediction models" as future
work; its related work discusses Qilin's historical-execution approach.
This ablation measures the HISTORY_AUTO extension against the paper's
MODEL_1/MODEL_2 on the heterogeneous CPU+MIC node, where the analytical
models' microbenchmark-calibrated MIC rate is 3.4x optimistic.
"""

from repro.bench.figures import FigureResult
from repro.bench.workloads import workload
from repro.engine.simulator import OffloadEngine
from repro.machine.presets import cpu_mic_node
from repro.sched.dynamic import DynamicScheduler
from repro.sched.history import HistoryDB, HistoryScheduler
from repro.sched.model1 import Model1Scheduler
from repro.sched.model2 import Model2Scheduler
from repro.util.tables import render_table

KERNELS = ("matmul", "matvec", "axpy")


def build() -> FigureResult:
    machine = cpu_mic_node()
    rows = []
    data = {}
    for name in KERNELS:
        db = HistoryDB()
        probe = OffloadEngine(machine=machine).run(
            workload(name), DynamicScheduler(0.05)
        )
        db.ingest(probe, machine)
        times = {}
        for label, sched in (
            ("MODEL_1_AUTO", Model1Scheduler()),
            ("MODEL_2_AUTO", Model2Scheduler()),
            ("HISTORY_AUTO", HistoryScheduler(db)),
        ):
            r = OffloadEngine(machine=machine).run(workload(name), sched)
            times[label] = r.total_time_ms
            rows.append([name, label, r.total_time_ms])
        data[name] = times
    text = render_table(
        ["kernel", "algorithm", "time (ms)"],
        rows,
        title="History-guided vs analytical distribution (2 CPUs + 2 MICs)",
    )
    return FigureResult(name="history", grid=None, text=text, extra={"data": data})


def test_history_beats_misled_models(bench_once):
    result = bench_once(build, name="ablation_history")
    print("\n" + result.text)
    data = result.extra["data"]
    for name in KERNELS:
        times = data[name]
        # learned throughput always beats the compute-only model...
        assert times["HISTORY_AUTO"] < times["MODEL_1_AUTO"], name
        # ...and never loses more than 20% to MODEL_2 (it equals or beats
        # it wherever the models misprice the MICs)
        assert times["HISTORY_AUTO"] < 1.2 * times["MODEL_2_AUTO"], name
    # on the MIC-overpredicted matmul the gain over MODEL_1 is substantial
    assert data["matmul"]["HISTORY_AUTO"] < 0.8 * data["matmul"]["MODEL_1_AUTO"]
