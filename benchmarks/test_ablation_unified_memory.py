"""Ablation: unified memory vs explicit data movement (paper §V.C).

The paper observed "maximum of 10 and 18 times slowdown in our BLAS
examples" with unified memory and therefore defaults to explicit copies.
Two views: per-buffer transfer-time ratios, and whole offloads executed
end-to-end on a 4-GPU node whose GPUs use unified instead of discrete
memory.
"""

from repro.bench.figures import FigureResult
from repro.bench.runner import run_one
from repro.bench.workloads import workload
from repro.machine.presets import homogeneous_node, k40_spec, k40_unified_spec
from repro.memory.unified import UnifiedMemoryModel
from repro.util.tables import render_table


def build() -> FigureResult:
    model = UnifiedMemoryModel()
    link = k40_spec().link
    rows = []
    slowdowns = {}
    for name in ("axpy", "matvec", "sum"):
        k = workload(name)
        nbytes = sum(k.arrays[m.name].nbytes for m in k.maps())
        explicit = link.transfer_time(nbytes)
        migrated = model.migration_time(link, nbytes)
        slow = migrated / explicit
        slowdowns[name] = slow
        rows.append([name, nbytes / 2**20, explicit * 1e3, migrated * 1e3, slow])
    text = render_table(
        ["kernel", "MiB", "explicit (ms)", "unified (ms)", "slowdown"],
        rows,
        title="Unified memory vs explicit movement (BLAS-style buffers)",
    )

    # end-to-end: the same BLAS-1/2 offloads on unified-memory GPUs
    discrete = homogeneous_node(4, k40_spec())
    unified = homogeneous_node(4, k40_unified_spec())
    offload_rows = []
    offload_slow = {}
    for name in ("axpy", "matvec", "sum"):
        t_d = run_one(discrete, workload(name), "BLOCK").total_time_ms
        t_u = run_one(unified, workload(name), "BLOCK").total_time_ms
        offload_slow[name] = t_u / t_d
        offload_rows.append([name, t_d, t_u, t_u / t_d])
    text += "\n\n" + render_table(
        ["kernel", "discrete (ms)", "unified (ms)", "offload slowdown"],
        offload_rows,
        title="Whole offloads, 4 GPUs, BLOCK",
    )
    return FigureResult(
        name="unified", grid=None, text=text,
        extra={"slowdowns": slowdowns, "offload_slowdowns": offload_slow},
    )


def test_unified_memory_slowdown(bench_once):
    result = bench_once(build, name="ablation_unified")
    print("\n" + result.text)
    for name, slow in result.extra["slowdowns"].items():
        # the paper's 10-18x window for transfer-dominated buffers
        assert 8.0 <= slow <= 20.0, (name, slow)
    for name, slow in result.extra["offload_slowdowns"].items():
        # whole offloads include compute, so the end-to-end slowdown sits
        # just below the pure-transfer ratio but stays dramatic
        assert 5.0 <= slow <= 20.0, (name, slow)
