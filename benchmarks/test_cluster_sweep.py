"""512-device cluster sweep: flat restaging vs ALIGN'd hierarchical BLOCK.

Runs a 64-node x 8-GPU cluster (512 devices) through the ``cluster``
backend under three fabric tiers (10GbE, 100GbE, InfiniBand EDR) and two
kernels, comparing the two placement modes:

* **head** (the flat-BLOCK baseline) — the host image lives on the head
  node and every offload re-stages each node's shard over the fabric,
  then collects outputs back;
* **aligned** (hierarchical BLOCK + ALIGN'd placement) — a one-time
  scatter puts each shard node-resident, after which offloads pay only
  the cross-node halo (stencil) or nothing at all (axpy).

A repeated workload amortises the scatter: cumulative cost over ``R``
offloads is ``scatter + R * t_aligned`` vs ``R * t_head``.  The artifact
``benchmarks/results/cluster_sweep.json`` records, per (fabric, kernel),
both curves and ``crossover_repeats`` — the first repeat count at which
the aligned hierarchy is ahead.  The qualitative shape this module
asserts: the crossover always arrives (by R=2 even for the halo-paying
stencil), and the aligned advantage grows as inter-node bandwidth drops,
i.e. flat BLOCK loses exactly when the fabric starts to dominate.

A second test pins the scale-down contract at 64 devices: a cluster
whose devices all sit in one node must be *byte-identical* to the
``virtual`` backend — the hierarchy layer adds exactly nothing when
there is no fabric to model.
"""

import json
import pickle

import pytest

from repro.cluster import ClusterEngine, gpu_cluster
from repro.engine import make_backend
from repro.kernels import make_kernel
from repro.machine.interconnect import (
    ETHERNET_10GBE,
    ETHERNET_100GBE,
    INFINIBAND_EDR,
)
from repro.sched import make_scheduler

N_NODES = 64
GPUS_PER_NODE = 8
REPEATS = (1, 2, 4, 8)
FABRICS = (
    ("ethernet-10gbe", ETHERNET_10GBE),
    ("ethernet-100gbe", ETHERNET_100GBE),
    ("infiniband-edr", INFINIBAND_EDR),
)
WORKLOADS = (
    ("axpy", 2_000_000),   # no halo: aligned staging is fully elided
    ("stencil", 1024),     # radius-3 halo: aligned pays boundary rows
)


def _run(cluster, placement, kernel_name, n):
    eng = ClusterEngine.for_cluster(cluster, placement=placement)
    res = eng.run(make_kernel(kernel_name, n), make_scheduler("BLOCK"))
    cl = res.meta["cluster"]
    return {
        "total_s": res.total_time_s,
        "scatter_s": sum(cl["placement_scatter_s"]),
        "fabric_bytes_in": sum(cl["fabric_bytes_in"]),
        "fabric_bytes_out": sum(cl["fabric_bytes_out"]),
    }


def test_cluster_sweep(results_dir):
    report = {
        "cluster": {
            "n_nodes": N_NODES,
            "gpus_per_node": GPUS_PER_NODE,
            "n_devices": N_NODES * GPUS_PER_NODE,
        },
        "repeats": list(REPEATS),
        "sweep": [],
    }
    assert N_NODES * GPUS_PER_NODE >= 512

    for fabric_name, fabric in FABRICS:
        cluster = gpu_cluster(N_NODES, GPUS_PER_NODE, fabric=fabric)
        for kernel_name, n in WORKLOADS:
            head = _run(cluster, "head", kernel_name, n)
            aligned = _run(cluster, "aligned", kernel_name, n)

            flat_cum = [r * head["total_s"] for r in REPEATS]
            hier_cum = [
                aligned["scatter_s"] + r * aligned["total_s"] for r in REPEATS
            ]
            crossover = next(
                (r for r, f, h in zip(REPEATS, flat_cum, hier_cum) if h < f),
                None,
            )
            report["sweep"].append({
                "fabric": fabric_name,
                "fabric_bandwidth_gbs": fabric.bandwidth_gbs,
                "kernel": kernel_name,
                "n": n,
                "flat_block": head,
                "hierarchical_aligned": aligned,
                "flat_cumulative_s": flat_cum,
                "aligned_cumulative_s": hier_cum,
                "crossover_repeats": crossover,
                "speedup_at_max_repeats": flat_cum[-1] / hier_cum[-1],
            })

    # -- qualitative shape ---------------------------------------------------
    by_kernel = {}
    for row in report["sweep"]:
        by_kernel.setdefault(row["kernel"], []).append(row)

    for kernel_name, rows in by_kernel.items():
        for row in rows:
            # The crossover always arrives while the sweep still runs.
            assert row["crossover_repeats"] is not None, row["fabric"]
            assert row["crossover_repeats"] <= 2
            # ALIGN'd placement moves strictly fewer per-offload bytes
            # than flat restaging, and never collects outputs.
            h, a = row["flat_block"], row["hierarchical_aligned"]
            assert a["fabric_bytes_in"] < h["fabric_bytes_in"]
            assert a["fabric_bytes_out"] == 0.0
            assert h["fabric_bytes_out"] > 0.0
        # The aligned hierarchy ends ahead on every tier, and the slow
        # fabric — where inter-node bandwidth dominates — is where it
        # saves the most absolute time.  (Relative speedup is not
        # monotone in bandwidth for the stencil: EDR's microsecond
        # latency makes the per-offload halo nearly free, so its *ratio*
        # beats 10GbE's even though far less time is at stake.)
        speedup = {r["fabric"]: r["speedup_at_max_repeats"] for r in rows}
        assert all(s > 1.0 for s in speedup.values()), kernel_name
        saved = {
            r["fabric"]: r["flat_cumulative_s"][-1]
            - r["aligned_cumulative_s"][-1]
            for r in rows
        }
        assert saved["ethernet-10gbe"] == max(saved.values()), kernel_name
        assert speedup["ethernet-10gbe"] > 1.5

    # axpy has no halo, so residency alignment elides staging entirely,
    # wins from the very first offload, and the slow tier's amortised
    # speedup is both the largest and decisive.
    axpy_speedup = {
        r["fabric"]: r["speedup_at_max_repeats"] for r in by_kernel["axpy"]
    }
    assert axpy_speedup["ethernet-10gbe"] == max(axpy_speedup.values())
    assert axpy_speedup["ethernet-10gbe"] > 2.0
    for row in by_kernel["axpy"]:
        assert row["hierarchical_aligned"]["fabric_bytes_in"] == 0.0
        assert row["crossover_repeats"] == 1

    (results_dir / "cluster_sweep.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print("\n" + json.dumps(report, indent=2))


@pytest.mark.parametrize("policy", ["BLOCK", "SCHED_DYNAMIC"])
def test_cluster_identity_smoke_64dev(policy):
    """64 devices, one node: the cluster backend is bit-identical to
    ``virtual`` — the CI smoke for the scale-down pin."""
    machine = gpu_cluster(8, 8).flatten()
    assert len(machine) == 64

    kv = make_kernel("axpy", 256_000)
    kc = make_kernel("axpy", 256_000)
    rv = make_backend("virtual", machine).run(kv, make_scheduler(policy))
    rc = make_backend("cluster", machine).run(kc, make_scheduler(policy))
    assert pickle.dumps(rv) == pickle.dumps(rc)
