"""Application benchmark: the Fig. 3 Jacobi solver across machines.

Not a numbered paper figure, but the paper's flagship directive example:
a full iterative solve with a persistent target-data region, per-iteration
ALIGN'd copy loop + AUTO sweep, and halo exchange.  The benchmark verifies
the distributed solution against the serial reference and records where
the simulated time goes.
"""

import numpy as np

from repro.apps import JacobiSolver
from repro.bench.figures import FigureResult
from repro.machine.presets import cpu_mic_node, full_node, gpu4_node
from repro.runtime.runtime import HompRuntime
from repro.util.tables import render_table

N = 96
ITERS = 12


def build() -> FigureResult:
    rows = []
    data = {}
    u_ref, ref_iters, _ = JacobiSolver(N, seed=13).reference(max_iters=ITERS, tol=0.0)
    for machine in (gpu4_node(), cpu_mic_node(), full_node()):
        rt = HompRuntime(machine)
        solver = JacobiSolver(N, seed=13)
        result = solver.solve(rt, max_iters=ITERS, tol=0.0)
        ok = bool(np.allclose(result.u, u_ref))
        data[machine.name] = (result, ok)
        rows.append(
            [machine.name, result.iterations, result.sim_time_s * 1e3,
             result.halo_time_s * 1e3, "yes" if ok else "NO"]
        )
    text = render_table(
        ["machine", "iterations", "total (ms)", "halo (ms)", "matches serial"],
        rows,
        title=f"Jacobi {N}x{N}, {ITERS} iterations (paper Fig. 3 program)",
    )
    return FigureResult(name="jacobi", grid=None, text=text, extra={"data": data})


def test_jacobi_app(bench_once):
    result = bench_once(build, name="app_jacobi")
    print("\n" + result.text)
    for machine_name, (res, ok) in result.extra["data"].items():
        assert ok, machine_name
        assert res.iterations == ITERS
        # halo exchange is a visible but not dominant cost
        assert 0 < res.halo_time_s < 0.5 * res.sim_time_s, machine_name
