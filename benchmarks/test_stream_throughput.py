"""Stream throughput: STREAM_REBALANCE vs static BLOCK over long streams.

The streaming runtime's perf artifact (``repro.runtime.stream``): each
streaming workload runs a long batch sequence twice under an injected
mid-stream slowdown — once with the static BLOCK split, once with the
rate-aware STREAM_REBALANCE scheduler that re-derives the split between
batches from observed EWMA rates — and the totals land in
``benchmarks/results/stream_throughput.json``.

Three properties are pinned, not just reported:

* **Rebalance wins under faults.**  A device slowed 6x mid-stream drags
  every BLOCK batch inside the window; STREAM_REBALANCE sheds its
  iterations within a few batches, so the stream finishes strictly
  earlier in virtual time.
* **Checksums are bit-identical.**  The host advance is a function of
  ``(seed, batch)`` only, the kernels are elementwise (or exact-integer
  reductions), so both schedulers must produce exactly the same outputs
  — the scheduler may move work, never change results.
* **Steady state elides bytes.**  With the persistent stream region
  holding device-resident state, batches after the first re-stage only
  the sliding-window delta: ``bytes_elided`` must be positive.

The headline workload (the online sum) runs >= 10k batches by default;
``REPRO_STREAM_BATCHES`` scales the sequence down for smoke runs (CI
uses 1000).  Everything is virtual-time deterministic, so one round is
meaningful.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.apps import (
    OnlineSumKernel,
    SlidingStencilKernel,
    StreamingBlockMatchingKernel,
)
from repro.faults.plan import FaultPlan, Slowdown
from repro.machine.presets import full_node
from repro.runtime import HompRuntime

BATCHES_ENV = "REPRO_STREAM_BATCHES"
DEFAULT_BATCHES = 10_000
WINDOW = 64
SLOW_FACTOR = 6.0


def _batches() -> int:
    raw = os.environ.get(BATCHES_ENV, "").strip()
    return max(100, int(raw)) if raw else DEFAULT_BATCHES


def _run(make_kernel, schedule, batches, plan=None):
    rt = HompRuntime(machine=full_node())
    kernel = make_kernel()
    t0 = time.perf_counter()
    sr = rt.stream(
        kernel,
        batches=batches,
        window=WINDOW,
        schedule=schedule,
        fault_plan=plan,
    )
    wall = time.perf_counter() - t0
    return sr, kernel, wall


def _slowdown_plan(make_kernel, batches) -> FaultPlan:
    """A mid-stream slowdown window scaled to this workload's timeline.

    Device 0 runs ``SLOW_FACTOR``x slower from 10% to 70% of the
    fault-free BLOCK makespan — long enough that a static split keeps
    paying it batch after batch, bounded so both schedulers see healthy
    steady state on either side.
    """
    baseline, _, _ = _run(make_kernel, "BLOCK", batches)
    total = baseline.total_time_s
    return FaultPlan.of(
        Slowdown(
            devid=0,
            factor=SLOW_FACTOR,
            t_start=0.1 * total,
            t_end=0.7 * total,
        )
    )


def _checksum_state(kernel):
    if kernel.is_reduction:
        return None  # compared via per-batch reductions instead
    out = "u_out" if "u_out" in kernel.arrays else "sad"
    return kernel.arrays[out].copy()


def _compare(block_sr, block_state, rebal_sr, rebal_state) -> bool:
    if block_state is None:
        return block_sr.reductions == rebal_sr.reductions
    return np.array_equal(block_state, rebal_state)


def _measure(name, make_kernel, batches) -> dict:
    plan = _slowdown_plan(make_kernel, batches)
    block_sr, block_k, block_wall = _run(make_kernel, "BLOCK", batches, plan)
    block_state = _checksum_state(block_k)
    rebal_sr, rebal_k, rebal_wall = _run(
        make_kernel, "STREAM_REBALANCE", batches, plan
    )
    rebal_state = _checksum_state(rebal_k)

    checksums_equal = _compare(block_sr, block_state, rebal_sr, rebal_state)
    assert checksums_equal, f"{name}: schedulers disagree on results"
    assert rebal_sr.total_time_s < block_sr.total_time_s, (
        f"{name}: STREAM_REBALANCE ({rebal_sr.total_time_s:.6f}s) did not "
        f"beat BLOCK ({block_sr.total_time_s:.6f}s) under the slowdown"
    )
    assert rebal_sr.bytes_elided > 0, f"{name}: steady state elided nothing"
    assert block_sr.bytes_elided > 0, f"{name}: BLOCK stream elided nothing"

    def section(sr, wall):
        return {
            "virtual_s": sr.total_time_s,
            "throughput_batches_per_s": sr.throughput_batches_per_s,
            "wall_s": round(wall, 3),
            "bytes_moved": sr.bytes_moved,
            "bytes_elided": sr.bytes_elided,
        }

    return {
        "batches": batches,
        "window": WINDOW,
        "slowdown": {"devid": 0, "factor": SLOW_FACTOR},
        "block": section(block_sr, block_wall),
        "rebalance": section(rebal_sr, rebal_wall),
        "speedup": block_sr.total_time_s / rebal_sr.total_time_s,
        "checksums_equal": checksums_equal,
    }


def test_stream_throughput(results_dir):
    batches = _batches()
    short = max(100, batches // 10)
    workloads = {
        # The headline long stream: >= 10k batches at default scale.
        "stream-sum": (lambda: OnlineSumKernel(2000, seed=1), batches),
        "stream-stencil": (lambda: SlidingStencilKernel(96, seed=1), short),
        "stream-bm": (lambda: StreamingBlockMatchingKernel(64, seed=1), short),
    }
    payload = {
        "machine": full_node().name,
        "batches": batches,
        "workloads": {
            name: _measure(name, make, n)
            for name, (make, n) in workloads.items()
        },
    }
    for name, row in payload["workloads"].items():
        assert row["speedup"] > 1.0, (name, row["speedup"])

    out = results_dir / "stream_throughput.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
