"""Cells/sec of the sweep paths: serial vs process pool vs batch backend.

The perf-trajectory artifact for the vectorized batch backend
(``repro.engine.batch``): the full Fig. 5 grid (6 kernels x 7 policies on
the 4-GPU node) is swept three ways — serial in-process, process pool,
and the batch backend — and the measured cells/sec land in
``benchmarks/results/batch_throughput.json``.

The batch path's advantage is structural, not numerical: one
``run_many`` call advances every cell's timeline as shared array ops,
numerics and reference verification run once per workload instead of
once per cell, and there is no process-pool pickle/fork overhead.  The
results are still bit-identical to the serial sweep (pinned by
``tests/engine/test_batch_differential.py``).  That amortization is
also what bounds the end-to-end speedup: kernel construction and
numeric execution dominate a bench-scale sweep, and the batch path
pays them once per *workload* where the other paths pay once per
*cell* — so the ceiling is roughly the number of policies per kernel.

The artifact also records an engine-level ``sim_only`` section:
prebuilt kernels, numerics off, a search-loop-style batch of static
cells (the regime ROADMAP's service/search items care about).  Today
the vectorized cost tensors and the per-cell event loop land within a
few percent of each other there — the per-chunk commit replay that
buys bit-identical accounting costs the same either way — so this is
the baseline future vectorized-accounting work must beat.

``REPRO_BENCH_SCALE`` scales the workloads as usual (unset, this module
measures at 0.05 so the serial baseline finishes quickly); the resolved
scale is recorded in the artifact, so numbers are only comparable at
equal scale (and on comparable hardware — ``cpus`` is recorded too).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench.cache import SweepCache
from repro.bench.runner import ALL_POLICIES, run_grid
from repro.bench.workloads import BENCH_SCALE_ENV, WorkloadFactory
from repro.engine.batch import BatchEngine, BatchRequest
from repro.engine.simulator import OffloadEngine
from repro.machine.presets import gpu4_node
from repro.sched.registry import make_scheduler

FIG5_KERNELS = ("axpy", "matvec", "matmul", "stencil", "sum", "bm")
VECTORIZABLE = (
    "BLOCK", "MODEL_1_AUTO", "MODEL_2_AUTO",
    "SCHED_PROFILE_AUTO", "MODEL_PROFILE_AUTO",
)
POOL_WORKERS = 2


def _factories():
    return {name: WorkloadFactory(name, seed=0) for name in FIG5_KERNELS}


def _sweep_seconds(machine, *, workers, executor):
    """Wall seconds for one full uncached fig5 sweep."""
    cache = SweepCache()  # fresh and memory-only under REPRO_BENCH_CACHE=off
    t0 = time.perf_counter()
    grid = run_grid(
        machine, _factories(), policies=ALL_POLICIES,
        workers=workers, cache=cache, executor=executor,
    )
    elapsed = time.perf_counter() - t0
    ncells = len(grid.results) * len(grid.policies)
    return elapsed, ncells, grid


@pytest.fixture()
def throughput_env(monkeypatch):
    """Uncached measurements at a recorded scale."""
    monkeypatch.setenv("REPRO_BENCH_CACHE", "off")
    if not os.environ.get(BENCH_SCALE_ENV, "").strip():
        monkeypatch.setenv(BENCH_SCALE_ENV, "0.05")
    yield


def _sim_only_cells():
    """Search-loop-style cell list: static policies x cutoff variants."""
    cutoffs = tuple(i / 40 for i in range(20))
    return [
        (kname, policy, cut)
        for kname in FIG5_KERNELS
        for policy in VECTORIZABLE
        for cut in cutoffs
    ]


def _sim_only_seconds(machine):
    """Engine-level cells/sec: prebuilt kernels, numerics off."""
    kernels = {name: WorkloadFactory(name, seed=0)() for name in FIG5_KERNELS}
    cells = _sim_only_cells()

    t0 = time.perf_counter()
    for kname, policy, cut in cells:
        eng = OffloadEngine(machine=machine, seed=0,
                            execute_numerically=False)
        sched = make_scheduler(policy)
        eng.run(kernels[kname], sched,
                cutoff_ratio=cut if sched.supports_cutoff else 0.0)
    serial_s = time.perf_counter() - t0

    requests = []
    for kname, policy, cut in cells:
        sched = make_scheduler(policy)
        requests.append(BatchRequest(
            kernels[kname], sched,
            cutoff_ratio=cut if sched.supports_cutoff else 0.0,
            execute_numerically=False,
        ))
    t0 = time.perf_counter()
    BatchEngine(machine=machine, seed=0,
                execute_numerically=False).run_many(requests)
    batch_s = time.perf_counter() - t0
    return serial_s, batch_s, len(cells)


def test_batch_throughput(throughput_env, results_dir):
    machine = gpu4_node()
    # Warm the shared input pool so no mode pays generation costs.
    for factory in _factories().values():
        factory()

    serial_s, ncells, serial_grid = _sweep_seconds(
        machine, workers=0, executor=None
    )
    pool_s, _, _ = _sweep_seconds(machine, workers=POOL_WORKERS, executor=None)
    batch_s, _, batch_grid = _sweep_seconds(machine, workers=0, executor="batch")

    # The batch backend must agree with the serial sweep cell by cell.
    for kname in serial_grid.results:
        for policy in serial_grid.policies:
            assert (
                serial_grid.results[kname][policy].total_time_s
                == batch_grid.results[kname][policy].total_time_s
            ), (kname, policy)

    sim_serial_s, sim_batch_s, sim_cells = _sim_only_seconds(machine)

    report = {
        "grid": "fig5 (gpu4_node, 6 kernels x 7 policies)",
        "scale": os.environ[BENCH_SCALE_ENV],
        "cells": ncells,
        "cpus": os.cpu_count(),
        "pool_workers": POOL_WORKERS,
        "seconds": {
            "serial": round(serial_s, 4),
            "pool": round(pool_s, 4),
            "batch": round(batch_s, 4),
        },
        "cells_per_sec": {
            "serial": round(ncells / serial_s, 2),
            "pool": round(ncells / pool_s, 2),
            "batch": round(ncells / batch_s, 2),
        },
        "speedup": {
            "batch_vs_serial": round(serial_s / batch_s, 1),
            "batch_vs_pool": round(pool_s / batch_s, 1),
        },
        "sim_only": {
            "note": (
                "prebuilt kernels, numerics off, static policies x 20 "
                "cutoffs; baseline for future vectorized accounting"
            ),
            "cells": sim_cells,
            "cells_per_sec": {
                "serial": round(sim_cells / sim_serial_s, 2),
                "batch": round(sim_cells / sim_batch_s, 2),
            },
        },
    }
    (results_dir / "batch_throughput.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print("\n" + json.dumps(report, indent=2))

    # CI floor: the vectorized path must never lose to the serial one.
    assert batch_s < serial_s, report


def test_batch_floor_smoke(throughput_env):
    """Cheap floor for CI: batch beats serial on a two-kernel subgrid."""
    machine = gpu4_node()
    ks = {name: WorkloadFactory(name, seed=0) for name in ("axpy", "sum")}
    for factory in ks.values():
        factory()
    t0 = time.perf_counter()
    run_grid(machine, ks, policies=ALL_POLICIES, workers=0,
             cache=SweepCache())
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_grid(machine, ks, policies=ALL_POLICIES, workers=0,
             cache=SweepCache(), executor="batch")
    batch_s = time.perf_counter() - t0
    assert batch_s < serial_s, (serial_s, batch_s)
