"""Ablation: dynamic-chunking chunk size (paper §IV.A.2).

"The selection of the chunk size is critical for the load balance and it
is a decision for tradeoffs between load-balance and chunking scheduling
overhead."  Sweeping the chunk percentage for a data-intensive kernel on 4
GPUs shows the tradeoff: tiny chunks drown in per-launch overhead, huge
chunks lose the transfer/compute overlap (and degenerate to BLOCK).
"""

from repro.bench.figures import FigureResult
from repro.bench.runner import run_one
from repro.bench.workloads import workload
from repro.machine.presets import gpu4_node
from repro.util.tables import render_table

PCTS = (0.002, 0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0)


def build() -> FigureResult:
    machine = gpu4_node()
    times = {}
    rows = []
    for pct in PCTS:
        from repro.sched.dynamic import DynamicScheduler
        from repro.engine.simulator import OffloadEngine

        k = workload("axpy")
        r = OffloadEngine(machine=machine).run(k, DynamicScheduler(pct))
        times[pct] = r.total_time_ms
        rows.append([f"{pct:.1%}", r.total_time_ms, r.traces[0].chunks])
    text = render_table(
        ["chunk size", "time (ms)", "chunks on dev 0"],
        rows,
        title="SCHED_DYNAMIC chunk-size sweep, axpy on 4 GPUs",
    )
    return FigureResult(name="chunk sweep", grid=None, text=text,
                        extra={"times": times})


def test_chunk_size_tradeoff(bench_once):
    result = bench_once(build, name="ablation_chunk_size")
    print("\n" + result.text)
    times = result.extra["times"]

    best_pct = min(times, key=times.get)
    # the sweet spot is an interior chunk size, as the paper argues
    assert 0.002 < best_pct < 1.0
    # tiny chunks pay scheduling/launch overhead
    assert times[0.002] > times[best_pct]
    # whole-loop chunks lose all overlap (first device takes everything)
    assert times[1.0] > 2.0 * times[best_pct]
    # the paper's 2% choice is within 25% of the sweep's optimum
    assert times[0.02] < 1.25 * times[best_pct]
