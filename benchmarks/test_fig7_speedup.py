"""Fig. 7: strong-scaling speedup on 1-4 K40 GPUs (best policy per point).

Paper shape: all six kernels scale with GPU count; bandwidth-light kernels
scale nearly linearly while transfer-heavy ones flatten.
"""

from repro.bench.figures import fig7_speedup


def test_fig7(bench_once):
    result = bench_once(fig7_speedup, name="fig7")
    print("\n" + result.text)
    speedups = result.extra["speedups"]

    for kernel, series in speedups.items():
        # normalised to 1 GPU and monotone non-decreasing
        assert series[0] == 1.0
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), kernel
        # everything gains from 4 GPUs...
        assert series[3] > 1.25, kernel
        # ...and nothing scales super-linearly
        assert series[3] <= 4.0 + 1e-9, kernel

    # the large 1-D streaming kernels scale close to linearly
    assert speedups["axpy"][3] > 3.0
    assert speedups["sum"][3] > 3.0
    assert speedups["matvec"][3] > 3.0
    # matmul scales on its compute; the tiny 256-point 2-D kernels are
    # bounded by per-device setup/transfer and flatten earliest
    assert speedups["matmul"][3] > 2.0
    assert speedups["stencil"][3] < speedups["matvec"][3]
