"""Residency sweep: ledger-planned data movement vs the seed flat rate.

Runs the paper's Fig. 3 Jacobi iteration (ALIGN'd copy loop + block sweep
+ halo exchange) twice on the gpu4 node:

* **flat** — every loop standalone, no target-data region: the engine
  charges the pre-ledger per-chunk transfer bytes and the halo plan moves
  every boundary row, every iteration;
* **ledger** — the same loops inside a ``TargetDataRegion``: entry stages
  each array once per its placement plan, the engine charges only deltas
  against the residency ledger, and the halo plan elides boundary rows
  still valid on the receiver.

The ledger run must move strictly fewer bytes end to end — counting its
region staging and copy-back against it for fairness — while producing
bit-identical numerics, and the elided bytes must be visible in the run
meta, the metrics counters, and (for a dynamic-schedule case) as
``elided=`` arguments on individual transfer spans.
"""

import hashlib

import numpy as np

from repro.apps.jacobi import JacobiCopyKernel, JacobiSolver, JacobiSweepKernel
from repro.bench.figures import FigureResult
from repro.dist.distribution import DimDistribution
from repro.dist.policy import Align, Block
from repro.machine.presets import gpu4_node
from repro.memory.space import MapDirection
from repro.obs.span import SPAN_XFER_IN, SPAN_XFER_OUT
from repro.obs.tracer import Tracer
from repro.runtime.data_env import TargetDataRegion
from repro.runtime.halo import plan_halo_exchange
from repro.runtime.runtime import HompRuntime
from repro.util.ranges import IterRange
from repro.util.tables import render_table

N = 64
ITERS = 6


def _checksum(arr: np.ndarray) -> str:
    return hashlib.blake2b(
        np.ascontiguousarray(arr).tobytes(), digest_size=16
    ).hexdigest()


def _moved_counter(tracer: Tracer) -> float:
    counters = tracer.metrics.snapshot()["counters"]
    return sum(v for k, v in counters.items() if k.startswith("bytes_moved"))


def _elided_counter(tracer: Tracer) -> float:
    counters = tracer.metrics.snapshot()["counters"]
    return sum(v for k, v in counters.items() if k.startswith("bytes_elided"))


def _loops(solver: JacobiSolver):
    """One Jacobi iteration's kernels, rebuilt fresh like the solver does."""
    copy_k = JacobiCopyKernel(solver.u, solver.uold)
    copy_k.set_partition("u", Block())
    copy_k.set_partition("uold", Block())
    sweep_k = JacobiSweepKernel(
        solver.u, solver.uold, solver.f,
        ax=solver.ax, ay=solver.ay, b=solver.b, omega=solver.omega,
    )
    return copy_k, sweep_k


def run_flat() -> dict:
    """Seed behaviour: standalone loops, flat per-chunk transfer charges."""
    solver = JacobiSolver(N, seed=7)
    rt = HompRuntime(gpu4_node())
    tracer = Tracer()
    ndev = len(rt.machine)
    row_dist = DimDistribution.from_policy(Block(), IterRange(0, N), ndev)
    halo_bytes = 0
    for _ in range(ITERS):
        copy_k, sweep_k = _loops(solver)
        rt.parallel_for(copy_k, schedule=Align("u"), tracer=tracer)
        exchange = plan_halo_exchange(
            rt.machine, row_dist, width=1, row_bytes=solver.m * 8
        )
        halo_bytes += exchange.total_bytes
        rt.parallel_for(sweep_k, schedule="BLOCK", tracer=tracer)
        # Defensive post-sweep refresh: without a ledger the planner
        # cannot prove uold is unchanged, so it pays full price again.
        refresh = plan_halo_exchange(
            rt.machine, row_dist, width=1, row_bytes=solver.m * 8
        )
        halo_bytes += refresh.total_bytes
    return {
        "engine_bytes": _moved_counter(tracer),
        "halo_bytes": halo_bytes,
        "staged_bytes": 0,
        "elided_bytes": _elided_counter(tracer),
        "checksum": _checksum(solver.u),
    }


def run_ledger() -> dict:
    """Same loops through a target-data region and the residency ledger."""
    solver = JacobiSolver(N, seed=7)
    rt = HompRuntime(gpu4_node())
    tracer = Tracer()
    region = TargetDataRegion(
        runtime=rt,
        maps={
            "f": (solver.f, MapDirection.TO),
            "u": (solver.u, MapDirection.TOFROM),
            "uold": (solver.uold, MapDirection.ALLOC),
        },
        partitioned=frozenset({"f", "u", "uold"}),
    )
    engine_moved = 0.0
    engine_elided = 0.0
    halo_bytes = 0
    halo_elided = 0
    with region:
        ids = region._ids
        submachine = rt.machine.subset(ids)
        row_dist = DimDistribution.from_policy(
            Block(), IterRange(0, N), len(ids)
        )
        # Fairness: charge the region's one-time staging against the
        # ledger run. BLOCK placement stages each copies-in array exactly
        # once across the devices; the TOFROM array drains once at exit.
        staged = solver.f.nbytes + solver.u.nbytes  # entry: f TO, u TOFROM
        staged += solver.u.nbytes                   # exit: u copy-back
        for _ in range(ITERS):
            copy_k, sweep_k = _loops(solver)
            r1 = region.parallel_for(copy_k, schedule=Align("u"), tracer=tracer)
            exchange = plan_halo_exchange(
                submachine, row_dist, width=1, row_bytes=solver.m * 8,
                residency=region.residency, array="uold",
            )
            halo_bytes += exchange.total_bytes
            halo_elided += exchange.elided_bytes
            r2 = region.parallel_for(sweep_k, schedule="BLOCK", tracer=tracer)
            # The same defensive refresh: the sweep never writes uold, so
            # the ledger proves every boundary row still valid on its
            # receiver and the whole exchange is elided.
            refresh = plan_halo_exchange(
                submachine, row_dist, width=1, row_bytes=solver.m * 8,
                residency=region.residency, array="uold",
            )
            halo_bytes += refresh.total_bytes
            halo_elided += refresh.elided_bytes
            for r in (r1, r2):
                engine_moved += r.meta["residency"]["bytes_moved"]
                engine_elided += r.meta["residency"]["bytes_elided"]
    return {
        "engine_bytes": engine_moved,
        "halo_bytes": halo_bytes,
        "staged_bytes": staged,
        "elided_bytes": engine_elided,
        "halo_elided": halo_elided,
        "metric_moved": _moved_counter(tracer),
        "metric_elided": _elided_counter(tracer),
        "checksum": _checksum(solver.u),
    }


def run_dynamic_spans() -> list:
    """A dynamic-schedule region offload whose spans carry ``elided=``.

    Maps only ``u``/``uold`` so the sweep's ``f`` operand stays outside
    the ledger: each chunk pays flat bytes for ``f`` (the transfer span
    exists) while its staged operands are elided (the span carries the
    ``elided=`` argument).
    """
    solver = JacobiSolver(N, seed=7)
    rt = HompRuntime(gpu4_node())
    tracer = Tracer()
    region = TargetDataRegion(
        runtime=rt,
        maps={
            "u": (solver.u, MapDirection.TOFROM),
            "uold": (solver.uold, MapDirection.ALLOC),
        },
        partitioned=frozenset({"u", "uold"}),
    )
    with region:
        copy_k, sweep_k = _loops(solver)
        region.parallel_for(copy_k, schedule=Align("u"), tracer=tracer)
        region.parallel_for(sweep_k, schedule="SCHED_DYNAMIC", tracer=tracer)
    return [
        s
        for name in (SPAN_XFER_IN, SPAN_XFER_OUT)
        for s in tracer.by_name(name)
        if dict(s.args).get("elided", 0) > 0
    ]


def build() -> FigureResult:
    flat = run_flat()
    ledger = run_ledger()
    rows = []
    for label, run in (("flat (seed)", flat), ("ledger", ledger)):
        total = run["engine_bytes"] + run["halo_bytes"] + run["staged_bytes"]
        rows.append([
            label,
            run["engine_bytes"] / 1e3,
            run["halo_bytes"] / 1e3,
            run["staged_bytes"] / 1e3,
            total / 1e3,
            run["elided_bytes"] / 1e3,
        ])
    text = render_table(
        ["run", "engine (kB)", "halo (kB)", "staged (kB)", "total (kB)",
         "elided (kB)"],
        rows,
        title=f"Jacobi {N}x{N}, {ITERS} iters: bytes moved, gpu4 node",
    )
    return FigureResult(
        name="residency_sweep", grid=None, text=text,
        extra={"flat": flat, "ledger": ledger},
    )


def test_residency_sweep(bench_once):
    result = bench_once(build, name="residency_sweep")
    print("\n" + result.text)
    flat, ledger = result.extra["flat"], result.extra["ledger"]

    flat_total = flat["engine_bytes"] + flat["halo_bytes"]
    ledger_total = (
        ledger["engine_bytes"] + ledger["halo_bytes"] + ledger["staged_bytes"]
    )
    # The headline acceptance bar: even charged for its staging and
    # copy-back, the planned run moves strictly fewer bytes than the seed
    # flat rate.
    assert ledger_total < flat_total
    # Elision is visible both in the run meta and the metrics counters.
    assert ledger["elided_bytes"] > 0
    assert ledger["metric_elided"] > 0
    assert ledger["metric_moved"] == ledger["engine_bytes"]
    # Repeat halo exchanges ride the ledger too.
    assert ledger["halo_elided"] > 0
    assert ledger["halo_bytes"] < flat["halo_bytes"]
    # The flat run elides nothing (bit-identity with the seed engine).
    assert flat["elided_bytes"] == 0
    # Numerics are unchanged by the data-placement layer.
    assert ledger["checksum"] == flat["checksum"]


def test_dynamic_schedule_spans_carry_elision():
    spans = run_dynamic_spans()
    assert spans, "no transfer span carried an elided= argument"
    for s in spans:
        args = dict(s.args)
        assert args["elided"] > 0
        assert args["bytes"] > 0  # partial elision: the span still moved data
