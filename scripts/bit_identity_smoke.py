"""Bit-identity smoke check for the virtual-time execution core.

Runs one fig5 cell (gpu4 node, paper axpy workload at a pinned reduced
scale, SCHED_DYNAMIC) on the simulator and compares the BLAKE2b checksum
of the pickled :class:`~repro.engine.trace.OffloadResult` against the
committed pre-refactor fixture.  Any change to the virtual-time engine
that perturbs the result — stage times, trace buckets, meta layout,
reduction value — fails this check.

Usage::

    PYTHONPATH=src python scripts/bit_identity_smoke.py            # compare
    PYTHONPATH=src python scripts/bit_identity_smoke.py --update   # rewrite

The fixture lives at ``tests/engine/fixtures/fig5_cell.blake2b`` and must
only be regenerated when a behaviour change is intended and documented.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from pathlib import Path

os.environ["REPRO_BENCH_CACHE"] = "off"

from repro.kernels.registry import paper_workload
from repro.machine.presets import gpu4_node
from repro.runtime.runtime import HompRuntime

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "tests" / "engine" / "fixtures" / "fig5_cell.blake2b"
)


def cell_checksum(warm_region: bool = False) -> str:
    """Checksum of the pinned fig5 cell's pickled OffloadResult.

    With ``warm_region=True`` the same runtime first opens, uses, and
    drains a target-data region — the cell that follows must still match
    the fixture (residency state must not leak into region-free runs).
    """
    rt = HompRuntime(gpu4_node(), seed=0)
    if warm_region:
        from repro.memory.space import MapDirection
        from repro.runtime.data_env import TargetDataRegion

        warm = paper_workload("axpy", scale=0.05, seed=0)
        maps = {
            name: (arr, MapDirection.TOFROM)
            for name, arr in warm.arrays.items()
        }
        with TargetDataRegion(
            runtime=rt, maps=maps, partitioned=frozenset(maps)
        ) as region:
            region.parallel_for(warm, schedule="SCHED_DYNAMIC")
        assert rt.ledger.empty, "region did not drain the residency ledger"
    kernel = paper_workload("axpy", scale=0.05, seed=0)
    result = rt.parallel_for(kernel, schedule="SCHED_DYNAMIC", cutoff_ratio=0.0)
    blob = pickle.dumps(result, protocol=4)
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def main(argv: list[str]) -> int:
    got = cell_checksum()
    if "--update" in argv:
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(got + "\n")
        print(f"fixture updated: {got}")
        return 0
    if not FIXTURE.exists():
        print(f"missing fixture {FIXTURE}; run with --update", file=sys.stderr)
        return 2
    want = FIXTURE.read_text().strip()
    if got != want:
        print(
            "bit-identity check FAILED:\n"
            f"  expected {want}\n"
            f"  got      {got}\n"
            "The virtual-time engine no longer reproduces the committed "
            "fig5 cell. If the change is intentional, regenerate with "
            "--update and explain why in the PR.",
            file=sys.stderr,
        )
        return 1
    after_region = cell_checksum(warm_region=True)
    if after_region != want:
        print(
            "bit-identity check FAILED after a drained target-data region:\n"
            f"  expected {want}\n"
            f"  got      {after_region}\n"
            "Residency-ledger state leaked into a region-free offload.",
            file=sys.stderr,
        )
        return 1
    print(f"bit-identity OK ({got})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
