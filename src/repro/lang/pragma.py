"""Whole-directive parser: the paper's Fig. 2 pragmas as strings.

Parses combined HOMP directives of the form::

    omp parallel target device(*) \\
        map(tofrom: y[0:n] partition([BLOCK])) \\
        map(to: x[0:n] partition([BLOCK]), a, n)
    omp parallel for distribute dist_schedule(target:[ALIGN(x)])

(the leading ``#pragma`` is optional).  The result is an
:class:`OffloadDirective` bundling the pieces the runtime needs: parallel
offloading flag, device selection text, maps, and the dist_schedule.
Clause order is free, as in OpenMP.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DirectiveSyntaxError
from repro.lang.dist_schedule import ParsedDistSchedule, parse_dist_schedule
from repro.lang.map_clause import ParsedMap, parse_map_clause
from repro.lang.stream_clause import ParsedStream, parse_stream_clause

__all__ = ["OffloadDirective", "parse_directive"]

_KNOWN_DIRECTIVES = {
    "parallel",
    "target",
    "for",
    "distribute",
    "data",
    "teams",
    "simd",
    "halo_exchange",
}

_CLAUSE_HEADS = (
    "device",
    "map",
    "dist_schedule",
    "reduction",
    "collapse",
    "shared",
    "num_threads",
    "halo_exchange",
    "stream",
)


@dataclass
class OffloadDirective:
    """A parsed HOMP directive."""

    directives: tuple[str, ...]
    device_clause: str | None = None
    maps: list[ParsedMap] = field(default_factory=list)
    dist_schedule: ParsedDistSchedule | None = None
    reduction: tuple[str, str] | None = None  # (op, var)
    collapse: int | None = None
    stream: ParsedStream | None = None
    other_clauses: dict[str, str] = field(default_factory=dict)

    @property
    def is_parallel_target(self) -> bool:
        """The ``parallel target`` composite of paper §III.4."""
        d = self.directives
        return "parallel" in d and "target" in d

    @property
    def is_data_region(self) -> bool:
        return "data" in self.directives


def _strip_pragma(text: str) -> str:
    t = text.strip()
    t = re.sub(r"\\\s*\n", " ", t)  # line continuations
    t = re.sub(r"\s+", " ", t)
    if t.startswith("#"):
        t = t[1:].strip()
    if t.startswith("pragma"):
        t = t[len("pragma"):].strip()
    if t.startswith("omp"):
        t = t[len("omp"):].strip()
    return t


def _take_clause(text: str) -> tuple[str, str, str]:
    """Pop one ``head(...)`` clause; returns (head, body, rest)."""
    m = re.match(r"^([a-z_]+)\s*\(", text)
    if not m:
        raise DirectiveSyntaxError("expected a clause", text=text)
    head = m.group(1)
    depth = 0
    for i in range(m.end() - 1, len(text)):
        ch = text[i]
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth == 0:
                return head, text[m.end(): i], text[i + 1:].strip()
    raise DirectiveSyntaxError("unbalanced clause parentheses", text=text)


def parse_directive(text: str) -> OffloadDirective:
    """Parse one HOMP directive string."""
    body = _strip_pragma(text)
    if not body:
        raise DirectiveSyntaxError("empty directive", text=text)

    directives: list[str] = []
    pos_text = body
    # Leading directive-name words (until the first clause head with parens).
    while pos_text:
        m = re.match(r"^([a-z_]+)", pos_text)
        if not m:
            break
        word = m.group(1)
        after = pos_text[m.end():].lstrip()
        if word in _CLAUSE_HEADS and after.startswith("("):
            break
        if word not in _KNOWN_DIRECTIVES:
            raise DirectiveSyntaxError(f"unknown directive {word!r}", text=text)
        directives.append(word)
        pos_text = after

    out = OffloadDirective(directives=tuple(directives))

    rest = pos_text.strip()
    seen_clauses: set[str] = set()
    while rest:
        # Directive words may be interleaved with clauses, as in Fig. 3's
        # "... reduction(+:error) distribute dist_schedule(...)".
        m = re.match(r"^([a-z_]+)", rest)
        if m:
            word = m.group(1)
            after = rest[m.end():].lstrip()
            is_clause = word in _CLAUSE_HEADS and after.startswith("(")
            if not is_clause and word in _KNOWN_DIRECTIVES:
                directives.append(word)
                out.directives = tuple(directives)
                rest = after
                continue
        head, clause_body, rest = _take_clause(rest)
        # Every clause but map() may appear at most once — a second
        # occurrence would silently overwrite the first, so name it.
        if head != "map" and head in seen_clauses:
            raise DirectiveSyntaxError(
                f"duplicate {head!r} clause", text=text
            )
        seen_clauses.add(head)
        if head == "device":
            out.device_clause = f"({clause_body})"
        elif head == "map":
            out.maps.extend(parse_map_clause(f"({clause_body})"))
        elif head == "dist_schedule":
            out.dist_schedule = parse_dist_schedule(f"({clause_body})")
        elif head == "reduction":
            if ":" not in clause_body:
                raise DirectiveSyntaxError("reduction needs 'op:var'", text=text)
            op, var = clause_body.split(":", 1)
            out.reduction = (op.strip(), var.strip())
        elif head == "collapse":
            try:
                out.collapse = int(clause_body.strip())
            except ValueError:
                raise DirectiveSyntaxError(
                    "collapse needs an integer", text=text
                ) from None
        elif head == "stream":
            out.stream = parse_stream_clause(clause_body)
        else:
            out.other_clauses[head] = clause_body.strip()
    return out
