"""Parser for the extended ``dist_schedule`` clause (paper §III.2).

Grammar: ``dist_schedule(modifier: [policy][, policy]...)`` where the
modifier is ``target`` (distribution across devices — the HOMP extension)
or ``teams`` (within-device, standard OpenMP semantics).  One policy per
collapsed loop dimension.  Valid target policies: the Table I set plus the
algorithm notations (``AUTO`` is resolved by the runtime's configured or
heuristically selected algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.policy import Policy, parse_policy
from repro.errors import DirectiveSyntaxError
from repro.lang.map_clause import _split_top_level

__all__ = ["ParsedDistSchedule", "parse_dist_schedule"]


@dataclass(frozen=True)
class ParsedDistSchedule:
    """A ``dist_schedule`` clause: modifier + per-loop-dim policies."""

    modifier: str  # "target" | "teams"
    policies: tuple[Policy, ...]


def parse_dist_schedule(text: str) -> ParsedDistSchedule:
    body = text.strip()
    if body.startswith("dist_schedule"):
        body = body[len("dist_schedule"):].strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    if ":" not in body:
        raise DirectiveSyntaxError(
            "dist_schedule needs a 'target:' or 'teams:' modifier", text=text
        )
    mod_s, rest = body.split(":", 1)
    modifier = mod_s.strip().lower()
    if modifier not in ("target", "teams"):
        raise DirectiveSyntaxError(
            f"unknown dist_schedule modifier {modifier!r}", text=text
        )
    tokens = []
    for raw in _split_top_level(rest.strip(), ","):
        t = raw.strip()
        if t.startswith("[") and t.endswith("]"):
            t = t[1:-1].strip()
        if t:
            tokens.append(t)
    if not tokens:
        raise DirectiveSyntaxError("dist_schedule lists no policies", text=text)
    return ParsedDistSchedule(
        modifier=modifier, policies=tuple(parse_policy(t) for t in tokens)
    )
