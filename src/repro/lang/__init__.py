"""HOMP language extensions as a parser front-end.

Python has no pragmas, so the paper's directive syntax is preserved as
strings parsed into the same objects the Python API constructs:

* ``device(...)`` specifiers (``0:*``, ``0:2,4:2``, ``0:*:NVGPU``),
* ``map(tofrom: y[0:n] partition([BLOCK]) halo(1,))`` clauses,
* ``dist_schedule(target:[AUTO])`` / ``dist_schedule(target:[ALIGN(x)])``,
* whole combined directives like the paper's Fig. 2 examples.
"""

from repro.lang.device_spec import DeviceSelector, parse_device_clause
from repro.lang.map_clause import ParsedMap, parse_map_clause
from repro.lang.dist_schedule import ParsedDistSchedule, parse_dist_schedule
from repro.lang.stream_clause import ParsedStream, parse_stream_clause
from repro.lang.pragma import OffloadDirective, parse_directive
from repro.lang.render import render_directive, render_map, render_dist_schedule

__all__ = [
    "DeviceSelector",
    "parse_device_clause",
    "ParsedMap",
    "parse_map_clause",
    "ParsedDistSchedule",
    "parse_dist_schedule",
    "ParsedStream",
    "parse_stream_clause",
    "OffloadDirective",
    "parse_directive",
    "render_directive",
    "render_map",
    "render_dist_schedule",
]
