"""Render directive objects back to HOMP pragma text.

The inverse of :func:`repro.lang.pragma.parse_directive`: programs can
build an :class:`~repro.lang.pragma.OffloadDirective` programmatically
(or obtain one from a parse) and serialise it to the paper's syntax.
``parse(render(d)) == d`` is property-tested over randomly generated
directives, which doubles as a fuzz test of the parser grammar.
"""

from __future__ import annotations

from repro.lang.dist_schedule import ParsedDistSchedule
from repro.lang.map_clause import ParsedMap
from repro.lang.pragma import OffloadDirective

__all__ = ["render_directive", "render_map", "render_dist_schedule"]


def render_map(m: ParsedMap) -> str:
    """One mapped item (without the ``map(direction:`` wrapper)."""
    out = m.name
    for s in m.sections:
        out += f"[{s.lower}:{s.extent}]"
    if m.policies and not m.is_scalar:
        out += " partition([" + "], [".join(str(p) for p in m.policies) + "])"
    if m.halo != (0, 0):
        out += f" halo({m.halo[0]},{m.halo[1]})"
    return out


def render_dist_schedule(d: ParsedDistSchedule) -> str:
    inner = ",".join(f"[{p}]" for p in d.policies)
    return f"dist_schedule({d.modifier}:{inner})"


def render_directive(d: OffloadDirective, *, pragma_prefix: bool = True) -> str:
    """Serialise a directive to HOMP pragma text (single line)."""
    parts: list[str] = []
    if pragma_prefix:
        parts.append("#pragma omp")
    else:
        parts.append("omp")
    parts.extend(d.directives)
    if d.device_clause:
        parts.append(f"device{d.device_clause}")
    # Group *consecutive* same-direction maps into one clause.  Global
    # by-direction grouping would reorder interleaved directions and
    # break the parse -> render -> parse round trip, which must
    # reproduce the map list exactly.
    runs: list = []
    for m in d.maps:
        if runs and runs[-1][0] is m.direction:
            runs[-1][1].append(m)
        else:
            runs.append((m.direction, [m]))
    for direction, items in runs:
        rendered = ", ".join(render_map(m) for m in items)
        parts.append(f"map({direction.value}: {rendered})")
    if d.reduction:
        parts.append(f"reduction({d.reduction[0]}:{d.reduction[1]})")
    if d.collapse is not None:
        parts.append(f"collapse({d.collapse})")
    if d.dist_schedule:
        parts.append(render_dist_schedule(d.dist_schedule))
    if d.stream is not None:
        if d.stream.window:
            parts.append(
                f"stream(batches={d.stream.batches}, "
                f"window={d.stream.window})"
            )
        else:
            parts.append(f"stream(batches={d.stream.batches})")
    for head, body in d.other_clauses.items():
        parts.append(f"{head}({body})")
    return " ".join(parts)
