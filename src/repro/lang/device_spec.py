"""Parser for the extended ``device(...)`` clause (paper §III.1).

Grammar:  ``device_specifier[, device_specifier]...`` where each specifier
is ``initial_devid[:nums][:dev_type_filter]``:

* ``nums`` is an integer count or ``*`` (all devices from the start id),
  defaulting to 1;
* ``dev_type_filter`` keeps only devices of that type from the expansion.

Legal examples from the paper: ``0:*`` (all devices), ``0, 2, 3, 5``,
``0:2, 4:2`` (-> 0,1,4,5), ``0:*:HOMP_DEVICE_NVGPU`` (all NVIDIA GPUs).
A bare ``*`` (as used in Fig. 2's ``device (*)``) is accepted as a synonym
for ``0:*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DirectiveSyntaxError
from repro.machine.spec import DeviceType, MachineSpec

__all__ = ["DeviceSelector", "parse_device_clause"]


@dataclass(frozen=True)
class DeviceSelector:
    """One ``initial_devid[:nums][:dev_type_filter]`` specifier."""

    initial: int
    count: int | None  # None means '*'
    type_filter: DeviceType | None

    def expand(self, machine: MachineSpec) -> list[int]:
        """Device ids this specifier selects on ``machine``."""
        if self.initial < 0 or self.initial >= len(machine):
            raise DirectiveSyntaxError(
                f"device id {self.initial} out of range for "
                f"machine with {len(machine)} devices"
            )
        if self.count is None:
            stop = len(machine)
        else:
            stop = self.initial + self.count
            if stop > len(machine):
                raise DirectiveSyntaxError(
                    f"device range {self.initial}:{self.count} exceeds "
                    f"machine size {len(machine)}"
                )
        ids = list(range(self.initial, stop))
        if self.type_filter is not None:
            ids = [i for i in ids if machine[i].dev_type is self.type_filter]
        return ids


def _parse_specifier(token: str) -> DeviceSelector:
    parts = [p.strip() for p in token.split(":")]
    if not 1 <= len(parts) <= 3 or not parts[0]:
        raise DirectiveSyntaxError("bad device specifier", text=token)
    if parts[0] == "*":
        # 'device(*)' shorthand for all devices
        if len(parts) > 1:
            raise DirectiveSyntaxError("bad device specifier", text=token)
        return DeviceSelector(initial=0, count=None, type_filter=None)
    try:
        initial = int(parts[0])
    except ValueError:
        raise DirectiveSyntaxError("device id must be an integer", text=token) from None

    count: int | None = 1
    type_filter: DeviceType | None = None
    if len(parts) >= 2:
        if parts[1] == "*":
            count = None
        else:
            try:
                count = int(parts[1])
            except ValueError:
                raise DirectiveSyntaxError(
                    "device count must be an integer or '*'", text=token
                ) from None
            if count < 1:
                raise DirectiveSyntaxError("device count must be >= 1", text=token)
    if len(parts) == 3:
        try:
            type_filter = DeviceType.parse(parts[2])
        except Exception:
            raise DirectiveSyntaxError("unknown device type filter", text=token) from None
    return DeviceSelector(initial=initial, count=count, type_filter=type_filter)


def parse_device_clause(text: str, machine: MachineSpec) -> list[int]:
    """Expand a full ``device(...)`` argument into sorted unique device ids."""
    body = text.strip()
    if body.startswith("device"):
        body = body[len("device"):].strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    if not body.strip():
        raise DirectiveSyntaxError("empty device clause", text=text)
    ids: list[int] = []
    for token in body.split(","):
        token = token.strip()
        if not token:
            raise DirectiveSyntaxError("empty device specifier", text=text)
        ids.extend(_parse_specifier(token).expand(machine))
    # Preserve first-mention order, drop duplicates.
    seen: set[int] = set()
    out: list[int] = []
    for i in ids:
        if i not in seen:
            seen.add(i)
            out.append(i)
    if not out:
        raise DirectiveSyntaxError(
            "device clause selects no devices on this machine", text=text
        )
    return out
