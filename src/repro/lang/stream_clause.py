"""``stream(batches=N, window=W)`` clause parsing (HSTREAM direction).

HSTREAM extends the offload pragma surface with a streaming clause: the
annotated loop is not one offload but a *sequence* of ``batches`` loop
instances over evolving data, where each steady-state batch refreshes a
sliding ``window`` of rows at the head of the mapped arrays.  The HOMP
runtime lowers the clause to a :class:`~repro.ir.ops.StreamOp` whose
persistent data region keeps device-resident state across batches.

Grammar (order-free keyword list, as in OpenMP clause bodies)::

    stream(batches=1000)
    stream(batches=1000, window=64)

``batches`` is required and must be >= 1; ``window`` defaults to 0 (a
static stream: the same data every batch) and must be >= 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DirectiveSyntaxError

__all__ = ["ParsedStream", "parse_stream_clause"]


@dataclass(frozen=True)
class ParsedStream:
    """A parsed ``stream(...)`` clause."""

    batches: int
    window: int = 0

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise DirectiveSyntaxError(
                f"stream batches must be >= 1, got {self.batches}"
            )
        if self.window < 0:
            raise DirectiveSyntaxError(
                f"stream window must be >= 0, got {self.window}"
            )


def parse_stream_clause(text: str) -> ParsedStream:
    """Parse the *body* of a ``stream(...)`` clause (no parens)."""
    body = text.strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1].strip()
    if not body:
        raise DirectiveSyntaxError("empty stream clause", text=text)
    fields: dict[str, int] = {}
    for item in body.split(","):
        item = item.strip()
        if "=" not in item:
            raise DirectiveSyntaxError(
                f"stream clause item {item!r} is not 'key=value'", text=text
            )
        key, _, value = item.partition("=")
        key = key.strip()
        if key not in ("batches", "window"):
            raise DirectiveSyntaxError(
                f"unknown stream clause key {key!r} "
                "(expected 'batches' or 'window')", text=text
            )
        if key in fields:
            raise DirectiveSyntaxError(
                f"duplicate stream clause key {key!r}", text=text
            )
        try:
            fields[key] = int(value.strip())
        except ValueError:
            raise DirectiveSyntaxError(
                f"stream {key} needs an integer, got {value.strip()!r}",
                text=text,
            ) from None
    if "batches" not in fields:
        raise DirectiveSyntaxError(
            "stream clause needs 'batches=N'", text=text
        )
    return ParsedStream(
        batches=fields["batches"], window=fields.get("window", 0)
    )
