"""Parser for extended ``map`` clauses (paper §III.3).

Grammar (one clause):

    map(direction: item[, item]...)

where each item is

    name[lo:extent][[lo:extent]...] [partition([policy][, policy]...)] [halo(lo[,hi])]

``partition`` takes one policy per array dimension (FULL, BLOCK, AUTO,
ALIGN(target[, ratio]), CYCLIC[(k)]); scalars have no sections and no
partition.  ``halo(1,)`` follows the paper's Jacobi example (Fig. 3): a
lower halo of 1 and an elided upper width meaning "same as lower".
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.dist.policy import Full, Policy, parse_policy
from repro.errors import DirectiveSyntaxError
from repro.memory.space import MapDirection

__all__ = ["ParsedMap", "parse_map_clause"]


@dataclass(frozen=True)
class ArraySection:
    """One ``[lower:extent]`` array section (strings: may be symbolic)."""

    lower: str
    extent: str


@dataclass(frozen=True)
class ParsedMap:
    """One mapped variable with its sections, partition and halo."""

    name: str
    direction: MapDirection
    sections: tuple[ArraySection, ...] = ()
    policies: tuple[Policy, ...] = ()
    halo: tuple[int, int] = (0, 0)

    @property
    def is_scalar(self) -> bool:
        return not self.sections


_NAME_RE = re.compile(r"^[A-Za-z_]\w*")
_SECTION_RE = re.compile(r"^\[\s*([^:\[\]]*)\s*:\s*([^:\[\]]*)\s*\]")


def _split_top_level(text: str, sep: str) -> list[str]:
    """Split on ``sep`` outside any bracket/paren nesting."""
    out: list[str] = []
    depth = 0
    cur: list[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth < 0:
                raise DirectiveSyntaxError("unbalanced brackets", text=text)
        if ch == sep and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if depth != 0:
        raise DirectiveSyntaxError("unbalanced brackets", text=text)
    out.append("".join(cur))
    return out


def _parse_halo(text: str) -> tuple[int, int]:
    body = text.strip()
    if not (body.startswith("(") and body.endswith(")")):
        raise DirectiveSyntaxError("halo expects (lo[,hi])", text=text)
    parts = [p.strip() for p in body[1:-1].split(",")]
    if len(parts) == 1:
        parts.append(parts[0])
    if len(parts) != 2:
        raise DirectiveSyntaxError("halo takes one or two widths", text=text)
    lo_s, hi_s = parts
    if lo_s == "" and hi_s == "":
        raise DirectiveSyntaxError("halo needs at least one width", text=text)
    # 'halo(1,)' means symmetric width 1 (the elided side mirrors the other).
    if lo_s == "":
        lo_s = hi_s
    if hi_s == "":
        hi_s = lo_s
    try:
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        raise DirectiveSyntaxError("halo widths must be integers", text=text) from None
    if lo < 0 or hi < 0:
        raise DirectiveSyntaxError("halo widths must be >= 0", text=text)
    return lo, hi


def _parse_item(text: str) -> ParsedMap | None:
    """Parse one mapped item; direction is filled in by the caller."""
    item = text.strip()
    if not item:
        return None
    m = _NAME_RE.match(item)
    if not m:
        raise DirectiveSyntaxError("expected variable name", text=text)
    name = m.group(0)
    rest = item[m.end():].strip()

    sections: list[ArraySection] = []
    while rest.startswith("["):
        sm = _SECTION_RE.match(rest)
        if not sm:
            raise DirectiveSyntaxError("bad array section", text=text)
        sections.append(ArraySection(sm.group(1).strip(), sm.group(2).strip()))
        rest = rest[sm.end():].strip()

    policies: tuple[Policy, ...] = ()
    halo = (0, 0)
    while rest:
        if rest.startswith("partition"):
            tail = rest[len("partition"):].strip()
            if not tail.startswith("("):
                raise DirectiveSyntaxError("partition expects (...)", text=text)
            body, rest = _take_parens(tail, text)
            # One policy per dimension, each optionally bracketed: the
            # paper writes both partition([BLOCK]) and
            # partition([ALIGN(loop1)], FULL).
            tokens = []
            for raw in _split_top_level(body.strip(), ","):
                t = raw.strip()
                if t.startswith("[") and t.endswith("]"):
                    t = t[1:-1].strip()
                if t:
                    tokens.append(t)
            if not tokens:
                raise DirectiveSyntaxError("empty partition", text=text)
            policies = tuple(parse_policy(t) for t in tokens)
        elif rest.startswith("halo"):
            tail = rest[len("halo"):].strip()
            body, rest = _take_parens(tail, text)
            halo = _parse_halo(f"({body})")
        else:
            raise DirectiveSyntaxError("unexpected token in map item", text=rest)
        rest = rest.strip()

    if sections and not policies:
        policies = tuple(Full() for _ in sections)
    if sections and len(policies) != len(sections):
        raise DirectiveSyntaxError(
            f"{len(policies)} partition policies for {len(sections)} "
            "array dimensions",
            text=text,
        )
    return ParsedMap(
        name=name,
        direction=MapDirection.TO,  # placeholder; caller overwrites
        sections=tuple(sections),
        policies=policies,
        halo=halo,
    )


def _take_parens(text: str, full: str) -> tuple[str, str]:
    """Return (contents, rest) for a leading parenthesised group."""
    if not text.startswith("("):
        raise DirectiveSyntaxError("expected '('", text=full)
    depth = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth == 0:
                return text[1:i], text[i + 1:].strip()
    raise DirectiveSyntaxError("unbalanced parentheses", text=full)


def parse_map_clause(text: str) -> list[ParsedMap]:
    """Parse ``map(direction: item, item, ...)`` into :class:`ParsedMap`s."""
    body = text.strip()
    if body.startswith("map"):
        body = body[len("map"):].strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    if ":" not in body:
        raise DirectiveSyntaxError("map clause needs 'direction:'", text=text)
    dir_s, items_s = body.split(":", 1)
    direction = MapDirection.parse(dir_s)
    out: list[ParsedMap] = []
    for token in _split_top_level(items_s, ","):
        parsed = _parse_item(token)
        if parsed is None:
            continue
        out.append(
            ParsedMap(
                name=parsed.name,
                direction=direction,
                sections=parsed.sections,
                policies=parsed.policies,
                halo=parsed.halo,
            )
        )
    if not out:
        raise DirectiveSyntaxError("map clause maps nothing", text=text)
    return out
