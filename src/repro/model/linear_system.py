"""Equal-completion-time partitioning (paper Eq. 1-3).

MODEL_1_AUTO and MODEL_2_AUTO both reduce to the same linear system: give
device ``i`` a chunk ``N_i`` so every device finishes at the same ``T_0``.
With an affine per-device time ``T_i(N_i) = c_i + N_i * p_i`` (fixed cost
``c_i`` — launch overhead and link latency — plus per-iteration cost
``p_i`` — compute and, for MODEL_2, per-byte transfer), the system

    c_i + N_i * p_i = T_0           for all participating i
    sum_i N_i       = N

has the closed form ``T_0 = (N + sum(c_i / p_i * p_i ... ))`` — concretely
``T_0 = (N + sum_i c_i r_i) / sum_i r_i`` with rates ``r_i = 1/p_i``.  A
device whose fixed cost alone exceeds ``T_0`` would be assigned negative
work; the solver drops such devices and re-solves on the active set (this
is also the mechanism behind the CUTOFF heuristic's "predicted
contribution").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["PartitionSolution", "solve_equal_time_partition"]


@dataclass(frozen=True)
class PartitionSolution:
    """Result of the equal-time partition.

    ``shares``   - fractional iteration counts per device (sum == n_iters);
                   dropped devices get 0.0.
    ``t0``       - the common predicted completion time, seconds.
    ``active``   - indices of devices that received work.
    """

    shares: tuple[float, ...]
    t0: float
    active: tuple[int, ...]

    def fractions(self) -> tuple[float, ...]:
        total = sum(self.shares)
        if total <= 0:
            return tuple(0.0 for _ in self.shares)
        return tuple(s / total for s in self.shares)


def solve_equal_time_partition(
    per_iter_times: Sequence[float],
    fixed_costs: Sequence[float],
    n_iters: int,
) -> PartitionSolution:
    """Solve the paper's Eq. 3 for affine device time models.

    ``per_iter_times[i]`` — seconds per iteration on device ``i`` (> 0).
    ``fixed_costs[i]``    — seconds of fixed overhead on device ``i`` (>= 0).
    """
    m = len(per_iter_times)
    if m == 0:
        raise ValueError("need at least one device")
    if len(fixed_costs) != m:
        raise ValueError("per_iter_times and fixed_costs length mismatch")
    if n_iters < 0:
        raise ValueError(f"n_iters must be >= 0, got {n_iters}")
    for i, (p, c) in enumerate(zip(per_iter_times, fixed_costs)):
        if p <= 0:
            raise ValueError(f"per_iter_times[{i}] must be > 0, got {p}")
        if c < 0:
            raise ValueError(f"fixed_costs[{i}] must be >= 0, got {c}")

    if n_iters == 0:
        return PartitionSolution(shares=tuple(0.0 for _ in range(m)), t0=0.0, active=())

    active = list(range(m))
    while True:
        rates = [1.0 / per_iter_times[i] for i in active]
        t0 = (n_iters + sum(fixed_costs[i] * r for i, r in zip(active, rates))) / sum(
            rates
        )
        # Devices whose fixed cost alone exceeds T0 would get negative work.
        drop = [i for i in active if fixed_costs[i] >= t0]
        if not drop:
            break
        # Never drop the last device: someone has to run the loop.
        if len(drop) == len(active):
            best = min(active, key=lambda i: fixed_costs[i] + n_iters * per_iter_times[i])
            active = [best]
            t0 = fixed_costs[best] + n_iters * per_iter_times[best]
            break
        active = [i for i in active if i not in drop]

    shares = [0.0] * m
    for i in active:
        shares[i] = (t0 - fixed_costs[i]) / per_iter_times[i]
    # Guard against tiny negative residue from float arithmetic.
    shares = [max(0.0, s) for s in shares]
    scale = n_iters / sum(shares)
    shares = [s * scale for s in shares]
    return PartitionSolution(
        shares=tuple(shares), t0=t0, active=tuple(i for i in active if shares[i] > 0)
    )
