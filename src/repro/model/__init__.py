"""Analytical models: Hockney transfers, roofline intensity, and the
loop-partitioning linear systems behind MODEL_1_AUTO / MODEL_2_AUTO."""

from repro.model.hockney import hockney_time, fit_hockney
from repro.model.roofline import (
    RooflinePoint,
    arithmetic_intensity,
    attainable_gflops,
    classify_intensity,
    IntensityClass,
)
from repro.model.kernel_model import KernelCosts
from repro.model.linear_system import solve_equal_time_partition, PartitionSolution

__all__ = [
    "hockney_time",
    "fit_hockney",
    "RooflinePoint",
    "arithmetic_intensity",
    "attainable_gflops",
    "classify_intensity",
    "IntensityClass",
    "KernelCosts",
    "solve_equal_time_partition",
    "PartitionSolution",
]
