"""Per-kernel cost descriptors consumed by the analytical schedulers.

A :class:`KernelCosts` bundles, for a chunk of ``n`` iterations of a given
loop, the quantities the paper's Table III names: FLOPs, device-memory
traffic (load/stores), and bus traffic to/from the device.  From these it
derives the Table IV ratios:

* ``MemComp``  = memory load/stores per unit of computation,
* ``DataComp`` = transferred bytes per unit of computation,

both normalised the way the paper normalises them — per *element
operation*, not per raw FLOP, so AXPY comes out at 1.5/1.5, Sum at 1/1,
matvec at ``1 + 0.5/N`` / ``0.5 + 1/N`` and so on.  Each kernel supplies
callables because the per-iteration work can depend on the problem shape
(matvec rows touch N elements each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.model.roofline import IntensityClass, classify_intensity

__all__ = ["KernelCosts"]


@dataclass(frozen=True)
class KernelCosts:
    """Analytic costs of one parallel loop.

    ``flops_of(n)``      - arithmetic operations in ``n`` iterations.
    ``mem_bytes_of(n)``  - device-memory bytes touched by ``n`` iterations.
    ``xfer_bytes_of(n)`` - bus bytes to move data for ``n`` iterations
                           (copy-in + copy-out for a discrete device).
    ``ops_of(n)``        - the normalisation unit for Table IV ratios
                           (element operations; defaults to ``flops_of``).
    """

    flops_of: Callable[[int], float]
    mem_bytes_of: Callable[[int], float]
    xfer_bytes_of: Callable[[int], float]
    elem_bytes: int = 8
    ops_of: Callable[[int], float] | None = None

    def _ops(self, n: int) -> float:
        fn = self.ops_of or self.flops_of
        return fn(n)

    def flops_per_iter(self, n_total: int) -> float:
        """Average FLOPs per iteration at problem size ``n_total``."""
        n = max(1, n_total)
        return self.flops_of(n) / n

    def mem_bytes_per_iter(self, n_total: int) -> float:
        n = max(1, n_total)
        return self.mem_bytes_of(n) / n

    def xfer_bytes_per_iter(self, n_total: int) -> float:
        n = max(1, n_total)
        return self.xfer_bytes_of(n) / n

    def mem_comp(self, n_total: int) -> float:
        """Table IV MemComp: memory accesses per element operation."""
        ops = self._ops(n_total)
        if ops <= 0:
            return 0.0
        return (self.mem_bytes_of(n_total) / self.elem_bytes) / ops

    def data_comp(self, n_total: int) -> float:
        """Table IV DataComp: transferred elements per element operation."""
        ops = self._ops(n_total)
        if ops <= 0:
            return 0.0
        return (self.xfer_bytes_of(n_total) / self.elem_bytes) / ops

    def intensity_class(self, n_total: int) -> IntensityClass:
        return classify_intensity(self.mem_comp(n_total), self.data_comp(n_total))
