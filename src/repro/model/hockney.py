"""Hockney "alpha-beta" communication model (paper ref [11]).

``T(n) = alpha + n / beta`` for an ``n``-byte transfer.  Besides the
forward model (used by :class:`repro.machine.Link`), this module provides a
least-squares *fit* of (alpha, beta) from measured (size, time) pairs —
the paper obtains its machine constants "through microbenchmark profiling",
and :func:`repro.bench.microbench.probe_link` uses this fit the same way.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["hockney_time", "fit_hockney"]


def hockney_time(nbytes: float, alpha: float, beta_bytes_per_s: float) -> float:
    """Transfer time in seconds for ``nbytes`` given latency and bandwidth."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if alpha < 0 or beta_bytes_per_s <= 0:
        raise ValueError("alpha must be >= 0 and beta > 0")
    if nbytes == 0:
        return 0.0
    return alpha + nbytes / beta_bytes_per_s


def fit_hockney(
    sizes: Sequence[float], times: Sequence[float]
) -> tuple[float, float]:
    """Least-squares fit of ``(alpha, beta_bytes_per_s)`` from measurements.

    Fits ``t = alpha + s * (1/beta)`` by linear regression on (size, time)
    pairs.  Returns ``alpha`` clamped at 0 (a tiny negative intercept is
    measurement noise, not causality violation).
    """
    s = np.asarray(sizes, dtype=np.float64)
    t = np.asarray(times, dtype=np.float64)
    if s.shape != t.shape or s.ndim != 1 or s.size < 2:
        raise ValueError("need >= 2 paired (size, time) measurements")
    if np.any(s < 0) or np.any(t < 0):
        raise ValueError("sizes and times must be >= 0")
    if np.allclose(s, s[0]):
        raise ValueError("sizes must span more than one value to fit bandwidth")
    design = np.stack([np.ones_like(s), s], axis=1)
    (alpha, inv_beta), *_ = np.linalg.lstsq(design, t, rcond=None)
    if inv_beta <= 0:
        raise ValueError("measurements imply non-positive bandwidth")
    return max(0.0, float(alpha)), float(1.0 / inv_beta)
