"""Roofline model (paper ref [30]) used by the algorithm-selection heuristic.

HOMP's selector (paper §IV.D, §VI.D) keys off "computational intensity
based on the roofline model": compute-intensive kernels get BLOCK (same
devices) or MODEL_1_AUTO (different devices); balanced kernels get
SCHED_DYNAMIC; data-intensive kernels get MODEL_2_AUTO.  This module turns
a kernel's MemComp/DataComp ratios into that three-way classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.machine.spec import DeviceSpec
from repro.util.units import gbs_to_bytes_per_s, gflops_to_flops

__all__ = [
    "RooflinePoint",
    "arithmetic_intensity",
    "attainable_gflops",
    "classify_intensity",
    "IntensityClass",
]


class IntensityClass(Enum):
    """Coarse kernel classes used by the paper's selection heuristics."""

    DATA_INTENSIVE = "data-intensive"
    BALANCED = "compute-data balanced"
    COMPUTE_INTENSIVE = "compute-intensive"


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """A kernel placed on a device's roofline."""

    intensity_flops_per_byte: float
    attainable_gflops: float
    ridge_point: float  # intensity where the device turns compute-bound
    memory_bound: bool


def arithmetic_intensity(flops: float, mem_bytes: float) -> float:
    """FLOPs per byte of memory traffic; inf for traffic-free kernels."""
    if flops < 0 or mem_bytes < 0:
        raise ValueError("flops and mem_bytes must be >= 0")
    if mem_bytes == 0:
        return float("inf")
    return flops / mem_bytes


def attainable_gflops(spec: DeviceSpec, intensity: float) -> RooflinePoint:
    """Classic roofline: min(peak, intensity * bandwidth) for one device."""
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    peak = spec.sustained_gflops
    bw_gbs = spec.mem_bandwidth_gbs
    ridge = gflops_to_flops(peak) / gbs_to_bytes_per_s(bw_gbs)
    attained = min(peak, intensity * bw_gbs)
    return RooflinePoint(
        intensity_flops_per_byte=intensity,
        attainable_gflops=attained,
        ridge_point=ridge,
        memory_bound=intensity < ridge,
    )


# Thresholds on DataComp (bus traffic per unit of computation, Table IV).
# The paper's evaluation groups its kernels exactly this way: axpy (1.5) and
# sum (1.0) are data-intensive; matvec (~0.5) is balanced; matmul (~0),
# stencil (1/13) and block matching (0.06) behave compute-intensive.
_DATA_INTENSIVE_DATACOMP = 0.75
_COMPUTE_INTENSIVE_DATACOMP = 0.1


def classify_intensity(mem_comp: float, data_comp: float) -> IntensityClass:
    """Bucket a kernel by the paper's Table IV characterisation.

    ``mem_comp``  - memory loads/stores per unit of computation (MemComp).
    ``data_comp`` - bus bytes moved per unit of computation (DataComp).
    The primary axis is DataComp: how much PCIe traffic each unit of
    computation drags along decides whether data movement dominates the
    offload.  MemComp breaks ties for kernels that stress device memory but
    not the bus (they count as balanced, not compute-intensive, since
    device-memory bandwidth still caps them).
    """
    if mem_comp < 0 or data_comp < 0:
        raise ValueError("ratios must be >= 0")
    if data_comp >= _DATA_INTENSIVE_DATACOMP:
        return IntensityClass.DATA_INTENSIVE
    if data_comp <= _COMPUTE_INTENSIVE_DATACOMP:
        if mem_comp >= _DATA_INTENSIVE_DATACOMP:
            return IntensityClass.BALANCED
        return IntensityClass.COMPUTE_INTENSIVE
    return IntensityClass.BALANCED
