"""Batch coalescing rules for the offload service.

Queued jobs that would each pay a full engine round-trip can instead ride
one :meth:`~repro.engine.batch.BatchEngine.run_many` call, which advances
all their timelines together as numpy array ops and — because the group
shares one workload — builds the (expensive) kernel inputs once and runs
the numeric execution once instead of once per job.

A job is *coalescible* when batching cannot change its bytes or lose a
side channel it asked for:

* its factory exposes a ``fingerprint()`` identity (the group key needs
  one, and sharing a kernel instance across jobs is only sound when the
  jobs verifiably build the same kernel),
* its policy is a concrete Table II notation whose scheduler is
  ``batch_vectorizable`` (dynamic/guided/work-stealing schedules are
  timing-dependent; ``"AUTO"`` resolves against the kernel, which does
  not exist yet at queue time),
* it carries no fault plan, no resilience override, no tracer, no event
  recording, and no serialized offload — each of those either perturbs
  per-cell state or expects per-run side channels.

Jobs coalesce only within a :func:`group_key` — same machine selection,
workload fingerprint, seed and verify flag — so a batch is exactly one
``run_grid`` row: one workload under several policies/cutoffs.
:func:`plan_group` then mirrors ``repro.bench.runner._run_batch_cells``'s
kernel-sharing rules, keeping coalesced results byte-identical to solo
runs (pinned by ``tests/service/test_determinism.py``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.runtime.runtime import OffloadSpec
from repro.sched.registry import make_scheduler

if TYPE_CHECKING:
    from repro.service.job import OffloadJob

__all__ = ["coalescible", "group_key", "plan_group"]

#: notation -> batch_vectorizable, resolved once per notation (scheduler
#: construction is cheap but the answer is a class attribute).
_VECTORIZABLE: dict[str, bool] = {}


def _vectorizable_policy(name: str) -> bool:
    known = _VECTORIZABLE.get(name)
    if known is None:
        try:
            known = bool(make_scheduler(name).batch_vectorizable)
        except Exception:
            known = False
        _VECTORIZABLE[name] = known
    return known


def coalescible(job: "OffloadJob") -> bool:
    """Whether ``job`` may share a ``run_many`` batch with compatible mates."""
    if getattr(job.factory, "fingerprint", None) is None:
        return False
    if not isinstance(job.policy, str):
        return False
    name = job.policy.strip()
    if not name or name.upper() == "AUTO":
        return False
    if job.trace or job.record_events or job.serialize_offload:
        return False
    if job.fault_plan is not None or job.resilience is not None:
        return False
    return _vectorizable_policy(name)


def group_key(job: "OffloadJob", ids: "tuple[int, ...]") -> "tuple | None":
    """Coalescing bucket for ``job`` on the normalised device selection.

    None marks the job un-coalescible.  Two jobs with equal keys build
    the same kernel (same fingerprint and seed) on the same submachine,
    so their batch may share one kernel instance.
    """
    if not coalescible(job):
        return None
    fp = json.dumps(job.factory.fingerprint(), sort_keys=True, default=str)
    return (tuple(ids), fp, job.seed, bool(job.verify))


def plan_group(jobs: "list[OffloadJob]") -> tuple[list[OffloadSpec], list[bool]]:
    """Specs for one coalesced batch, with per-cell numeric-execution flags.

    Mirrors the grid runner's sharing rules for a single-workload batch:
    the first cell builds the kernel and executes numerics; later cells
    reuse the instance with numerics skipped (the simulated timeline
    depends only on chunk sizes, and their results are byte-identical
    either way — arrays untouched, reduction None).  Reduction kernels
    execute every cell so each result carries its reduction value; a
    reduction kernel that also copies arrays out would double-apply them
    on a shared instance, so those get a fresh kernel per cell.
    """
    specs: list[OffloadSpec] = []
    executed: list[bool] = []
    shared = None
    for job in jobs:
        kernel = shared
        fresh = kernel is None
        if fresh:
            kernel = job.factory()
            shared = kernel
        if kernel.is_reduction:
            if any(m.direction.copies_out for m in kernel.effective_maps()):
                if not fresh:
                    kernel = job.factory()
            execute = True
        else:
            execute = fresh
        specs.append(
            OffloadSpec(
                kernel=kernel,
                schedule=job.policy,
                cutoff_ratio=job.cutoff_ratio,
                execute_numerically=execute,
            )
        )
        executed.append(execute)
    return specs, executed
