"""Reusable engine pool for the offload service.

Execution backends are sequentially reusable but never concurrently
shareable: :class:`~repro.engine.core.EngineBase` guards ``run()`` with a
run gate that raises :class:`~repro.errors.EngineBusyError` on overlap.
The pool turns that contract into throughput: up to ``size`` offloads run
at once, each on an engine it holds *exclusively* for the duration of the
lease, and engines are returned to a free list instead of being rebuilt
per job (engine construction is cheap, but reuse keeps the pool's
concurrency accounting honest and mirrors how a real device queue would
be held open).

Free engines are keyed by ``(backend, device-selection)`` because an
engine is bound to one submachine: the pool builds each engine over
``machine.subset(ids)`` — the *same* path ``parallel_for`` uses — so a
pooled run's machine (and therefore its result bytes) is identical to a
direct run's.  Per-run options (seed, numeric execution, fault plans,
tracers) are applied through the engine's ``configured()`` lease by
``parallel_for(engine=...)``, never baked into the pooled instance.

The pool is an asyncio object: ``acquire`` awaits a semaphore slot on the
event loop; the engine then runs on a worker thread while the loop keeps
dispatching.  All bookkeeping happens on the loop thread.
"""

from __future__ import annotations

from typing import Any

import asyncio

from repro.engine.core import make_backend, resolve_backend
from repro.machine.spec import MachineSpec

__all__ = ["EnginePool"]


class EnginePool:
    """At most ``size`` concurrently leased engines over one machine."""

    def __init__(self, machine: MachineSpec, *, size: int = 4):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.machine = machine
        self.size = size
        self._sem = asyncio.Semaphore(size)
        self._free: dict[tuple[str, tuple[int, ...]], list[Any]] = {}
        #: Engines ever constructed / leases ever granted / current and
        #: high-water concurrent leases (for tests and pool metrics).
        self.created = 0
        self.leases = 0
        self.active = 0
        self.max_active = 0

    @staticmethod
    def _key(backend: "str | type", ids: "tuple[int, ...]") -> tuple[str, tuple[int, ...]]:
        name = getattr(resolve_backend(backend), "backend_name", None)
        return (name or str(backend), tuple(ids))

    async def acquire(self, backend: "str | type", ids: "tuple[int, ...]") -> Any:
        """Lease an engine for ``(backend, ids)``; blocks on pool pressure.

        The returned engine is exclusively the caller's until it is
        handed back through :meth:`release` — the pool itself is what
        makes :class:`~repro.errors.EngineBusyError` unreachable.
        """
        await self._sem.acquire()
        key = self._key(backend, ids)
        free = self._free.get(key)
        if free:
            engine = free.pop()
        else:
            engine = make_backend(
                backend, self.machine.subset(list(ids))
            )
            self.created += 1
        self.leases += 1
        self.active += 1
        self.max_active = max(self.max_active, self.active)
        return engine

    def release(self, backend: "str | type", ids: "tuple[int, ...]",
                engine: Any) -> None:
        """Return a leased engine to the free list and free its slot."""
        self._free.setdefault(self._key(backend, ids), []).append(engine)
        self.active -= 1
        self._sem.release()

    def stats(self) -> dict[str, int]:
        return {
            "size": self.size,
            "created": self.created,
            "leases": self.leases,
            "active": self.active,
            "max_active": self.max_active,
        }
