"""Admission control and weighted-fair queueing for the offload service.

Two independent mechanisms share this module:

* :class:`AdmissionController` — decides, at submission time, whether a
  tenant may enqueue another job.  Three quota axes per tenant
  (:class:`TenantQuota`): a cap on jobs simultaneously queued-or-running
  (``max_in_flight``), a token-bucket submission rate (``rate`` jobs/s
  refill into a bucket of ``burst`` capacity), and a service-wide queue
  capacity shared by everyone.  Rejections raise
  :class:`~repro.errors.AdmissionError` with a stable ``reason`` label
  and a Retry-After-style hint — exact for rate rejections (the bucket
  knows when the next token lands), heuristic for the other two.

* :class:`WeightedFairQueue` — decides, at dispatch time, whose job runs
  next.  Classic stride scheduling: each tenant carries a *pass* value
  advanced by ``1/weight`` per served job; the dequeue picks the lowest
  pass (ties broken by tenant name, so the order is deterministic).  A
  tenant going idle and returning resumes at the queue's virtual time
  instead of its stale pass, so sleepers cannot hoard service credit.

The controller takes an injectable monotonic ``clock`` so tests drive
token refill deterministically.  Neither class is thread-safe on its
own; the service mutates both only from its event-loop thread.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import AdmissionError

__all__ = ["TenantQuota", "AdmissionController", "WeightedFairQueue"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits and fair-share weight.

    ``rate`` is the sustained submission rate in jobs/second (``inf`` =
    unmetered); ``burst`` is the token-bucket capacity — how many jobs a
    quiet tenant may submit back to back before the rate applies.
    ``weight`` only shapes *dequeue* order (a weight-2 tenant is served
    twice as often as a weight-1 tenant under saturation); it never
    admits or rejects anything.
    """

    max_in_flight: int = 64
    rate: float = math.inf
    burst: int = 64
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError(
                f"quota max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if not self.rate > 0:
            raise ValueError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")
        if not self.weight > 0:
            raise ValueError(f"quota weight must be > 0, got {self.weight}")


class _TokenBucket:
    """One tenant's submission-rate bucket (lazy refill on take)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def try_take(self, now: float) -> float:
        """0.0 when a token was taken, else seconds until one refills."""
        if math.isinf(self.rate):
            return 0.0
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Quota gate in front of the service queue.

    ``admit(tenant)`` either records one more in-flight job for the
    tenant or raises :class:`~repro.errors.AdmissionError`; every
    admitted job must eventually be paired with one ``release(tenant)``
    (the service does this on completion, failure, or cache hit).
    ``queue_capacity`` bounds the *total* number of admitted-but-
    unfinished jobs across all tenants.
    """

    #: Retry-After hint for the heuristic (non-rate) rejections: the
    #: controller cannot know when a slot frees, so it suggests a short
    #: constant backoff.
    DEFAULT_RETRY_HINT_S = 0.05

    def __init__(
        self,
        *,
        quotas: "dict[str, TenantQuota] | None" = None,
        default_quota: TenantQuota | None = None,
        queue_capacity: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        retry_hint_s: float = DEFAULT_RETRY_HINT_S,
    ):
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.queue_capacity = queue_capacity
        self.clock = clock
        self.retry_hint_s = float(retry_hint_s)
        self._quotas = dict(quotas or {})
        self._default = default_quota or TenantQuota()
        self._buckets: dict[str, _TokenBucket] = {}
        self._in_flight: dict[str, int] = {}
        self.rejections = 0

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default)

    def in_flight(self, tenant: str) -> int:
        return self._in_flight.get(tenant, 0)

    def total_in_flight(self) -> int:
        return sum(self._in_flight.values())

    def admit(self, tenant: str) -> None:
        """Admit one job for ``tenant`` or raise :class:`AdmissionError`.

        Checks run cheapest-first and in increasing specificity: the
        shared queue capacity, the tenant's in-flight cap, then its rate
        bucket — a rate token is only consumed if the other gates pass.
        """
        quota = self.quota(tenant)
        if self.total_in_flight() >= self.queue_capacity:
            self.rejections += 1
            raise AdmissionError(
                f"service queue is full ({self.queue_capacity} jobs "
                f"admitted); retry in {self.retry_hint_s}s",
                tenant=tenant,
                reason="queue_full",
                retry_after_s=self.retry_hint_s,
            )
        held = self._in_flight.get(tenant, 0)
        if held >= quota.max_in_flight:
            self.rejections += 1
            raise AdmissionError(
                f"tenant {tenant!r} already has {held} jobs in flight "
                f"(quota {quota.max_in_flight}); retry in "
                f"{self.retry_hint_s}s",
                tenant=tenant,
                reason="in_flight",
                retry_after_s=self.retry_hint_s,
            )
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = _TokenBucket(
                quota.rate, quota.burst, self.clock()
            )
        wait = bucket.try_take(self.clock())
        if wait > 0.0:
            self.rejections += 1
            raise AdmissionError(
                f"tenant {tenant!r} exceeded its submission rate "
                f"({quota.rate}/s, burst {quota.burst}); retry in "
                f"{wait:.6f}s",
                tenant=tenant,
                reason="rate",
                retry_after_s=wait,
            )
        self._in_flight[tenant] = held + 1

    def release(self, tenant: str) -> None:
        """Return one in-flight slot (job finished, failed, or cached)."""
        held = self._in_flight.get(tenant, 0)
        if held <= 0:
            raise ValueError(
                f"release without matching admit for tenant {tenant!r}"
            )
        self._in_flight[tenant] = held - 1


class WeightedFairQueue:
    """Stride-scheduled multi-tenant FIFO.

    Items are FIFO *within* a tenant; *across* tenants each dequeue
    charges the serving tenant ``1/weight`` of pass and always picks the
    lowest-pass active tenant.  With weights 2:1 and both queues
    saturated, the weight-2 tenant is served exactly twice as often —
    deterministically, since ties break on the tenant name.

    ``priority_of`` (optional) maps a queued *item* to a positive
    priority that scales the serve charge: serving a priority-p item
    costs ``1/(weight * p)`` of pass instead of ``1/weight``, so a
    tenant whose jobs carry priority 4 advances its pass a quarter as
    fast and is dequeued four times as often under saturation.  Priority
    boosts the stride weight only — it never reorders a tenant's FIFO
    and never preempts.
    """

    def __init__(
        self,
        weight_of: "Callable[[str], float] | None" = None,
        priority_of: "Callable[[Any], float] | None" = None,
    ):
        self._weight_of = weight_of or (lambda tenant: 1.0)
        self._priority_of = priority_of or (lambda item: 1.0)
        self._queues: dict[str, deque] = {}
        self._pass: dict[str, float] = {}
        self._vtime = 0.0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth(self, tenant: str) -> int:
        q = self._queues.get(tenant)
        return len(q) if q is not None else 0

    def tenants(self) -> Iterable[str]:
        return sorted(t for t, q in self._queues.items() if q)

    def push(self, tenant: str, item: Any) -> None:
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q:
            # Re-activating tenant: join at the current virtual time, not
            # at a stale (low) pass earned while idle.
            self._pass[tenant] = max(self._pass.get(tenant, 0.0), self._vtime)
        q.append(item)

    def _serve_cost(self, item: Any) -> float:
        priority = self._priority_of(item)
        if not priority > 0:
            raise ValueError(
                f"queued item has non-positive priority {priority!r}"
            )
        return 1.0 / priority

    def _charge(self, tenant: str, cost: float = 1.0) -> None:
        weight = self._weight_of(tenant)
        if not weight > 0:
            raise ValueError(f"tenant {tenant!r} has non-positive weight")
        self._pass[tenant] = self._pass.get(tenant, 0.0) + cost / weight

    def pop(self) -> tuple[str, Any]:
        """Dequeue the next item fairly; raises IndexError when empty."""
        active = [t for t, q in self._queues.items() if q]
        if not active:
            raise IndexError("pop from an empty WeightedFairQueue")
        tenant = min(active, key=lambda t: (self._pass.get(t, 0.0), t))
        self._vtime = self._pass.get(tenant, 0.0)
        item = self._queues[tenant].popleft()
        self._charge(tenant, self._serve_cost(item))
        return tenant, item

    def remove(self, tenant: str, item: Any) -> bool:
        """Withdraw one specific queued item (identity match).

        Returns True when the item was found and removed.  Unlike
        :meth:`pop` / :meth:`pop_matching`, a removal charges no pass —
        the tenant was never *served*, so cancelling a queued job must
        not cost fair-share credit.
        """
        q = self._queues.get(tenant)
        if not q:
            return False
        for queued in q:
            if queued is item:
                q.remove(queued)
                return True
        return False

    def pop_matching(
        self, match: Callable[[Any], bool], limit: int
    ) -> list[tuple[str, Any]]:
        """Extract up to ``limit`` queued items satisfying ``match``.

        Used by the coalescer to gather batch mates for a just-popped
        head job.  Tenants are scanned in fair (pass, name) order and
        each extracted item charges its tenant exactly like a ``pop``,
        so batching never lets a tenant jump its fair share.
        """
        if limit <= 0:
            return []
        out: list[tuple[str, Any]] = []
        order = sorted(
            (t for t, q in self._queues.items() if q),
            key=lambda t: (self._pass.get(t, 0.0), t),
        )
        for tenant in order:
            if len(out) >= limit:
                break
            q = self._queues[tenant]
            kept: deque = deque()
            cost = 0.0
            for item in q:
                if len(out) < limit and match(item):
                    out.append((tenant, item))
                    cost += self._serve_cost(item)
                else:
                    kept.append(item)
            if cost:
                self._queues[tenant] = kept
                self._charge(tenant, cost)
        return out
