"""Job and result types for the offload service.

An :class:`OffloadJob` is everything one offload needs, deferred: a
zero-arg kernel *factory* (the kernel itself is built on the worker that
runs the job — kernels are mutable and must not be shared between jobs),
a scheduling policy, a tenant identity for admission and fairness, and
the optional knobs :meth:`~repro.runtime.runtime.HompRuntime.parallel_for`
accepts (CUTOFF, device selection, fault plan, tracing).

A :class:`JobResult` is the typed completion record: the
:class:`~repro.engine.trace.OffloadResult` (byte-identical to a direct
``parallel_for`` call), how the job was served (coalesced batch size,
cache hit, backend), wall-clock latency stamps, and the job's isolated
per-job :class:`~repro.obs.metrics.MetricsRegistry` (plus its
:class:`~repro.obs.Tracer` when tracing was requested — exportable
through the :mod:`repro.obs.export` writers).
"""

from __future__ import annotations

import asyncio
import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.trace import OffloadResult
from repro.errors import JobSpecError
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.obs.metrics import MetricsRegistry

__all__ = ["JobState", "OffloadJob", "JobResult", "JobHandle"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"


@dataclass
class OffloadJob:
    """One offload request, as submitted by a tenant.

    ``factory`` must build a *fresh* kernel on every call (runs mutate
    output arrays).  Factories that expose a ``fingerprint()`` identity
    (:class:`~repro.bench.workloads.WorkloadFactory`,
    :class:`~repro.service.loadgen.WorkloadTemplate`) unlock the sweep
    cache and batch coalescing; anonymous lambdas always run alone.

    ``policy`` is a paper Table II notation string, ``"AUTO"``, or a
    scheduler/Policy instance — exactly ``parallel_for``'s ``schedule``.
    ``tag`` is an opaque caller correlation id echoed on the result.

    ``priority`` multiplies the tenant's fair-share weight for *this
    job's* dequeue charge: a priority-4 job costs its tenant a quarter
    of the stride pass a priority-1 job does, so under saturation the
    tenant's high-priority jobs are served proportionally more often.
    It never preempts running work and never jumps the within-tenant
    FIFO.  ``deadline_s`` is a queue-residency budget: a job still
    undispatched ``deadline_s`` seconds after submission resolves with a
    typed ``EXPIRED`` result instead of running (handles never raise).
    """

    factory: Callable[[], LoopKernel]
    policy: Any = "AUTO"
    tenant: str = "default"
    tag: str = ""
    priority: float = 1.0
    deadline_s: float | None = None
    cutoff_ratio: "float | str" = 0.0
    seed: int = 0
    verify: bool = True
    devices: Any = None
    fault_plan: FaultPlan | None = None
    resilience: ResiliencePolicy | None = None
    trace: bool = False
    record_events: bool = False
    serialize_offload: bool = False

    def validate(self) -> None:
        """Reject a malformed job before admission (:class:`JobSpecError`).

        Shape-level checks only — device-selection and scheduler-notation
        errors surface from the runtime with their own typed errors.
        """
        if isinstance(self.factory, LoopKernel):
            raise JobSpecError(
                "job factory is a LoopKernel instance; pass a factory that "
                "builds one per run (kernels are mutated by execution)"
            )
        if not callable(self.factory):
            raise JobSpecError(
                f"job factory must be a zero-arg callable building a "
                f"LoopKernel, got {type(self.factory).__name__}"
            )
        if not isinstance(self.tenant, str) or not self.tenant:
            raise JobSpecError(
                f"job tenant must be a non-empty string, got {self.tenant!r}"
            )
        if self.cutoff_ratio != "auto":
            try:
                ratio = float(self.cutoff_ratio)
            except (TypeError, ValueError):
                raise JobSpecError(
                    f"job cutoff_ratio {self.cutoff_ratio!r} is not a "
                    "fraction or 'auto'"
                ) from None
            if not 0.0 <= ratio <= 1.0:
                raise JobSpecError(
                    f"job cutoff_ratio {ratio} is outside [0, 1]"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise JobSpecError(f"job seed must be an int, got {self.seed!r}")
        try:
            priority = float(self.priority)
        except (TypeError, ValueError):
            raise JobSpecError(
                f"job priority must be a positive number, got "
                f"{self.priority!r}"
            ) from None
        if not 0.0 < priority < float("inf"):
            raise JobSpecError(
                f"job priority must be positive and finite, got {priority}"
            )
        if self.deadline_s is not None:
            try:
                deadline = float(self.deadline_s)
            except (TypeError, ValueError):
                raise JobSpecError(
                    f"job deadline_s must be a positive number or None, "
                    f"got {self.deadline_s!r}"
                ) from None
            if not deadline > 0.0:
                raise JobSpecError(
                    f"job deadline_s must be > 0, got {deadline}"
                )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise JobSpecError(
                f"job fault_plan must be a FaultPlan or None, got "
                f"{type(self.fault_plan).__name__}"
            )


@dataclass
class JobResult:
    """Typed completion record for one job.

    ``result`` is None exactly when ``error`` is set.  ``batch_size`` is
    the number of jobs the serving batch carried (1 for a solo run);
    ``coalesced`` is True when the job shared a
    :meth:`~repro.engine.batch.BatchEngine.run_many` call with others.
    ``metrics`` is the job's own isolated registry (cache/coalesce
    markers, plus the full engine span-derived metrics when the job was
    traced); ``tracer`` carries the span stream for traced jobs.
    """

    job: OffloadJob
    state: JobState
    result: OffloadResult | None = None
    error: BaseException | None = None
    backend: str = "virtual"
    coalesced: bool = False
    batch_size: int = 1
    cache_hit: bool = False
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Any = None

    @property
    def ok(self) -> bool:
        return self.state is JobState.DONE

    @property
    def cancelled(self) -> bool:
        """Whether the job was cancelled while still queued."""
        return self.state is JobState.CANCELLED

    @property
    def expired(self) -> bool:
        """Whether the job's queue deadline elapsed before dispatch."""
        return self.state is JobState.EXPIRED

    @property
    def latency_s(self) -> float:
        """Submission-to-completion wall latency."""
        return max(0.0, self.finished_at - self.submitted_at)

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before an engine picked the job up."""
        return max(0.0, self.started_at - self.submitted_at)

    def unwrap(self) -> OffloadResult:
        """The offload result, re-raising the job's failure if it has one."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class JobHandle:
    """Awaitable handle to a submitted job.

    ``await handle`` (or ``await handle.wait()``) yields the
    :class:`JobResult` — always a result object, never an exception, so
    ``asyncio.gather`` over a fleet of handles cannot be torn down by one
    failed job.  Use :meth:`JobResult.unwrap` to re-raise failures.
    """

    __slots__ = ("job", "submitted_at", "_future", "_cancel")

    def __init__(self, job: OffloadJob, future: "asyncio.Future[JobResult]",
                 submitted_at: float):
        self.job = job
        self.submitted_at = submitted_at
        self._future = future
        #: Service-installed hook removing the job from the queue; None
        #: for handles constructed outside a service.
        self._cancel: "Callable[[], bool] | None" = None

    @property
    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        """Withdraw the job if it is still queued.

        Returns True when the job was removed from the service queue —
        the handle then resolves with a :class:`JobResult` in state
        ``CANCELLED`` carrying :class:`~repro.errors.JobCancelled` as its
        error (``await handle`` still never raises).  Returns False when
        the job already started running, finished, or the handle is not
        service-backed: dispatched work is never torn down mid-run.
        """
        if self._future.done() or self._cancel is None:
            return False
        return self._cancel()

    async def wait(self) -> JobResult:
        return await asyncio.shield(self._future)

    def __await__(self):
        return self.wait().__await__()
