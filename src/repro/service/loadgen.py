"""Deterministic load generator and benchmark harness for the service.

Traffic is *planned* before it is replayed: :func:`plan_traffic` expands
a :class:`TrafficSpec` into a concrete list of :class:`Arrival`\\ s using
one ``random.Random(seed)`` stream — seeded-Poisson inter-arrival gaps
punctuated by synchronized bursts, tenants and workloads drawn by
weight.  The same spec and seed always produce the same plan, job for
job, which is what lets the determinism suite compare a whole served
workload against direct ``parallel_for`` calls.

:func:`run_load` replays a plan against a running
:class:`~repro.service.service.OffloadService` (optionally honouring the
planned arrival times) and folds the outcome into a :class:`LoadReport`:
throughput, p50/p99 latency, admission rejections, coalescing and cache
counters, and a lost/duplicate check over the jobs' correlation tags.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.kernels.base import LoopKernel
from repro.kernels.registry import make_kernel
from repro.service.job import JobResult, OffloadJob

__all__ = [
    "WorkloadTemplate",
    "TrafficSpec",
    "Arrival",
    "LoadReport",
    "plan_traffic",
    "run_load",
]


@dataclass(frozen=True)
class WorkloadTemplate:
    """Picklable, fingerprintable kernel factory at an explicit size.

    The loadgen sibling of :class:`~repro.bench.workloads.WorkloadFactory`:
    where that one names a *paper* workload at bench scale, this one pins
    an exact iteration count, so service benchmarks can use kernels small
    enough to run tens of thousands of jobs.  The fingerprint keys the
    size directly (``n`` rather than ``scale``), so the two factories can
    never collide in the sweep cache.
    """

    kernel: str = "axpy"
    n: int = 4096
    seed: int = 0

    def __call__(self) -> LoopKernel:
        return make_kernel(self.kernel, self.n, seed=self.seed)

    def fingerprint(self) -> dict[str, Any]:
        return {"workload": self.kernel, "n": self.n, "seed": self.seed}


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a synthetic job stream.

    ``tenants`` maps tenant name -> draw weight.  ``templates`` and
    ``policies`` are drawn per job with the same RNG stream.  Arrivals
    are exponential with mean ``mean_interarrival_s``; every
    ``burst_every`` jobs, ``burst_size`` jobs land at the same instant (a
    thundering herd for the coalescer and the fairness machinery to
    absorb).  ``seed`` fixes the whole plan.
    """

    jobs: int = 1000
    seed: int = 0
    tenants: "dict[str, float] | None" = None
    templates: tuple[WorkloadTemplate, ...] = (WorkloadTemplate(),)
    policies: tuple[str, ...] = ("BLOCK", "MODEL_1_AUTO", "MODEL_2_AUTO")
    cutoff_ratio: float = 0.0
    verify: bool = True
    mean_interarrival_s: float = 0.0005
    burst_every: int = 50
    burst_size: int = 10

    def tenant_weights(self) -> dict[str, float]:
        return dict(self.tenants) if self.tenants else {"default": 1.0}


@dataclass(frozen=True)
class Arrival:
    """One planned submission: when, and what."""

    at_s: float
    job: OffloadJob


def plan_traffic(spec: TrafficSpec) -> list[Arrival]:
    """Expand ``spec`` into a deterministic arrival list (sorted by time)."""
    if spec.jobs < 1:
        raise ValueError(f"traffic spec needs >= 1 job, got {spec.jobs}")
    rng = random.Random(spec.seed)
    weights = spec.tenant_weights()
    names = sorted(weights)
    wvals = [weights[t] for t in names]
    arrivals: list[Arrival] = []
    t = 0.0
    burst_left = 0
    for i in range(spec.jobs):
        if spec.burst_every > 0 and i > 0 and i % spec.burst_every == 0:
            burst_left = spec.burst_size
        if burst_left > 0:
            burst_left -= 1  # burst jobs share the current arrival time
        elif spec.mean_interarrival_s > 0:
            t += rng.expovariate(1.0 / spec.mean_interarrival_s)
        tenant = rng.choices(names, weights=wvals, k=1)[0]
        template = spec.templates[rng.randrange(len(spec.templates))]
        policy = spec.policies[rng.randrange(len(spec.policies))]
        arrivals.append(
            Arrival(
                at_s=t,
                job=OffloadJob(
                    factory=template,
                    policy=policy,
                    tenant=tenant,
                    tag=f"job-{i}",
                    cutoff_ratio=spec.cutoff_ratio,
                    seed=template.seed,
                    verify=spec.verify,
                ),
            )
        )
    return arrivals


@dataclass
class LoadReport:
    """Outcome of one replayed plan."""

    jobs: int
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    lost: int = 0
    duplicated: int = 0
    duration_s: float = 0.0
    jobs_per_s: float = 0.0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    coalesced_jobs: int = 0
    batches: int = 0
    coalesce_ratio: float = 0.0
    cache_hits: int = 0
    per_tenant_completed: dict[str, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "duration_s": self.duration_s,
            "jobs_per_s": self.jobs_per_s,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "coalesced_jobs": self.coalesced_jobs,
            "batches": self.batches,
            "coalesce_ratio": self.coalesce_ratio,
            "cache_hits": self.cache_hits,
            "per_tenant_completed": dict(
                sorted(self.per_tenant_completed.items())
            ),
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


async def run_load(service, arrivals: list[Arrival], *,
                   pace: bool = False) -> LoadReport:
    """Replay a plan against a running service and report the outcome.

    ``pace=True`` honours the planned arrival times with real sleeps
    (latency-under-load experiments); ``pace=False`` submits as fast as
    the service admits (throughput experiments).  Over-quota submissions
    are counted as ``rejected`` and not retried — size the service's
    quotas for the plan, or expect rejections in the report.
    """
    import asyncio
    import time

    from repro.errors import AdmissionError

    t0 = time.monotonic()
    handles = []
    rejected = 0
    clock_base = arrivals[0].at_s if arrivals else 0.0
    for arrival in arrivals:
        if pace:
            lag = (arrival.at_s - clock_base) - (time.monotonic() - t0)
            if lag > 0:
                await asyncio.sleep(lag)
        try:
            handles.append(await service.submit(arrival.job))
        except AdmissionError:
            rejected += 1
    results: list[JobResult] = list(
        await asyncio.gather(*(h.wait() for h in handles))
    )
    duration = time.monotonic() - t0

    report = LoadReport(jobs=len(arrivals), rejected=rejected)
    seen: set[str] = set()
    latencies: list[float] = []
    for res in results:
        tag = res.job.tag
        if tag in seen:
            report.duplicated += 1
        seen.add(tag)
        if res.ok:
            report.completed += 1
            report.per_tenant_completed[res.job.tenant] = (
                report.per_tenant_completed.get(res.job.tenant, 0) + 1
            )
            latencies.append(res.latency_s)
            if res.coalesced:
                report.coalesced_jobs += 1
            if res.cache_hit:
                report.cache_hits += 1
        else:
            report.failed += 1
            if len(report.errors) < 10:
                report.errors.append(f"{tag}: {res.error!r}")
    expected = len(handles)
    report.lost = max(0, expected - len(results))
    report.duration_s = duration
    report.jobs_per_s = (
        report.completed / duration if duration > 0 else float(report.completed)
    )
    latencies.sort()
    report.p50_latency_s = _percentile(latencies, 0.50)
    report.p99_latency_s = _percentile(latencies, 0.99)
    report.batches = int(
        service.metrics.counter_value("service_batches")
    )
    report.coalesce_ratio = (
        report.coalesced_jobs / report.completed if report.completed else 0.0
    )
    return report
