"""The offload service: an asyncio front end over the execution engines.

One :class:`OffloadService` is bound to one machine description and runs
one dispatcher coroutine.  Submissions flow::

    submit(job) --admission--> weighted-fair queue --dispatcher-->
        sweep-cache fast path
        | engine-pool lease --worker thread--> parallel_for(engine=...)
        | batch coalescing  --worker thread--> parallel_for_many(engine=...)

Threading model: *all* service state — queue, admission counters,
aggregate metrics, sweep cache — is touched only on the event-loop
thread.  Worker threads (one small :class:`~concurrent.futures.
ThreadPoolExecutor`) run exactly the CPU-bound engine call on an engine
they hold exclusively through the pool lease, so the engines' run gate
(:class:`~repro.errors.EngineBusyError`) can never fire through the
service.

Determinism: a job served by the service yields an
:class:`~repro.engine.trace.OffloadResult` that pickles byte-identically
to the same arguments passed to
:meth:`~repro.runtime.runtime.HompRuntime.parallel_for` directly —
whether the job ran solo on a pooled engine, coalesced into a
``run_many`` batch, or was served from the sweep cache.  Wall-clock
*latency* stamps on the :class:`~repro.service.job.JobResult` envelope
are the only nondeterministic fields, and they live outside the result.

Cache interop: jobs on the default device selection with a
fingerprintable factory use *the same* :func:`repro.bench.cache.
result_key` fingerprints as :func:`repro.bench.runner.run_cell` — a grid
sweep warms the cache for the service and vice versa.  Traced jobs
bypass cache reads (a hit has no spans to give) but still populate,
mirroring ``run_grid``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.bench.cache import SweepCache, get_cache, result_key
from repro.bench.runner import verify_result
from repro.engine.core import resolve_backend
from repro.engine.trace import OffloadResult
from repro.errors import (
    JobCancelled,
    JobExpired,
    ServiceClosedError,
    ServiceError,
)
from repro.machine.spec import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, obs_enabled
from repro.runtime.runtime import HompRuntime
from repro.service.admission import AdmissionController, TenantQuota, WeightedFairQueue
from repro.service.coalesce import group_key, plan_group
from repro.service.job import JobHandle, JobResult, JobState, OffloadJob
from repro.service.pool import EnginePool

__all__ = ["OffloadService"]

#: Backends whose results may touch the sweep cache (mirrors
#: ``repro.bench.runner._cacheable_executor``: deterministic virtual-time
#: artifacts only).
_CACHEABLE_BACKENDS = ("virtual", "batch")


def _backend_name(backend: "str | type") -> str:
    return getattr(resolve_backend(backend), "backend_name", None) or str(backend)


class _Pending:
    """Internal per-job record threaded from submit to completion."""

    __slots__ = (
        "job", "handle", "ids", "cache_key", "group_key", "submitted_at",
        "started_at", "registry", "effective_trace",
    )

    def __init__(self, job: OffloadJob, handle: JobHandle,
                 ids: tuple[int, ...], cache_key: "str | None",
                 gkey: "tuple | None", submitted_at: float):
        self.job = job
        self.handle = handle
        self.ids = ids
        self.cache_key = cache_key
        self.group_key = gkey
        self.submitted_at = submitted_at
        self.started_at = submitted_at
        self.registry = MetricsRegistry()
        self.effective_trace = job.trace and obs_enabled()


class OffloadService:
    """Async multi-tenant offload server over one machine description.

    Use as an async context manager::

        async with OffloadService(machine, pool_size=4) as svc:
            handle = await svc.submit(OffloadJob(factory, policy="BLOCK"))
            result = (await handle).unwrap()

    ``backend`` names the execution backend for solo jobs (``"virtual"``
    by default); coalesced batches always run on ``"batch"`` (whose
    results are byte-identical to virtual's).  ``coalesce=False``
    disables batching entirely; ``max_batch`` caps how many queued mates
    one batch may absorb.  ``cache`` is a
    :class:`~repro.bench.cache.SweepCache` (None = the process-wide one;
    ``use_cache=False`` bypasses caching regardless).  ``clock`` is the
    monotonic time source for admission token buckets and latency stamps
    (injectable for deterministic tests).
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        backend: "str | type" = "virtual",
        pool_size: int = 4,
        coalesce: bool = True,
        max_batch: int = 16,
        queue_capacity: int = 1024,
        quotas: "dict[str, TenantQuota] | None" = None,
        default_quota: TenantQuota | None = None,
        cache: SweepCache | None = None,
        use_cache: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.machine = machine
        self.backend = backend
        self.pool_size = pool_size
        self.coalesce = coalesce
        self.max_batch = max_batch
        self._clock = clock
        self._cache = cache if cache is not None else get_cache()
        self._use_cache = use_cache
        self._admission = AdmissionController(
            quotas=quotas,
            default_quota=default_quota,
            queue_capacity=queue_capacity,
            clock=clock,
        )
        self._wfq = WeightedFairQueue(
            weight_of=lambda tenant: self._admission.quota(tenant).weight,
            priority_of=lambda rec: rec.job.priority,
        )
        self.metrics = MetricsRegistry()
        self._runtime = HompRuntime(machine)  # device-selection helper only
        self._running = False
        self._accepting = False
        self._unfinished = 0
        self._pool: EnginePool | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._inflight_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "OffloadService":
        if self._running:
            raise ServiceError("service is already running")
        self._pool = EnginePool(self.machine, size=self.pool_size)
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="repro-service"
        )
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._running = True
        self._accepting = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def drain(self) -> None:
        """Wait until every admitted job has completed."""
        assert self._idle is not None
        await self._idle.wait()

    async def close(self, *, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) finish queued work first.

        ``drain=False`` fails still-queued jobs with
        :class:`~repro.errors.ServiceClosedError` but always waits for
        jobs already on an engine.
        """
        if not self._running:
            return
        self._accepting = False
        if drain:
            await self.drain()
        assert self._dispatcher is not None and self._executor is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        while len(self._wfq):
            _, rec = self._wfq.pop()
            self._finish_error(
                rec,
                ServiceClosedError("service closed before the job ran"),
                backend=_backend_name(self.backend),
            )
        if self._inflight_tasks:
            await asyncio.gather(*self._inflight_tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._running = False

    async def __aenter__(self) -> "OffloadService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission ------------------------------------------------------------

    async def submit(self, job: OffloadJob) -> JobHandle:
        """Validate, admit and enqueue ``job``; returns an awaitable handle.

        Raises :class:`~repro.errors.JobSpecError` on a malformed job,
        :class:`~repro.errors.AdmissionError` when the tenant is over
        quota (with a Retry-After hint), and
        :class:`~repro.errors.ServiceClosedError` when the service is not
        accepting work.
        """
        if not (self._running and self._accepting):
            raise ServiceClosedError("service is not running")
        job.validate()
        ids = tuple(self._runtime.select_devices(job.devices))
        try:
            self._admission.admit(job.tenant)
        except Exception as exc:
            reason = getattr(exc, "reason", "error")
            self.metrics.inc(
                "service_admission_rejections", tenant=job.tenant,
                reason=reason,
            )
            raise
        now = self._clock()
        loop = asyncio.get_running_loop()
        handle = JobHandle(job, loop.create_future(), submitted_at=now)
        rec = _Pending(
            job, handle, ids,
            cache_key=self._cache_key(job),
            gkey=group_key(job, ids) if self.coalesce else None,
            submitted_at=now,
        )
        handle._cancel = lambda: self._cancel_queued(rec)
        self._wfq.push(job.tenant, rec)
        self._unfinished += 1
        assert self._idle is not None and self._wake is not None
        self._idle.clear()
        self.metrics.inc("service_jobs_submitted", tenant=job.tenant)
        self.metrics.set_gauge("service_queue_depth", float(len(self._wfq)))
        self._wake.set()
        return handle

    def _cache_key(self, job: OffloadJob) -> "str | None":
        """The job's sweep-cache key, or None when it must always run.

        Exactly the conditions under which the job is equivalent to a
        ``run_cell`` cell: fingerprintable factory, concrete policy
        string, the default all-devices selection, default engine flags,
        and a concrete cutoff.  The key itself is the same
        :func:`~repro.bench.cache.result_key` call ``run_cell`` makes.
        """
        if not self._use_cache or not self._cache.enabled:
            return None
        if job.devices is not None or job.record_events or job.serialize_offload:
            return None
        if not isinstance(job.policy, str) or job.cutoff_ratio == "auto":
            return None
        fingerprint = getattr(job.factory, "fingerprint", None)
        if fingerprint is None:
            return None
        return result_key(
            self.machine,
            fingerprint(),
            job.policy,
            cutoff_ratio=float(job.cutoff_ratio),
            seed=job.seed,
            verify=job.verify,
            fault_plan=job.fault_plan,
            resilience=job.resilience,
        )

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None and self._pool is not None
        while True:
            if not len(self._wfq):
                self._wake.clear()
                await self._wake.wait()
                continue
            _, rec = self._wfq.pop()
            self.metrics.set_gauge("service_queue_depth", float(len(self._wfq)))
            if self._deadline_elapsed(rec):
                self._expire(rec)
                continue
            backend = self.backend
            if rec.group_key is not None:
                backend = "batch"
            bname = _backend_name(backend)
            if (
                rec.cache_key is not None
                and not rec.effective_trace
                and bname in _CACHEABLE_BACKENDS
            ):
                hit = self._cache.get(rec.cache_key)
                if hit is not None:
                    self._finish_cached(rec, hit, backend=bname)
                    continue
            try:
                engine = await self._pool.acquire(backend, rec.ids)
            except asyncio.CancelledError:
                # The dispatcher was torn down while this job waited for a
                # slot: fail it visibly instead of losing it.
                self._finish_error(
                    rec,
                    ServiceClosedError("service closed before the job ran"),
                    backend=bname,
                )
                raise
            group = [rec]
            if rec.group_key is not None and self.max_batch > 1:
                # Mates are collected *after* the (possibly long) wait for
                # a pool slot, so a saturated service naturally forms
                # larger batches from the queue that built up meanwhile.
                key = rec.group_key
                mates = self._wfq.pop_matching(
                    lambda r: r.group_key == key, self.max_batch - 1
                )
                for _, mate in mates:
                    if self._deadline_elapsed(mate):
                        self._expire(mate)
                    else:
                        group.append(mate)
                self.metrics.set_gauge(
                    "service_queue_depth", float(len(self._wfq))
                )
            task = asyncio.create_task(
                self._run_group(group, backend, rec.ids, engine)
            )
            self._inflight_tasks.add(task)
            task.add_done_callback(self._inflight_tasks.discard)

    async def _run_group(self, group: list[_Pending], backend: "str | type",
                         ids: tuple[int, ...], engine: Any) -> None:
        assert self._pool is not None and self._executor is not None
        started = self._clock()
        for rec in group:
            rec.started_at = started
        bname = _backend_name(backend)
        tracer = None
        if len(group) == 1 and group[0].effective_trace:
            clock = "virtual" if bname in _CACHEABLE_BACKENDS else "wall"
            tracer = Tracer(clock=clock, metrics=group[0].registry)
        loop = asyncio.get_running_loop()
        try:
            if len(group) == 1:
                results = await loop.run_in_executor(
                    self._executor, self._execute_solo, group[0], engine,
                    tracer,
                )
            else:
                results = await loop.run_in_executor(
                    self._executor, self._execute_group, group, engine,
                )
        except asyncio.CancelledError:
            for rec in group:
                self._finish_error(
                    rec, ServiceClosedError("service shut down mid-run"),
                    backend=bname,
                )
            raise
        except BaseException as exc:
            for rec in group:
                self._finish_error(rec, exc, backend=bname)
        else:
            coalesced = len(group) > 1
            self.metrics.inc("service_engine_runs")
            if coalesced:
                self.metrics.inc("service_batches")
                self.metrics.observe(
                    "service_batch_size", float(len(group)),
                    buckets=(1, 2, 4, 8, 16, 32, 64),
                )
            for rec, result in zip(group, results):
                if (
                    rec.cache_key is not None
                    and bname in _CACHEABLE_BACKENDS
                ):
                    self._cache.put(rec.cache_key, result)
                self._finish_ok(
                    rec, result, backend=bname, coalesced=coalesced,
                    batch_size=len(group), tracer=tracer,
                )
        finally:
            self._pool.release(backend, ids, engine)

    # -- worker-thread execution ----------------------------------------------

    def _execute_solo(self, rec: _Pending, engine: Any,
                      tracer) -> list[OffloadResult]:
        """Run one job on its leased engine (worker thread)."""
        job = rec.job
        rt = HompRuntime(self.machine, seed=job.seed)
        kernel = job.factory()
        result = rt.parallel_for(
            kernel,
            schedule=job.policy,
            devices=list(rec.ids),
            cutoff_ratio=job.cutoff_ratio,
            record_events=job.record_events,
            serialize_offload=job.serialize_offload,
            fault_plan=job.fault_plan,
            resilience=job.resilience,
            tracer=tracer,
            engine=engine,
        )
        if job.verify:
            verify_result(kernel, result)
        return [result]

    def _execute_group(self, group: list[_Pending],
                       engine: Any) -> list[OffloadResult]:
        """Run one coalesced batch on a leased batch engine (worker thread)."""
        jobs = [rec.job for rec in group]
        specs, executed = plan_group(jobs)
        rt = HompRuntime(self.machine, seed=jobs[0].seed)
        results = rt.parallel_for_many(
            specs, devices=list(group[0].ids), engine=engine
        )
        ref = None
        for job, spec, execute, result in zip(jobs, specs, executed, results):
            if job.verify and execute:
                if ref is None:
                    ref = spec.kernel.reference()
                verify_result(spec.kernel, result, ref=ref)
        return results

    # -- completion (event-loop thread) ---------------------------------------

    def _finish_cached(self, rec: _Pending, result: OffloadResult,
                       *, backend: str) -> None:
        self.metrics.inc("service_cache_hits")
        rec.registry.inc("job_cache_hit")
        self._finish_ok(
            rec, result, backend=backend, coalesced=False, batch_size=1,
            tracer=None, cache_hit=True,
        )

    def _finish_ok(self, rec: _Pending, result: OffloadResult, *,
                   backend: str, coalesced: bool, batch_size: int,
                   tracer, cache_hit: bool = False) -> None:
        rec.registry.set_gauge("job_batch_size", float(batch_size))
        if coalesced:
            rec.registry.inc("job_coalesced")
            self.metrics.inc("service_coalesced_jobs")
        self.metrics.inc("service_jobs_completed", tenant=rec.job.tenant)
        self._resolve(
            rec,
            JobResult(
                job=rec.job,
                state=JobState.DONE,
                result=result,
                backend=backend,
                coalesced=coalesced,
                batch_size=batch_size,
                cache_hit=cache_hit,
                submitted_at=rec.submitted_at,
                started_at=rec.started_at,
                finished_at=self._clock(),
                metrics=rec.registry,
                tracer=tracer,
            ),
        )

    def _finish_error(self, rec: _Pending, error: BaseException, *,
                      backend: str) -> None:
        self.metrics.inc("service_jobs_failed", tenant=rec.job.tenant)
        self._resolve(
            rec,
            JobResult(
                job=rec.job,
                state=JobState.FAILED,
                result=None,
                error=error,
                backend=backend,
                submitted_at=rec.submitted_at,
                started_at=rec.started_at,
                finished_at=self._clock(),
                metrics=rec.registry,
            ),
        )

    def _deadline_elapsed(self, rec: _Pending) -> bool:
        deadline = rec.job.deadline_s
        return (
            deadline is not None
            and self._clock() - rec.submitted_at >= float(deadline)
        )

    def _expire(self, rec: _Pending) -> None:
        """Resolve a queue-deadline overrun with a typed EXPIRED result.

        Only undispatched jobs reach here: the deadline is checked as the
        dispatcher pops the record (and as coalescing gathers mates), so
        work already handed to an engine always runs to completion.  Like
        cancellation, expiry resolves the handle — it never raises — and
        releases the tenant's admission slot.
        """
        self.metrics.inc("service_jobs_expired", tenant=rec.job.tenant)
        self._resolve(
            rec,
            JobResult(
                job=rec.job,
                state=JobState.EXPIRED,
                result=None,
                error=JobExpired(
                    f"job (tenant {rec.job.tenant!r}, tag {rec.job.tag!r}) "
                    f"spent longer than its deadline of "
                    f"{float(rec.job.deadline_s)}s in the queue"
                ),
                backend=_backend_name(self.backend),
                submitted_at=rec.submitted_at,
                started_at=rec.submitted_at,
                finished_at=self._clock(),
                metrics=rec.registry,
            ),
        )

    def _cancel_queued(self, rec: _Pending) -> bool:
        """Withdraw a not-yet-dispatched job (the handle's cancel hook).

        Only jobs still sitting in the weighted-fair queue can be
        withdrawn; once the dispatcher popped the record the attempt
        returns False and the job runs to completion.  A successful
        cancellation resolves the handle with a ``CANCELLED``
        :class:`~repro.service.job.JobResult` (carrying
        :class:`~repro.errors.JobCancelled`, never raising it) and
        releases the tenant's admission slot like any other completion.
        """
        if not self._wfq.remove(rec.job.tenant, rec):
            return False
        self.metrics.inc("service_jobs_cancelled", tenant=rec.job.tenant)
        self.metrics.set_gauge("service_queue_depth", float(len(self._wfq)))
        self._resolve(
            rec,
            JobResult(
                job=rec.job,
                state=JobState.CANCELLED,
                result=None,
                error=JobCancelled(
                    f"job (tenant {rec.job.tenant!r}, tag {rec.job.tag!r}) "
                    "was cancelled while queued"
                ),
                backend=_backend_name(self.backend),
                submitted_at=rec.submitted_at,
                started_at=rec.submitted_at,
                finished_at=self._clock(),
                metrics=rec.registry,
            ),
        )
        return True

    def _resolve(self, rec: _Pending, outcome: JobResult) -> None:
        self._admission.release(rec.job.tenant)
        self._unfinished -= 1
        if self._unfinished == 0:
            assert self._idle is not None
            self._idle.set()
        if not rec.handle._future.done():
            rec.handle._future.set_result(outcome)

    # -- introspection ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def queue_depth(self) -> int:
        return len(self._wfq)

    def coalesce_ratio(self) -> float:
        """Fraction of completed jobs that rode a coalesced batch."""
        done = sum(
            c.value for c in self.metrics.counters()
            if c.name == "service_jobs_completed"
        )
        if not done:
            return 0.0
        return self.metrics.counter_value("service_coalesced_jobs") / done

    def pool_stats(self) -> dict[str, int]:
        return self._pool.stats() if self._pool is not None else {}
