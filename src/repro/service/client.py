"""Client-side helpers for talking to an :class:`~repro.service.service.
OffloadService`.

The service's admission gate is honest about *when* to come back: every
:class:`~repro.errors.AdmissionError` carries a ``retry_after_s`` hint —
exact for token-bucket rate rejections, heuristic for in-flight and
queue-capacity ones.  :func:`retry_submit` is the matching client loop:
it resubmits after sleeping the hinted time (floored at ``min_backoff_s``
and growing exponentially when the hint alone keeps losing the race),
capped at ``max_backoff_s``, and gives up with the last
:class:`~repro.errors.AdmissionError` after ``attempts`` tries.

Both the clock-free sleep and the backoff arithmetic are injectable and
deterministic, so tests drive the loop with a fake sleep and assert the
exact waits chosen.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.errors import AdmissionError
from repro.service.job import JobHandle, OffloadJob
from repro.service.service import OffloadService

__all__ = ["retry_submit"]


async def retry_submit(
    service: OffloadService,
    job: OffloadJob,
    *,
    attempts: int = 5,
    min_backoff_s: float = 0.001,
    max_backoff_s: float = 1.0,
    sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
) -> JobHandle:
    """Submit ``job``, honouring admission Retry-After hints.

    Each rejected attempt waits ``max(retry_after_s, min_backoff_s *
    2**rejections)`` seconds, capped at ``max_backoff_s`` — the hint is
    authoritative when it is the larger term (the rate bucket knows when
    the next token lands), while the growing floor keeps a herd of
    clients from retrying in lockstep on the heuristic hints.  Raises the
    final :class:`~repro.errors.AdmissionError` once ``attempts``
    submissions have been rejected; every other submission error
    (:class:`~repro.errors.JobSpecError`, :class:`~repro.errors.
    ServiceClosedError`) propagates immediately.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if min_backoff_s < 0 or max_backoff_s < min_backoff_s:
        raise ValueError(
            f"need 0 <= min_backoff_s <= max_backoff_s, got "
            f"{min_backoff_s} and {max_backoff_s}"
        )
    for attempt in range(attempts):
        try:
            return await service.submit(job)
        except AdmissionError as exc:
            if attempt == attempts - 1:
                raise
            wait = max(exc.retry_after_s, min_backoff_s * (2.0 ** attempt))
            await sleep(min(wait, max_backoff_s))
    raise AssertionError("unreachable")  # pragma: no cover
