"""Offload-as-a-service: an async multi-tenant job layer over the engines.

The rest of the library is call-and-wait: one caller builds a kernel,
picks a policy, and blocks in :meth:`~repro.runtime.runtime.HompRuntime.
parallel_for` until the offload resolves.  This package turns that into a
served resource.  Clients construct :class:`OffloadJob`s (a kernel
factory, a policy, a tenant identity) and ``await`` typed
:class:`JobResult`s from an :class:`OffloadService`, which

* admits or rejects each submission against per-tenant quotas (max
  in-flight jobs, a token-bucket submission rate, queue capacity) with a
  typed :class:`~repro.errors.AdmissionError` carrying a Retry-After
  hint,
* dequeues fairly across tenants (stride-based weighted fair queueing),
* multiplexes admitted jobs over a small pool of *reusable* execution
  backends (:class:`EnginePool`) driven from a thread pool, honouring the
  engines' exclusive-run contract (:class:`~repro.errors.EngineBusyError`
  can never fire through the pool),
* coalesces compatible queued jobs — same workload fingerprint, a
  vectorizable policy, no faults or tracing — into single
  :meth:`~repro.engine.batch.BatchEngine.run_many` batches, and
* serves repeat cells from / populates the sweep cache with exactly the
  keys :func:`repro.bench.runner.run_cell` uses.

The determinism contract carries over unchanged: every job's
:class:`~repro.engine.trace.OffloadResult` pickles byte-identically to
the result of calling ``parallel_for`` directly with the same arguments,
regardless of concurrency, pooling, coalescing or cache state (pinned by
``tests/service/test_determinism.py``).  See ``docs/SERVICE.md``.
"""

from repro.service.admission import (
    AdmissionController,
    TenantQuota,
    WeightedFairQueue,
)
from repro.service.client import retry_submit
from repro.service.coalesce import coalescible, group_key, plan_group
from repro.service.job import JobHandle, JobResult, JobState, OffloadJob
from repro.service.loadgen import (
    Arrival,
    LoadReport,
    TrafficSpec,
    WorkloadTemplate,
    plan_traffic,
    run_load,
)
from repro.service.pool import EnginePool
from repro.service.service import OffloadService

__all__ = [
    "OffloadJob",
    "JobResult",
    "JobHandle",
    "JobState",
    "TenantQuota",
    "AdmissionController",
    "WeightedFairQueue",
    "EnginePool",
    "OffloadService",
    "retry_submit",
    "coalescible",
    "group_key",
    "plan_group",
    "WorkloadTemplate",
    "TrafficSpec",
    "Arrival",
    "LoadReport",
    "plan_traffic",
    "run_load",
]
