"""Sweep-result cache: fingerprinted reuse of (machine, workload, policy) cells.

Simulated offloads are deterministic functions of their full configuration,
so a grid cell's :class:`~repro.engine.trace.OffloadResult` can be reused
whenever the configuration fingerprint matches.  The fingerprint covers
everything the result depends on:

* the machine description (``MachineSpec.to_dict()``, every device field),
* the workload identity — name, bench scale, RNG seed,
* the scheduling policy and CUTOFF ratio,
* the engine flags (numeric execution, offload serialisation, double
  buffering, event recording) and the runtime seed,
* the repro version (a code release invalidates old entries).

Two layers: an in-process dictionary (hit => deep copy, so callers may
mutate what they get back) and an optional on-disk pickle store under
``.bench_cache/`` that survives across processes and pytest sessions.
``REPRO_BENCH_CACHE`` selects the mode: ``on`` (default, both layers),
``mem`` (in-process only), ``off`` (no caching at all);
``REPRO_BENCH_CACHE_DIR`` relocates the disk layer.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro import __version__
from repro.engine.batch import BATCH_VERSION
from repro.engine.core import CORE_VERSION, STREAM_VERSION
from repro.ir.ops import IR_VERSION
from repro.memory.residency import DATA_VERSION
from repro.engine.trace import OffloadResult
from repro.faults.plan import FaultPlan, faults_enabled
from repro.faults.policy import ResiliencePolicy
from repro.machine.spec import MachineSpec

__all__ = [
    "CACHE_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_ENGINE_FLAGS",
    "CacheStats",
    "SweepCache",
    "cache_mode",
    "result_key",
    "get_cache",
    "reset_cache",
]

CACHE_ENV = "REPRO_BENCH_CACHE"
CACHE_DIR_ENV = "REPRO_BENCH_CACHE_DIR"
DEFAULT_CACHE_DIR = ".bench_cache"

#: Engine configuration the standard ``run_one`` path implies; callers that
#: deviate must pass their actual flags so the fingerprint separates them.
DEFAULT_ENGINE_FLAGS: dict[str, Any] = {
    "execute_numerically": True,
    "serialize_offload": False,
    "double_buffer": True,
    "record_events": False,
}


def cache_mode() -> str:
    """Resolved cache mode: ``"on"``, ``"mem"`` or ``"off"``."""
    v = os.environ.get(CACHE_ENV, "on").strip().lower()
    if v in ("off", "0", "false", "no"):
        return "off"
    if v in ("mem", "memory"):
        return "mem"
    return "on"


def result_key(
    machine: MachineSpec,
    workload_fp: Mapping[str, Any],
    policy: str,
    *,
    cutoff_ratio: float = 0.0,
    seed: int = 0,
    verify: bool = True,
    engine_flags: Mapping[str, Any] | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> str:
    """Stable hex fingerprint of one sweep cell.

    ``workload_fp`` is the workload's identity mapping (name, scale, seed —
    see ``WorkloadFactory.fingerprint``).  Any change to any field of the
    machine spec, the workload identity, the policy, the cutoff, the seed,
    the engine flags, or the fault configuration yields a different key.
    A cell run under a fault plan is a different experiment from the
    fault-free cell, so the plan's canonical dict (and the resilience
    policy's, when set) joins the payload.
    """
    payload = {
        "version": __version__,
        # Cached results are virtual-time artifacts; any change to the
        # execution core that could perturb them must bump CORE_VERSION.
        "core": CORE_VERSION,
        # Residency-ledger semantics (elision rules, placement derivation)
        # shape in-region timings the same way: DATA_VERSION keys them.
        "data": DATA_VERSION,
        # Batch-backend results are bit-identical to virtual ones and share
        # their keys; any change that could perturb them bumps this.
        "batch": BATCH_VERSION,
        # Directives execute through the offload IR (lower + passes); any
        # lowering or pass-semantics change that could perturb a lowered
        # program's results bumps IR_VERSION.
        "ir": IR_VERSION,
        # Cross-batch carry seeding (DeviceCarry) touches the same clock
        # paths one-shot runs use; stream-semantics changes that could
        # perturb any cached timing bump STREAM_VERSION.
        "stream": STREAM_VERSION,
        "machine": machine.to_dict(),
        "workload": dict(workload_fp),
        "policy": str(policy),
        "cutoff_ratio": float(cutoff_ratio),
        "seed": int(seed),
        "verify": bool(verify),
        "engine": dict(engine_flags if engine_flags is not None else DEFAULT_ENGINE_FLAGS),
    }
    # A plan only shapes the result while injection is live: an empty plan,
    # or any plan under REPRO_FAULTS=off, keys identically to fault-free.
    if fault_plan is not None and not fault_plan.empty and faults_enabled():
        payload["faults"] = {
            "plan": fault_plan.to_dict(),
            "resilience": (
                resilience.to_dict() if resilience is not None else None
            ),
        }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters for one :class:`SweepCache` instance."""

    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        return self.mem_hits + self.disk_hits

    def to_dict(self) -> dict[str, int]:
        """Flat counters, e.g. for the obs metrics export (sorted keys)."""
        return {
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "mem_hits": self.mem_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


@dataclass
class SweepCache:
    """Two-layer (in-process + on-disk) store of ``OffloadResult``s."""

    directory: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _mem: dict[str, OffloadResult] = field(default_factory=dict)

    def _dir(self) -> Path | None:
        """Disk layer root, or None when the mode keeps the cache in memory."""
        if cache_mode() != "on":
            return None
        if self.directory is not None:
            return self.directory
        return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))

    def _path(self, key: str) -> Path | None:
        root = self._dir()
        if root is None:
            return None
        return root / key[:2] / f"{key}.pkl"

    @property
    def enabled(self) -> bool:
        return cache_mode() != "off"

    def get(self, key: str) -> OffloadResult | None:
        """Cached result for ``key``, or None.

        Memory hits return a deep copy, so callers may freely mutate the
        result they receive; disk hits are fresh unpickles (and are
        promoted into the memory layer).  Unreadable disk entries count as
        misses.
        """
        if not self.enabled:
            return None
        hit = self._mem.get(key)
        if hit is not None:
            self.stats.mem_hits += 1
            return copy.deepcopy(hit)
        path = self._path(key)
        if path is not None and path.is_file():
            try:
                with path.open("rb") as fh:
                    result = pickle.load(fh)
            except Exception:
                self.stats.misses += 1
                return None
            if isinstance(result, OffloadResult):
                self.stats.disk_hits += 1
                self._mem[key] = copy.deepcopy(result)
                return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: OffloadResult) -> None:
        """Store ``result`` in every active layer (atomic disk write)."""
        if not self.enabled:
            return
        self.stats.puts += 1
        self._mem[key] = copy.deepcopy(result)
        path = self._path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full disk never fails the sweep itself.
            pass

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory layer (and optionally the disk layer) and reset stats."""
        self._mem.clear()
        self.stats = CacheStats()
        if disk:
            root = self._dir()
            if root is not None and root.is_dir():
                for p in root.glob("*/*.pkl"):
                    try:
                        p.unlink()
                    except OSError:
                        pass


_CACHE = SweepCache()


def get_cache() -> SweepCache:
    """The process-wide sweep cache."""
    return _CACHE


def reset_cache(*, disk: bool = False) -> None:
    """Clear the process-wide cache (tests, or after editing engine code)."""
    _CACHE.clear(disk=disk)
