"""Regenerate every paper figure/table from the command line.

Usage::

    python -m repro.bench                # all figures, default scale
    python -m repro.bench fig5 table5    # a subset
    REPRO_BENCH_SCALE=full python -m repro.bench   # paper-size runs
    python -m repro.bench fig5 --trace traces/     # + Chrome traces/metrics

Writes each rendered table to stdout and, with ``--out DIR``, to files.
``--trace DIR`` additionally exports observability artifacts (Chrome
trace-event JSON per grid cell, JSONL span streams, Prometheus metrics —
see docs/OBSERVABILITY.md) for the grid-based figures; ``REPRO_OBS=off``
disables it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine.core import resolve_backend
from repro.errors import OffloadError

from repro.bench.figures import (
    fig5_gpu4,
    fig6_breakdown,
    fig7_speedup,
    fig8_cpu_mic,
    fig9_full_node,
    table4_characteristics,
    table5_cutoff,
)

GENERATORS = {
    "table4": table4_characteristics,
    "fig5": fig5_gpu4,
    "fig6": fig6_breakdown,
    "fig7": fig7_speedup,
    "fig8": fig8_cpu_mic,
    "fig9": fig9_full_node,
    "table5": table5_cutoff,
}

#: Grid-based generators that accept ``trace_dir`` (obs export).
TRACEABLE = frozenset({"fig5", "fig6", "fig8", "fig9"})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        choices=[*GENERATORS, []],
        help=f"subset of {sorted(GENERATORS)} (default: all)",
    )
    parser.add_argument("--out", type=Path, help="also write tables to this directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace",
        type=Path,
        metavar="DIR",
        help=(
            "export observability artifacts (Chrome trace JSON, JSONL spans, "
            f"Prometheus metrics) for {sorted(TRACEABLE)} into DIR"
        ),
    )
    parser.add_argument(
        "--executor",
        metavar="NAME",
        help=(
            "execution backend for grid cells (see repro.engine.core "
            "backend_names(); default: the virtual-time simulator — the "
            "only backend whose timings reproduce the paper's figures; "
            "wall-clock backends bypass the sweep cache)"
        ),
    )
    args = parser.parse_args(argv)

    if args.executor is not None:
        # Fail fast against the live backend registry: a typo'd name dies
        # here with the registered names and alias->target pairs instead
        # of deep inside the first grid cell.
        try:
            resolve_backend(args.executor)
        except OffloadError as exc:
            parser.error(str(exc))

    targets = args.targets or list(GENERATORS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    exec_kwargs = {} if args.executor is None else {"executor": args.executor}
    for name in targets:
        fn = GENERATORS[name]
        if name == "table4":
            result = fn()
        elif args.trace is not None and name in TRACEABLE:
            result = fn(
                seed=args.seed, trace_dir=args.trace / name, **exec_kwargs
            )
        elif name in TRACEABLE:
            result = fn(seed=args.seed, **exec_kwargs)
        else:
            result = fn(seed=args.seed)
        print(result.text)
        print()
        if args.out:
            (args.out / f"{name}.txt").write_text(result.text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
