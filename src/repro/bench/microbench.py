"""Microbenchmark profiling of machine constants (paper §IV.B.2).

"For a machine, the last two machine factors are constants, each of which
is obtained through microbenchmark profiling in our experiment."  This
module plays that role against the simulated machine: probe a link with a
ladder of message sizes, fit Hockney's (alpha, beta) back out, and probe a
device's FLOP rate.  Round-tripping the fitted constants against the specs
is both a self-check of the machine model and the calibration path a user
would follow for a *new* machine description file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.interconnect import Link
from repro.machine.spec import DeviceSpec
from repro.model.hockney import fit_hockney

__all__ = ["LinkProbe", "probe_link", "probe_device_rate"]

DEFAULT_SIZES = tuple(2**k for k in range(10, 27, 2))  # 1 KiB .. 64 MiB


@dataclass(frozen=True)
class LinkProbe:
    """Fitted link constants from a message-size ladder."""

    sizes: tuple[int, ...]
    times_s: tuple[float, ...]
    alpha_s: float
    beta_bytes_per_s: float

    def bandwidth_gbs(self) -> float:
        return self.beta_bytes_per_s / 1e9


def probe_link(
    link: Link,
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    noise: float = 0.0,
    seed: int = 0,
) -> LinkProbe:
    """Measure transfer times over a size ladder and fit Hockney constants.

    ``noise`` adds multiplicative lognormal jitter to each measurement,
    modelling a real timing run; the fit should still recover the specs
    within a few percent (tested in ``tests/bench``).
    """
    rng = np.random.default_rng(seed)
    times = []
    for s in sizes:
        t = link.transfer_time(s)
        if noise > 0:
            t *= float(rng.lognormal(0.0, noise))
        times.append(t)
    alpha, beta = fit_hockney(list(sizes), times)
    return LinkProbe(
        sizes=tuple(sizes),
        times_s=tuple(times),
        alpha_s=alpha,
        beta_bytes_per_s=beta,
    )


def probe_device_rate(spec: DeviceSpec, *, flops: float = 1e9) -> float:
    """Apparent GFLOP/s of a compute-bound microbenchmark on a device."""
    if flops <= 0:
        raise ValueError(f"flops must be > 0, got {flops}")
    t = flops / (spec.sustained_gflops * 1e9) + spec.launch_overhead_s
    return flops / t / 1e9
