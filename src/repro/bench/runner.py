"""Grid runner: kernels x scheduling policies on a machine, with checks.

Every run verifies the numeric output against the kernel's serial
reference — a benchmark that silently computes the wrong answer is worse
than a failing one.

Independent (kernel, policy) cells can fan out over a process pool
(``run_grid(..., workers=N)``) and/or be served from the sweep cache
(:mod:`repro.bench.cache`); both paths return results bit-identical to
the serial uncached sweep, in the same deterministic order.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.bench.cache import SweepCache, get_cache, result_key
from repro.engine.core import resolve_backend
from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, obs_enabled
from repro.runtime.runtime import HompRuntime, OffloadSpec

__all__ = [
    "ALL_POLICIES",
    "WORKERS_ENV",
    "PolicyGrid",
    "SerialFallbackWarning",
    "run_one",
    "run_cell",
    "run_grid",
    "runner_metrics",
    "verify_result",
    "engine_run_count",
]

#: Default process-pool width for ``run_grid`` (0 = serial in-process).
WORKERS_ENV = "REPRO_BENCH_WORKERS"

#: The seven Table II algorithms in the order the figures list them.
ALL_POLICIES = (
    "BLOCK",
    "SCHED_DYNAMIC",
    "SCHED_GUIDED",
    "MODEL_1_AUTO",
    "MODEL_2_AUTO",
    "SCHED_PROFILE_AUTO",
    "MODEL_PROFILE_AUTO",
)


def verify_result(
    kernel: LoopKernel,
    result: OffloadResult,
    *,
    rtol=1e-9,
    ref: "dict[str, np.ndarray] | float | None" = None,
) -> None:
    """Assert the distributed output matches the serial reference.

    ``ref`` short-circuits the (possibly expensive) serial recomputation
    when the caller already holds ``kernel.reference()`` — the batch path
    verifies many cells of one workload against one reference.  The
    mapping is never mutated, so it is safe to share.
    """
    if ref is None:
        ref = kernel.reference()
    if isinstance(ref, dict):
        reduction_ref = ref.get("__reduction__")
        for name, expected in ref.items():
            if name == "__reduction__":
                continue
            got = kernel.arrays[name]
            if not np.allclose(got, expected, rtol=rtol, atol=1e-12):
                raise OffloadError(
                    f"{kernel.name}/{result.algorithm}: array {name!r} does not "
                    "match the serial reference"
                )
        if reduction_ref is not None and result.reduction is not None:
            if not np.isclose(result.reduction, reduction_ref, rtol=1e-6):
                raise OffloadError(
                    f"{kernel.name}/{result.algorithm}: reduction mismatch"
                )
    else:
        if result.reduction is None or not np.isclose(
            result.reduction, float(ref), rtol=1e-6
        ):
            raise OffloadError(
                f"{kernel.name}/{result.algorithm}: reduction "
                f"{result.reduction} != reference {ref}"
            )


#: Offloads actually executed by this process (cache hits don't count).
_ENGINE_RUNS = 0


def engine_run_count() -> int:
    """How many offloads this process has really executed (not cache hits)."""
    return _ENGINE_RUNS


def _backend_name(executor: "str | type | None") -> str | None:
    if executor is None:
        return "virtual"
    return getattr(resolve_backend(executor), "backend_name", None)


def _virtual_executor(executor: "str | type | None") -> bool:
    """Whether ``executor`` resolves to the deterministic virtual backend."""
    return _backend_name(executor) == "virtual"


def _cacheable_executor(executor: "str | type | None") -> bool:
    """Whether ``executor``'s results may touch the sweep cache.

    Only deterministic virtual-time results are cacheable: wall-clock
    timings differ run to run, so serving them from the sweep cache would
    be a lie.  The batch backend's results are bit-identical to virtual
    ones (pinned by the differential tests), so the two share cache keys —
    a batch sweep warms the cache for a later virtual one and vice versa.
    """
    return _backend_name(executor) in ("virtual", "batch")


def _is_batch_executor(executor: "str | type | None") -> bool:
    """Whether ``executor`` is the vectorized batch backend."""
    return _backend_name(executor) == "batch"


class SerialFallbackWarning(RuntimeWarning):
    """``run_grid`` was asked to parallelise but ran its cells serially."""


#: Process-wide counters for the grid runner (serial fallbacks, batch
#: routing); exported so sweeps can assert they took the path they meant.
_METRICS = MetricsRegistry()


def runner_metrics() -> MetricsRegistry:
    """The grid runner's process-wide metrics registry."""
    return _METRICS


def _note_serial_fallback(reason: str, ncells: int) -> None:
    """A parallel sweep quietly became serial: make it visible."""
    _METRICS.inc("run_grid_serial_fallbacks", 1.0, reason=reason)
    warnings.warn(
        f"run_grid: falling back to the serial in-process path for "
        f"{ncells} cell(s) ({reason}); pass picklable factories (e.g. "
        "WorkloadFactory) and workers>0, or executor='batch', for a "
        "parallel sweep",
        SerialFallbackWarning,
        stacklevel=3,
    )


def run_one(
    machine: MachineSpec,
    kernel: LoopKernel,
    policy: str,
    *,
    cutoff_ratio: float = 0.0,
    seed: int = 0,
    verify: bool = True,
    fault_plan: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
    tracer: Tracer | None = None,
    executor: "str | type | None" = None,
) -> OffloadResult:
    """One kernel under one policy, verified.

    ``fault_plan``/``resilience`` inject deterministic faults into the run
    (see :mod:`repro.faults`); verification still applies — a resilient
    run must produce the same answer as the fault-free one.  ``tracer``
    receives the run's span stream (:mod:`repro.obs`); tracing is a pure
    side channel — the returned result is identical with or without it.
    ``executor`` selects the execution backend (registry name or class;
    None = the virtual-time simulator).
    """
    global _ENGINE_RUNS
    _ENGINE_RUNS += 1
    rt = HompRuntime(machine, seed=seed)
    result = rt.parallel_for(
        kernel, schedule=policy, cutoff_ratio=cutoff_ratio,
        fault_plan=fault_plan, resilience=resilience, tracer=tracer,
        executor=executor,
    )
    if verify:
        verify_result(kernel, result)
    return result


def _cell_key(
    machine: MachineSpec,
    factory: Callable[[], LoopKernel],
    policy: str,
    *,
    cutoff_ratio: float,
    seed: int,
    verify: bool,
    fault_plan: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> str | None:
    """Cache key for one cell, or None when the factory is anonymous.

    Only factories that expose a ``fingerprint()`` identity (e.g.
    :class:`~repro.bench.workloads.WorkloadFactory`) are cacheable; an
    arbitrary lambda could close over anything, so its cells always run.
    """
    fingerprint = getattr(factory, "fingerprint", None)
    if fingerprint is None:
        return None
    return result_key(
        machine,
        fingerprint(),
        policy,
        cutoff_ratio=cutoff_ratio,
        seed=seed,
        verify=verify,
        fault_plan=fault_plan,
        resilience=resilience,
    )


def run_cell(
    machine: MachineSpec,
    factory: Callable[[], LoopKernel],
    policy: str,
    *,
    cutoff_ratio: float = 0.0,
    seed: int = 0,
    verify: bool = True,
    cache: SweepCache | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
    executor: "str | type | None" = None,
) -> OffloadResult:
    """One grid cell through the sweep cache.

    Consults the cache (keyed by the factory's fingerprint) before
    building the kernel at all — a hit skips input generation, execution
    and verification entirely.  Misses run exactly like ``run_one`` and
    populate the cache.  Non-virtual executors bypass the cache both ways
    (wall-clock results are not reproducible artifacts).
    """
    cache = get_cache() if cache is None else cache
    key = (
        _cell_key(
            machine, factory, policy,
            cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
            fault_plan=fault_plan, resilience=resilience,
        )
        if cache.enabled and _cacheable_executor(executor)
        else None
    )
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = run_one(
        machine, factory(), policy,
        cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
        fault_plan=fault_plan, resilience=resilience, executor=executor,
    )
    if key is not None:
        cache.put(key, result)
    return result


@dataclass
class PolicyGrid:
    """Results of a kernels x policies sweep."""

    machine_name: str
    policies: tuple[str, ...]
    #: results[kernel_name][policy] -> OffloadResult
    results: dict[str, dict[str, OffloadResult]] = field(default_factory=dict)

    def time_ms(self, kernel: str, policy: str) -> float:
        return self.results[kernel][policy].total_time_ms

    def best_policy(self, kernel: str) -> str:
        row = self.results[kernel]
        return min(row, key=lambda p: row[p].total_time_s)

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for kname, row in self.results.items():
            out.append([kname] + [row[p].total_time_ms for p in self.policies])
        return out


def _default_workers() -> int:
    """Pool width from ``REPRO_BENCH_WORKERS`` (0 = serial)."""
    try:
        return max(0, int(os.environ.get(WORKERS_ENV, "0")))
    except ValueError:
        return 0


def _pin_worker_threads() -> None:
    """Keep pool workers single-threaded in their BLAS/OpenMP layers.

    Under the default fork start method workers inherit the parent's pins
    (set in ``benchmarks/conftest.py`` before numpy loads); this makes the
    pin explicit for spawn-based platforms too.
    """
    for var in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
        "NUMEXPR_NUM_THREADS",
        "VECLIB_MAXIMUM_THREADS",
    ):
        os.environ.setdefault(var, "1")


def _pool_cell(
    machine: MachineSpec,
    factory: Callable[[], LoopKernel],
    policy: str,
    cutoff_ratio: float,
    seed: int,
    verify: bool,
    fault_plan: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
    executor: str | None = None,
) -> OffloadResult:
    """One cell in a pool worker (kernel built, run and verified there)."""
    return run_one(
        machine, factory(), policy,
        cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
        fault_plan=fault_plan, resilience=resilience, executor=executor,
    )


def run_grid(
    machine: MachineSpec,
    kernels: Mapping[str, Callable[[], LoopKernel]],
    *,
    policies: tuple[str, ...] = ALL_POLICIES,
    cutoff_ratio: float = 0.0,
    seed: int = 0,
    verify: bool = True,
    workers: int | None = None,
    cache: SweepCache | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
    trace_dir: str | Path | None = None,
    executor: "str | type | None" = None,
) -> PolicyGrid:
    """Sweep kernel factories over policies.

    ``kernels`` maps display name -> zero-arg factory returning a *fresh*
    kernel (runs mutate output arrays, so each cell needs its own).

    ``workers`` > 0 fans independent cells out over a process pool of that
    width; ``None`` reads ``REPRO_BENCH_WORKERS`` (default 0 = serial).
    Results are assembled in the declared kernel/policy order regardless
    of completion order, and each cell is bit-identical to what the serial
    path produces (cells share nothing; every worker builds its own kernel
    from the same seed).  Cells whose factories carry a cache fingerprint
    are served from / stored into the sweep cache; anonymous lambdas (and
    unpicklable factories, in pool mode) simply run in-process.

    ``executor`` selects the execution backend for every cell (registry
    name or class; None = the virtual-time simulator).  Only virtual
    results touch the sweep cache — other backends' cells always run.

    ``trace_dir`` enables observability (:mod:`repro.obs`): every cell
    runs freshly traced (cache reads are bypassed — a cache hit has no
    spans to give — but results still populate the cache, since traced
    results are bit-identical to untraced ones) and the directory receives
    ``<kernel>.<policy>.trace.json`` (Chrome trace-event format, one pid
    per device), ``<kernel>.<policy>.jsonl`` (raw span stream) and one
    grid-wide ``metrics.prom``.  Under ``REPRO_OBS=off`` the flag is
    ignored entirely: nothing is written and caching behaves as if
    ``trace_dir`` had not been passed, so cache keys and results are
    unchanged.  Tracing forces the serial in-process path (``workers`` is
    ignored).
    """
    workers_explicit = workers is not None
    workers = _default_workers() if workers is None else max(0, int(workers))
    cache = get_cache() if cache is None else cache
    grid = PolicyGrid(machine_name=machine.name, policies=tuple(policies))
    tracing = trace_dir is not None and obs_enabled()

    # Resolve cache hits up front; only misses are (possibly) parallelised.
    pending: list[tuple[str, Callable[[], LoopKernel], str, str | None]] = []
    results: dict[tuple[str, str], OffloadResult] = {}
    for kname, factory in kernels.items():
        for policy in grid.policies:
            key = (
                _cell_key(
                    machine, factory, policy,
                    cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
                    fault_plan=fault_plan, resilience=resilience,
                )
                if cache.enabled and _cacheable_executor(executor)
                else None
            )
            hit = (
                cache.get(key) if key is not None and not tracing else None
            )
            if hit is not None:
                results[(kname, policy)] = hit
            else:
                pending.append((kname, factory, policy, key))

    if tracing:
        _run_traced_cells(
            machine, pending, results, cache, Path(trace_dir),
            cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
            fault_plan=fault_plan, resilience=resilience, executor=executor,
        )
    elif (
        _is_batch_executor(executor) and pending
        and fault_plan is None and resilience is None
    ):
        _run_batch_cells(
            machine, pending, results, cache,
            cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
            executor=executor,
        )
    elif workers > 0 and pending and not _cells_picklable(machine, pending):
        _note_serial_fallback("unpicklable cells", len(pending))
        for kname, factory, policy, key in pending:
            result = run_one(
                machine, factory(), policy,
                cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
                fault_plan=fault_plan, resilience=resilience,
                executor=executor,
            )
            if key is not None:
                cache.put(key, result)
            results[(kname, policy)] = result
    elif workers > 0 and pending:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_pin_worker_threads
        ) as pool:
            futures = [
                pool.submit(
                    _pool_cell, machine, factory, policy, cutoff_ratio,
                    seed, verify, fault_plan, resilience, executor,
                )
                for _, factory, policy, _ in pending
            ]
            for (kname, _, policy, key), future in zip(pending, futures):
                result = future.result()
                if key is not None:
                    cache.put(key, result)
                results[(kname, policy)] = result
    else:
        if not workers_explicit and len(pending) > 1:
            # Serial because nobody asked for workers: an accidental
            # serial sweep looks exactly like a perf regression later.
            _note_serial_fallback("workers=0", len(pending))
        for kname, factory, policy, key in pending:
            result = run_one(
                machine, factory(), policy,
                cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
                fault_plan=fault_plan, resilience=resilience,
                executor=executor,
            )
            if key is not None:
                cache.put(key, result)
            results[(kname, policy)] = result

    for kname in kernels:
        grid.results[kname] = {p: results[(kname, p)] for p in grid.policies}
    return grid


def _run_batch_cells(
    machine: MachineSpec,
    pending: list,
    results: dict,
    cache: SweepCache,
    *,
    cutoff_ratio: float,
    seed: int,
    verify: bool,
    executor: "str | type | None",
) -> None:
    """Run pending grid cells through the vectorized batch backend.

    The whole pending list becomes one ``parallel_for_many`` call, so the
    backend advances every cell's timeline together as array ops.  Cells
    of the same factory share one kernel instance: the simulated timeline
    depends only on chunk sizes, so the (expensive) numeric execution and
    reference verification run once per workload, not once per cell —
    subsequent cells skip numerics and produce bit-identical results
    (their arrays are untouched and their reduction is None either way).
    Reduction kernels execute every cell (each result carries the
    reduction value); a reduction kernel that also wrote output arrays
    would double-apply them on a shared instance, so those get a fresh
    kernel per cell.
    """
    global _ENGINE_RUNS
    _METRICS.inc("run_grid_batch_cells", float(len(pending)))
    rt = HompRuntime(machine, seed=seed)
    shared: dict[int, LoopKernel] = {}
    refs: dict[int, "dict[str, np.ndarray] | float"] = {}
    specs: list[OffloadSpec] = []
    executed: list[bool] = []
    for kname, factory, policy, key in pending:
        fid = id(factory)
        kernel = shared.get(fid)
        fresh = kernel is None
        if fresh:
            kernel = factory()
            shared[fid] = kernel
        if kernel.is_reduction:
            if any(m.direction.copies_out for m in kernel.effective_maps()):
                if not fresh:
                    kernel = factory()
            execute = True
        else:
            execute = fresh
        specs.append(
            OffloadSpec(
                kernel=kernel, schedule=policy,
                cutoff_ratio=cutoff_ratio, execute_numerically=execute,
            )
        )
        executed.append(execute)
    batch = rt.parallel_for_many(specs, executor=executor)
    for (kname, factory, policy, key), spec, execute, result in zip(
        pending, specs, executed, batch
    ):
        _ENGINE_RUNS += 1
        if verify and execute:
            fid = id(factory)
            ref = refs.get(fid)
            if ref is None:
                ref = refs[fid] = spec.kernel.reference()
            verify_result(spec.kernel, result, ref=ref)
        if key is not None:
            cache.put(key, result)
        results[(kname, policy)] = result


def _run_traced_cells(
    machine: MachineSpec,
    pending: list,
    results: dict,
    cache: SweepCache,
    trace_dir: Path,
    *,
    cutoff_ratio: float,
    seed: int,
    verify: bool,
    fault_plan: FaultPlan | None,
    resilience: ResiliencePolicy | None,
    executor: "str | type | None" = None,
) -> None:
    """Run grid cells with tracing, exporting artifacts per cell.

    Serial by construction (the tracer is an in-process object).  One
    metrics registry spans the whole grid; each cell gets its own span
    stream.  Cache statistics are folded into the registry at the end.
    """
    from repro.obs.export import write_chrome_trace, write_jsonl, write_prom

    registry = MetricsRegistry()
    trace_dir.mkdir(parents=True, exist_ok=True)
    for kname, factory, policy, key in pending:
        clock = "virtual" if _virtual_executor(executor) else "wall"
        tracer = Tracer(clock=clock, metrics=registry)
        result = run_one(
            machine, factory(), policy,
            cutoff_ratio=cutoff_ratio, seed=seed, verify=verify,
            fault_plan=fault_plan, resilience=resilience, tracer=tracer,
            executor=executor,
        )
        stem = f"{kname}.{policy}".replace("/", "_").replace(" ", "_")
        write_chrome_trace(tracer, trace_dir / f"{stem}.trace.json")
        write_jsonl(tracer, trace_dir / f"{stem}.jsonl")
        if key is not None:
            cache.put(key, result)
        results[(kname, policy)] = result
    for stat_name, value in cache.stats.to_dict().items():
        registry.set_gauge(f"bench_cache_{stat_name}", value)
    write_prom(registry, trace_dir / "metrics.prom")


def _cells_picklable(machine: MachineSpec, pending: list) -> bool:
    """Whether the pool can ship these cells (lambdas can't be pickled)."""
    try:
        pickle.dumps((machine, [factory for _, factory, _, _ in pending]))
        return True
    except Exception:
        return False
