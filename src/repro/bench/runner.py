"""Grid runner: kernels x scheduling policies on a machine, with checks.

Every run verifies the numeric output against the kernel's serial
reference — a benchmark that silently computes the wrong answer is worse
than a failing one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec
from repro.runtime.runtime import HompRuntime

__all__ = ["PolicyGrid", "run_one", "run_grid", "verify_result"]

#: The seven Table II algorithms in the order the figures list them.
ALL_POLICIES = (
    "BLOCK",
    "SCHED_DYNAMIC",
    "SCHED_GUIDED",
    "MODEL_1_AUTO",
    "MODEL_2_AUTO",
    "SCHED_PROFILE_AUTO",
    "MODEL_PROFILE_AUTO",
)


def verify_result(kernel: LoopKernel, result: OffloadResult, *, rtol=1e-9) -> None:
    """Assert the distributed output matches the serial reference."""
    ref = kernel.reference()
    if isinstance(ref, dict):
        reduction_ref = ref.pop("__reduction__", None)
        for name, expected in ref.items():
            got = kernel.arrays[name]
            if not np.allclose(got, expected, rtol=rtol, atol=1e-12):
                raise OffloadError(
                    f"{kernel.name}/{result.algorithm}: array {name!r} does not "
                    "match the serial reference"
                )
        if reduction_ref is not None and result.reduction is not None:
            if not np.isclose(result.reduction, reduction_ref, rtol=1e-6):
                raise OffloadError(
                    f"{kernel.name}/{result.algorithm}: reduction mismatch"
                )
    else:
        if result.reduction is None or not np.isclose(
            result.reduction, float(ref), rtol=1e-6
        ):
            raise OffloadError(
                f"{kernel.name}/{result.algorithm}: reduction "
                f"{result.reduction} != reference {ref}"
            )


def run_one(
    machine: MachineSpec,
    kernel: LoopKernel,
    policy: str,
    *,
    cutoff_ratio: float = 0.0,
    seed: int = 0,
    verify: bool = True,
) -> OffloadResult:
    """One kernel under one policy, verified."""
    rt = HompRuntime(machine, seed=seed)
    result = rt.parallel_for(kernel, schedule=policy, cutoff_ratio=cutoff_ratio)
    if verify:
        verify_result(kernel, result)
    return result


@dataclass
class PolicyGrid:
    """Results of a kernels x policies sweep."""

    machine_name: str
    policies: tuple[str, ...]
    #: results[kernel_name][policy] -> OffloadResult
    results: dict[str, dict[str, OffloadResult]] = field(default_factory=dict)

    def time_ms(self, kernel: str, policy: str) -> float:
        return self.results[kernel][policy].total_time_ms

    def best_policy(self, kernel: str) -> str:
        row = self.results[kernel]
        return min(row, key=lambda p: row[p].total_time_s)

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for kname, row in self.results.items():
            out.append([kname] + [row[p].total_time_ms for p in self.policies])
        return out


def run_grid(
    machine: MachineSpec,
    kernels: dict[str, "callable"],
    *,
    policies: tuple[str, ...] = ALL_POLICIES,
    cutoff_ratio: float = 0.0,
    seed: int = 0,
    verify: bool = True,
) -> PolicyGrid:
    """Sweep kernel factories over policies.

    ``kernels`` maps display name -> zero-arg factory returning a *fresh*
    kernel (runs mutate output arrays, so each cell needs its own).
    """
    grid = PolicyGrid(machine_name=machine.name, policies=tuple(policies))
    for kname, factory in kernels.items():
        row: dict[str, OffloadResult] = {}
        for policy in policies:
            kernel = factory()
            row[policy] = run_one(
                machine,
                kernel,
                policy,
                cutoff_ratio=cutoff_ratio,
                seed=seed,
                verify=verify,
            )
        grid.results[kname] = row
    return grid
