"""Regenerators for every figure and table of the paper's evaluation.

Each function returns a structured result plus a rendered text table; the
``benchmarks/`` pytest files call these and assert the paper's qualitative
shapes.  Absolute milliseconds differ from the paper (different problem
scale by default, and a simulated rather than physical node); who-wins
relationships are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import PolicyGrid, run_cell, run_grid, run_one
from repro.bench.workloads import (
    WORKLOAD_NAMES,
    WorkloadFactory,
    workload,
    workload_label,
)
from repro.kernels.registry import KERNELS
from repro.machine.presets import cpu_mic_node, full_node, gpu4_node
from repro.machine.spec import MachineSpec
from repro.util.tables import render_table

__all__ = [
    "fig5_gpu4",
    "fig6_breakdown",
    "fig7_speedup",
    "fig8_cpu_mic",
    "fig9_full_node",
    "table4_characteristics",
    "table5_cutoff",
]

_FIG_KERNELS = ("axpy", "matvec", "matmul", "stencil", "sum", "bm")


def _factories(seed: int = 0) -> dict[str, WorkloadFactory]:
    """Picklable, cache-fingerprintable factories for the figure kernels."""
    return {name: WorkloadFactory(name, seed=seed) for name in _FIG_KERNELS}


@dataclass
class FigureResult:
    """A regenerated figure/table: data plus its text rendering."""

    name: str
    grid: PolicyGrid | None
    text: str
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


def _grid_figure(
    name: str,
    machine: MachineSpec,
    *,
    seed: int = 0,
    trace_dir=None,
    executor=None,
) -> FigureResult:
    grid = run_grid(
        machine, _factories(seed), trace_dir=trace_dir, executor=executor
    )
    headers = ["kernel"] + list(grid.policies)
    text = render_table(headers, grid.rows(), title=f"{name} — offload time (ms) on {machine.name}")
    return FigureResult(name=name, grid=grid, text=text)


def fig5_gpu4(*, seed: int = 0, trace_dir=None, executor=None) -> FigureResult:
    """Fig. 5: offload time, 6 kernels x 7 policies, 4 identical K40s.

    ``trace_dir`` exports per-cell Chrome traces and grid metrics (see
    ``run_grid``); it changes nothing about the returned figure.
    ``executor`` selects the execution backend for every cell (None = the
    virtual-time simulator; wall-clock backends bypass the sweep cache).
    """
    return _grid_figure(
        "Fig. 5", gpu4_node(), seed=seed, trace_dir=trace_dir,
        executor=executor,
    )


def fig6_breakdown(*, seed: int = 0, trace_dir=None, executor=None) -> FigureResult:
    """Fig. 6: accumulated breakdown (%) of offloading time + imbalance."""
    grid = run_grid(
        gpu4_node(), _factories(seed), trace_dir=trace_dir, executor=executor
    )
    rows = []
    imbalances: dict[str, float] = {}
    for kname, row in grid.results.items():
        for policy, result in row.items():
            b = result.breakdown_pct()
            imb = result.imbalance_pct()
            imbalances[f"{kname}/{policy}"] = imb
            rows.append(
                [f"{kname}/{policy}", b["data"], b["compute"], b["sched"],
                 b["barrier"], imb]
            )
    text = render_table(
        ["kernel/policy", "data%", "compute%", "sched%", "barrier%", "imbalance%"],
        rows,
        title="Fig. 6 — breakdown of offloading time on 4 GPUs",
    )
    return FigureResult(
        name="Fig. 6", grid=grid, text=text, extra={"imbalances": imbalances}
    )


def fig7_speedup(*, seed: int = 0, max_gpus: int = 4) -> FigureResult:
    """Fig. 7: strong-scaling speedup on 1..4 K40s (best policy per point)."""
    speedups: dict[str, list[float]] = {}
    rows = []
    for kname in _FIG_KERNELS:
        base_s: float | None = None
        series: list[float] = []
        for g in range(1, max_gpus + 1):
            machine = gpu4_node(g)
            grid = run_grid(machine, {kname: WorkloadFactory(kname, seed=seed)})
            best = grid.results[kname][grid.best_policy(kname)]
            if base_s is None:
                base_s = best.total_time_s
            series.append(base_s / best.total_time_s)
        speedups[kname] = series
        rows.append([kname] + [round(s, 2) for s in series])
    text = render_table(
        ["kernel"] + [f"{g} GPU" for g in range(1, max_gpus + 1)],
        rows,
        title="Fig. 7 — speedup vs 1 GPU (best policy each)",
    )
    return FigureResult(
        name="Fig. 7", grid=None, text=text, extra={"speedups": speedups}
    )


def fig8_cpu_mic(*, seed: int = 0, trace_dir=None, executor=None) -> FigureResult:
    """Fig. 8: offload time, 6 kernels x 7 policies, 2 CPUs + 2 MICs."""
    return _grid_figure(
        "Fig. 8", cpu_mic_node(), seed=seed, trace_dir=trace_dir,
        executor=executor,
    )


def fig9_full_node(
    *, seed: int = 0, cutoff_ratio: float = 0.15, trace_dir=None,
    executor=None,
) -> FigureResult:
    """Fig. 9: full node (2 CPUs + 4 GPUs + 2 MICs), plus min-with-CUTOFF."""
    machine = full_node()
    grid = run_grid(
        machine, _factories(seed), trace_dir=trace_dir, executor=executor
    )
    cutoff_best: dict[str, float] = {}
    cutoff_algo: dict[str, str] = {}
    for kname in _FIG_KERNELS:
        best_ms = float("inf")
        best_pol = ""
        for policy in ("MODEL_1_AUTO", "MODEL_2_AUTO", "SCHED_PROFILE_AUTO",
                       "MODEL_PROFILE_AUTO"):
            result = run_cell(
                machine, WorkloadFactory(kname, seed=seed), policy,
                cutoff_ratio=cutoff_ratio, seed=seed, executor=executor,
            )
            if result.total_time_ms < best_ms:
                best_ms = result.total_time_ms
                best_pol = policy
        cutoff_best[kname] = best_ms
        cutoff_algo[kname] = best_pol
    rows = [
        [k] + [grid.time_ms(k, p) for p in grid.policies] + [cutoff_best[k]]
        for k in _FIG_KERNELS
    ]
    text = render_table(
        ["kernel"] + list(grid.policies) + [f"CUTOFF{cutoff_ratio:.0%}min"],
        rows,
        title=f"Fig. 9 — offload time (ms) on {machine.name}",
    )
    return FigureResult(
        name="Fig. 9",
        grid=grid,
        text=text,
        extra={"cutoff_best_ms": cutoff_best, "cutoff_algo": cutoff_algo},
    )


def table4_characteristics() -> FigureResult:
    """Table IV: MemComp / DataComp ratios and intensity classes."""
    rows = []
    classes: dict[str, str] = {}
    ratios: dict[str, tuple[float, float]] = {}
    for name in _FIG_KERNELS:
        k = workload(name)
        mc, dc = k.mem_comp(), k.data_comp()
        cls = k.costs().intensity_class(k.n_iters).value
        classes[name] = cls
        ratios[name] = (mc, dc)
        rows.append([name, round(mc, 4), round(dc, 4), cls])
    text = render_table(
        ["kernel", "MemComp", "DataComp", "class"],
        rows,
        title="Table IV — benchmark characteristics",
    )
    return FigureResult(
        name="Table IV", grid=None, text=text,
        extra={"classes": classes, "ratios": ratios},
    )


def table5_cutoff(*, seed: int = 0, cutoff_ratio: float = 0.15) -> FigureResult:
    """Table V: per-workload devices-after-CUTOFF and CUTOFF speedup.

    For each named workload, pick the CUTOFF-capable algorithm with the
    best with-cutoff time; the CUTOFF speedup is what enabling the cutoff
    gained *on that algorithm* (its no-cutoff time over its with-cutoff
    time), and the surviving devices come from its with-cutoff run.  The
    paper's 0.5x-3.4x spread appears because the analytical models do not
    price per-device setup costs (which the cutoff saves) but can also cut
    genuinely useful devices (which the cutoff loses).
    """
    machine = full_node()
    algos = ("MODEL_1_AUTO", "MODEL_2_AUTO", "SCHED_PROFILE_AUTO",
             "MODEL_PROFILE_AUTO")
    rows = []
    speedups: dict[str, float] = {}
    survivors: dict[str, tuple[str, ...]] = {}
    for name in WORKLOAD_NAMES:
        best = None  # (cut_time, plain_time, cut_result)
        for policy in algos:
            factory = WorkloadFactory(name, seed=seed)
            r0 = run_cell(machine, factory, policy, seed=seed)
            r1 = run_cell(
                machine, factory, policy,
                cutoff_ratio=cutoff_ratio, seed=seed,
            )
            if best is None or r1.total_time_s < best[0]:
                best = (r1.total_time_s, r0.total_time_s, r1)
        assert best is not None
        cut_s, plain_s, best_cut_result = best
        speedup = plain_s / cut_s
        names = tuple(t.name for t in best_cut_result.participating)
        speedups[name] = speedup
        survivors[name] = names
        rows.append(
            [workload_label(name), _summarise_devices(names), round(speedup, 2)]
        )
    text = render_table(
        ["benchmark", "devices after CUTOFF", "CUTOFF speedup"],
        rows,
        title=f"Table V — speedup using CUTOFF ({cutoff_ratio:.0%})",
    )
    return FigureResult(
        name="Table V", grid=None, text=text,
        extra={"speedups": speedups, "survivors": survivors},
    )


def _summarise_devices(names: tuple[str, ...]) -> str:
    counts: dict[str, int] = {}
    for n in names:
        kind = n.rsplit("-", 1)[0]
        counts[kind] = counts.get(kind, 0) + 1
    label = {"cpu": "CPU", "k40": "GPU", "mic": "MIC"}
    return " + ".join(
        f"{v} {label.get(k, k)}{'s' if v > 1 else ''}" for k, v in counts.items()
    )
