"""CSV export of benchmark results for downstream plotting."""

from __future__ import annotations

import csv
import dataclasses
import io

from repro.bench.runner import PolicyGrid
from repro.engine.trace import DeviceTrace, OffloadResult

__all__ = ["grid_to_csv", "breakdown_to_csv", "BREAKDOWN_COLUMNS"]


def grid_to_csv(grid: PolicyGrid) -> str:
    """One row per kernel, one time-in-ms column per policy."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kernel", *grid.policies])
    for kernel, row in grid.results.items():
        writer.writerow(
            [kernel, *(f"{row[p].total_time_ms:.6f}" for p in grid.policies)]
        )
    return buf.getvalue()


#: Every ``DeviceTrace`` field, in declaration order.  Deriving the column
#: set from the dataclass means a field added to the trace can never be
#: silently dropped from the export again (the round-trip test enforces
#: lossless values on top).
BREAKDOWN_COLUMNS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(DeviceTrace)
)


def _format_cell(value: object) -> str:
    if value is None:
        return ""  # lost_at of a healthy device
    if isinstance(value, float):
        return f"{value:.9f}"
    return str(value)


def breakdown_to_csv(result: OffloadResult) -> str:
    """One row per participating device with every ``DeviceTrace`` field.

    Fig.-6 buckets plus the resilience fields (``retry_s``, ``retries``,
    ``faults``, ``lost_at``) — resilience sweeps export losslessly.
    Floats are written with nine decimals; a ``None`` (``lost_at`` of a
    healthy device) exports as an empty cell.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(BREAKDOWN_COLUMNS)
    for t in result.participating:
        writer.writerow(
            _format_cell(getattr(t, col)) for col in BREAKDOWN_COLUMNS
        )
    return buf.getvalue()
