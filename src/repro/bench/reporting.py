"""CSV export of benchmark results for downstream plotting."""

from __future__ import annotations

import csv
import io

from repro.bench.runner import PolicyGrid
from repro.engine.trace import OffloadResult

__all__ = ["grid_to_csv", "breakdown_to_csv"]


def grid_to_csv(grid: PolicyGrid) -> str:
    """One row per kernel, one time-in-ms column per policy."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kernel", *grid.policies])
    for kernel, row in grid.results.items():
        writer.writerow(
            [kernel, *(f"{row[p].total_time_ms:.6f}" for p in grid.policies)]
        )
    return buf.getvalue()


def breakdown_to_csv(result: OffloadResult) -> str:
    """One row per participating device with the Fig.-6 buckets."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["device", "iters", "chunks", "setup_s", "sched_s", "xfer_in_s",
         "xfer_out_s", "compute_s", "barrier_s", "finish_s"]
    )
    for t in result.participating:
        writer.writerow(
            [t.name, t.iters, t.chunks, f"{t.setup_s:.9f}", f"{t.sched_s:.9f}",
             f"{t.xfer_in_s:.9f}", f"{t.xfer_out_s:.9f}",
             f"{t.compute_s:.9f}", f"{t.barrier_s:.9f}", f"{t.finish_s:.9f}"]
        )
    return buf.getvalue()
