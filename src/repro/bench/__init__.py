"""Benchmark harness: workload definitions, the kernel x policy runner,
and text renderers for every figure and table in the paper's evaluation."""

from repro.bench.workloads import (
    BENCH_SCALE_ENV,
    bench_scale,
    workload,
    WorkloadFactory,
    WORKLOAD_NAMES,
)
from repro.bench.cache import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    CacheStats,
    SweepCache,
    cache_mode,
    get_cache,
    reset_cache,
    result_key,
)
from repro.bench.runner import (
    ALL_POLICIES,
    WORKERS_ENV,
    PolicyGrid,
    engine_run_count,
    run_cell,
    run_grid,
    run_one,
)
from repro.bench.figures import (
    fig5_gpu4,
    fig6_breakdown,
    fig7_speedup,
    fig8_cpu_mic,
    fig9_full_node,
    table4_characteristics,
    table5_cutoff,
)

__all__ = [
    "ALL_POLICIES",
    "BENCH_SCALE_ENV",
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "WORKERS_ENV",
    "CacheStats",
    "SweepCache",
    "WorkloadFactory",
    "bench_scale",
    "cache_mode",
    "engine_run_count",
    "get_cache",
    "reset_cache",
    "result_key",
    "workload",
    "WORKLOAD_NAMES",
    "PolicyGrid",
    "run_cell",
    "run_grid",
    "run_one",
    "fig5_gpu4",
    "fig6_breakdown",
    "fig7_speedup",
    "fig8_cpu_mic",
    "fig9_full_node",
    "table4_characteristics",
    "table5_cutoff",
]
