"""Benchmark harness: workload definitions, the kernel x policy runner,
and text renderers for every figure and table in the paper's evaluation."""

from repro.bench.workloads import (
    BENCH_SCALE_ENV,
    bench_scale,
    workload,
    WORKLOAD_NAMES,
)
from repro.bench.runner import PolicyGrid, run_grid, run_one
from repro.bench.figures import (
    fig5_gpu4,
    fig6_breakdown,
    fig7_speedup,
    fig8_cpu_mic,
    fig9_full_node,
    table4_characteristics,
    table5_cutoff,
)

__all__ = [
    "BENCH_SCALE_ENV",
    "bench_scale",
    "workload",
    "WORKLOAD_NAMES",
    "PolicyGrid",
    "run_grid",
    "run_one",
    "fig5_gpu4",
    "fig6_breakdown",
    "fig7_speedup",
    "fig8_cpu_mic",
    "fig9_full_node",
    "table4_characteristics",
    "table5_cutoff",
]
