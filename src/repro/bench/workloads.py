"""Benchmark workloads: the paper's named problem sizes, scalable.

The paper's sizes (Table V) are large — ``sum-300M`` alone is 2.4 GB of
doubles.  The virtual-time results depend on sizes only analytically, so
benchmarks default to a reduced scale that keeps the *numeric* execution
fast while preserving every who-wins relationship; set
``REPRO_BENCH_SCALE=full`` (or a float) to run the paper's exact sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.kernels.base import LoopKernel
from repro.kernels.registry import PAPER_SIZES, paper_workload

__all__ = [
    "BENCH_SCALE_ENV",
    "bench_scale",
    "workload",
    "workload_label",
    "WorkloadFactory",
    "WORKLOAD_NAMES",
]

BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"

#: Default scales per kernel: 1-D kernels shrink hard (cost is linear);
#: 2-D kernels are already small in the paper.
_DEFAULT_SCALE = {
    "axpy": 0.5,        # 5M iterations
    "sum": 0.1,         # 30M
    "matvec": 0.125,    # 6000 rows
    "matmul": 0.125,    # 768 rows
    "stencil": 1.0,     # 256 (paper size)
    "bm": 1.0,          # 256 (paper size)
}

WORKLOAD_NAMES = tuple(PAPER_SIZES)


def bench_scale(name: str) -> float:
    """Scale factor for a workload, honouring ``REPRO_BENCH_SCALE``."""
    env = os.environ.get(BENCH_SCALE_ENV, "").strip().lower()
    if env in ("", "default"):
        return _DEFAULT_SCALE[name]
    if env in ("full", "paper", "1", "1.0"):
        return 1.0
    try:
        factor = float(env)
    except ValueError:
        raise ValueError(
            f"{BENCH_SCALE_ENV} must be 'full', 'default' or a float, got {env!r}"
        ) from None
    if not 0 < factor <= 1:
        raise ValueError(f"{BENCH_SCALE_ENV} must be in (0, 1], got {factor}")
    return factor


def workload(name: str, *, seed: int = 0) -> LoopKernel:
    """Fresh kernel instance for a named paper workload at bench scale."""
    return paper_workload(name, scale=bench_scale(name), seed=seed)


@dataclass(frozen=True)
class WorkloadFactory:
    """Zero-arg factory for a named paper workload.

    Unlike a lambda closure this is picklable (so ``run_grid`` can ship it
    to process-pool workers) and fingerprintable (so the sweep cache can
    key the cell it produces).  Calling it is exactly
    ``workload(name, seed=seed)``.
    """

    name: str
    seed: int = 0

    def __call__(self) -> LoopKernel:
        return workload(self.name, seed=self.seed)

    def fingerprint(self) -> dict[str, Any]:
        """Identity of the kernel this factory builds, for cache keys.

        The bench scale is resolved at fingerprint time, so changing
        ``REPRO_BENCH_SCALE`` changes the key.
        """
        return {
            "workload": self.name,
            "scale": bench_scale(self.name),
            "seed": self.seed,
        }


def workload_label(name: str) -> str:
    """The paper's workload label, e.g. 'axpy-10M', 'matul-6144' (sic)."""
    size = PAPER_SIZES[name]
    if size >= 1_000_000:
        s = f"{size // 1_000_000}M"
    elif size >= 1_000:
        s = f"{size // 1_000}k"
    else:
        s = str(size)
    spelled = {"matmul": "matul", "stencil": "stencil2d", "bm": "bm2d"}.get(name, name)
    return f"{spelled}-{s}"
