"""Resilience sweep: makespan degradation of policy x fault-plan cells.

The paper's evaluation assumes devices behave as described; this module
measures what each Table II algorithm does when they don't.  For every
(policy, fault plan) cell it runs the same workload fault-free and under
the plan, and reports:

* the **makespan degradation** — faulted time over fault-free time;
* whether the faulted run's **output checksum** matches the fault-free
  run's (resilience must never buy speed with wrong answers);
* the engine's fault accounting (events, retries, lost devices).

The qualitative target mirrors the paper's load-balancing story inverted:
static BLOCK has no mechanism to route around a straggler or a lost
device, so its degradation is the worst, while the adaptive algorithms
(SCHED_DYNAMIC, SCHED_PROFILE_AUTO) degrade gracefully.

Checksum identity across chunkings holds for elementwise kernels (axpy,
stencil); BLAS-backed kernels (matvec, matmul) are chunk-shape-sensitive
at ~1e-13, so sweeps that assert bit-identity must use elementwise
workloads — see docs/RESILIENCE.md.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Sequence

from repro.bench.figures import FigureResult
from repro.bench.runner import run_one
from repro.engine.trace import OffloadResult
from repro.faults.plan import DeviceDropout, FaultPlan, Slowdown, TransferError
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec
from repro.util.tables import render_table

__all__ = [
    "output_checksum",
    "straggler_plan",
    "dropout_plan",
    "flaky_transfer_plan",
    "dead_link_plan",
    "block_reference_makespan",
    "resilience_sweep",
]


def output_checksum(kernel: LoopKernel, result: OffloadResult) -> str:
    """Digest of everything an offload is answerable for.

    Covers the bytes of every copied-out array plus the reduction value;
    two runs computed the same answer iff their checksums match.
    """
    h = hashlib.sha256()
    for m in kernel.effective_maps():
        if m.direction.copies_out:
            h.update(m.name.encode("utf-8"))
            h.update(kernel.arrays[m.name].tobytes())
    if result.reduction is not None:
        h.update(struct.pack("<d", float(result.reduction)))
    return h.hexdigest()


def straggler_plan(victim: int, factor: float = 4.0) -> FaultPlan:
    """One device runs ``factor``x slower for the whole offload."""
    return FaultPlan.of(
        Slowdown(devid=victim, factor=factor),
        name=f"straggler(dev{victim},x{factor:g})",
    )


def dropout_plan(victim: int, t: float) -> FaultPlan:
    """One device disappears at virtual time ``t`` (seconds)."""
    return FaultPlan.of(
        DeviceDropout(devid=victim, t=t),
        name=f"dropout(dev{victim},{t * 1e3:.3f}ms)",
    )


def flaky_transfer_plan(victim: int, p_fail: float = 0.05, seed: int = 7) -> FaultPlan:
    """One device's PCIe transfers fail with probability ``p_fail``."""
    return FaultPlan.of(
        TransferError(devid=victim, p_fail=p_fail, seed=seed),
        name=f"flaky(dev{victim},p={p_fail:g})",
    )


def dead_link_plan(victim: int, p_fail: float = 0.97, seed: int = 7) -> FaultPlan:
    """A near-dead link: retries exhaust and the device is quarantined."""
    return FaultPlan.of(
        TransferError(devid=victim, p_fail=p_fail, seed=seed),
        name=f"dead-link(dev{victim},p={p_fail:g})",
    )


def block_reference_makespan(
    machine: MachineSpec,
    factory: Callable[[], LoopKernel],
    *,
    seed: int = 0,
) -> float:
    """BLOCK's fault-free makespan (seconds) — the shared reference point.

    Dropout scenarios anchor the drop time to one policy's fault-free
    timeline (BLOCK's, the static baseline) so every policy faces the
    *same* fault, not a fault scaled to its own speed.
    """
    return run_one(machine, factory(), "BLOCK", seed=seed).total_time_s


def resilience_sweep(
    machine: MachineSpec,
    factory: Callable[[], LoopKernel],
    *,
    policies: Sequence[str],
    plans: Sequence[FaultPlan],
    seed: int = 0,
    resilience: ResiliencePolicy | None = None,
    verify: bool = True,
) -> FigureResult:
    """Run the (policy x plan) grid and tabulate degradation.

    Every cell runs ``verify``'d against the kernel's serial reference
    (a resilient run that computes the wrong answer has not survived
    anything), and its output checksum is compared against the same
    policy's fault-free run.  Returns a :class:`FigureResult` whose
    ``extra`` carries the machine-readable payload (also the JSON body
    the benchmark writes to ``benchmarks/results/``).
    """
    baselines: dict[str, tuple[float, str]] = {}
    for policy in policies:
        kernel = factory()
        result = run_one(machine, kernel, policy, seed=seed, verify=verify)
        baselines[policy] = (result.total_time_s, output_checksum(kernel, result))

    rows: list[list[object]] = []
    cells: list[dict[str, object]] = []
    degradation: dict[str, dict[str, float]] = {}
    checksums_match: dict[str, dict[str, bool]] = {}
    for plan in plans:
        degradation[plan.name] = {}
        checksums_match[plan.name] = {}
        for policy in policies:
            kernel = factory()
            result = run_one(
                machine, kernel, policy, seed=seed, verify=verify,
                fault_plan=plan, resilience=resilience,
            )
            base_s, base_sum = baselines[policy]
            deg = result.total_time_s / base_s if base_s > 0 else float("inf")
            same = output_checksum(kernel, result) == base_sum
            faults = result.meta.get("faults", {})
            degradation[plan.name][policy] = deg
            checksums_match[plan.name][policy] = same
            rows.append([
                plan.name,
                policy,
                round(base_s * 1e3, 3),
                round(result.total_time_s * 1e3, 3),
                f"{deg:.3f}x",
                "ok" if same else "MISMATCH",
                faults.get("events", 0),
                ",".join(faults.get("lost", [])) or "-",
            ])
            cells.append({
                "plan": plan.name,
                "policy": policy,
                "base_ms": base_s * 1e3,
                "faulted_ms": result.total_time_s * 1e3,
                "degradation": deg,
                "checksum_matches": same,
                "fault_events": faults.get("events", 0),
                "retries": faults.get("retries", 0),
                "lost": list(faults.get("lost", [])),
                "quarantined": list(faults.get("quarantined", [])),
            })

    text = render_table(
        ["fault plan", "policy", "base ms", "faulted ms", "degradation",
         "output", "events", "lost"],
        rows,
        title=f"Resilience — makespan degradation on {machine.name}",
    )
    payload = {
        "machine": machine.name,
        "seed": seed,
        "policies": list(policies),
        "plans": [p.to_dict() for p in plans],
        "resilience": (resilience or ResiliencePolicy()).to_dict(),
        "cells": cells,
    }
    return FigureResult(
        name="Resilience",
        grid=None,
        text=text,
        extra={
            "degradation": degradation,
            "checksums_match": checksums_match,
            "payload": payload,
        },
    )
