"""Multi-node cluster model: machine nodes on a fabric, run hierarchically.

* :class:`~repro.cluster.spec.ClusterSpec` — an ordered tuple of
  :class:`~repro.machine.spec.MachineSpec` nodes joined by one inter-node
  fabric :class:`~repro.machine.interconnect.Link`, with JSON round-trip
  and presets (:func:`~repro.cluster.spec.gpu_cluster`,
  :func:`~repro.cluster.spec.homogeneous_cluster`).
* :class:`~repro.cluster.engine.ClusterEngine` — the ``"cluster"``
  execution backend: node-level BLOCK/weighted split, intra-node engines
  per shard, fabric staging charged through the node-level residency
  ledger.  A single-node cluster is bit-identical to ``"virtual"``.
"""

from repro.cluster.spec import ClusterSpec, gpu_cluster, homogeneous_cluster
from repro.cluster.engine import ClusterEngine

__all__ = [
    "ClusterSpec",
    "ClusterEngine",
    "gpu_cluster",
    "homogeneous_cluster",
]
