"""The ``cluster`` execution backend: hierarchical node -> device offload.

One cluster offload decomposes the loop twice.  The *node* level is a
static contiguous split (:func:`repro.dist.hierarchy.node_shards` — BLOCK
by default, throughput-weighted for heterogeneous clusters); each shard
is then executed by a fresh intra-node :class:`~repro.engine.simulator.
OffloadEngine` on that node's own :class:`~repro.machine.spec.
MachineSpec`, with the shard presented to the node's scheduler as the
kernel's whole iteration space via :class:`_ShardKernel`.  Everything the
intra-node engine already models — pipeline overlap, PCIe contention,
dynamic chunking — is reused unchanged; this module adds only what is
new at cluster scale:

* **Fabric staging.**  Before a node can start, its shard's inputs cross
  the inter-node fabric (one Hockney alpha-beta
  :class:`~repro.machine.interconnect.Link`).  Bytes are charged through
  :class:`~repro.memory.residency.ClusterResidency`, the PR 5 ledger at
  node granularity: under ``head`` placement every non-head node stages
  its full halo-expanded inputs each offload; under ``aligned``
  placement partitioned arrays were pre-scattered to their shard owners
  (a one-time cost the result's meta reports separately), so an offload
  pays only the cross-node halo.  With ``fabric_shared=True`` (default)
  staging serialises in node order on the head node's uplink, which is
  how a single fat pipe out of the head actually behaves.
* **Collection.**  Under ``head`` placement each node's outputs return
  to the head over the fabric after its shard finishes (serialised on
  the head downlink); under ``aligned`` outputs stay node-resident.
* **Observability.**  Intra-node spans pass through a
  :class:`~repro.obs.tracer.NodeTracer`, which offsets device ids to
  cluster-global ids, shifts timestamps by the node's staging delay and
  stamps ``node=<k>`` on every span; the cluster layer adds its own
  ``fabric_in`` / ``fabric_out`` spans.

A single-node cluster (or a bare ``MachineSpec``) skips all of the
above and delegates wholesale to one intra-node engine, so its results
are **bit-identical** to the ``virtual`` backend — the pin that keeps
the hierarchy honest.

Not supported across nodes (each raises :class:`~repro.errors.
OffloadError`): ALIGN intra-node loop schedulers (they derive their
ranges from the full array extent, not the shard), fault plans and
event recording (both are per-run-context features that would need
cluster-global identity to merge), and device-level residency regions
(the cluster keeps its own node ledger).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.spec import ClusterSpec
from repro.engine.core import EngineBase, register_backend
from repro.engine.simulator import OffloadEngine
from repro.engine.trace import DeviceTrace, OffloadResult
from repro.errors import OffloadError
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.interconnect import SHARED_LINK
from repro.machine.spec import MachineSpec
from repro.memory.residency import ClusterResidency, RegionResidency
from repro.memory.unified import UnifiedMemoryModel
from repro.obs.tracer import (
    NULL_TRACER,
    NodeTracer,
    NullTracer,
    Tracer,
    resolve_tracer,
)
from repro.sched.base import LoopScheduler
from repro.util.ranges import IterRange
from repro.dist.hierarchy import node_shards

__all__ = ["ClusterEngine"]

_PLACEMENTS = ("head", "aligned")
_NODE_SPLITS = ("block", "weighted")


class _ShardKernel:
    """A node-local view of a kernel: one shard as the whole loop.

    The wrapper shares the base kernel's arrays, maps, cost model and
    numeric execution — only ``iter_space`` / ``n_iters`` are overridden
    to the shard, **in global coordinates**, so schedulers split the
    shard, chunk costs and input regions (halo clamping included) are
    computed against the true array extents, and ``execute_chunk``
    writes land on the base kernel's rows directly.  Disjoint shards
    therefore compose into exactly the flat kernel's result.
    """

    __slots__ = ("_base", "_shard")

    def __init__(self, base: LoopKernel, shard: IterRange) -> None:
        self._base = base
        self._shard = shard

    @property
    def iter_space(self) -> IterRange:
        return self._shard

    @property
    def n_iters(self) -> int:
        return len(self._shard)

    def __getattr__(self, name: str):
        return getattr(self._base, name)


@dataclass
class ClusterEngine(EngineBase):
    """Hierarchical executor: node-level split over intra-node engines."""

    #: Registry name of this backend.
    backend_name = "cluster"

    # Not annotated (stays a class attribute, not a field): aggregated
    # (devid, chunk) log of the last multi-node run, None after a
    # single-node run (which exposes the inner context instead).
    _cluster_chunk_log = None

    machine: MachineSpec
    #: The cluster this engine executes on.  None wraps ``machine`` as a
    #: degenerate single-node cluster; otherwise ``machine`` must equal
    #: ``cluster.flatten()`` (build via :meth:`for_cluster`).
    cluster: "ClusterSpec | None" = None
    seed: int = 0
    execute_numerically: bool = True
    collect_chunks: bool = False
    record_events: bool = False
    serialize_offload: bool = False
    double_buffer: bool = True
    unified_model: UnifiedMemoryModel = field(default_factory=UnifiedMemoryModel)
    #: Cluster data placement: ``"head"`` stages everything from the head
    #: node each offload; ``"aligned"`` pre-scatters partitioned arrays
    #: to shard owners so offloads pay only the cross-node halo.
    placement: str = "head"
    #: Node-level split: ``"block"`` (even) or ``"weighted"`` (by each
    #: node's aggregate sustained GFLOPS).
    node_split: str = "block"
    #: Whether fabric staging serialises on the head uplink (one shared
    #: pipe) or every node stages concurrently (private uplinks).
    fabric_shared: bool = True
    fault_plan: FaultPlan | None = None
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    tracer: Tracer | NullTracer = NULL_TRACER
    #: Device-level residency region (single-node delegation only).
    residency: "RegionResidency | None" = None

    def __post_init__(self) -> None:
        if self.placement not in _PLACEMENTS:
            raise OffloadError(
                f"cluster placement must be one of {_PLACEMENTS}, "
                f"got {self.placement!r}"
            )
        if self.node_split not in _NODE_SPLITS:
            raise OffloadError(
                f"cluster node_split must be one of {_NODE_SPLITS}, "
                f"got {self.node_split!r}"
            )
        if self.cluster is None:
            self.cluster = ClusterSpec(
                name=self.machine.name,
                nodes=(self.machine,),
                fabric=SHARED_LINK,
            )
        elif self.cluster.flatten().to_dict() != self.machine.to_dict():
            raise OffloadError(
                f"cluster {self.cluster.name!r} does not flatten to machine "
                f"{self.machine.name!r}; build the engine via "
                "ClusterEngine.for_cluster(cluster, ...)"
            )

    @classmethod
    def for_cluster(cls, cluster: ClusterSpec, **options) -> "ClusterEngine":
        """The usual constructor: machine derived from the cluster."""
        return cls(machine=cluster.flatten(), cluster=cluster, **options)

    # -- introspection ---------------------------------------------------------

    @property
    def chunk_log(self) -> list[tuple[int, IterRange]]:
        """(devid, chunk) assignments of the last run, devids global."""
        if self._cluster_chunk_log is not None:
            return list(self._cluster_chunk_log)
        return list(self._run_ctx.chunk_log) if self._run_ctx else []

    # -- execution -------------------------------------------------------------

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        self._begin_run(None)
        try:
            if self.cluster.n_nodes == 1:
                return self._run_single(kernel, scheduler, cutoff_ratio)
            return self._run_multi(kernel, scheduler, cutoff_ratio)
        finally:
            self._end_run()

    def _inner_engine(
        self,
        node_machine: MachineSpec,
        tracer: "Tracer | NullTracer | NodeTracer",
        *,
        fault_plan: "FaultPlan | None",
        residency: "RegionResidency | None",
    ) -> OffloadEngine:
        return OffloadEngine(
            machine=node_machine,
            seed=self.seed,
            execute_numerically=self.execute_numerically,
            collect_chunks=self.collect_chunks,
            record_events=self.record_events,
            serialize_offload=self.serialize_offload,
            double_buffer=self.double_buffer,
            unified_model=self.unified_model,
            fault_plan=fault_plan,
            resilience=self.resilience,
            tracer=tracer,
            residency=residency,
        )

    def _run_single(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        cutoff_ratio: float,
    ) -> OffloadResult:
        """One-node cluster: wholesale delegation to the intra-node
        engine — results are bit-identical to the ``virtual`` backend."""
        inner = self._inner_engine(
            self.machine,
            self.tracer,
            fault_plan=self.fault_plan,
            residency=self.residency,
        )
        result = inner.run(kernel, scheduler, cutoff_ratio=cutoff_ratio)
        self._cluster_chunk_log = None
        self._run_ctx = inner._run_ctx  # expose chunk_log/timeline/faults
        return result

    def _run_multi(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        cutoff_ratio: float,
    ) -> OffloadResult:
        cluster = self.cluster
        fabric = cluster.fabric
        n_nodes = cluster.n_nodes

        if self.record_events:
            raise OffloadError(
                "cluster backend cannot record chunk events across nodes; "
                "run the per-node timeline on the virtual backend instead"
            )
        if self.fault_plan is not None and not self.fault_plan.empty:
            raise OffloadError(
                "cluster backend does not inject faults across nodes; "
                "fault-plan device ids are node-local and would alias"
            )
        if self.residency is not None:
            raise OffloadError(
                "cluster backend keeps its own node-level residency "
                "ledger; device-level residency regions apply only to "
                "single-node runs"
            )
        if scheduler.notation == "ALIGN":
            raise OffloadError(
                "ALIGN intra-node schedulers derive ranges from the full "
                "array extent and cannot run on a node shard; use "
                "placement='aligned' for cluster-level alignment"
            )

        weights = None
        if self.node_split == "weighted":
            weights = [
                sum(d.sustained_gflops for d in node.devices)
                for node in cluster.nodes
            ]
        shards = node_shards(kernel.iter_space, n_nodes, weights=weights)
        if sum(len(s) for s in shards) != kernel.n_iters:
            raise OffloadError(
                "node shards do not cover the iteration space"
            )  # pragma: no cover - node_shards guarantees exact cover

        residency = ClusterResidency(n_nodes)
        residency.register_kernel(kernel)
        aligned = self.placement == "aligned"
        if aligned:
            residency.place_aligned(kernel, shards)
            scatter = residency.scatter_bytes(kernel, shards)
        else:
            scatter = [0.0] * n_nodes

        base_tracer = resolve_tracer(self.tracer)
        traced = base_tracer.enabled

        bytes_in = [0.0] * n_nodes
        bytes_out = [0.0] * n_nodes
        elided = [0.0] * n_nodes
        stage_in_s = [0.0] * n_nodes
        ready = [0.0] * n_nodes
        node_compute_s = [0.0] * n_nodes
        node_end = [0.0] * n_nodes
        node_results: list[OffloadResult | None] = [None] * n_nodes
        chunk_log: list[tuple[int, IterRange]] = []
        reduction = kernel.identity()
        uplink_free = 0.0  # head uplink cursor (fabric_shared staging)

        for k, shard in enumerate(shards):
            base = cluster.node_base(k)
            if shard.empty:
                continue
            b_in, b_out, el_in, el_out = residency.charge_shard(
                k, kernel, shard, collect_outputs=not aligned
            )
            bytes_in[k] = b_in
            bytes_out[k] = b_out
            elided[k] = el_in + el_out
            stage_in_s[k] = fabric.transfer_time(b_in)
            if self.fabric_shared:
                start = uplink_free
                uplink_free = start + stage_in_s[k]
            else:
                start = 0.0
            ready[k] = start + stage_in_s[k]
            if traced and stage_in_s[k] > 0.0:
                base_tracer.span(
                    "fabric_in", "fabric", base, f"node{k}",
                    start, ready[k], node=k, nbytes=b_in,
                )

            tracer = (
                NodeTracer(
                    base_tracer, node=k, devid_offset=base, t_offset=ready[k]
                )
                if traced
                else NULL_TRACER
            )
            inner = self._inner_engine(
                cluster.nodes[k], tracer, fault_plan=None, residency=None
            )
            res = inner.run(
                _ShardKernel(kernel, shard),
                scheduler,
                cutoff_ratio=cutoff_ratio,
            )
            node_results[k] = res
            node_compute_s[k] = res.total_time_s
            node_end[k] = ready[k] + res.total_time_s
            if kernel.is_reduction:
                reduction = kernel.combine(reduction, res.reduction)
            if self.collect_chunks and inner._run_ctx is not None:
                chunk_log.extend(
                    (base + devid, chunk)
                    for devid, chunk in inner._run_ctx.chunk_log
                )

        # Collection: under head placement every non-head node returns its
        # outputs over the fabric, serialised on the head downlink in node
        # order; aligned outputs stay node-resident.
        collect_s = [0.0] * n_nodes
        downlink_free = 0.0
        done = list(node_end)
        for k in range(n_nodes):
            if bytes_out[k] <= 0.0:
                continue
            collect_s[k] = fabric.transfer_time(bytes_out[k])
            if self.fabric_shared:
                start = max(downlink_free, node_end[k])
                downlink_free = start + collect_s[k]
            else:
                start = node_end[k]
            done[k] = start + collect_s[k]
            if traced:
                base_tracer.span(
                    "fabric_out", "fabric", cluster.node_base(k), f"node{k}",
                    start, done[k], node=k, nbytes=bytes_out[k],
                )
        total = max(done, default=0.0)

        traces: list[DeviceTrace] = []
        for k in range(n_nodes):
            base = cluster.node_base(k)
            res = node_results[k]
            if res is None:
                traces.extend(
                    DeviceTrace(devid=base + i, name=d.name)
                    for i, d in enumerate(cluster.nodes[k].devices)
                )
                continue
            traces.extend(
                replace(
                    t,
                    devid=base + t.devid,
                    finish_s=t.finish_s + ready[k] if t.participated else 0.0,
                )
                for t in res.traces
            )

        if traced:
            base_tracer.span(
                "cluster_offload", "offload", -1, "", 0.0, total,
                kernel=kernel.name, algorithm=scheduler.describe(),
                cluster=cluster.name, nodes=n_nodes, seed=self.seed,
            )
            base_tracer.meta.update(
                machine=self.machine.name, cluster=cluster.name
            )

        self._cluster_chunk_log = chunk_log if self.collect_chunks else None
        return OffloadResult(
            kernel_name=kernel.name,
            algorithm=scheduler.describe(),
            total_time_s=total,
            traces=traces,
            reduction=reduction if kernel.is_reduction else None,
            meta={
                "seed": self.seed,
                "machine": self.machine.name,
                "cluster": {
                    "name": cluster.name,
                    "nodes": n_nodes,
                    "placement": self.placement,
                    "node_split": self.node_split,
                    "fabric": {
                        "latency_s": fabric.latency_s,
                        "bandwidth_gbs": fabric.bandwidth_gbs,
                    },
                    "fabric_shared": self.fabric_shared,
                    "shards": [(s.start, s.stop) for s in shards],
                    "stage_in_s": stage_in_s,
                    "collect_s": collect_s,
                    "node_compute_s": node_compute_s,
                    "node_finish_s": done,
                    "fabric_bytes_in": bytes_in,
                    "fabric_bytes_out": bytes_out,
                    "fabric_bytes_elided": elided,
                    "placement_scatter_bytes": scatter,
                    "placement_scatter_s": [
                        fabric.transfer_time(b) for b in scatter
                    ],
                },
            },
        )


register_backend("cluster", ClusterEngine, aliases=("multinode",))
