"""Cluster descriptions: MachineSpec nodes joined by a network fabric.

A :class:`ClusterSpec` lifts the machine model one level: each *node* is
an ordinary :class:`~repro.machine.spec.MachineSpec` (its devices keep
their intra-node PCIe/NVLink :class:`~repro.machine.interconnect.Link`s),
and the nodes hang off one inter-node *fabric* link costed with the same
Hockney alpha-beta model — Ethernet or InfiniBand tiers from
:mod:`repro.machine.interconnect`.  Node 0 is the **head** node: it holds
the host image of every array, so staging under flat (``head``)
placement serialises on its uplink.

Like machine descriptions, clusters round-trip through JSON
(:meth:`ClusterSpec.from_file` / :meth:`ClusterSpec.to_file`) with strict
key checking: a typo in a cluster file raises
:class:`~repro.errors.MachineSpecError` naming the offending key and
file.

Global device ids are node-major: node 0's devices first, then node 1's,
matching :meth:`ClusterSpec.flatten` — the single flat
:class:`~repro.machine.spec.MachineSpec` the runtime and schedulers see.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import MachineSpecError
from repro.machine.interconnect import INFINIBAND_EDR, Link
from repro.machine.presets import k40_spec
from repro.machine.spec import DeviceSpec, MachineSpec, _check_keys

__all__ = ["ClusterSpec", "gpu_cluster", "homogeneous_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered collection of machine nodes joined by one fabric link."""

    name: str
    nodes: tuple[MachineSpec, ...] = field(default_factory=tuple)
    fabric: Link = INFINIBAND_EDR

    #: Top-level JSON keys of a cluster description file.
    FILE_KEYS = frozenset({"name", "nodes", "fabric"})
    FABRIC_KEYS = frozenset({"latency_s", "bandwidth_gbs"})

    def __post_init__(self) -> None:
        if not self.nodes:
            raise MachineSpecError(f"cluster {self.name!r} has no nodes")
        names = [d.name for node in self.nodes for d in node.devices]
        if len(set(names)) != len(names):
            raise MachineSpecError(
                f"cluster {self.name!r} has duplicate device names across "
                "nodes; namespace them (e.g. 'n0/k40-0')"
            )

    # -- geometry -------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_devices(self) -> int:
        return sum(len(node) for node in self.nodes)

    def device_counts(self) -> tuple[int, ...]:
        return tuple(len(node) for node in self.nodes)

    def node_base(self, node: int) -> int:
        """Global device id of node ``node``'s first device."""
        if not 0 <= node < len(self.nodes):
            raise MachineSpecError(
                f"node id {node} out of range for cluster {self.name!r}"
            )
        return sum(len(n) for n in self.nodes[:node])

    def node_of(self, global_devid: int) -> int:
        """Which node a global device id belongs to."""
        base = 0
        for k, node in enumerate(self.nodes):
            if global_devid < base + len(node):
                if global_devid < base:
                    break
                return k
            base += len(node)
        raise MachineSpecError(
            f"device id {global_devid} out of range for cluster {self.name!r}"
        )

    def local_id(self, global_devid: int) -> int:
        """A global device id's index within its own node."""
        return global_devid - self.node_base(self.node_of(global_devid))

    def flatten(self) -> MachineSpec:
        """The single flat machine the runtime sees (node-major device
        order).  A one-node cluster flattens to its node unchanged, so
        intra-node-only cluster runs are directly comparable — and pinned
        bit-identical — to the ``virtual`` backend on that node."""
        if len(self.nodes) == 1:
            return self.nodes[0]
        return MachineSpec(
            name=self.name,
            devices=tuple(d for node in self.nodes for d in node.devices),
        )

    # -- JSON round-trip -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fabric": {
                "latency_s": self.fabric.latency_s,
                "bandwidth_gbs": (
                    None if self.fabric.is_shared else self.fabric.bandwidth_gbs
                ),
            },
            "nodes": [node.to_dict() for node in self.nodes],
        }

    @classmethod
    def from_dict(
        cls, d: dict, *, source: "str | Path | None" = None
    ) -> "ClusterSpec":
        _check_keys(d, cls.FILE_KEYS, "cluster spec", source)
        fabric_d = d.get("fabric") or {}
        _check_keys(fabric_d, cls.FABRIC_KEYS, "cluster fabric", source)
        try:
            bw = fabric_d.get("bandwidth_gbs")
            fabric = Link(
                latency_s=float(fabric_d.get("latency_s", 0.0)),
                bandwidth_gbs=float("inf") if bw is None else float(bw),
            )
        except ValueError as exc:
            where = f" in {source}" if source is not None else ""
            raise MachineSpecError(f"bad cluster fabric{where}: {exc}") from exc
        try:
            nodes = tuple(
                MachineSpec.from_dict(x, source=source) for x in d["nodes"]
            )
            return cls(name=str(d["name"]), nodes=nodes, fabric=fabric)
        except MachineSpecError:
            raise
        except (KeyError, TypeError) as exc:
            where = f" {source}" if source is not None else ""
            raise MachineSpecError(f"bad cluster spec{where}: {exc}") from exc

    def to_file(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_file(cls, path: str | Path) -> "ClusterSpec":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise MachineSpecError(
                f"cannot read cluster file {path}: {exc}"
            ) from exc
        return cls.from_dict(data, source=path)

    def describe(self) -> str:
        """One line per node, for logs and example output."""
        lines = [
            f"cluster {self.name!r} ({self.n_nodes} nodes, "
            f"{self.n_devices} devices; fabric "
            f"{self.fabric.latency_s * 1e6:.1f} us + "
            f"{self.fabric.bandwidth_gbs:g} GB/s)"
        ]
        for k, node in enumerate(self.nodes):
            lines.append(
                f"  node[{k}] {node.name!r}: {len(node)} devices"
                + (" (head)" if k == 0 else "")
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

def _renamed(spec: DeviceSpec, name: str) -> DeviceSpec:
    return DeviceSpec(
        name=name,
        dev_type=spec.dev_type,
        sustained_gflops=spec.sustained_gflops,
        mem_bandwidth_gbs=spec.mem_bandwidth_gbs,
        model_gflops=spec.model_gflops,
        link=spec.link,
        memory=spec.memory,
        launch_overhead_s=spec.launch_overhead_s,
        sched_overhead_s=spec.sched_overhead_s,
        setup_overhead_s=spec.setup_overhead_s,
        pcie_group=spec.pcie_group,
        noise=spec.noise,
    )


def homogeneous_cluster(
    n_nodes: int,
    node: MachineSpec,
    *,
    fabric: Link = INFINIBAND_EDR,
    name: "str | None" = None,
) -> ClusterSpec:
    """``n_nodes`` copies of ``node`` with device names namespaced
    ``n<k>/<device>`` so the flattened machine stays collision-free."""
    if n_nodes <= 0:
        raise MachineSpecError(f"cluster needs >= 1 node, got {n_nodes}")
    nodes = tuple(
        MachineSpec(
            name=f"n{k}/{node.name}",
            devices=tuple(
                _renamed(d, f"n{k}/{d.name}") for d in node.devices
            ),
        )
        for k in range(n_nodes)
    )
    return ClusterSpec(
        name=name or f"{node.name}x{n_nodes}",
        nodes=nodes,
        fabric=fabric,
    )


def gpu_cluster(
    n_nodes: int,
    gpus_per_node: int = 4,
    *,
    fabric: Link = INFINIBAND_EDR,
    noise: float = 0.0,
    name: "str | None" = None,
) -> ClusterSpec:
    """A cluster of identical K40 GPU nodes (the fig5 machine, scaled out)."""
    if gpus_per_node <= 0:
        raise MachineSpecError(
            f"cluster nodes need >= 1 GPU, got {gpus_per_node}"
        )
    node = MachineSpec(
        name=f"gpu{gpus_per_node}",
        devices=tuple(
            k40_spec(f"k40-{i}", noise=noise) for i in range(gpus_per_node)
        ),
    )
    return homogeneous_cluster(
        n_nodes,
        node,
        fabric=fabric,
        name=name or f"gpu{gpus_per_node}x{n_nodes}",
    )
