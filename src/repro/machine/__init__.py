"""Simulated heterogeneous machine: device specs, interconnect, presets.

This package replaces the paper's physical node (2x Xeon E5-2699 v3,
4x NVIDIA K40, 2x Xeon Phi 7120P).  See DESIGN.md section 2 for why a
spec-calibrated model preserves the scheduling behaviour the paper studies.
"""

from repro.machine.spec import DeviceSpec, DeviceType, MachineSpec, MemoryKind
from repro.machine.interconnect import (
    ETHERNET_10GBE,
    ETHERNET_100GBE,
    INFINIBAND_EDR,
    INFINIBAND_HDR,
    Link,
    SHARED_LINK,
)
from repro.machine.device import Device
from repro.machine.presets import (
    cpu_spec,
    k40_spec,
    k40_unified_spec,
    mic_spec,
    gpu4_node,
    cpu_mic_node,
    full_node,
    homogeneous_node,
)

__all__ = [
    "DeviceSpec",
    "DeviceType",
    "MachineSpec",
    "MemoryKind",
    "Link",
    "SHARED_LINK",
    "ETHERNET_10GBE",
    "ETHERNET_100GBE",
    "INFINIBAND_EDR",
    "INFINIBAND_HDR",
    "Device",
    "cpu_spec",
    "k40_spec",
    "k40_unified_spec",
    "mic_spec",
    "gpu4_node",
    "cpu_mic_node",
    "full_node",
    "homogeneous_node",
]
