"""Host<->device links costed with the Hockney alpha-beta model.

The paper's MODEL_2_AUTO prices data movement with Hockney's model [11]:
``T(n) = alpha + n / beta`` for an ``n``-byte message, where ``alpha`` is
the fixed link latency and ``beta`` the asymptotic bandwidth.  The same
model drives the *simulated* transfer cost, so the analytical scheduler is
exact on this machine unless noise is enabled — which lets tests separate
model error from scheduling error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import gbs_to_bytes_per_s

__all__ = ["Link", "SHARED_LINK"]


@dataclass(frozen=True, slots=True)
class Link:
    """A host-to-device link: ``latency_s`` (alpha) + ``bandwidth_gbs`` (beta).

    A *shared* link models a device living in the host address space (host
    CPUs, or unified memory treated as shared): transfers cost nothing and
    ``is_shared`` is True.
    """

    latency_s: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_gbs <= 0 and not self.is_shared:
            raise ValueError(f"link bandwidth must be > 0, got {self.bandwidth_gbs}")

    @property
    def is_shared(self) -> bool:
        return self.bandwidth_gbs == float("inf")

    def transfer_time(self, nbytes: float) -> float:
        """Hockney cost of moving ``nbytes`` across this link, in seconds."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0 or self.is_shared:
            return 0.0
        return self.latency_s + nbytes / gbs_to_bytes_per_s(self.bandwidth_gbs)

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bytes/s for an ``nbytes`` message (latency included)."""
        t = self.transfer_time(nbytes)
        if t == 0.0:
            return float("inf")
        return nbytes / t


#: Link for devices sharing the host memory space (zero-cost "transfers").
SHARED_LINK = Link(latency_s=0.0, bandwidth_gbs=float("inf"))
