"""Host<->device and node<->node links costed with the Hockney model.

The paper's MODEL_2_AUTO prices data movement with Hockney's model [11]:
``T(n) = alpha + n / beta`` for an ``n``-byte message, where ``alpha`` is
the fixed link latency and ``beta`` the asymptotic bandwidth.  The same
model drives the *simulated* transfer cost, so the analytical scheduler is
exact on this machine unless noise is enabled — which lets tests separate
model error from scheduling error.

The cluster layer (:mod:`repro.cluster`) reuses the same :class:`Link`
for its inter-node fabric; the presets below give the two tiers the
ROADMAP names (intra-node PCIe/NVLink on the :class:`~repro.machine.spec.
DeviceSpec`, inter-node Ethernet/InfiniBand on the
:class:`~repro.cluster.ClusterSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import gbs_to_bytes_per_s

__all__ = [
    "Link",
    "SHARED_LINK",
    "ETHERNET_10GBE",
    "ETHERNET_100GBE",
    "INFINIBAND_EDR",
    "INFINIBAND_HDR",
]


@dataclass(frozen=True, slots=True)
class Link:
    """A data link: ``latency_s`` (alpha) + ``bandwidth_gbs`` (beta).

    A *shared* link (``bandwidth_gbs == inf``) models a device living in
    the host address space (host CPUs, or unified memory treated as
    shared): transfers cost nothing and ``is_shared`` is True.  Because a
    shared link never charges anything, a nonzero ``latency_s`` on one
    would be silently dropped — such links are rejected at construction
    (alpha can only be charged by a link that actually transfers).

    Empty-transfer contract: ``transfer_time(0) == 0.0`` on *every* link.
    Hockney's formula gives ``T(0) = alpha``, but this model treats a
    zero-byte message as "no launch happened" — nothing crosses the wire,
    so nothing pays the latency.  Consequently ``effective_bandwidth(0)``
    is ``inf`` (zero bytes in zero seconds).  The first nonzero byte pays
    the full alpha: ``transfer_time(n) >= latency_s`` for ``n > 0``.
    """

    latency_s: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_gbs <= 0 and not self.is_shared:
            raise ValueError(f"link bandwidth must be > 0, got {self.bandwidth_gbs}")
        if self.is_shared and self.latency_s != 0.0:
            raise ValueError(
                f"shared link cannot carry a latency (got {self.latency_s}s): "
                "shared links never charge transfers, so the alpha would be "
                "silently dropped — use a finite bandwidth to model a link "
                "with latency"
            )

    @property
    def is_shared(self) -> bool:
        return self.bandwidth_gbs == float("inf")

    def transfer_time(self, nbytes: float) -> float:
        """Hockney cost of moving ``nbytes`` across this link, in seconds.

        Zero bytes are free (no launch, see the class docstring); any
        positive size pays ``latency_s + nbytes / bandwidth``.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0 or self.is_shared:
            return 0.0
        return self.latency_s + nbytes / gbs_to_bytes_per_s(self.bandwidth_gbs)

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bytes/s for an ``nbytes`` message (latency included).

        ``inf`` for zero-byte messages (free by contract) and on shared
        links (no wire to cross).
        """
        t = self.transfer_time(nbytes)
        if t == 0.0:
            return float("inf")
        return nbytes / t


#: Link for devices sharing the host memory space (zero-cost "transfers").
SHARED_LINK = Link(latency_s=0.0, bandwidth_gbs=float("inf"))

# -- inter-node fabric tiers (repro.cluster) ---------------------------------
#
# Effective figures for common cluster interconnects of the paper's era and
# after; as with the device presets, only the *ratios* against the
# intra-node PCIe links (~15 us + 11 GB/s) matter for crossover shapes.

#: Commodity 10 GbE (TCP): high latency, ~1.25 GB/s line rate.
ETHERNET_10GBE = Link(latency_s=50e-6, bandwidth_gbs=1.25)
#: 100 GbE with RoCE-class latency.
ETHERNET_100GBE = Link(latency_s=10e-6, bandwidth_gbs=12.5)
#: InfiniBand EDR (100 Gb/s, RDMA microsecond-class latency).
INFINIBAND_EDR = Link(latency_s=1.5e-6, bandwidth_gbs=12.0)
#: InfiniBand HDR (200 Gb/s).
INFINIBAND_HDR = Link(latency_s=1.0e-6, bandwidth_gbs=24.0)
