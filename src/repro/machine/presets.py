"""Machine presets calibrated to the paper's evaluation node.

The paper evaluates on: 2x Intel Xeon E5-2699 v3 (Haswell, 18 cores),
4x NVIDIA K40 (two K80 dual-GPU cards), 2x Intel Xeon Phi SC7120P.
Numbers below are sustained rates and effective bus figures from public
spec sheets and common microbenchmark results for that generation:

==========  =============  ==========  ======================  =========
device      sustained DP   mem BW      PCIe link               overheads
==========  =============  ==========  ======================  =========
E5-2699 v3  ~350 GFLOP/s   ~60 GB/s    shared (host memory)    ~5 us fork
K40         ~1100 GFLOP/s  ~210 GB/s   ~15 us + 11 GB/s        ~12 us launch
Phi 7120P   ~250 GFLOP/s   ~160 GB/s   ~40 us + 6.5 GB/s       ~80 us offload
==========  =============  ==========  ======================  =========

The MIC figure reflects the paper's own observation that its MICs rarely
earn a spot past the 15% CUTOFF: sustained throughput of generic offloaded
OpenMP loops on KNC was far below peak, and offload-mode launch cost was an
order of magnitude above a CUDA launch.  Only the *ratios* between these
numbers matter for reproducing who-wins/crossover shapes.
"""

from __future__ import annotations

from repro.machine.interconnect import Link, SHARED_LINK
from repro.machine.spec import DeviceSpec, DeviceType, MachineSpec, MemoryKind

__all__ = [
    "cpu_spec",
    "k40_spec",
    "k40_unified_spec",
    "mic_spec",
    "gpu4_node",
    "gpu4_k80_paired_node",
    "cpu_mic_node",
    "full_node",
    "homogeneous_node",
]


def cpu_spec(name: str = "xeon-e5-2699v3", *, noise: float = 0.0) -> DeviceSpec:
    """One Haswell socket acting as a host computation device."""
    return DeviceSpec(
        name=name,
        dev_type=DeviceType.HOSTCPU,
        sustained_gflops=350.0,
        mem_bandwidth_gbs=60.0,
        link=SHARED_LINK,
        memory=MemoryKind.SHARED,
        launch_overhead_s=5e-6,
        sched_overhead_s=1e-6,
        setup_overhead_s=2e-6,
        noise=noise,
    )


def k40_spec(name: str = "k40", *, noise: float = 0.0) -> DeviceSpec:
    """One NVIDIA K40 GPU (half of a K80 card) behind PCIe gen3."""
    return DeviceSpec(
        name=name,
        dev_type=DeviceType.NVGPU,
        sustained_gflops=1100.0,
        mem_bandwidth_gbs=210.0,
        link=Link(latency_s=15e-6, bandwidth_gbs=11.0),
        memory=MemoryKind.DISCRETE,
        launch_overhead_s=12e-6,
        sched_overhead_s=2e-6,
        setup_overhead_s=150e-6,
        noise=noise,
    )


def mic_spec(name: str = "phi-7120p", *, noise: float = 0.0) -> DeviceSpec:
    """One Xeon Phi SC7120P in offload mode."""
    return DeviceSpec(
        name=name,
        dev_type=DeviceType.MIC,
        sustained_gflops=250.0,
        # KNC's DGEMM microbenchmark sustains ~850 GFLOP/s, which is what a
        # microbenchmark-calibrated model believes; generic offloaded loops
        # reach nowhere near that.  This gap is the paper's mispredicted-MIC
        # story (MICs get cut by CUTOFF on most workloads).
        model_gflops=850.0,
        mem_bandwidth_gbs=160.0,
        link=Link(latency_s=40e-6, bandwidth_gbs=6.5),
        memory=MemoryKind.DISCRETE,
        launch_overhead_s=80e-6,
        sched_overhead_s=2e-6,
        setup_overhead_s=600e-6,
        noise=noise,
    )


def k40_unified_spec(name: str = "k40um", *, noise: float = 0.0) -> DeviceSpec:
    """A K40 with CUDA unified memory enabled (paper §V.C's comparison).

    Identical silicon and link, but the runtime shares data with it
    semantically and the engine charges driver-managed page migration
    instead of explicit copies.
    """
    base = k40_spec(name, noise=noise)
    return DeviceSpec(
        name=base.name,
        dev_type=base.dev_type,
        sustained_gflops=base.sustained_gflops,
        mem_bandwidth_gbs=base.mem_bandwidth_gbs,
        link=base.link,
        memory=MemoryKind.UNIFIED,
        launch_overhead_s=base.launch_overhead_s,
        sched_overhead_s=base.sched_overhead_s,
        setup_overhead_s=base.setup_overhead_s,
        noise=base.noise,
    )


def gpu4_node(n_gpus: int = 4, *, noise: float = 0.0) -> MachineSpec:
    """The 4-identical-GPU configuration of paper Figs. 5-7."""
    return MachineSpec(
        name=f"gpu{n_gpus}",
        devices=tuple(k40_spec(f"k40-{i}", noise=noise) for i in range(n_gpus)),
    )


def gpu4_k80_paired_node(*, noise: float = 0.0) -> MachineSpec:
    """The gpu4 node with the physical truth of its K80 packaging: the two
    K40s of each card share one PCIe slot (`pcie_group`), so their
    transfers contend.  Used by the contention ablation; the default
    `gpu4_node` keeps dedicated links (the calibration the figures use).
    """
    def gpu(i: int) -> DeviceSpec:
        base = k40_spec(f"k40-{i}", noise=noise)
        return DeviceSpec(
            name=base.name,
            dev_type=base.dev_type,
            sustained_gflops=base.sustained_gflops,
            mem_bandwidth_gbs=base.mem_bandwidth_gbs,
            link=base.link,
            memory=base.memory,
            launch_overhead_s=base.launch_overhead_s,
            sched_overhead_s=base.sched_overhead_s,
            setup_overhead_s=base.setup_overhead_s,
            pcie_group=f"k80-card-{i // 2}",
            noise=base.noise,
        )

    return MachineSpec(name="gpu4-k80", devices=tuple(gpu(i) for i in range(4)))


def cpu_mic_node(*, noise: float = 0.0) -> MachineSpec:
    """The 2 CPUs + 2 MICs configuration of paper Fig. 8."""
    return MachineSpec(
        name="cpu2+mic2",
        devices=(
            cpu_spec("cpu-0", noise=noise),
            cpu_spec("cpu-1", noise=noise),
            mic_spec("mic-0", noise=noise),
            mic_spec("mic-1", noise=noise),
        ),
    )


def full_node(*, noise: float = 0.0) -> MachineSpec:
    """The full node of paper Fig. 9: 2 CPUs + 4 GPUs + 2 MICs.

    Device ids follow the paper's convention of hosts first.
    """
    return MachineSpec(
        name="cpu2+gpu4+mic2",
        devices=(
            cpu_spec("cpu-0", noise=noise),
            cpu_spec("cpu-1", noise=noise),
            k40_spec("k40-0", noise=noise),
            k40_spec("k40-1", noise=noise),
            k40_spec("k40-2", noise=noise),
            k40_spec("k40-3", noise=noise),
            mic_spec("mic-0", noise=noise),
            mic_spec("mic-1", noise=noise),
        ),
    )


def homogeneous_node(n: int, base: DeviceSpec | None = None) -> MachineSpec:
    """``n`` identical devices — used widely in unit and property tests."""
    base = base or k40_spec()
    devices = tuple(
        DeviceSpec(
            name=f"{base.name}-{i}",
            dev_type=base.dev_type,
            sustained_gflops=base.sustained_gflops,
            mem_bandwidth_gbs=base.mem_bandwidth_gbs,
            link=base.link,
            memory=base.memory,
            model_gflops=base.model_gflops,
            launch_overhead_s=base.launch_overhead_s,
            sched_overhead_s=base.sched_overhead_s,
            setup_overhead_s=base.setup_overhead_s,
            noise=base.noise,
        )
        for i in range(n)
    )
    return MachineSpec(name=f"homogeneous{n}", devices=devices)
