"""Device and machine specifications, plus the machine description file.

The HOMP runtime "reads from a given machine description file the
specification of host CPU and accelerators" (paper section V).  Here that
file is JSON; :meth:`MachineSpec.from_file` / :meth:`MachineSpec.to_file`
round-trip it.  A :class:`DeviceSpec` carries exactly the parameters the
paper's models consume: sustained FLOP/s (``Perf_dev``), memory bandwidth,
the Hockney link, and whether the device's memory is shared with the host
or discrete (which decides copy-vs-share in the data mapper).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from enum import Enum
from pathlib import Path
from typing import Iterable

from repro.errors import MachineSpecError
from repro.machine.interconnect import Link, SHARED_LINK

__all__ = ["DeviceType", "MemoryKind", "DeviceSpec", "MachineSpec"]


def _check_keys(
    d: dict, allowed: frozenset[str], what: str, source: "str | Path | None"
) -> None:
    """Reject unknown/extra JSON keys with a :class:`MachineSpecError`.

    Machine (and cluster) description files are hand-edited; a typo like
    ``"latencys"`` must name the offending key and the file it came from,
    not surface as a bare ``TypeError`` from a dataclass constructor.
    """
    unknown = sorted(set(d) - allowed)
    if unknown:
        where = f" in {source}" if source is not None else ""
        raise MachineSpecError(
            f"unknown key{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(k) for k in unknown)} in {what}{where}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


class DeviceType(str, Enum):
    """Device type filters, as used in ``device(0:*:HOMP_DEVICE_NVGPU)``."""

    HOSTCPU = "HOMP_DEVICE_HOSTCPU"
    NVGPU = "HOMP_DEVICE_NVGPU"
    MIC = "HOMP_DEVICE_MIC"

    @classmethod
    def parse(cls, token: str) -> "DeviceType":
        """Accept both the full ``HOMP_DEVICE_*`` spelling and short names."""
        t = token.strip().upper()
        if not t.startswith("HOMP_DEVICE_"):
            t = "HOMP_DEVICE_" + t
        for member in cls:
            if member.value == t:
                return member
        raise MachineSpecError(f"unknown device type {token!r}")

    @property
    def short(self) -> str:
        return self.value.removeprefix("HOMP_DEVICE_")


class MemoryKind(str, Enum):
    """Memory relationship between a device and the host.

    ``SHARED``   - same address space (host CPUs): data is shared, never copied.
    ``DISCRETE`` - separate device memory (GPU/MIC): data is copied over the link.
    ``UNIFIED``  - CUDA-style unified memory: shared semantics, but pages
                   migrate on demand over the bus (slow; see §V.C).
    """

    SHARED = "shared"
    DISCRETE = "discrete"
    UNIFIED = "unified"


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Static description of one computation device.

    ``sustained_gflops`` is the *sustained* double-precision rate the
    analytical models use as ``Perf_dev`` — not the marketing peak.
    ``mem_bandwidth_gbs`` caps memory-bound kernels (roofline).
    ``launch_overhead_s`` is paid once per kernel launch (per chunk), which
    is what makes many tiny chunks expensive for dynamic scheduling.
    """

    name: str
    dev_type: DeviceType
    sustained_gflops: float
    mem_bandwidth_gbs: float
    #: The throughput the *analytical models* believe this device has
    #: (``Perf_dev`` in Table III, obtained "through microbenchmark
    #: profiling" in the paper).  Defaults to the true sustained rate; set
    #: it higher to reproduce the paper's systematic overprediction of KNC
    #: devices, whose DGEMM microbenchmarks sustain far more than generic
    #: offloaded loops.  None means "same as sustained_gflops".
    model_gflops: float | None = None
    link: Link = SHARED_LINK
    memory: MemoryKind = MemoryKind.SHARED
    launch_overhead_s: float = 0.0
    sched_overhead_s: float = 2e-6
    #: One-off per-offload cost of involving this device at all: buffer
    #: allocation, stream/offload-daemon setup.  Deliberately *not* priced
    #: by the analytical models (the paper's models ignore it too) — this
    #: is the unmodeled overhead that makes the CUTOFF heuristic valuable.
    setup_overhead_s: float = 0.0
    #: Devices sharing a PCIe slot (the paper's K80 cards put two K40s
    #: behind one x16 link) name a common group here; their transfers then
    #: contend for one bus in the engine.  None = dedicated link.
    pcie_group: str | None = None
    noise: float = 0.0  # lognormal sigma on per-chunk compute time

    def __post_init__(self) -> None:
        if self.sustained_gflops <= 0:
            raise MachineSpecError(
                f"device {self.name!r}: sustained_gflops must be > 0"
            )
        if self.model_gflops is not None and self.model_gflops <= 0:
            raise MachineSpecError(
                f"device {self.name!r}: model_gflops must be > 0"
            )
        if self.mem_bandwidth_gbs <= 0:
            raise MachineSpecError(
                f"device {self.name!r}: mem_bandwidth_gbs must be > 0"
            )
        if (
            self.launch_overhead_s < 0
            or self.sched_overhead_s < 0
            or self.setup_overhead_s < 0
        ):
            raise MachineSpecError(f"device {self.name!r}: overheads must be >= 0")
        if self.noise < 0:
            raise MachineSpecError(f"device {self.name!r}: noise must be >= 0")
        if self.memory is MemoryKind.SHARED and not self.link.is_shared:
            raise MachineSpecError(
                f"device {self.name!r}: shared-memory device must use SHARED_LINK"
            )

    @property
    def is_host(self) -> bool:
        return self.dev_type is DeviceType.HOSTCPU

    @property
    def modeled_gflops(self) -> float:
        """What the analytical models use as Perf_dev."""
        return self.model_gflops if self.model_gflops is not None else self.sustained_gflops

    def to_dict(self) -> dict:
        d = asdict(self)
        d["dev_type"] = self.dev_type.value
        d["memory"] = self.memory.value
        d["link"] = {
            "latency_s": self.link.latency_s,
            "bandwidth_gbs": None if self.link.is_shared else self.link.bandwidth_gbs,
        }
        return d

    #: JSON keys a device entry may carry (see :func:`_check_keys`).
    FILE_KEYS = frozenset(
        {
            "name", "dev_type", "sustained_gflops", "mem_bandwidth_gbs",
            "model_gflops", "link", "memory", "launch_overhead_s",
            "sched_overhead_s", "setup_overhead_s", "pcie_group", "noise",
        }
    )
    LINK_KEYS = frozenset({"latency_s", "bandwidth_gbs"})

    @classmethod
    def from_dict(
        cls, d: dict, *, source: "str | Path | None" = None
    ) -> "DeviceSpec":
        _check_keys(d, cls.FILE_KEYS, f"device spec {d.get('name')!r}", source)
        link_d = d.get("link") or {}
        _check_keys(
            link_d, cls.LINK_KEYS, f"link of device {d.get('name')!r}", source
        )
        try:
            bw = link_d.get("bandwidth_gbs")
            link = Link(
                latency_s=float(link_d.get("latency_s", 0.0)),
                bandwidth_gbs=float("inf") if bw is None else float(bw),
            )
            return cls(
                name=str(d["name"]),
                dev_type=DeviceType.parse(str(d["dev_type"])),
                sustained_gflops=float(d["sustained_gflops"]),
                mem_bandwidth_gbs=float(d["mem_bandwidth_gbs"]),
                model_gflops=(
                    float(d["model_gflops"])
                    if d.get("model_gflops") is not None
                    else None
                ),
                link=link,
                memory=MemoryKind(d.get("memory", "shared")),
                launch_overhead_s=float(d.get("launch_overhead_s", 0.0)),
                sched_overhead_s=float(d.get("sched_overhead_s", 2e-6)),
                setup_overhead_s=float(d.get("setup_overhead_s", 0.0)),
                pcie_group=d.get("pcie_group"),
                noise=float(d.get("noise", 0.0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise MachineSpecError(f"bad device spec {d!r}: {exc}") from exc


@dataclass(frozen=True)
class MachineSpec:
    """An ordered collection of devices; index = HOMP device id."""

    name: str
    devices: tuple[DeviceSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.devices:
            raise MachineSpecError(f"machine {self.name!r} has no devices")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise MachineSpecError(f"machine {self.name!r} has duplicate device names")

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, devid: int) -> DeviceSpec:
        return self.devices[devid]

    @property
    def host_ids(self) -> tuple[int, ...]:
        return tuple(i for i, d in enumerate(self.devices) if d.is_host)

    def ids_of_type(self, dev_type: DeviceType) -> tuple[int, ...]:
        return tuple(i for i, d in enumerate(self.devices) if d.dev_type is dev_type)

    def subset(self, ids: Iterable[int], *, name: str | None = None) -> "MachineSpec":
        """A machine restricted to the given device ids (order preserved)."""
        ids = list(ids)
        for i in ids:
            if not 0 <= i < len(self.devices):
                raise MachineSpecError(f"device id {i} out of range for {self.name!r}")
        return MachineSpec(
            name=name or f"{self.name}[{','.join(map(str, ids))}]",
            devices=tuple(self.devices[i] for i in ids),
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "devices": [d.to_dict() for d in self.devices]}

    #: Top-level JSON keys of a machine description file.
    FILE_KEYS = frozenset({"name", "devices"})

    @classmethod
    def from_dict(
        cls, d: dict, *, source: "str | Path | None" = None
    ) -> "MachineSpec":
        _check_keys(d, cls.FILE_KEYS, "machine spec", source)
        try:
            devices = tuple(
                DeviceSpec.from_dict(x, source=source) for x in d["devices"]
            )
            return cls(name=str(d["name"]), devices=devices)
        except MachineSpecError:
            raise
        except (KeyError, TypeError) as exc:
            where = f" {source}" if source is not None else ""
            raise MachineSpecError(f"bad machine spec{where}: {exc}") from exc

    def to_file(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_file(cls, path: str | Path) -> "MachineSpec":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise MachineSpecError(f"cannot read machine file {path}: {exc}") from exc
        return cls.from_dict(data, source=path)

    def describe(self) -> str:
        """One line per device, for logs and example output."""
        lines = [f"machine {self.name!r} ({len(self)} devices)"]
        for i, d in enumerate(self.devices):
            lines.append(
                f"  [{i}] {d.name}: {d.dev_type.short}, "
                f"{d.sustained_gflops:.0f} GFLOP/s, "
                f"{d.mem_bandwidth_gbs:.0f} GB/s mem, {d.memory.value} memory"
            )
        return "\n".join(lines)
