"""Runtime device object: spec + id + the cost model the simulator charges.

Compute cost follows the roofline shape the paper's heuristics assume:
a chunk doing ``flops`` of arithmetic over ``mem_bytes`` of device-memory
traffic takes ``max(flops/Perf_dev, mem_bytes/BW_dev)`` plus a per-launch
overhead.  Transfer cost is the Hockney model on the device's link.
Optional multiplicative lognormal noise (seeded per device) makes dynamic
scheduling face realistic run-to-run variation without losing determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.spec import DeviceSpec, MemoryKind
from repro.util.units import gbs_to_bytes_per_s, gflops_to_flops

__all__ = ["Device"]


@dataclass
class Device:
    """One computation device instantiated in a running machine."""

    devid: int
    spec: DeviceSpec
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # Per-device stream: noise draws are reproducible and independent of
        # how other devices interleave.
        self._rng = np.random.default_rng(0x60D5EED + self.devid)

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_host(self) -> bool:
        return self.spec.is_host

    @property
    def shares_host_memory(self) -> bool:
        return self.spec.memory is not MemoryKind.DISCRETE

    def reseed(self, seed: int) -> None:
        """Reset the noise stream (used to replay a simulation exactly)."""
        self._rng = np.random.default_rng((0x60D5EED + self.devid) ^ seed)

    # -- cost model ---------------------------------------------------------

    def compute_time(self, flops: float, mem_bytes: float, *, noisy: bool = True) -> float:
        """Roofline time for one kernel launch over a chunk, in seconds."""
        if flops < 0 or mem_bytes < 0:
            raise ValueError("flops and mem_bytes must be >= 0")
        t_compute = flops / gflops_to_flops(self.spec.sustained_gflops)
        t_memory = mem_bytes / gbs_to_bytes_per_s(self.spec.mem_bandwidth_gbs)
        t = max(t_compute, t_memory) + self.spec.launch_overhead_s
        if noisy and self.spec.noise > 0:
            t *= float(self._rng.lognormal(mean=0.0, sigma=self.spec.noise))
        return t

    def transfer_time(self, nbytes: float) -> float:
        """Hockney cost of moving ``nbytes`` between host and this device."""
        if self.shares_host_memory and self.spec.memory is MemoryKind.SHARED:
            return 0.0
        return self.spec.link.transfer_time(nbytes)

    def throughput_iters_per_s(
        self, flops_per_iter: float, mem_bytes_per_iter: float
    ) -> float:
        """Steady-state iterations/second for a uniform loop (no launch cost).

        This is the paper's ``f_i`` (Eq. 2) for data-parallel loops: the
        per-iteration cost is constant, so throughput is its reciprocal.
        """
        per_iter = max(
            flops_per_iter / gflops_to_flops(self.spec.sustained_gflops),
            mem_bytes_per_iter / gbs_to_bytes_per_s(self.spec.mem_bandwidth_gbs),
        )
        if per_iter <= 0.0:
            return float("inf")
        return 1.0 / per_iter
