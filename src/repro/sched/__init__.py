"""The seven loop-distribution algorithms of paper Table II, the CUTOFF
device-selection heuristic, and the roofline-based algorithm selector."""

from repro.sched.base import LoopScheduler, SchedContext, BARRIER, Decision
from repro.sched.block import BlockScheduler
from repro.sched.dynamic import DynamicScheduler
from repro.sched.guided import GuidedScheduler
from repro.sched.model1 import Model1Scheduler
from repro.sched.model2 import Model2Scheduler
from repro.sched.profile_const import ProfileScheduler
from repro.sched.profile_model import ModelProfileScheduler
from repro.sched.align_sched import AlignedScheduler
from repro.sched.history import HistoryDB, HistoryScheduler
from repro.sched.stream_rebalance import StreamRebalanceScheduler
from repro.sched.worksteal import WorkStealingScheduler
from repro.sched.cutoff import apply_cutoff, default_cutoff_ratio
from repro.sched.registry import (
    SCHEDULERS,
    make_scheduler,
    ALGORITHM_TABLE,
    EXTENSION_TABLE,
    AlgorithmInfo,
)
from repro.sched.selector import select_algorithm

__all__ = [
    "LoopScheduler",
    "SchedContext",
    "BARRIER",
    "Decision",
    "BlockScheduler",
    "DynamicScheduler",
    "GuidedScheduler",
    "Model1Scheduler",
    "Model2Scheduler",
    "ProfileScheduler",
    "ModelProfileScheduler",
    "AlignedScheduler",
    "HistoryDB",
    "HistoryScheduler",
    "StreamRebalanceScheduler",
    "WorkStealingScheduler",
    "apply_cutoff",
    "default_cutoff_ratio",
    "SCHEDULERS",
    "make_scheduler",
    "ALGORITHM_TABLE",
    "EXTENSION_TABLE",
    "AlgorithmInfo",
    "select_algorithm",
]
