"""ALIGN loop distribution: ``dist_schedule(target:[ALIGN(x)])``.

The paper's ``axpy_homp_v1``: the arrays are partitioned first (e.g.
BLOCK) and the loop's chunks are *copies* of the array subregion ranges,
so each device computes exactly the iterations whose data it holds.  This
is the "align computation with data" direction; it is not one of the seven
load-balancing algorithms (Table II) but a distribution policy (Table I).
"""

from __future__ import annotations

from repro.dist.align import AlignmentGraph
from repro.dist.distribution import DimDistribution
from repro.dist.policy import Align
from repro.errors import SchedulingError
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.util.ranges import IterRange

__all__ = ["AlignedScheduler"]


class AlignedScheduler(LoopScheduler):
    notation = "ALIGN"
    stages = 1
    supports_cutoff = False
    batch_vectorizable = True  # per-device range lists are fixed in start()

    def __init__(self, target: str, ratio: float = 1.0):
        super().__init__()
        if not target:
            raise SchedulingError("ALIGN schedule needs a target array name")
        self.target = target
        self.ratio = ratio

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        kernel = ctx.kernel
        the_map = next(
            (m for m in kernel.effective_maps() if m.name == self.target), None
        )
        if the_map is None:
            raise SchedulingError(
                f"ALIGN({self.target}): kernel {kernel.name!r} maps no such array"
            )
        policy = the_map.policies[0]
        if isinstance(policy, Align):
            # The array itself aligns with the loop: circular. The paper's
            # alignment graph rejects this as a cycle.
            raise SchedulingError(
                f"ALIGN({self.target}): array aligns with the loop — "
                "use a concrete partition (e.g. BLOCK) on the array"
            )
        if policy.needs_runtime:
            raise SchedulingError(
                f"ALIGN({self.target}): array dim-0 policy {policy} is not static"
            )
        extent = IterRange(0, kernel.arrays[self.target].shape[0])
        graph = AlignmentGraph()
        graph.add_concrete(
            self.target, DimDistribution.from_policy(policy, extent, ctx.ndev)
        )
        graph.add_align(kernel.label, Align(self.target, self.ratio))
        loop_dist = graph.resolve(kernel.label)
        if len(loop_dist.region) != ctx.n_iters:
            raise SchedulingError(
                f"ALIGN({self.target}): aligned extent {len(loop_dist.region)} "
                f"!= iteration count {ctx.n_iters} (wrong ratio?)"
            )
        self._chunks = [loop_dist.device_ranges(d) for d in range(ctx.ndev)]
        self._cursor = [0] * ctx.ndev

    def next(self, devid: int) -> Decision:
        i = self._cursor[devid]
        ranges = self._chunks[devid]
        while i < len(ranges) and ranges[i].empty:
            i += 1
        if i >= len(ranges):
            self._cursor[devid] = i
            return None
        self._cursor[devid] = i + 1
        return ranges[i]

    def describe(self) -> str:
        return f"ALIGN({self.target})"

