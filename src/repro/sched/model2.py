"""Compute + data-movement analytical model — MODEL_2_AUTO (paper §IV.B.2).

Extends MODEL_1 with the Hockney-model data-transfer term of Eq. 4-5:
each device's time for a chunk is ``DataT_dev + ExeT_dev``, so the
per-iteration rate includes the aligned bytes crossing the PCIe link, and
the fixed cost includes launch overhead, link latencies and the broadcast
of FULL-mapped arrays.  Host devices pay no transfer, which is exactly why
this model shifts work toward the host for data-intensive kernels.

Inside a target-data region both terms come from the residency view
(:class:`~repro.sched.base.SchedContext` consults the region's placement
plan through ``ctx.residency``): already-staged arrays contribute zero
``DataT``/broadcast bytes, and rows a dropout wiped re-enter the bill, so
the equal-time solution reflects what will actually cross the bus.
"""

from __future__ import annotations

from repro.model.linear_system import solve_equal_time_partition
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.sched.cutoff import apply_cutoff
from repro.util.ranges import IterRange, split_by_weights

__all__ = ["Model2Scheduler"]


class Model2Scheduler(LoopScheduler):
    notation = "MODEL_2_AUTO"
    stages = 1
    supports_cutoff = True
    batch_vectorizable = True  # split is fixed in start(); next() is static

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        per_iter = [ctx.per_iter_total_s(d) for d in range(ctx.ndev)]
        fixed = [ctx.fixed_cost_s(d) for d in range(ctx.ndev)]

        solution = solve_equal_time_partition(per_iter, fixed, ctx.n_iters)
        shares = list(solution.shares)

        def resolve(survivors: list[int]) -> list[float]:
            sub = solve_equal_time_partition(
                [per_iter[i] for i in survivors],
                [fixed[i] for i in survivors],
                ctx.n_iters,
            )
            return list(sub.shares)

        shares = apply_cutoff(shares, ctx.cutoff_ratio, resolve)
        self._chunks: list[IterRange] = split_by_weights(ctx.iter_space, shares)
        self._served = [False] * ctx.ndev

    def next(self, devid: int) -> Decision:
        if self._served[devid]:
            return None
        self._served[devid] = True
        chunk = self._chunks[devid]
        return None if chunk.empty else chunk

    def device_lost(self, devid: int) -> list[IterRange]:
        # Surrender the unclaimed static share of a dropped device.
        if self._served[devid]:
            return []
        self._served[devid] = True
        chunk = self._chunks[devid]
        return [] if chunk.empty else [chunk]

    def describe(self) -> str:
        cutoff = self.ctx.cutoff_ratio if self._ctx is not None else 0.0
        return f"{self.notation},-1,{cutoff:.0%}"
