"""Dynamic chunking — SCHED_DYNAMIC (paper §IV.A.2).

A shared cursor over the iteration space; every device that finishes a
chunk grabs the next fixed-size chunk (the paper's proxy threads use a
compare-and-swap; the engine serialises requests in virtual-time order,
which is the same linearisation).  Faster devices naturally take more
chunks.  The chunk size is the critical knob: the paper's evaluation uses
2% of the iteration space.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.util.ranges import IterRange

__all__ = ["DynamicScheduler"]

DEFAULT_CHUNK_PCT = 0.02  # the paper's "SCHED_DYNAMIC,2%"


class DynamicScheduler(LoopScheduler):
    notation = "SCHED_DYNAMIC"
    stages = -1  # "multiple" in Table II
    supports_cutoff = False

    def __init__(self, chunk_pct: float = DEFAULT_CHUNK_PCT):
        super().__init__()
        if not 0.0 < chunk_pct <= 1.0:
            raise SchedulingError(f"chunk_pct must be in (0, 1], got {chunk_pct}")
        self.chunk_pct = chunk_pct

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        self._cursor = ctx.iter_space.start
        self._stop = ctx.iter_space.stop
        self._chunk = max(1, round(ctx.n_iters * self.chunk_pct))
        self._requeued: list[IterRange] = []

    def next(self, devid: int) -> Decision:
        # Orphans handed back by the fault-injecting engine rejoin the
        # shared cursor's stream first, re-chunked at the configured size.
        while self._requeued:
            head, rest = self._requeued[0].take(self._chunk)
            if rest.empty:
                self._requeued.pop(0)
            else:
                self._requeued[0] = rest
            if not head.empty:
                return head
        if self._cursor >= self._stop:
            return None
        start = self._cursor
        stop = min(start + self._chunk, self._stop)
        self._cursor = stop
        return IterRange(start, stop)

    def requeue(self, chunk: IterRange) -> bool:
        if not chunk.empty:
            self._requeued.append(chunk)
        return True

    def describe(self) -> str:
        return f"{self.notation},{self.chunk_pct:.0%}"
