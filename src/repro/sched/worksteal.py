"""Work-stealing loop distribution (extension; paper related work).

The paper contrasts HOMP with runtimes that "address the load balance
challenges through variants of workstealing" (StarPU, Harmony, the
multi-GPU work of Lima et al.).  This scheduler implements the classic
shape on top of the Table II machinery so it can be compared head-to-head:

* every device starts with an even BLOCK share of the iteration space
  (good locality, no central queue contention),
* a device serves itself fixed-size chunks from the *front* of its own
  range,
* when its range runs dry it steals the *back half* of the largest
  remaining victim range.

Behaviour: identical devices match BLOCK (minus the per-chunk overheads);
heterogeneous devices converge to a balanced schedule like SCHED_DYNAMIC,
but with contention proportional to the number of steals instead of the
number of chunks.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.util.ranges import IterRange, split_block

__all__ = ["WorkStealingScheduler"]


class WorkStealingScheduler(LoopScheduler):
    notation = "WORK_STEALING"
    stages = -1  # multiple
    supports_cutoff = False

    def __init__(self, chunk_pct: float = 0.02, min_steal: int = 1):
        super().__init__()
        if not 0.0 < chunk_pct <= 1.0:
            raise SchedulingError(f"chunk_pct must be in (0, 1], got {chunk_pct}")
        if min_steal < 1:
            raise SchedulingError(f"min_steal must be >= 1, got {min_steal}")
        self.chunk_pct = chunk_pct
        self.min_steal = min_steal
        self.steals = 0

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        self._ranges: list[IterRange] = split_block(ctx.iter_space, ctx.ndev)
        self._chunk = max(1, round(ctx.n_iters * self.chunk_pct))
        self.steals = 0

    def _pop_own(self, devid: int) -> IterRange | None:
        own = self._ranges[devid]
        if own.empty:
            return None
        head, rest = own.take(self._chunk)
        self._ranges[devid] = rest
        return head

    def _steal(self, thief: int) -> IterRange | None:
        victim = max(
            (d for d in range(len(self._ranges)) if d != thief),
            key=lambda d: len(self._ranges[d]),
            default=None,
        )
        if victim is None or len(self._ranges[victim]) < self.min_steal:
            return None
        loot_size = max(self.min_steal, len(self._ranges[victim]) // 2)
        keep, loot = self._ranges[victim].take(
            len(self._ranges[victim]) - loot_size
        )
        self._ranges[victim] = keep
        self._ranges[thief] = loot
        self.steals += 1
        return self._pop_own(thief)

    def next(self, devid: int) -> Decision:
        chunk = self._pop_own(devid)
        if chunk is not None:
            return chunk
        return self._steal(devid)

    def describe(self) -> str:
        return f"{self.notation},{self.chunk_pct:.0%}"

