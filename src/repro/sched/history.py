"""History-guided distribution — the paper's stated future work.

The conclusion names "improving prediction models" as future work and the
related-work section discusses Qilin [21], which "uses historical
execution to project the execution time of a given problem sizes".  This
scheduler implements that approach on top of the Table II machinery:

* a :class:`HistoryDB` records, per (kernel, device-spec) pair, the
  measured per-iteration time of every chunk any engine run executed;
* :class:`HistoryScheduler` distributes a new loop by the recorded rates —
  single stage, no profiling run needed — and falls back to MODEL_2 when
  a device has no history yet.

Unlike the analytical models, the database sees *real* per-device
behaviour (including effects the models misprice, like the MICs'
overprediction), so a second offload of a mispredicted kernel lands close
to the profiling algorithms' quality at MODEL-level overhead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.model.linear_system import solve_equal_time_partition
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.sched.cutoff import apply_cutoff
from repro.util.ranges import IterRange, split_by_weights

__all__ = ["HistoryDB", "HistoryScheduler"]


def _device_key(spec) -> str:
    """Devices with identical specs share history."""
    bw = "inf" if spec.link.is_shared else f"{spec.link.bandwidth_gbs:g}"
    return (
        f"{spec.dev_type.value}:{spec.sustained_gflops:g}:"
        f"{spec.mem_bandwidth_gbs:g}:{spec.link.latency_s:g}:{bw}"
    )


@dataclass
class _Record:
    iters: int = 0
    seconds: float = 0.0

    @property
    def per_iter_s(self) -> float | None:
        if self.iters <= 0 or self.seconds <= 0:
            return None
        return self.seconds / self.iters


@dataclass
class HistoryDB:
    """Per-(kernel, device) measured throughput, optionally persisted."""

    _records: dict[str, _Record] = field(default_factory=dict)

    @staticmethod
    def _key(kernel_name: str, spec) -> str:
        return f"{kernel_name}|{_device_key(spec)}"

    def record(self, kernel_name: str, spec, iters: int, seconds: float) -> None:
        if iters <= 0 or seconds < 0:
            return
        rec = self._records.setdefault(self._key(kernel_name, spec), _Record())
        rec.iters += iters
        rec.seconds += seconds

    def per_iter_s(self, kernel_name: str, spec) -> float | None:
        rec = self._records.get(self._key(kernel_name, spec))
        return rec.per_iter_s if rec else None

    def ingest(self, result, machine) -> int:
        """Learn from any past :class:`~repro.engine.trace.OffloadResult`.

        Uses each participating device's busy time (transfers + compute,
        the same quantity ``observe`` sees per chunk).  This breaks the
        cold-start loop: a device the fallback model refuses to use can
        still enter the database through a chunk-scheduled run.  Returns
        the number of devices ingested.
        """
        n = 0
        for trace in result.traces:
            if not trace.participated:
                continue
            spec = machine[trace.devid]
            busy = trace.compute_s + trace.xfer_in_s + trace.xfer_out_s
            self.record(result.kernel_name, spec, trace.iters, busy)
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._records)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {
            k: {"iters": r.iters, "seconds": r.seconds}
            for k, r in self._records.items()
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "HistoryDB":
        data = json.loads(Path(path).read_text())
        db = cls()
        for k, v in data.items():
            db._records[k] = _Record(
                iters=int(v["iters"]), seconds=float(v["seconds"])
            )
        return db


class HistoryScheduler(LoopScheduler):
    """Single-stage distribution by historically measured throughput."""

    notation = "HISTORY_AUTO"
    stages = 1
    supports_cutoff = True
    #: The split is fixed in start(); observe() only feeds the database,
    #: and the batch backend replays observes in exact commit order.
    batch_vectorizable = True

    def __init__(self, db: HistoryDB):
        super().__init__()
        self.db = db

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        kernel_name = ctx.kernel.name

        def per_iter(devid: int) -> float:
            measured = self.db.per_iter_s(kernel_name, ctx.devices[devid].spec)
            if measured is not None:
                return measured
            # cold start: fall back to the MODEL_2 view
            return ctx.per_iter_total_s(devid)

        per_iter_times = [per_iter(d) for d in range(ctx.ndev)]
        fixed = [ctx.fixed_cost_s(d) for d in range(ctx.ndev)]
        solution = solve_equal_time_partition(per_iter_times, fixed, ctx.n_iters)
        shares = list(solution.shares)

        def resolve(survivors: list[int]) -> list[float]:
            sub = solve_equal_time_partition(
                [per_iter_times[i] for i in survivors],
                [fixed[i] for i in survivors],
                ctx.n_iters,
            )
            return list(sub.shares)

        shares = apply_cutoff(shares, ctx.cutoff_ratio, resolve)
        self._chunks = split_by_weights(ctx.iter_space, shares)
        self._served = [False] * ctx.ndev

    def next(self, devid: int) -> Decision:
        if self._served[devid]:
            return None
        self._served[devid] = True
        chunk = self._chunks[devid]
        return None if chunk.empty else chunk

    def observe(self, devid: int, chunk: IterRange, elapsed_s: float) -> None:
        """Every executed chunk feeds the database (learning while running)."""
        self.db.record(
            self.ctx.kernel.name, self.ctx.devices[devid].spec, len(chunk), elapsed_s
        )

