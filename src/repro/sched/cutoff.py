"""CUTOFF device selection (paper §IV.E).

When predicted per-device contributions are available (model- and
profile-based algorithms), devices whose contribution falls below the
CUTOFF ratio are excluded: "the additional overhead incurred by involving
those slower devices are much higher than the contributions made by those
devices."  The paper picks the ratio as the average contribution assuming
identical devices — ``1 / ndev`` (their 15% for a 7-device node).

:func:`apply_cutoff` drops the weakest below-cutoff device and re-solves
the shares (via the caller-provided ``resolve``), repeating until every
surviving device clears the ratio.  Dropping one device at a time, weakest
first, guarantees termination and never empties the device set: on
identical devices the shares rise past the cutoff as peers are removed.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SchedulingError

__all__ = ["default_cutoff_ratio", "apply_cutoff"]


def default_cutoff_ratio(ndev: int) -> float:
    """The paper's choice: average contribution if all devices were equal."""
    if ndev <= 0:
        raise SchedulingError(f"ndev must be positive, got {ndev}")
    return 1.0 / ndev


def apply_cutoff(
    shares: Sequence[float],
    cutoff_ratio: float,
    resolve: Callable[[list[int]], Sequence[float]],
) -> list[float]:
    """Zero out devices predicted to contribute less than ``cutoff_ratio``.

    ``shares``  - initial per-device work shares (any non-negative scale).
    ``resolve`` - given the list of surviving device indices, return their
                  new shares (same order as the indices).  Model schedulers
                  re-solve the equal-time system; profile schedulers
                  re-normalise throughputs.

    Returns a full-length share list with cut devices at 0.0.
    """
    if not 0.0 <= cutoff_ratio < 1.0:
        raise SchedulingError(f"cutoff_ratio must be in [0, 1), got {cutoff_ratio}")
    n = len(shares)
    if n == 0:
        raise SchedulingError("shares must be non-empty")
    active = [i for i in range(n) if shares[i] > 0.0]
    if not active:
        raise SchedulingError("no device has a positive share")
    current = {i: float(shares[i]) for i in active}

    if cutoff_ratio > 0.0:
        while len(current) > 1:
            total = sum(current.values())
            fractions = {i: s / total for i, s in current.items()}
            below = [i for i, f in fractions.items() if f < cutoff_ratio]
            if not below:
                break
            weakest = min(below, key=lambda i: fractions[i])
            survivors = sorted(i for i in current if i != weakest)
            new = resolve(survivors)
            if len(new) != len(survivors):
                raise SchedulingError("resolve() returned wrong number of shares")
            current = {i: max(0.0, float(s)) for i, s in zip(survivors, new)}
            current = {i: s for i, s in current.items() if s > 0.0}
            if not current:
                raise SchedulingError("resolve() zeroed every surviving device")

    out = [0.0] * n
    for i, s in current.items():
        out[i] = s
    return out
