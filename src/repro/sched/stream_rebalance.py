"""Rate-aware stream rebalancing — the streaming runtime's scheduler.

A stream (:class:`~repro.ir.ops.StreamOp`) runs the same kernel over many
batches; the one thing the runtime learns for free is each device's
*observed* batch rate.  :class:`StreamRebalanceScheduler` is a stateful
scheduler the stream runner reuses across every batch of one stream:

* within a batch it is BLOCK-shaped — one contiguous chunk per device,
  fixed at ``start`` — so per-batch overhead stays at the Table II
  "Low" tier;
* between batches it re-derives the split from an EWMA of measured
  per-device rates (``observe`` folds in every finished chunk), so a
  device that slows down mid-stream — a fault-plan window, thermal
  throttling, a noisy neighbour — sheds iterations on the *next* batch;
* with no history yet (batch 0, or a fresh device set) it degrades to
  exactly the static BLOCK split, and a device that appears without
  history mid-stream is seeded with the mean of the known rates;
* a device lost mid-stream (:meth:`device_lost`, driven by the fault
  layer) stays dead for the remainder of the stream — the ``_dead`` set
  persists across ``start`` calls, unlike every one-shot scheduler.

CUTOFF composes the usual way: predicted (here: observed) contributions
below the ratio zero the device out of the split for that batch; the
device keeps feeding the EWMA if it later rejoins.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.sched.cutoff import apply_cutoff
from repro.util.ranges import IterRange, split_by_weights

__all__ = ["StreamRebalanceScheduler"]


class StreamRebalanceScheduler(LoopScheduler):
    """BLOCK-shaped per batch; rebalanced between batches by EWMA rates."""

    notation = "STREAM_REBALANCE"
    stages = 1
    supports_cutoff = True
    #: The split is fixed in start(); observe() only feeds the EWMA, and
    #: the batch backend replays observes in exact commit order.
    batch_vectorizable = True

    def __init__(self, *, alpha: float = 0.3):
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise SchedulingError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        #: devid -> EWMA of measured iters/s, persistent across batches.
        self._rates: dict[int, float] = {}
        #: devids lost mid-stream; they never rejoin this stream.
        self._dead: set[int] = set()

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        ndev = ctx.ndev
        alive = [d for d in range(ndev) if d not in self._dead]
        if not alive:
            raise SchedulingError(
                "STREAM_REBALANCE: every device was lost mid-stream"
            )
        known = [self._rates[d] for d in alive if d in self._rates]
        if not known:
            # No history yet: degrade to the static BLOCK split.
            weights = [0.0 if d in self._dead else 1.0 for d in range(ndev)]
        else:
            mean = sum(known) / len(known)
            weights = [
                0.0 if d in self._dead else self._rates.get(d, mean)
                for d in range(ndev)
            ]

        def resolve(survivors: list[int]) -> list[float]:
            return [weights[i] for i in survivors]

        shares = apply_cutoff(weights, ctx.cutoff_ratio, resolve)
        self._chunks: list[IterRange] = split_by_weights(ctx.iter_space, shares)
        self._served = [False] * ndev

    def next(self, devid: int) -> Decision:
        if self._served[devid]:
            return None
        self._served[devid] = True
        chunk = self._chunks[devid]
        return None if chunk.empty else chunk

    def observe(self, devid: int, chunk: IterRange, elapsed_s: float) -> None:
        rate = len(chunk) / max(elapsed_s, 1e-12)
        prev = self._rates.get(devid)
        self._rates[devid] = (
            rate if prev is None else (1.0 - self.alpha) * prev + self.alpha * rate
        )

    def device_lost(self, devid: int) -> list[IterRange]:
        self._dead.add(devid)
        self._rates.pop(devid, None)
        if self._served[devid]:
            return []
        self._served[devid] = True
        chunk = self._chunks[devid]
        return [] if chunk.empty else [chunk]

    def describe(self) -> str:
        return f"{self.notation},a={self.alpha:g}"
