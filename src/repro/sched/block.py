"""Static chunking — the BLOCK policy (paper §IV.A.1).

One even contiguous block per device, computed upfront.  Single stage,
lowest overhead; load balance is perfect only when devices are identical
and iterations uniform.
"""

from __future__ import annotations

from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.util.ranges import IterRange, split_block

__all__ = ["BlockScheduler"]


class BlockScheduler(LoopScheduler):
    notation = "BLOCK"
    stages = 1
    supports_cutoff = False
    batch_vectorizable = True  # split is fixed in start(); next() is static

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        self._chunks: list[IterRange] = split_block(ctx.iter_space, ctx.ndev)
        self._served = [False] * ctx.ndev

    def next(self, devid: int) -> Decision:
        if self._served[devid]:
            return None
        self._served[devid] = True
        chunk = self._chunks[devid]
        return None if chunk.empty else chunk

    def device_lost(self, devid: int) -> list[IterRange]:
        # Surrender the unclaimed static block of a dropped device.
        if self._served[devid]:
            return []
        self._served[devid] = True
        chunk = self._chunks[devid]
        return [] if chunk.empty else [chunk]
