"""Scheduler protocol shared by all seven loop-distribution algorithms.

A scheduler is driven by the offload engine through three calls:

* :meth:`LoopScheduler.start` — the loop is encountered; upfront
  partitioning (BLOCK, the MODEL algorithms) happens here.
* :meth:`LoopScheduler.next` — a device proxy asks for its next chunk.
  Returns an :class:`~repro.util.ranges.IterRange`, the sentinel
  :data:`BARRIER` (two-stage algorithms: wait until every active device
  reaches the barrier), or ``None`` (no more work for this device).
* :meth:`LoopScheduler.observe` — the engine reports a finished chunk and
  its measured per-device elapsed time; the profiling algorithms turn this
  into throughput.

plus :meth:`LoopScheduler.at_barrier`, invoked once when all devices that
asked for the barrier have arrived.

The invariant every implementation must keep (and property tests enforce):
the chunks handed out across all devices tile the iteration space exactly —
no iteration lost, none duplicated.

:class:`SchedContext` gives schedulers the per-device analytic quantities
of the paper's Table III (``ExeT``, ``DataT``, fixed costs) derived from
the kernel's cost descriptors and the device specs.

When the engine runs under an active tracer (:mod:`repro.obs`), the
context also carries a ``metrics`` registry; schedulers may record their
own counters/histograms through it (it is ``None`` — and must be left
untouched — on untraced runs, which is the common case).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.kernels.base import ELEM, LoopKernel
from repro.machine.device import Device
from repro.util.ranges import IterRange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.residency import RegionResidency
    from repro.obs.metrics import MetricsRegistry

__all__ = ["BARRIER", "Decision", "SchedContext", "LoopScheduler"]


class _Barrier:
    """Sentinel: the device must wait for all active devices."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BARRIER"


BARRIER = _Barrier()

#: What ``next`` may return.
Decision = IterRange | _Barrier | None


@dataclass
class SchedContext:
    """Everything a scheduler may consult about the offload at hand."""

    kernel: LoopKernel
    devices: list[Device]
    cutoff_ratio: float = 0.0
    chunk_pct: float = -1.0  # algorithm parameter; -1 = unused (paper notation)
    #: Metrics sink for traced runs (None when observability is off).
    metrics: "MetricsRegistry | None" = None
    #: Residency view of the enclosing target-data region (None outside a
    #: region).  When set, the data-cost terms below come from the region's
    #: placement plan instead of the kernels' raw array bytes.
    residency: "RegionResidency | None" = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise SchedulingError("offload needs at least one device")
        if not 0.0 <= self.cutoff_ratio < 1.0:
            raise SchedulingError(
                f"cutoff_ratio must be in [0, 1), got {self.cutoff_ratio}"
            )

    @property
    def n_iters(self) -> int:
        return self.kernel.n_iters

    @property
    def ndev(self) -> int:
        return len(self.devices)

    @property
    def iter_space(self) -> IterRange:
        return self.kernel.iter_space

    # -- Table III quantities, per iteration ---------------------------------

    def per_iter_compute_s(self, devid: int) -> float:
        """ExeT per iteration as the paper's model sees it.

        Table III: ``ExeT = FLOPs / (Perf * MemComp)`` with ``Perf`` from
        microbenchmark profiling — a FLOP-rate model whose MemComp factor
        is device-independent and cancels in the distribution ratios, so it
        is omitted here.  Devices whose microbenchmark rate exceeds their
        generic-loop rate (``model_gflops`` > ``sustained_gflops``) are
        systematically overpredicted, exactly like the paper's MICs.
        Zero-FLOP loops (pure copies) fall back to the bandwidth bound.
        """
        dev = self.devices[devid]
        fpi = self.kernel.flops_per_iter()
        mem_bps = dev.spec.mem_bandwidth_gbs * 1e9
        t_flops = fpi / (dev.spec.modeled_gflops * 1e9)
        t_mem = self.kernel.mem_accesses_per_iter() * ELEM / mem_bps
        return max(t_flops, t_mem)

    def true_per_iter_compute_s(self, devid: int) -> float:
        """Actual roofline ExeT per iteration (the engine's ground truth)."""
        dev = self.devices[devid]
        rate = dev.throughput_iters_per_s(
            self.kernel.flops_per_iter(),
            self.kernel.mem_accesses_per_iter() * ELEM * self.kernel.device_mem_factor,
        )
        return 1.0 / rate

    def per_iter_xfer_s(self, devid: int) -> float:
        """DataT per iteration: aligned bytes over the device link.

        Inside a target-data region the bytes come from the residency
        view's placement plan (only the fraction of the device's mapped
        ranges that is *missing* — zero on an intact placement, the full
        rate again after a dropout); outside, from the kernel's flat
        per-iteration transfer model.
        """
        dev = self.devices[devid]
        if dev.spec.link.is_shared:
            return 0.0
        if self.residency is not None:
            nbytes = self.residency.per_iter_xfer_bytes(devid, self.kernel)
        else:
            nbytes = self.kernel.xfer_elems_per_iter() * ELEM
        # Steady-state: bandwidth term only; latencies are in fixed_cost_s.
        return nbytes / (self.devices[devid].spec.link.bandwidth_gbs * 1e9)

    def fixed_cost_s(self, devid: int) -> float:
        """One-off cost of involving a device: launch, link latencies, and
        the broadcast of FULL-mapped input arrays (only the not-yet-resident
        bytes when a target-data region's placement covers them)."""
        dev = self.devices[devid]
        cost = dev.spec.launch_overhead_s
        if not dev.spec.link.is_shared:
            cost += 2 * dev.spec.link.latency_s  # one in + one out message
            if self.residency is not None:
                rep = self.residency.replicated_in_bytes(devid, self.kernel)
            else:
                rep = self.kernel.replicated_in_bytes()
            cost += dev.spec.link.transfer_time(rep)
        return cost

    def per_iter_total_s(self, devid: int) -> float:
        """Compute + data movement per iteration (MODEL_2's view)."""
        return self.per_iter_compute_s(devid) + self.per_iter_xfer_s(devid)


class LoopScheduler(ABC):
    """Base class for loop-distribution algorithms."""

    #: paper Table II notation, e.g. "SCHED_DYNAMIC"
    notation: str = "?"
    #: number of distribution stages (Table II column)
    stages: int = 1
    #: whether the CUTOFF ratio applies (last four algorithms in Table II)
    supports_cutoff: bool = False
    #: whether ``next`` is timing-oblivious: decisions depend only on the
    #: asking device's own call history plus the barrier phase, never on
    #: the virtual clock or the interleaving of the other devices.  Such
    #: schedulers can be advanced by the vectorized batch backend
    #: (:mod:`repro.engine.batch`); the dynamic/guided/work-stealing
    #: families react to measured completion times and fall back to the
    #: event-heap simulator instead.
    batch_vectorizable: bool = False

    def __init__(self) -> None:
        self._ctx: SchedContext | None = None

    @property
    def ctx(self) -> SchedContext:
        if self._ctx is None:
            raise SchedulingError(f"{self.notation}: start() not called")
        return self._ctx

    def start(self, ctx: SchedContext) -> None:
        """Reset internal state for a new offload."""
        self._ctx = ctx

    @abstractmethod
    def next(self, devid: int) -> Decision:
        """The next chunk for ``devid``, BARRIER, or None when done."""

    def observe(self, devid: int, chunk: IterRange, elapsed_s: float) -> None:
        """Feedback after a chunk completes (profiling algorithms)."""

    def at_barrier(self) -> None:
        """All active devices reached the barrier (two-stage algorithms)."""

    # -- resilience hooks (used by the fault-injecting engine) ---------------

    def requeue(self, chunk: IterRange) -> bool:
        """Take back an orphaned chunk (lost with a dropped device or after
        exhausted transfer retries) for redistribution through ``next``.

        Return True if the scheduler will re-serve the chunk itself;
        False (the default) lets the engine split it across the surviving
        devices directly.
        """
        return False

    def device_lost(self, devid: int) -> list[IterRange]:
        """The engine permanently lost ``devid`` (dropout or quarantine).

        The device will never call ``next`` again; schedulers holding
        per-device plans should stop counting on it and return any
        iteration ranges that were reserved exclusively for it (they would
        otherwise never be served) so the engine can reassign them.
        """
        return []

    def describe(self) -> str:
        """Paper-style notation with parameters, e.g. 'SCHED_DYNAMIC,2%'."""
        return self.notation
