"""Algorithm-selection heuristics (paper §IV.D and §VI.D).

The paper derives three rules from its evaluation:

1. compute-intensive kernels: BLOCK on identical devices, MODEL_1_AUTO
   on heterogeneous devices ("because of the simplicity of the two
   algorithms");
2. balanced kernels: SCHED_DYNAMIC, which overlaps data movement with
   computation;
3. data-intensive kernels: MODEL_2_AUTO, since only it prices the data
   movement.

The kernel class comes from the roofline-style MemComp/DataComp ratios
(:func:`repro.model.roofline.classify_intensity`); device homogeneity is
read off the machine spec.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec
from repro.model.roofline import IntensityClass

__all__ = ["select_algorithm"]


def _homogeneous(machine: MachineSpec) -> bool:
    if not machine.devices:
        raise SchedulingError(
            f"machine {machine.name!r} has no devices to select an "
            "algorithm for"
        )
    first = machine.devices[0]
    return all(
        d.dev_type is first.dev_type
        and d.sustained_gflops == first.sustained_gflops
        and d.mem_bandwidth_gbs == first.mem_bandwidth_gbs
        for d in machine.devices
    )


def select_algorithm(kernel: LoopKernel, machine: MachineSpec) -> str:
    """Paper-notation name of the algorithm the heuristics pick.

    Raises :class:`~repro.errors.SchedulingError` (not ``IndexError``)
    when the machine description carries no devices.
    """
    if not machine.devices:
        raise SchedulingError(
            f"machine {machine.name!r} has no devices to select an "
            "algorithm for"
        )
    klass = kernel.costs().intensity_class(kernel.n_iters)
    if klass is IntensityClass.COMPUTE_INTENSIVE:
        return "BLOCK" if _homogeneous(machine) else "MODEL_1_AUTO"
    if klass is IntensityClass.BALANCED:
        return "SCHED_DYNAMIC"
    return "MODEL_2_AUTO"
