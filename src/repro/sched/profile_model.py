"""Model-guided sample profiling — MODEL_PROFILE_AUTO (paper §IV.C.2).

"First distribute a small portion of the iterations using analytical
model in stage 1": the stage-1 sample (``sample_pct`` of the loop in
total) is split by the MODEL_2 equal-time solution, so fast devices
profile on proportionally larger samples — better measurements at the same
total profiling cost, and less stage-1 imbalance than constant samples on
heterogeneous devices.

The MODEL_2 terms feeding the stage-1 split are residency-aware: inside a
target-data region ``ctx.per_iter_total_s``/``ctx.fixed_cost_s`` read the
data-cost bytes from the region's placement plan (zero for staged arrays),
so the sample split matches the elided-transfer timeline the engine will
actually produce.
"""

from __future__ import annotations

from repro.model.linear_system import solve_equal_time_partition
from repro.sched.base import SchedContext
from repro.sched.profile_base import TwoStageProfileScheduler
from repro.util.ranges import IterRange, split_by_weights

__all__ = ["ModelProfileScheduler"]


class ModelProfileScheduler(TwoStageProfileScheduler):
    notation = "MODEL_PROFILE_AUTO"

    def _sample_sizes(self, ctx: SchedContext) -> list[int]:
        sample_total = max(ctx.ndev, round(ctx.n_iters * self.sample_pct))
        sample_total = min(sample_total, max(1, ctx.n_iters // 2))
        per_iter = [ctx.per_iter_total_s(d) for d in range(ctx.ndev)]
        fixed = [ctx.fixed_cost_s(d) for d in range(ctx.ndev)]
        solution = solve_equal_time_partition(per_iter, fixed, sample_total)
        chunks = split_by_weights(IterRange(0, sample_total), solution.shares)
        return [len(c) for c in chunks]
