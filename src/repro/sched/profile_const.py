"""Constant-sample profiling — SCHED_PROFILE_AUTO (paper §IV.C.1).

"Each device receives the same amount of loop iterations and compute in
stage 1."  The sample size is ``sample_pct`` of the iteration space per
device (paper notation "SCHED_PROFILE_AUTO,10%,15%"), shrunk if the
samples would not all fit.
"""

from __future__ import annotations

from repro.sched.base import SchedContext
from repro.sched.profile_base import TwoStageProfileScheduler

__all__ = ["ProfileScheduler"]


class ProfileScheduler(TwoStageProfileScheduler):
    notation = "SCHED_PROFILE_AUTO"

    def _sample_sizes(self, ctx: SchedContext) -> list[int]:
        per_dev = max(1, round(ctx.n_iters * self.sample_pct))
        # Keep at least half the loop for stage 2 so profiling cannot
        # consume the distributable work.
        cap = max(1, (ctx.n_iters // 2) // ctx.ndev)
        return [min(per_dev, cap)] * ctx.ndev
