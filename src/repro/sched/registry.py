"""Algorithm registry — the programmatic form of paper Table II.

``make_scheduler`` builds any of the seven algorithms by paper notation;
``ALGORITHM_TABLE`` carries the taxonomy columns (approach, stages,
overhead, load-balancing quality) that ``benchmarks/test_table2_registry``
re-prints, and ``EXTENSION_TABLE`` documents the schedulers this
reproduction adds beyond the paper (ALIGN, HISTORY_AUTO, WORK_STEALING).

This module is the single registration point: importing it alone yields
the complete ``SCHEDULERS`` mapping — no scheduler registers itself as an
import side effect anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sched.align_sched import AlignedScheduler
from repro.sched.base import LoopScheduler
from repro.sched.block import BlockScheduler
from repro.sched.dynamic import DynamicScheduler
from repro.sched.guided import GuidedScheduler
from repro.sched.history import HistoryScheduler
from repro.sched.model1 import Model1Scheduler
from repro.sched.model2 import Model2Scheduler
from repro.sched.profile_const import ProfileScheduler
from repro.sched.profile_model import ModelProfileScheduler
from repro.sched.stream_rebalance import StreamRebalanceScheduler
from repro.sched.worksteal import WorkStealingScheduler

__all__ = [
    "SCHEDULERS",
    "make_scheduler",
    "ALGORITHM_TABLE",
    "EXTENSION_TABLE",
    "AlgorithmInfo",
]


SCHEDULERS: dict[str, Callable[..., LoopScheduler]] = {
    # The seven Table II algorithms, in the order the paper lists them.
    "BLOCK": BlockScheduler,
    "SCHED_DYNAMIC": DynamicScheduler,
    "SCHED_GUIDED": GuidedScheduler,
    "MODEL_1_AUTO": Model1Scheduler,
    "MODEL_2_AUTO": Model2Scheduler,
    "SCHED_PROFILE_AUTO": ProfileScheduler,
    "MODEL_PROFILE_AUTO": ModelProfileScheduler,
    # Documented extensions (see EXTENSION_TABLE below).
    "ALIGN": AlignedScheduler,
    "HISTORY_AUTO": HistoryScheduler,
    "WORK_STEALING": WorkStealingScheduler,
    "STREAM_REBALANCE": StreamRebalanceScheduler,
}


def make_scheduler(notation: str, **kwargs) -> LoopScheduler:
    """Instantiate an algorithm by its paper Table II notation."""
    try:
        factory = SCHEDULERS[notation.upper()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {notation!r}; known: {sorted(SCHEDULERS)}"
        ) from None
    return factory(**kwargs)


@dataclass(frozen=True)
class AlgorithmInfo:
    """One row of paper Table II."""

    approach: str
    algorithm: str
    notation: str
    stages: str
    overhead: str
    load_balancing: str
    description: str


ALGORITHM_TABLE: tuple[AlgorithmInfo, ...] = (
    AlgorithmInfo(
        "Chunk Scheduling", "Static Chunking", "BLOCK", "1", "Low",
        "Poor to good", "Even distributions of iterations",
    ),
    AlgorithmInfo(
        "Chunk Scheduling", "Dynamic Chunking", "SCHED_DYNAMIC,2%", "Multiple",
        "High", "Good", "Each device receives chunks of same size",
    ),
    AlgorithmInfo(
        "Chunk Scheduling", "Guided Chunking", "SCHED_GUIDED,20%", "Multiple",
        "High", "Good", "Each device receives chunk of different sizes",
    ),
    AlgorithmInfo(
        "Analytical Modeling", "Compute-only Modeling", "MODEL_1_AUTO,-1,15%",
        "1", "Low", "Medium", "Only considers computation in modeling",
    ),
    AlgorithmInfo(
        "Analytical Modeling", "Compute/Data Modeling", "MODEL_2_AUTO,-1,15%",
        "1", "Low", "Medium to good",
        "Considers both computation and data movement",
    ),
    AlgorithmInfo(
        "Sample Profiling", "Constant Sampling", "SCHED_PROFILE_AUTO,10%,15%",
        "2", "Medium", "Medium to good", "Constant sample size for profiling",
    ),
    AlgorithmInfo(
        "Sample Profiling", "Model-based Sampling", "MODEL_PROFILE_AUTO,10%,15%",
        "2", "Medium", "Medium to good",
        "Uses models to select sample sizes for profiling",
    ),
)


#: Schedulers this reproduction provides beyond the paper's Table II, in
#: the same taxonomy.  ALIGN is the paper's Table I *distribution policy*
#: exposed as a loop schedule; HISTORY_AUTO implements the conclusion's
#: "historical execution" future work (Qilin-style); WORK_STEALING is the
#: related-work baseline HOMP is contrasted against (StarPU, Harmony).
EXTENSION_TABLE: tuple[AlgorithmInfo, ...] = (
    AlgorithmInfo(
        "Data Alignment", "Align With Array", "ALIGN", "1", "Low",
        "Poor to good", "Loop chunks copy an array's partition (Table I)",
    ),
    AlgorithmInfo(
        "Analytical Modeling", "History-guided Modeling", "HISTORY_AUTO",
        "1", "Low", "Medium to good",
        "Rates from recorded per-device execution history (future work)",
    ),
    AlgorithmInfo(
        "Chunk Scheduling", "Work Stealing", "WORK_STEALING,2%", "Multiple",
        "High", "Good", "Even start, idle devices steal from the largest victim",
    ),
    AlgorithmInfo(
        "Stream Rebalancing", "Rate-aware Stream Split", "STREAM_REBALANCE",
        "1 per batch", "Low", "Good",
        "BLOCK-shaped batches rebalanced between batches by EWMA rates",
    ),
)
