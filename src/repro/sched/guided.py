"""Guided chunking — SCHED_GUIDED (paper §IV.A.3).

Like dynamic chunking, but each successive chunk shrinks: "program
execution starts with large chunk sizes and then chunks reduce in sizes as
the computation close to finish, thus reducing the total amount of chunks
and still maintaining good balance".  Chunk ``k`` takes ``first_pct`` of
the *remaining* iterations (paper notation "SCHED_GUIDED,20%"), floored at
``min_chunk`` so the tail doesn't degenerate into single iterations.
"""

from __future__ import annotations

import math

from repro.errors import SchedulingError
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.util.ranges import IterRange

__all__ = ["GuidedScheduler"]

DEFAULT_FIRST_PCT = 0.20  # the paper's "SCHED_GUIDED,20%"


def _round_half_up(x: float) -> int:
    """``floor(x + 0.5)``: exact halves always round up.

    Python's ``round()`` is banker's rounding (halves go to the nearest
    *even* integer), so two configurations one iteration apart could
    produce non-monotonic chunk sequences; half-up keeps chunk sizes a
    monotonic function of the remaining iteration count.
    """
    return math.floor(x + 0.5)


class GuidedScheduler(LoopScheduler):
    notation = "SCHED_GUIDED"
    stages = -1  # "multiple"
    supports_cutoff = False

    def __init__(self, first_pct: float = DEFAULT_FIRST_PCT, min_chunk: int | None = None):
        super().__init__()
        if not 0.0 < first_pct <= 1.0:
            raise SchedulingError(f"first_pct must be in (0, 1], got {first_pct}")
        if min_chunk is not None and min_chunk < 1:
            raise SchedulingError(f"min_chunk must be >= 1, got {min_chunk}")
        self.first_pct = first_pct
        self._min_chunk_arg = min_chunk

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        self._cursor = ctx.iter_space.start
        self._stop = ctx.iter_space.stop
        if self._min_chunk_arg is not None:
            self._min_chunk = self._min_chunk_arg
        else:
            # Default floor: 1/4 of the first chunk split across devices.
            self._min_chunk = max(
                1, _round_half_up(ctx.n_iters * self.first_pct / (4 * ctx.ndev))
            )

    def next(self, devid: int) -> Decision:
        remaining = self._stop - self._cursor
        if remaining <= 0:
            return None
        size = max(self._min_chunk, _round_half_up(remaining * self.first_pct))
        size = min(size, remaining)
        start = self._cursor
        self._cursor = start + size
        return IterRange(start, start + size)

    def describe(self) -> str:
        return f"{self.notation},{self.first_pct:.0%}"
