"""Shared machinery for the two-stage sample-profiling algorithms (§IV.C).

Stage 1: every participating device computes a sample chunk and its
elapsed time is observed.  A barrier follows ("profiling information will
be broadcasted to each device").  Stage 2: the remaining iterations are
split proportionally to the measured throughputs (iterations/second,
inclusive of each device's own data-movement time), with the CUTOFF ratio
applied to the predicted contributions.

Subclasses only decide the stage-1 sample sizes.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.errors import SchedulingError
from repro.sched.base import BARRIER, Decision, LoopScheduler, SchedContext
from repro.sched.cutoff import apply_cutoff
from repro.util.ranges import IterRange, split_by_weights

__all__ = ["TwoStageProfileScheduler"]


class TwoStageProfileScheduler(LoopScheduler):
    stages = 2
    supports_cutoff = True
    #: Stage-1 samples are laid out in start(); the stage-2 split depends
    #: only on observed per-chunk elapsed times, which the batch backend
    #: feeds through observe() in exact commit order before the barrier.
    batch_vectorizable = True

    def __init__(self, sample_pct: float = 0.10):
        super().__init__()
        if not 0.0 < sample_pct < 1.0:
            raise SchedulingError(f"sample_pct must be in (0, 1), got {sample_pct}")
        self.sample_pct = sample_pct

    @abstractmethod
    def _sample_sizes(self, ctx: SchedContext) -> list[int]:
        """Per-device stage-1 chunk sizes (sum must be <= n_iters)."""

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        sizes = list(self._sample_sizes(ctx))
        if len(sizes) != ctx.ndev:
            raise SchedulingError(f"{self.notation}: wrong sample-size count")
        # Degenerate loops (fewer iterations than devices): shrink samples
        # greedily so stage 1 never overruns the iteration space.
        budget = ctx.n_iters
        for i, s in enumerate(sizes):
            sizes[i] = max(0, min(s, budget))
            budget -= sizes[i]
        self._stage = 1
        self._stage1: list[IterRange | None] = []
        pos = ctx.iter_space.start
        for s in sizes:
            self._stage1.append(IterRange(pos, pos + s) if s > 0 else None)
            pos += s
        self._remaining = IterRange(pos, ctx.iter_space.stop)
        self._handed1 = [False] * ctx.ndev
        self._throughput = [0.0] * ctx.ndev
        self._stage2: list[IterRange] | None = None
        self._handed2 = [False] * ctx.ndev
        self._lost: set[int] = set()
        self._pending: list[list[IterRange]] = [[] for _ in range(ctx.ndev)]

    def next(self, devid: int) -> Decision:
        if self._stage == 1:
            if not self._handed1[devid]:
                self._handed1[devid] = True
                chunk = self._stage1[devid]
                if chunk is not None:
                    return chunk
            # sample done (or no sample assigned): wait for everyone
            return BARRIER
        if self._stage2 is None:
            raise SchedulingError(f"{self.notation}: stage 2 not planned")
        if not self._handed2[devid]:
            self._handed2[devid] = True
            chunk = self._stage2[devid]
            if not chunk.empty:
                return chunk
        if self._pending[devid]:
            return self._pending[devid].pop(0)
        return None

    def observe(self, devid: int, chunk: IterRange, elapsed_s: float) -> None:
        if self._stage != 1 or len(chunk) == 0:
            return
        if elapsed_s <= 0:
            # Degenerate measurement: treat as extremely fast rather than
            # dividing by zero.
            elapsed_s = 1e-12
        self._throughput[devid] = len(chunk) / elapsed_s

    def device_lost(self, devid: int) -> list[IterRange]:
        # A dropped/quarantined device predicts zero throughput: the
        # stage-2 split gives it nothing, like a CUTOFF exclusion that was
        # observed rather than predicted.  Its unclaimed sample or stage-2
        # block is surrendered for reassignment.
        self._lost.add(devid)
        self._throughput[devid] = 0.0
        orphaned: list[IterRange] = []
        if self._stage == 1 and not self._handed1[devid]:
            self._handed1[devid] = True
            sample = self._stage1[devid]
            if sample is not None and not sample.empty:
                orphaned.append(sample)
        if self._stage2 is not None and not self._handed2[devid]:
            self._handed2[devid] = True
            block = self._stage2[devid]
            if not block.empty:
                orphaned.append(block)
        orphaned.extend(self._pending[devid])
        self._pending[devid].clear()
        return orphaned

    def requeue(self, chunk: IterRange) -> bool:
        # Orphans are redistributed proportionally to the *measured*
        # throughputs of the devices still alive — the same information
        # stage 2 was planned with, applied to the recovery.  Stage-1
        # orphans (no throughputs yet) fall back to the engine's even
        # split.
        if self._stage != 2 or chunk.empty:
            return False
        shares = [
            0.0 if i in self._lost else x for i, x in enumerate(self._throughput)
        ]
        if sum(shares) <= 0.0:
            return False
        for i, piece in enumerate(split_by_weights(chunk, shares)):
            if not piece.empty:
                self._pending[i].append(piece)
        return True

    def at_barrier(self) -> None:
        ctx = self.ctx
        self._stage = 2
        shares = [
            0.0 if i in self._lost else x for i, x in enumerate(self._throughput)
        ]
        if sum(shares) <= 0.0:
            # Nobody was profiled (all sample sizes 0): fall back to even
            # over the devices still alive.
            shares = [
                0.0 if i in self._lost else 1.0 for i in range(ctx.ndev)
            ]
        if sum(shares) <= 0.0:  # every device lost: keep split_by_weights sane
            shares = [1.0] * ctx.ndev

        def resolve(survivors: list[int]) -> list[float]:
            return [shares[i] for i in survivors]

        shares = apply_cutoff(shares, ctx.cutoff_ratio, resolve)
        self._stage2 = split_by_weights(self._remaining, shares)

    def describe(self) -> str:
        cutoff = self.ctx.cutoff_ratio if self._ctx is not None else 0.0
        return f"{self.notation},{self.sample_pct:.0%},{cutoff:.0%}"
