"""Compute-only analytical model — MODEL_1_AUTO (paper §IV.B.1).

Distributes the loop proportionally to each device's computational
capability alone: solve the equal-completion-time system (Eq. 1-3) with
per-iteration times derived from sustained performance, ignoring data
movement and fixed costs.  Single stage, lowest overhead of the AUTO
algorithms; mispredicts for data-intensive kernels (that's MODEL_2's job).
"""

from __future__ import annotations

from repro.model.linear_system import solve_equal_time_partition
from repro.sched.base import Decision, LoopScheduler, SchedContext
from repro.sched.cutoff import apply_cutoff
from repro.util.ranges import IterRange, split_by_weights

__all__ = ["Model1Scheduler"]


class Model1Scheduler(LoopScheduler):
    notation = "MODEL_1_AUTO"
    stages = 1
    supports_cutoff = True
    batch_vectorizable = True  # split is fixed in start(); next() is static

    def start(self, ctx: SchedContext) -> None:
        super().start(ctx)
        per_iter = [ctx.per_iter_compute_s(d) for d in range(ctx.ndev)]
        zeros = [0.0] * ctx.ndev

        solution = solve_equal_time_partition(per_iter, zeros, ctx.n_iters)
        shares = list(solution.shares)

        def resolve(survivors: list[int]) -> list[float]:
            sub = solve_equal_time_partition(
                [per_iter[i] for i in survivors],
                [0.0] * len(survivors),
                ctx.n_iters,
            )
            return list(sub.shares)

        shares = apply_cutoff(shares, ctx.cutoff_ratio, resolve)
        self._chunks: list[IterRange] = split_by_weights(ctx.iter_space, shares)
        self._served = [False] * ctx.ndev

    def next(self, devid: int) -> Decision:
        if self._served[devid]:
            return None
        self._served[devid] = True
        chunk = self._chunks[devid]
        return None if chunk.empty else chunk

    def device_lost(self, devid: int) -> list[IterRange]:
        # Surrender the unclaimed static share of a dropped device.
        if self._served[devid]:
            return []
        self._served[devid] = True
        chunk = self._chunks[devid]
        return [] if chunk.empty else [chunk]

    def describe(self) -> str:
        cutoff = self.ctx.cutoff_ratio if self._ctx is not None else 0.0
        return f"{self.notation},-1,{cutoff:.0%}"
