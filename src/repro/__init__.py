"""HOMP reproduction: automated distribution of parallel loops and data
across heterogeneous devices.

Reproduces Yan, Liu, Cameron & Umar, *HOMP: Automated Distribution of
Parallel Loops and Data in Highly Parallel Accelerator-Based Systems*
(IPDPS Workshops 2017) as a Python library: the language extensions
(directive parser), the seven loop-distribution algorithms, the CUTOFF
device-selection heuristic, and a calibrated simulated heterogeneous node
standing in for the paper's 2-CPU / 4-GPU / 2-MIC machine.

Quickstart::

    from repro import HompRuntime, full_node, make_kernel

    rt = HompRuntime(full_node())
    result = rt.parallel_for(make_kernel("axpy", 1_000_000),
                             schedule="SCHED_DYNAMIC", cutoff_ratio="auto")
    print(result.total_time_ms, result.iterations_per_device())
"""

from repro.cluster import (
    ClusterEngine,
    ClusterSpec,
    gpu_cluster,
    homogeneous_cluster,
)
from repro.engine import (
    DeviceTrace,
    OffloadEngine,
    OffloadResult,
    ThreadedEngine,
    backend_names,
    make_backend,
    register_backend,
)
from repro.errors import (
    AlignmentError,
    DeviceError,
    DirectiveSyntaxError,
    DistributionError,
    EngineBusyError,
    FaultError,
    FaultPlanError,
    HompError,
    MachineSpecError,
    MappingError,
    OffloadError,
    SchedulingError,
)
from repro.faults import (
    ChunkFault,
    DeviceDropout,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
    Slowdown,
    TransferError,
)
from repro.kernels import (
    AxpyKernel,
    BlockMatchingKernel,
    KERNELS,
    LoopKernel,
    MapSpec,
    MatMulKernel,
    MatVecKernel,
    Stencil2DKernel,
    SumKernel,
    make_kernel,
)
from repro.machine import (
    Device,
    DeviceSpec,
    DeviceType,
    Link,
    MachineSpec,
    MemoryKind,
    cpu_mic_node,
    cpu_spec,
    full_node,
    gpu4_node,
    homogeneous_node,
    k40_spec,
    mic_spec,
)
from repro.runtime import HaloExchange, HompRuntime, TargetDataRegion
from repro.sched import (
    ALGORITHM_TABLE,
    SCHEDULERS,
    default_cutoff_ratio,
    make_scheduler,
    select_algorithm,
)
from repro.dist import Align, Auto, Block, Cyclic, Full, parse_policy
from repro.lang import parse_device_clause, parse_directive
from repro.obs import MetricsRegistry, Span, Tracer, write_chrome_trace

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # engine
    "DeviceTrace",
    "OffloadEngine",
    "ThreadedEngine",
    "ClusterEngine",
    "OffloadResult",
    "register_backend",
    "backend_names",
    "make_backend",
    # errors
    "HompError",
    "DirectiveSyntaxError",
    "MachineSpecError",
    "DeviceError",
    "MappingError",
    "DistributionError",
    "AlignmentError",
    "SchedulingError",
    "OffloadError",
    "EngineBusyError",
    "FaultPlanError",
    "FaultError",
    # faults
    "FaultPlan",
    "Slowdown",
    "TransferError",
    "DeviceDropout",
    "ChunkFault",
    "RetryPolicy",
    "ResiliencePolicy",
    # kernels
    "LoopKernel",
    "MapSpec",
    "AxpyKernel",
    "SumKernel",
    "MatVecKernel",
    "MatMulKernel",
    "Stencil2DKernel",
    "BlockMatchingKernel",
    "KERNELS",
    "make_kernel",
    # machine
    "Device",
    "DeviceSpec",
    "DeviceType",
    "MemoryKind",
    "Link",
    "MachineSpec",
    "cpu_spec",
    "k40_spec",
    "mic_spec",
    "gpu4_node",
    "cpu_mic_node",
    "full_node",
    "homogeneous_node",
    # cluster
    "ClusterSpec",
    "gpu_cluster",
    "homogeneous_cluster",
    # runtime
    "HompRuntime",
    "TargetDataRegion",
    "HaloExchange",
    # scheduling
    "SCHEDULERS",
    "ALGORITHM_TABLE",
    "make_scheduler",
    "select_algorithm",
    "default_cutoff_ratio",
    # policies & language
    "Full",
    "Block",
    "Cyclic",
    "Align",
    "Auto",
    "parse_policy",
    "parse_device_clause",
    "parse_directive",
    # observability
    "Span",
    "Tracer",
    "MetricsRegistry",
    "write_chrome_trace",
]
