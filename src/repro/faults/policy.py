"""Resilience policy: bounded retry-with-backoff and device quarantine.

The runtime's reaction to faults mirrors what the paper's CUTOFF heuristic
does statically ("don't involve devices whose contribution isn't worth
their overhead"), extended from *predicted too slow* to *observed
unhealthy*:

* transient transfer failures are retried with exponential backoff, in
  virtual time, up to ``max_retries`` times per transfer;
* a chunk whose retries are exhausted is a chunk-level fault: it is
  handed back for reassignment and counts against the device's health;
* :class:`HealthTracker` quarantines a device after ``quarantine_after``
  *consecutive* chunk-level faults (a success resets the streak) —
  quarantined devices receive no further work and their in-flight chunk
  is drained by the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultPlanError

__all__ = ["RetryPolicy", "ResiliencePolicy", "HealthTracker", "DEFAULT_RESILIENCE"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient transfer faults.

    The k-th retry waits ``backoff_s * backoff_factor**k`` of virtual time
    on top of the re-issued transfer itself.
    """

    max_retries: int = 3
    backoff_s: float = 50e-6
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultPlanError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0.0:
            raise FaultPlanError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise FaultPlanError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Virtual-time wait after failed attempt ``attempt`` (0-based)."""
        return self.backoff_s * self.backoff_factor**attempt


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the runtime reacts to injected faults."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.quarantine_after < 1:
            raise FaultPlanError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    def to_dict(self) -> dict:
        """Stable JSON-able identity (for cache fingerprints)."""
        return {
            "max_retries": self.retry.max_retries,
            "backoff_s": self.retry.backoff_s,
            "backoff_factor": self.retry.backoff_factor,
            "quarantine_after": self.quarantine_after,
        }


DEFAULT_RESILIENCE = ResiliencePolicy()


class HealthTracker:
    """Consecutive-fault counter with a quarantine threshold per device."""

    def __init__(self, quarantine_after: int):
        if quarantine_after < 1:
            raise FaultPlanError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.quarantine_after = quarantine_after
        self._streak: dict[int, int] = {}
        self.quarantined: set[int] = set()

    def record_success(self, devid: int) -> None:
        """A chunk completed: the device's fault streak resets."""
        self._streak[devid] = 0

    def record_failure(self, devid: int) -> bool:
        """A chunk-level fault occurred; True if this quarantines the device."""
        if devid in self.quarantined:
            return False
        streak = self._streak.get(devid, 0) + 1
        self._streak[devid] = streak
        if streak >= self.quarantine_after:
            self.quarantined.add(devid)
            return True
        return False

    def consecutive_faults(self, devid: int) -> int:
        return self._streak.get(devid, 0)

    def is_quarantined(self, devid: int) -> bool:
        return devid in self.quarantined
