"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is an immutable description of *what goes wrong* on a
machine, in virtual time:

* :class:`Slowdown` — a device runs ``factor`` times slower inside a
  window (a straggler; the window may be open-ended),
* :class:`TransferError` — each copy-in/copy-out attempt on a device's
  link fails with probability ``p_fail`` (a flaky link),
* :class:`DeviceDropout` — a device dies permanently at virtual time
  ``t`` (mid-offload loss).  Inside a target-data region a dropout also
  invalidates everything the device held in the residency ledger
  (:meth:`repro.memory.residency.ResidencyLedger.invalidate_device`):
  rows whose only valid copy died are re-charged when surviving devices
  adopt the orphaned chunks.

Stochastic faults draw from a counter-based hash (BLAKE2b over the fault
seed, device id, attempt counter and transfer direction), never from
global RNG state or the wall clock: the same plan, seed and engine
configuration produce bit-identical fault sequences in every run, in every
process, and under any ``run_grid`` worker count.

``REPRO_FAULTS=off`` disables injection globally (the engine ignores any
plan it was given), which is the quickest A/B switch for a faulted sweep.
"""

from __future__ import annotations

import hashlib
import math
import os
import struct
from dataclasses import dataclass, field

from repro.errors import FaultPlanError

__all__ = [
    "FAULTS_ENV",
    "faults_enabled",
    "Slowdown",
    "TransferError",
    "DeviceDropout",
    "FaultPlan",
]

FAULTS_ENV = "REPRO_FAULTS"


def faults_enabled() -> bool:
    """Global kill switch: ``REPRO_FAULTS=off`` ignores every fault plan."""
    v = os.environ.get(FAULTS_ENV, "on").strip().lower()
    return v not in ("off", "0", "false", "no")


def _unit_draw(*parts: object) -> float:
    """Deterministic draw in ``[0, 1)`` from a tuple of hashable parts.

    Counter-based (a keyed hash, not a stateful RNG) so a draw depends
    only on its coordinates — never on how many draws other devices made
    or on scheduling interleave.
    """
    h = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=8
    )
    (x,) = struct.unpack(">Q", h.digest())
    return x / 2**64


@dataclass(frozen=True)
class Slowdown:
    """Device ``devid`` runs ``factor``x slower during ``[t_start, t_end)``.

    Applies multiplicatively to every pipeline stage (copy-in, compute,
    copy-out) that *starts* inside the window; overlapping slowdowns
    stack multiplicatively.
    """

    devid: int
    factor: float
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        if self.devid < 0:
            raise FaultPlanError(f"Slowdown devid must be >= 0, got {self.devid}")
        if not self.factor > 0.0 or not math.isfinite(self.factor):
            raise FaultPlanError(
                f"Slowdown factor must be positive and finite, got {self.factor}"
            )
        if self.t_start < 0.0 or self.t_end < self.t_start:
            raise FaultPlanError(
                f"Slowdown window [{self.t_start}, {self.t_end}) is invalid"
            )

    def active_at(self, t: float) -> bool:
        return self.t_start <= t < self.t_end


@dataclass(frozen=True)
class TransferError:
    """Each transfer attempt on ``devid``'s link fails with ``p_fail``.

    Failures are transient: the engine retries with backoff (see
    :class:`~repro.faults.policy.RetryPolicy`).  Draws are keyed by a
    per-device attempt counter, so re-served chunks face fresh draws and a
    flaky link cannot deterministically livelock one chunk.
    """

    devid: int
    p_fail: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.devid < 0:
            raise FaultPlanError(f"TransferError devid must be >= 0, got {self.devid}")
        if not 0.0 <= self.p_fail < 1.0:
            raise FaultPlanError(
                f"TransferError p_fail must be in [0, 1), got {self.p_fail}"
            )

    def fails(self, attempt: int, direction: str) -> bool:
        """Does transfer attempt ``attempt`` (a per-device counter) fail?"""
        return (
            _unit_draw("xfer", self.seed, self.devid, attempt, direction)
            < self.p_fail
        )


@dataclass(frozen=True)
class DeviceDropout:
    """Device ``devid`` is permanently lost at virtual time ``t``.

    Work in flight at ``t`` is lost with the device (outputs only return
    at copy-out) and is reassigned to the survivors.
    """

    devid: int
    t: float

    def __post_init__(self) -> None:
        if self.devid < 0:
            raise FaultPlanError(f"DeviceDropout devid must be >= 0, got {self.devid}")
        if self.t < 0.0 or not math.isfinite(self.t):
            raise FaultPlanError(
                f"DeviceDropout time must be finite and >= 0, got {self.t}"
            )


_FAULT_TYPES = (Slowdown, TransferError, DeviceDropout)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults to inject into one machine's offloads.

    The plan is pure data: the engine consults it at each pipeline stage;
    the plan itself holds no mutable state and draws no global randomness,
    so one plan instance can be shared across runs, processes and cache
    fingerprints.
    """

    faults: tuple[Slowdown | TransferError | DeviceDropout, ...] = ()
    name: str = ""
    _dropouts: dict = field(
        default=None, init=False, repr=False, compare=False  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for f in faults:
            if not isinstance(f, _FAULT_TYPES):
                raise FaultPlanError(
                    f"unknown fault type {type(f).__name__}; expected one of "
                    f"{', '.join(t.__name__ for t in _FAULT_TYPES)}"
                )
        object.__setattr__(self, "faults", faults)
        drops: dict[int, float] = {}
        for f in faults:
            if isinstance(f, DeviceDropout):
                drops[f.devid] = min(f.t, drops.get(f.devid, math.inf))
        object.__setattr__(self, "_dropouts", drops)

    @classmethod
    def of(cls, *faults: Slowdown | TransferError | DeviceDropout,
           name: str = "") -> "FaultPlan":
        return cls(faults=tuple(faults), name=name)

    @property
    def empty(self) -> bool:
        return not self.faults

    def for_device(self, devid: int) -> tuple:
        return tuple(f for f in self.faults if f.devid == devid)

    # -- engine queries ------------------------------------------------------

    def slowdown_factor(self, devid: int, t: float) -> float:
        """Combined slowdown multiplier for a stage starting at ``t``."""
        factor = 1.0
        for f in self.faults:
            if isinstance(f, Slowdown) and f.devid == devid and f.active_at(t):
                factor *= f.factor
        return factor

    def transfer_fails(self, devid: int, attempt: int, direction: str) -> bool:
        """Does this device's transfer attempt ``attempt`` fail?

        ``attempt`` is a per-device monotonic counter maintained by the
        engine; ``direction`` is ``"in"`` or ``"out"``.
        """
        return any(
            f.fails(attempt, direction)
            for f in self.faults
            if isinstance(f, TransferError) and f.devid == devid
        )

    def dropout_t(self, devid: int) -> float | None:
        """Earliest dropout time for ``devid``, or None if it never dies."""
        return self._dropouts.get(devid)

    # -- serialisation (cache fingerprints, artifacts) -----------------------

    def to_dict(self) -> dict:
        """Stable JSON-able identity of the plan (cache-fingerprint safe).

        Faults are emitted in a canonical sort order, so two plans listing
        the same faults in different order fingerprint identically.
        """
        entries = []
        for f in self.faults:
            if isinstance(f, Slowdown):
                entries.append({
                    "kind": "slowdown", "devid": f.devid, "factor": f.factor,
                    "t_start": f.t_start,
                    "t_end": None if math.isinf(f.t_end) else f.t_end,
                })
            elif isinstance(f, TransferError):
                entries.append({
                    "kind": "transfer-error", "devid": f.devid,
                    "p_fail": f.p_fail, "seed": f.seed,
                })
            else:
                entries.append({"kind": "dropout", "devid": f.devid, "t": f.t})
        entries.sort(key=lambda e: sorted(e.items()).__repr__())
        return {"name": self.name, "faults": entries}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        faults: list = []
        for e in data.get("faults", ()):
            kind = e.get("kind")
            if kind == "slowdown":
                t_end = e.get("t_end")
                faults.append(Slowdown(
                    devid=e["devid"], factor=e["factor"],
                    t_start=e.get("t_start", 0.0),
                    t_end=math.inf if t_end is None else t_end,
                ))
            elif kind == "transfer-error":
                faults.append(TransferError(
                    devid=e["devid"], p_fail=e["p_fail"], seed=e.get("seed", 0),
                ))
            elif kind == "dropout":
                faults.append(DeviceDropout(devid=e["devid"], t=e["t"]))
            else:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
        return cls(faults=tuple(faults), name=data.get("name", ""))

    def describe(self) -> str:
        if self.empty:
            return "fault-free"
        label = self.name or "plan"
        return f"{label}({len(self.faults)} faults)"
