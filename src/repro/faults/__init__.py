"""Deterministic fault injection and resilient offloading (``repro.faults``).

HOMP's premise is that devices are computationally *different*; this
subsystem makes them *unreliable* too, so the adaptive schedulers can be
exercised against the conditions that justify their existence: stragglers,
flaky PCIe links, and devices that die mid-offload.  Everything is
declarative and seed-deterministic — a :class:`FaultPlan` plus the engine
seed fully determines every fault occurrence, so faulted runs are as
reproducible (and cacheable) as fault-free ones.

See ``docs/RESILIENCE.md`` for the plan schema, the retry/quarantine
semantics and the determinism guarantees.
"""

from repro.faults.events import ChunkFault, FaultKind
from repro.faults.plan import (
    FAULTS_ENV,
    DeviceDropout,
    FaultPlan,
    Slowdown,
    TransferError,
    faults_enabled,
)
from repro.faults.policy import (
    DEFAULT_RESILIENCE,
    HealthTracker,
    ResiliencePolicy,
    RetryPolicy,
)

__all__ = [
    "FAULTS_ENV",
    "faults_enabled",
    "Slowdown",
    "TransferError",
    "DeviceDropout",
    "FaultPlan",
    "ChunkFault",
    "FaultKind",
    "RetryPolicy",
    "ResiliencePolicy",
    "HealthTracker",
    "DEFAULT_RESILIENCE",
]
