"""Typed fault events: what the engine records when a fault fires.

Every fault occurrence during an offload produces one :class:`ChunkFault`,
which ends up in the run's :class:`~repro.engine.events.Timeline` (and,
summarised, in ``OffloadResult.meta``).  With ``record_events=True`` the
per-chunk :class:`~repro.engine.events.ChunkEvent` records additionally
carry a ``status``/``retries`` pair, so a faulted timeline shows exactly
where time was lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.ranges import IterRange

__all__ = ["FaultKind", "ChunkFault"]


class FaultKind(str, Enum):
    """What kind of fault fired."""

    RETRY = "retry"                  # a transfer attempt failed, retrying
    TRANSFER_FAIL = "transfer-fail"  # retries exhausted, chunk abandoned
    DROPOUT = "dropout"              # device permanently lost (planned)
    QUARANTINE = "quarantine"        # health tracker excluded the device


@dataclass(frozen=True)
class ChunkFault:
    """One fault occurrence, pinned to virtual time (and chunk, if any)."""

    kind: FaultKind
    devid: int
    device_name: str
    t: float
    chunk: IterRange | None = None
    stage: str = ""   # "in" / "out" for transfer faults, else ""
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready record (the obs JSONL exporter's fault row)."""
        return {
            "kind": self.kind.value,
            "devid": self.devid,
            "device": self.device_name,
            "t": self.t,
            "chunk": (
                [self.chunk.start, self.chunk.stop]
                if self.chunk is not None
                else None
            ),
            "stage": self.stage,
            "detail": self.detail,
        }

    def describe(self) -> str:
        where = f" [{self.chunk.start}:{self.chunk.stop})" if self.chunk else ""
        stage = f" ({self.stage})" if self.stage else ""
        extra = f": {self.detail}" if self.detail else ""
        return (
            f"{self.t * 1e3:.3f} ms {self.device_name} "
            f"{self.kind.value}{stage}{where}{extra}"
        )
