"""Concrete distributions: per-device ranges for loop dims and array dims.

A :class:`DimDistribution` is the *result* of applying a policy to one
region: for each device, the (possibly several, for CYCLIC) half-open
ranges it owns.  An :class:`ArrayDistribution` stacks one per array
dimension and can produce the numpy index tuple for a device's subregion.

Invariants (pinned by property tests): per-device ranges of a partitioning
policy are disjoint and cover the region exactly; FULL replicates the whole
region on every device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import DistributionError
from repro.dist.policy import Full, Policy
from repro.util.ranges import IterRange

__all__ = ["DimDistribution", "ArrayDistribution"]


@dataclass(frozen=True)
class DimDistribution:
    """One region distributed over ``ndev`` devices."""

    region: IterRange
    parts: tuple[tuple[IterRange, ...], ...]  # parts[devid] -> ranges
    policy: Policy
    replicated: bool = False

    def __post_init__(self) -> None:
        if not self.parts:
            raise DistributionError("distribution must cover at least one device")
        if not self.replicated:
            covered = sum(len(r) for ranges in self.parts for r in ranges)
            if covered != len(self.region):
                raise DistributionError(
                    f"distribution covers {covered} of {len(self.region)} indices"
                )

    @property
    def ndev(self) -> int:
        return len(self.parts)

    def device_ranges(self, devid: int) -> tuple[IterRange, ...]:
        return self.parts[devid]

    def device_size(self, devid: int) -> int:
        return sum(len(r) for r in self.parts[devid])

    def sizes(self) -> tuple[int, ...]:
        return tuple(self.device_size(d) for d in range(self.ndev))

    def owner_of(self, index: int) -> int:
        """Device owning a global index (first owner if replicated)."""
        for dev, ranges in enumerate(self.parts):
            if any(index in r for r in ranges):
                return dev
        raise DistributionError(f"index {index} outside distributed region")

    def scaled(self, ratio: float, policy: Policy) -> "DimDistribution":
        """ALIGN with a ratio: every range boundary scaled by ``ratio``.

        Boundaries are rounded to integers; with integral ratios (the common
        case: an array of ``r*N`` elements aligned to an ``N``-iteration
        loop) the result covers the scaled region exactly.
        """
        if ratio <= 0:
            raise DistributionError(f"ALIGN ratio must be positive, got {ratio}")

        def s(x: int) -> int:
            return round(x * ratio)

        region = IterRange(s(self.region.start), s(self.region.stop))
        parts = tuple(
            tuple(IterRange(s(r.start), s(r.stop)) for r in ranges)
            for ranges in self.parts
        )
        return DimDistribution(
            region=region, parts=parts, policy=policy, replicated=self.replicated
        )

    @classmethod
    def from_policy(
        cls, policy: Policy, region: IterRange, ndev: int
    ) -> "DimDistribution":
        """Apply a static policy (FULL/BLOCK/CYCLIC) to a region."""
        if policy.needs_runtime:
            raise DistributionError(
                f"policy {policy} needs runtime resolution, not a static split"
            )
        parts = tuple(tuple(rs) for rs in policy.split(region, ndev))
        return cls(
            region=region,
            parts=parts,
            policy=policy,
            replicated=isinstance(policy, Full),
        )

    @classmethod
    def from_chunks(
        cls, region: IterRange, chunks: Sequence[IterRange], policy: Policy
    ) -> "DimDistribution":
        """Build from explicit per-device contiguous chunks (scheduler output)."""
        return cls(
            region=region,
            parts=tuple((c,) if len(c) else () for c in chunks),
            policy=policy,
        )


@dataclass(frozen=True)
class ArrayDistribution:
    """A distribution per array dimension.

    The paper partitions at most one dimension per array in its kernels
    (the others are FULL); this type supports any mix.
    """

    dims: tuple[DimDistribution, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise DistributionError("array distribution needs at least one dim")
        ndev = self.dims[0].ndev
        if any(d.ndev != ndev for d in self.dims):
            raise DistributionError("all dims must distribute over the same devices")

    @property
    def ndev(self) -> int:
        return self.dims[0].ndev

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(d.region) for d in self.dims)

    def device_index(self, devid: int) -> tuple[slice, ...] | None:
        """numpy index tuple for a device's subregion, or None if it owns
        nothing.  Requires each dim's ownership to be a single contiguous
        range (CYCLIC subregions must be iterated per-range instead)."""
        idx: list[slice] = []
        for dim in self.dims:
            ranges = dim.device_ranges(devid)
            if len(ranges) == 0 or all(r.empty for r in ranges):
                return None
            if len(ranges) != 1:
                raise DistributionError(
                    "device owns a non-contiguous subregion; index per-range"
                )
            idx.append(ranges[0].as_slice())
        return tuple(idx)

    def device_elems(self, devid: int) -> int:
        """Number of array elements owned by (or replicated onto) a device."""
        n = 1
        for dim in self.dims:
            n *= dim.device_size(devid)
        return n
