"""Data/loop distribution: Table I policies, per-dim distributions, ALIGN graph."""

from repro.dist.policy import (
    Policy,
    Full,
    Block,
    Cyclic,
    Align,
    Auto,
    parse_policy,
)
from repro.dist.distribution import DimDistribution, ArrayDistribution
from repro.dist.align import AlignmentGraph
from repro.dist.hierarchy import (
    HierarchicalPartition,
    hierarchical_partition,
    node_shards,
)
from repro.dist.nested import TileDistribution, device_grid

__all__ = [
    "Policy",
    "Full",
    "Block",
    "Cyclic",
    "Align",
    "Auto",
    "parse_policy",
    "DimDistribution",
    "ArrayDistribution",
    "AlignmentGraph",
    "HierarchicalPartition",
    "hierarchical_partition",
    "node_shards",
    "TileDistribution",
    "device_grid",
]
