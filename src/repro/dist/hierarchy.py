"""Hierarchical node -> device decomposition for the cluster backend.

A cluster offload splits one iteration range twice: first across *nodes*
(contiguous shards — BLOCK, or throughput-weighted BLOCK for
heterogeneous clusters), then each shard across the node's *devices*
with an ordinary Table I policy.  The invariant the property tests pin:
the flattened two-level split covers the original region exactly once
(no gaps, no overlaps), and a degenerate single-node cluster reduces to
the flat :class:`~repro.dist.distribution.DimDistribution` of the same
intra-node policy, range for range.

This module only computes *static* decompositions — the cluster engine
uses :func:`node_shards` for the node level and then hands each shard to
a real intra-node scheduler (which may re-split it dynamically); the
full :func:`hierarchical_partition` is what analyses, property tests and
the ALIGN placement derivation consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dist.policy import Block, Policy
from repro.errors import DistributionError
from repro.util.ranges import IterRange, split_block, split_by_weights

__all__ = ["node_shards", "HierarchicalPartition", "hierarchical_partition"]


def node_shards(
    region: IterRange,
    n_nodes: int,
    *,
    weights: "Sequence[float] | None" = None,
) -> list[IterRange]:
    """Contiguous per-node shards of ``region`` (the node-level split).

    Even BLOCK by default; with ``weights`` (one per node, e.g. aggregate
    modeled throughputs) the shards are proportional with
    largest-remainder rounding, so they always sum to ``len(region)``.
    """
    if n_nodes <= 0:
        raise DistributionError(f"n_nodes must be positive, got {n_nodes}")
    if weights is None:
        return split_block(region, n_nodes)
    if len(weights) != n_nodes:
        raise DistributionError(
            f"got {len(weights)} node weights for {n_nodes} nodes"
        )
    return split_by_weights(region, weights)


@dataclass(frozen=True)
class HierarchicalPartition:
    """A two-level split: node shards, then per-device ranges per node.

    ``device_parts[k][d]`` is the tuple of ranges device ``d`` of node
    ``k`` owns; shards are contiguous and in node order, so global device
    order is (node-major) deterministic.
    """

    region: IterRange
    node_shards: tuple[IterRange, ...]
    device_parts: tuple[tuple[tuple[IterRange, ...], ...], ...]

    def __post_init__(self) -> None:
        covered = sum(
            len(r)
            for node in self.device_parts
            for per_dev in node
            for r in per_dev
        )
        if covered != len(self.region):
            raise DistributionError(
                f"hierarchical partition covers {covered} of "
                f"{len(self.region)} iterations"
            )

    @property
    def n_nodes(self) -> int:
        return len(self.node_shards)

    def flat_ranges(self) -> list[IterRange]:
        """Every owned range in (node, device) order, empties dropped."""
        return [
            r
            for node in self.device_parts
            for per_dev in node
            for r in per_dev
            if not r.empty
        ]


def hierarchical_partition(
    region: IterRange,
    device_counts: Sequence[int],
    *,
    weights: "Sequence[float] | None" = None,
    intra_policy: Policy | None = None,
) -> HierarchicalPartition:
    """Split ``region`` across nodes, then each shard across its devices.

    ``device_counts[k]`` is how many devices node ``k`` has; ``weights``
    (optional) biases the node-level shards; ``intra_policy`` is the
    Table I policy applied *within* each shard (BLOCK by default; FULL
    and the runtime-resolved policies are rejected — replication and
    scheduler-decided splits are not exact covers).
    """
    if not device_counts:
        raise DistributionError("hierarchical partition needs >= 1 node")
    for k, n in enumerate(device_counts):
        if n <= 0:
            raise DistributionError(
                f"node {k} has {n} devices; every node needs >= 1"
            )
    policy = intra_policy if intra_policy is not None else Block()
    if policy.needs_runtime:
        raise DistributionError(
            f"intra-node policy {policy} is resolved at runtime and cannot "
            "form a static hierarchical partition"
        )
    shards = node_shards(region, len(device_counts), weights=weights)
    device_parts = tuple(
        tuple(tuple(ranges) for ranges in policy.split(shard, ndev))
        for shard, ndev in zip(shards, device_counts)
    )
    return HierarchicalPartition(
        region=region,
        node_shards=tuple(shards),
        device_parts=device_parts,
    )
