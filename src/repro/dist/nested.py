"""Multi-dimensional (nested-loop) distribution (paper §III.3).

"For distributing a multiple dimensional array, the extensions allow for
specifying different policies in each dimension ... Similarly, for
distributing the iteration spaces of nested loops, users can specify
policies for each loop."

A :class:`TileDistribution` applies one policy per dimension of an N-D
domain over a logical *device grid*: partitioning policies consume device-
grid axes in order, FULL dimensions replicate.  Example: a 2-D grid with
``(BLOCK, BLOCK)`` over 4 devices arranged 2x2 gives each device one
quadrant; ``(BLOCK, FULL)`` over 4 devices gives row bands (what the
paper's kernels use).  Tiles are the cartesian products of the per-dim
ranges; they cover the domain exactly once — property-tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

from repro.dist.distribution import DimDistribution
from repro.dist.policy import Full, Policy
from repro.errors import DistributionError
from repro.util.ranges import IterRange

__all__ = ["device_grid", "TileDistribution"]


def device_grid(ndev: int, n_partitioned_dims: int) -> tuple[int, ...]:
    """A near-square factorisation of ``ndev`` over the partitioned dims.

    4 devices over 2 dims -> (2, 2); 6 over 2 -> (3, 2); 5 over 2 ->
    (5, 1); anything over 1 dim -> (ndev,).
    """
    if ndev < 1:
        raise DistributionError(f"ndev must be >= 1, got {ndev}")
    if n_partitioned_dims < 1:
        raise DistributionError("need at least one partitioned dimension")
    if n_partitioned_dims == 1:
        return (ndev,)
    # greedy: peel off a factor near the k-th root each step
    dims: list[int] = []
    remaining = ndev
    for k in range(n_partitioned_dims, 0, -1):
        f = max(1, round(remaining ** (1.0 / k)))
        while remaining % f != 0:
            f -= 1
        dims.append(f)
        remaining //= f
    dims.sort(reverse=True)
    return tuple(dims)


@dataclass(frozen=True)
class TileDistribution:
    """An N-D iteration/array domain distributed over a device grid."""

    domain: tuple[IterRange, ...]
    policies: tuple[Policy, ...]
    grid: tuple[int, ...]        # per-partitioned-dim device counts
    dims: tuple[DimDistribution, ...]

    @classmethod
    def create(
        cls,
        domain: tuple[IterRange, ...] | tuple[int, ...],
        policies: tuple[Policy, ...],
        ndev: int,
        *,
        grid: tuple[int, ...] | None = None,
    ) -> "TileDistribution":
        """Distribute ``domain`` (ranges, or plain extents) over ``ndev``.

        Partitioned (non-FULL) dimensions consume device-grid axes; the
        product of the grid must equal ``ndev``.  If ``grid`` is omitted a
        near-square factorisation is used.
        """
        ranges = tuple(
            d if isinstance(d, IterRange) else IterRange(0, int(d)) for d in domain
        )
        if len(ranges) != len(policies):
            raise DistributionError(
                f"{len(policies)} policies for a rank-{len(ranges)} domain"
            )
        part_dims = [i for i, p in enumerate(policies) if not isinstance(p, Full)]
        if not part_dims:
            raise DistributionError("at least one dimension must be partitioned")
        for i in part_dims:
            if policies[i].needs_runtime:
                raise DistributionError(
                    f"dim {i}: policy {policies[i]} needs runtime resolution"
                )
        if grid is None:
            grid = device_grid(ndev, len(part_dims))
        if len(grid) != len(part_dims):
            raise DistributionError(
                f"grid rank {len(grid)} != partitioned dims {len(part_dims)}"
            )
        if math.prod(grid) != ndev:
            raise DistributionError(
                f"device grid {grid} does not cover {ndev} devices"
            )
        dims: list[DimDistribution] = []
        g = iter(grid)
        for i, policy in enumerate(policies):
            n_parts = 1 if isinstance(policy, Full) else next(g)
            dims.append(DimDistribution.from_policy(policy, ranges[i], n_parts))
        return cls(domain=ranges, policies=policies, grid=tuple(grid), dims=tuple(dims))

    @property
    def ndev(self) -> int:
        return math.prod(self.grid)

    def grid_coords(self, devid: int) -> tuple[int, ...]:
        """Device id -> coordinates in the (row-major) device grid."""
        if not 0 <= devid < self.ndev:
            raise DistributionError(f"device id {devid} outside grid {self.grid}")
        coords = []
        rem = devid
        for extent in reversed(self.grid):
            coords.append(rem % extent)
            rem //= extent
        return tuple(reversed(coords))

    def device_tiles(self, devid: int) -> list[tuple[IterRange, ...]]:
        """The (possibly several, under CYCLIC) N-D tiles a device owns."""
        coords = iter(self.grid_coords(devid))
        per_dim: list[tuple[IterRange, ...]] = []
        for policy, dim in zip(self.policies, self.dims):
            part = 0 if isinstance(policy, Full) else next(coords)
            per_dim.append(dim.device_ranges(part))
        return [t for t in product(*per_dim) if all(not r.empty for r in t)]

    def tile_elems(self, devid: int) -> int:
        return sum(
            math.prod(len(r) for r in tile) for tile in self.device_tiles(devid)
        )

    def all_tiles(self) -> list[tuple[int, tuple[IterRange, ...]]]:
        """(devid, tile) pairs across the whole grid."""
        out = []
        for d in range(self.ndev):
            for tile in self.device_tiles(d):
                out.append((d, tile))
        return out
