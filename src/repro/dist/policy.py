"""Distribution policies (paper Table I, plus a CYCLIC extension).

========  ===================================================================
FULL      the full range of this dimension goes to every device (default)
BLOCK     divide the indices evenly into contiguous blocks
ALIGN     copy another distribution's ranges (optionally scaled by a ratio)
AUTO      loop distribution only: left to the runtime scheduler
CYCLIC    extension: round-robin blocks of a given chunk, as in UPC/HPF —
          mentioned by the paper's related-work discussion and useful for
          irregular loops
========  ===================================================================

Policies are small frozen value objects; applying one to a region yields the
per-device ranges via :meth:`Policy.split`.  ALIGN and AUTO cannot split on
their own (they need the alignment graph or the scheduler respectively) and
raise ``DistributionError`` when asked directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DirectiveSyntaxError, DistributionError
from repro.util.ranges import IterRange, split_block

__all__ = ["Policy", "Full", "Block", "Cyclic", "Align", "Auto", "parse_policy"]


@dataclass(frozen=True, slots=True)
class Policy:
    """Base class for distribution policies."""

    def split(self, region: IterRange, ndev: int) -> list[list[IterRange]]:
        """Per-device ranges: a list of ``ndev`` lists of disjoint ranges.

        Most policies give each device one contiguous range; CYCLIC gives
        several, hence the list-of-lists shape.
        """
        raise NotImplementedError

    @property
    def needs_runtime(self) -> bool:
        """True when the split is decided later (ALIGN/AUTO)."""
        return False


@dataclass(frozen=True, slots=True)
class Full(Policy):
    """Every device receives the full range (replication)."""

    def split(self, region: IterRange, ndev: int) -> list[list[IterRange]]:
        if ndev <= 0:
            raise DistributionError(f"ndev must be positive, got {ndev}")
        return [[region] for _ in range(ndev)]

    def __str__(self) -> str:
        return "FULL"


@dataclass(frozen=True, slots=True)
class Block(Policy):
    """Contiguous even blocks (first ``len % ndev`` blocks one larger)."""

    def split(self, region: IterRange, ndev: int) -> list[list[IterRange]]:
        if ndev <= 0:
            raise DistributionError(f"ndev must be positive, got {ndev}")
        return [[r] for r in split_block(region, ndev)]

    def __str__(self) -> str:
        return "BLOCK"


@dataclass(frozen=True, slots=True)
class Cyclic(Policy):
    """Round-robin blocks of ``chunk`` indices (extension; UPC-style)."""

    chunk: int = 1

    def __post_init__(self) -> None:
        if self.chunk <= 0:
            raise DistributionError(f"cyclic chunk must be positive, got {self.chunk}")

    def split(self, region: IterRange, ndev: int) -> list[list[IterRange]]:
        if ndev <= 0:
            raise DistributionError(f"ndev must be positive, got {ndev}")
        out: list[list[IterRange]] = [[] for _ in range(ndev)]
        dev = 0
        for start in range(region.start, region.stop, self.chunk):
            out[dev].append(IterRange(start, min(start + self.chunk, region.stop)))
            dev = (dev + 1) % ndev
        return out

    def __str__(self) -> str:
        return f"CYCLIC({self.chunk})" if self.chunk != 1 else "CYCLIC"


@dataclass(frozen=True, slots=True)
class Align(Policy):
    """Copy the ``target`` distribution's ranges, scaled by ``ratio``.

    ``target`` names either a mapped array (align computation with data,
    paper's ``axpy_homp_v1``) or a labelled loop (align data with
    computation, ``axpy_homp_v2``).
    """

    target: str
    ratio: float = 1.0

    def __post_init__(self) -> None:
        if not self.target:
            raise DistributionError("ALIGN requires a target name")
        if self.ratio <= 0:
            raise DistributionError(f"ALIGN ratio must be positive, got {self.ratio}")

    def split(self, region: IterRange, ndev: int) -> list[list[IterRange]]:
        raise DistributionError(
            f"ALIGN({self.target}) must be resolved through the alignment graph"
        )

    @property
    def needs_runtime(self) -> bool:
        return True

    def __str__(self) -> str:
        if self.ratio != 1.0:
            return f"ALIGN({self.target},{self.ratio:g})"
        return f"ALIGN({self.target})"


@dataclass(frozen=True, slots=True)
class Auto(Policy):
    """Loop distribution decided by the runtime scheduler (paper AUTO)."""

    def split(self, region: IterRange, ndev: int) -> list[list[IterRange]]:
        raise DistributionError("AUTO is resolved by the loop scheduler at runtime")

    @property
    def needs_runtime(self) -> bool:
        return True

    def __str__(self) -> str:
        return "AUTO"


_ALIGN_RE = re.compile(
    r"^ALIGN\(\s*([A-Za-z_]\w*)\s*(?:,\s*([0-9.eE+-]+)\s*)?\)$", re.IGNORECASE
)
_CYCLIC_RE = re.compile(r"^CYCLIC(?:\(\s*(\d+)\s*\))?$", re.IGNORECASE)


def parse_policy(text: str) -> Policy:
    """Parse one policy token as written in HOMP directives.

    Accepts ``FULL``, ``BLOCK``, ``AUTO``, ``ALIGN(name)``,
    ``ALIGN(name, ratio)``, ``CYCLIC`` and ``CYCLIC(k)``.
    """
    t = text.strip()
    upper = t.upper()
    if upper == "FULL":
        return Full()
    if upper == "BLOCK":
        return Block()
    if upper == "AUTO":
        return Auto()
    m = _CYCLIC_RE.match(t)
    if m:
        return Cyclic(int(m.group(1))) if m.group(1) else Cyclic()
    m = _ALIGN_RE.match(t)
    if m:
        try:
            ratio = float(m.group(2)) if m.group(2) else 1.0
        except ValueError as exc:
            raise DirectiveSyntaxError("bad ALIGN ratio", text=text) from exc
        return Align(target=m.group(1), ratio=ratio)
    raise DirectiveSyntaxError("unknown distribution policy", text=text)
