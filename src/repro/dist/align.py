"""The ALIGN resolution graph (paper §V.D).

ALIGN policies name another distribution ("alignee").  Chains are legal —
array ``u`` aligns with array ``uold`` which aligns with loop ``loop1`` —
and the paper's runtime "re-links those distributions so each aligner
points to the root alignee's distribution".  This module implements that:
a registry of named distributions plus ALIGN edges, root lookup with
composed ratios, and cycle/missing-target detection.

Names live in one namespace covering mapped arrays (per dimension) and
labelled loops, matching how the directives reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AlignmentError
from repro.dist.distribution import DimDistribution
from repro.dist.policy import Align, Policy

__all__ = ["AlignmentGraph"]


@dataclass
class AlignmentGraph:
    """Named distributions and the ALIGN edges between them."""

    _concrete: dict[str, DimDistribution] = field(default_factory=dict)
    _edges: dict[str, Align] = field(default_factory=dict)

    def add_concrete(self, name: str, dist: DimDistribution) -> None:
        """Register a root distribution (BLOCK'd array dim, scheduled loop)."""
        if name in self._edges:
            raise AlignmentError(f"{name!r} is already an ALIGN node")
        self._concrete[name] = dist

    def add_align(self, name: str, policy: Align) -> None:
        """Register that ``name`` is distributed as ALIGN(policy.target)."""
        if name in self._concrete:
            raise AlignmentError(f"{name!r} already has a concrete distribution")
        if policy.target == name:
            raise AlignmentError(f"{name!r} cannot align with itself")
        self._edges[name] = policy

    def known(self, name: str) -> bool:
        return name in self._concrete or name in self._edges

    def root_of(self, name: str) -> tuple[str, float]:
        """Follow ALIGN edges to the root alignee.

        Returns ``(root_name, composed_ratio)``.  Raises on cycles and on
        targets that are not registered at all.
        """
        seen: list[str] = []
        ratio = 1.0
        cur = name
        while cur in self._edges:
            if cur in seen:
                cycle = " -> ".join(seen + [cur])
                raise AlignmentError(f"ALIGN cycle: {cycle}")
            seen.append(cur)
            edge = self._edges[cur]
            ratio *= edge.ratio
            cur = edge.target
        if cur not in self._concrete and cur != name:
            raise AlignmentError(
                f"ALIGN target {cur!r} (reached from {name!r}) has no distribution"
            )
        return cur, ratio

    def resolve(self, name: str, *, policy: Policy | None = None) -> DimDistribution:
        """The concrete distribution for ``name`` after re-linking to root."""
        if name in self._concrete:
            return self._concrete[name]
        if name not in self._edges:
            raise AlignmentError(f"unknown distribution {name!r}")
        root, ratio = self.root_of(name)
        if root not in self._concrete:
            raise AlignmentError(f"root alignee {root!r} is not yet distributed")
        base = self._concrete[root]
        out_policy = policy or self._edges[name]
        if ratio == 1.0:
            return DimDistribution(
                region=base.region,
                parts=base.parts,
                policy=out_policy,
                replicated=base.replicated,
            )
        return base.scaled(ratio, out_policy)

    def relink(self) -> None:
        """Eagerly resolve every ALIGN node to its root (paper's re-link).

        After this, :meth:`resolve` is O(1) for all names.  Raises if any
        node is unresolvable, so errors surface at offload setup rather
        than mid-execution.
        """
        for name in list(self._edges):
            self._concrete[name] = self.resolve(name)
        self._edges.clear()
