"""A BLAS-style multi-offload workflow (the paper's §V.C "BLAS examples").

A realistic pattern the single-loop benchmarks do not cover: several
dependent loops over the same arrays inside one target-data region —

    1. y  = A @ x            (matvec: BLAS-2)
    2. y += alpha * x        (axpy:   BLAS-1)
    3. s  = sum(y)           (reduction)

The region maps ``A``/``x``/``y`` once; each loop runs distributed with
its own algorithm (the selector's choice by default).  Because the
intermediate ``y`` stays resident, the chain pays the PCIe bus once
instead of per loop — the measurable benefit of the paper's
``target data`` construct, asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.policy import Align, Full
from repro.kernels.base import LoopKernel, MapSpec
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.runtime.data_env import TargetDataRegion
from repro.runtime.runtime import HompRuntime
from repro.util.ranges import IterRange

__all__ = [
    "BlasChain",
    "BlasChainResult",
    "PowerIteration",
    "PowerIterationResult",
    "two_kernel_chain",
]


class _ChainMatVec(LoopKernel):
    name = "chain-matvec"
    label = "loop"

    def __init__(self, a, x, y):
        self.n = a.shape[0]
        super().__init__(n_iters=self.n, arrays={"A": a, "x": x, "y": y})

    def maps(self):
        return (
            MapSpec("A", MapDirection.TO, (Align(self.label), Full())),
            MapSpec("x", MapDirection.TO, (Full(),)),
            MapSpec("y", MapDirection.FROM, (Align(self.label),)),
        )

    def flops_per_iter(self):
        return 2.0 * self.arrays["A"].shape[1]

    def mem_accesses_per_iter(self):
        return 2.0 * self.arrays["A"].shape[1] + 1.0

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange):
        buffers["y"].local_view(rows)[:] = (
            buffers["A"].local_view(rows) @ buffers["x"].data
        )
        return None

    def reference(self):
        return {"y": self._initial["A"] @ self._initial["x"]}


class _ChainAxpy(LoopKernel):
    name = "chain-axpy"
    label = "loop"

    def __init__(self, x, y, alpha):
        self.alpha = float(alpha)
        super().__init__(n_iters=len(y), arrays={"x": x, "y": y})

    def maps(self):
        return (
            MapSpec("x", MapDirection.TO, (Align(self.label),)),
            MapSpec("y", MapDirection.TOFROM, (Align(self.label),)),
        )

    def flops_per_iter(self):
        return 2.0

    def mem_accesses_per_iter(self):
        return 3.0

    def compute(self, buffers, rows):
        buffers["y"].local_view(rows)[:] += self.alpha * buffers["x"].local_view(rows)
        return None

    def reference(self):
        return {"y": self._initial["y"] + self.alpha * self._initial["x"]}


class _ChainSum(LoopKernel):
    name = "chain-sum"
    label = "loop"
    device_mem_factor = 4.0

    def __init__(self, y):
        super().__init__(n_iters=len(y), arrays={"y": y})

    def maps(self):
        return (MapSpec("y", MapDirection.TO, (Align(self.label),)),)

    @property
    def is_reduction(self):
        return True

    def flops_per_iter(self):
        return 1.0

    def mem_accesses_per_iter(self):
        return 1.0

    def compute(self, buffers, rows):
        return float(buffers["y"].local_view(rows).sum())

    def reference(self):
        return float(self._initial["y"].sum())


def two_kernel_chain(
    n: int, *, alpha: float = 0.5, seed: int = 0
) -> tuple[list[tuple[str, LoopKernel]], dict[str, np.ndarray]]:
    """A two-offload (directive, kernel) chain sharing ``x`` and ``y``.

    The matvec writes ``y = A @ x``; the axpy then updates
    ``y += alpha * x`` in place.  Both kernels bind the *same* host
    arrays, so lowering the pair through
    :func:`repro.ir.lower.from_directives` and running the
    ``fuse-adjacent-offloads`` pass yields one fused data environment in
    which ``x`` crosses the bus once and the intermediate ``y`` never
    round-trips — the ledger's ``bytes_elided`` makes that measurable.

    Returns the ordered (directive, kernel) pairs and the reference
    result ``{"y": A @ x + alpha * x}``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    x = rng.standard_normal(n)
    y = np.zeros(n)
    directive = "#pragma omp parallel target device(*)"
    pairs = [
        (directive, _ChainMatVec(a, x, y)),
        (directive, _ChainAxpy(x, y, alpha)),
    ]
    reference = {"y": a @ x + float(alpha) * x}
    return pairs, reference


@dataclass
class BlasChainResult:
    """Outcome of the three-loop chain."""

    s: float
    y: np.ndarray
    sim_time_s: float
    per_loop: list = field(default_factory=list)


class BlasChain:
    """``s = sum(A @ x + alpha * x)`` as three distributed offloads."""

    def __init__(self, n: int, *, alpha: float = 0.5, seed: int = 0):
        if n < 1:
            raise ValueError("n must be positive")
        rng = np.random.default_rng(seed)
        self.n = n
        self.alpha = float(alpha)
        self.a = rng.standard_normal((n, n))
        self.x = rng.standard_normal(n)
        self.y = np.zeros(n)

    def run(
        self,
        runtime: HompRuntime,
        *,
        devices=None,
        schedule="AUTO",
        use_data_region: bool = True,
    ) -> BlasChainResult:
        """Execute the chain; with ``use_data_region=False`` every loop
        re-transfers its arrays (the anti-pattern, for comparison)."""
        loops = [
            _ChainMatVec(self.a, self.x, self.y),
            _ChainAxpy(self.x, self.y, self.alpha),
            _ChainSum(self.y),
        ]
        per_loop = []
        if use_data_region:
            region = TargetDataRegion(
                runtime=runtime,
                maps={
                    "A": (self.a, MapDirection.TO),
                    "x": (self.x, MapDirection.TO),
                    "y": (self.y, MapDirection.FROM),
                },
                devices=devices,
                partitioned=frozenset({"A", "y"}),
            )
            with region:
                for kernel in loops:
                    per_loop.append(region.parallel_for(kernel, schedule=schedule))
            total = region.total_time_s
        else:
            total = 0.0
            for kernel in loops:
                r = runtime.parallel_for(kernel, schedule=schedule, devices=devices)
                per_loop.append(r)
                total += r.total_time_s
        return BlasChainResult(
            s=float(per_loop[-1].reduction),
            y=self.y,
            sim_time_s=total,
            per_loop=per_loop,
        )

    def reference(self) -> tuple[float, np.ndarray]:
        y = self.a @ self.x + self.alpha * self.x
        return float(y.sum()), y


class _ChainSquareSum(LoopKernel):
    name = "chain-nrm2"
    label = "loop"
    device_mem_factor = 4.0

    def __init__(self, y):
        super().__init__(n_iters=len(y), arrays={"y": y})

    def maps(self):
        return (MapSpec("y", MapDirection.TO, (Align(self.label),)),)

    @property
    def is_reduction(self):
        return True

    def flops_per_iter(self):
        return 2.0

    def mem_accesses_per_iter(self):
        return 1.0

    def compute(self, buffers, rows):
        v = buffers["y"].local_view(rows)
        return float((v * v).sum())

    def reference(self):
        y = self._initial["y"]
        return float((y * y).sum())


class _ChainScale(LoopKernel):
    """``x = c * y`` — the normalisation step of power iteration."""

    name = "chain-scale"
    label = "loop"

    def __init__(self, y, x, c: float):
        self.c = float(c)
        super().__init__(n_iters=len(y), arrays={"y": y, "x": x})

    def maps(self):
        return (
            MapSpec("y", MapDirection.TO, (Align(self.label),)),
            MapSpec("x", MapDirection.FROM, (Align(self.label),)),
        )

    def flops_per_iter(self):
        return 1.0

    def mem_accesses_per_iter(self):
        return 2.0

    def compute(self, buffers, rows):
        buffers["x"].local_view(rows)[:] = self.c * buffers["y"].local_view(rows)
        return None

    def reference(self):
        return {"x": self.c * self._initial["y"]}


@dataclass
class PowerIterationResult:
    """Outcome of a distributed power iteration."""

    eigenvalue: float
    x: np.ndarray
    sim_time_s: float
    iterations: int


class PowerIteration:
    """Dominant-eigenvector iteration: the canonical reused-operator chain.

    Each sweep runs three distributed loops — ``y = A @ x``,
    ``s = sum(y*y)``, ``x = y / sqrt(s)`` — over the *same* matrix ``A``.
    Inside a target-data region ``A`` crosses the bus once for the whole
    solve; without it, every sweep re-transfers the matrix.  This is the
    workload where the paper's ``target data`` construct pays for itself
    (as it does in its Fig. 3 Jacobi).
    """

    def __init__(self, n: int, *, seed: int = 0):
        if n < 2:
            raise ValueError("n must be >= 2")
        rng = np.random.default_rng(seed)
        base = rng.standard_normal((n, n))
        self.a = (base + base.T) / 2.0  # symmetric: real spectrum
        self.n = n
        self.x = np.ones(n) / np.sqrt(n)
        self.y = np.zeros(n)

    def run(
        self,
        runtime: HompRuntime,
        *,
        iters: int = 10,
        devices=None,
        schedule="AUTO",
        use_data_region: bool = True,
    ) -> PowerIterationResult:
        total = 0.0
        eig = 0.0

        def sweep(offload) -> float:
            nonlocal eig
            r1 = offload(_ChainMatVec(self.a, self.x, self.y))
            r2 = offload(_ChainSquareSum(self.y))
            nrm = float(np.sqrt(r2.reduction))
            eig = nrm  # |y| = |A x| -> dominant |eigenvalue| at convergence
            r3 = offload(_ChainScale(self.y, self.x, 1.0 / nrm))
            return r1.total_time_s + r2.total_time_s + r3.total_time_s

        if use_data_region:
            region = TargetDataRegion(
                runtime=runtime,
                maps={
                    "A": (self.a, MapDirection.TO),
                    "x": (self.x, MapDirection.TOFROM),
                    "y": (self.y, MapDirection.ALLOC),
                },
                devices=devices,
                partitioned=frozenset({"A", "y"}),
            )
            with region:
                for _ in range(iters):
                    sweep(lambda k: region.parallel_for(k, schedule=schedule))
            total = region.total_time_s
        else:
            for _ in range(iters):
                total += sweep(
                    lambda k: runtime.parallel_for(
                        k, schedule=schedule, devices=devices
                    )
                )
        return PowerIterationResult(
            eigenvalue=eig, x=self.x, sim_time_s=total, iterations=iters
        )

    def reference(self, *, iters: int = 10) -> tuple[float, np.ndarray]:
        x = np.ones(self.n) / np.sqrt(self.n)
        nrm = 0.0
        for _ in range(iters):
            y = self.a @ x
            nrm = float(np.linalg.norm(y))
            x = y / nrm
        return nrm, x
