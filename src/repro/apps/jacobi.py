"""The Jacobi iterative kernel of paper Fig. 3, end to end.

Demonstrates everything the figure's directives use together:

* a ``parallel target data`` region mapping ``f``, ``u`` (tofrom) and
  ``uold`` (alloc) once for the whole solve
  (:class:`~repro.runtime.data_env.TargetDataRegion`),
* two distributed loops per iteration — the copy loop ``uold = u``
  (``dist_schedule(target:[ALIGN(loop1)])``) and the sweep with a
  ``reduction(+:error)`` (``dist_schedule(target:[AUTO])``),
* a ``halo_exchange(uold)`` between them
  (:func:`~repro.runtime.halo.plan_halo_exchange`).

The solve iterates ``u`` toward the solution of the discrete Poisson-like
system ``ax*(u[i-1,j]+u[i+1,j]) + ay*(u[i,j-1]+u[i,j+1]) + b*u[i,j] =
f[i,j]`` with relaxation ``omega``.  :meth:`JacobiSolver.reference` runs
the same iteration serially for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.policy import Align, Full
from repro.dist.distribution import DimDistribution
from repro.dist.policy import Block
from repro.kernels.base import LoopKernel, MapSpec
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.runtime.data_env import TargetDataRegion
from repro.runtime.halo import plan_halo_exchange
from repro.runtime.runtime import HompRuntime
from repro.util.ranges import IterRange

__all__ = ["JacobiCopyKernel", "JacobiSweepKernel", "JacobiSolver", "JacobiResult"]


class JacobiCopyKernel(LoopKernel):
    """Fig. 3 loop 1: ``uold[i][j] = u[i][j]`` over rows."""

    name = "jacobi-copy"
    label = "loop1"

    def __init__(self, u: np.ndarray, uold: np.ndarray):
        if u.shape != uold.shape or u.ndim != 2:
            raise ValueError("u and uold must be 2-D arrays of equal shape")
        self.m = u.shape[1]
        super().__init__(n_iters=u.shape[0], arrays={"u": u, "uold": uold})

    def maps(self) -> tuple[MapSpec, ...]:
        return (
            MapSpec("u", MapDirection.TO, (Align(self.label), Full())),
            MapSpec("uold", MapDirection.FROM, (Align(self.label), Full())),
        )

    def flops_per_iter(self) -> float:
        return 0.0  # pure copy: memory-bound by construction

    def mem_accesses_per_iter(self) -> float:
        return 2.0 * self.m  # read u row, write uold row

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> None:
        buffers["uold"].local_view(rows)[:] = buffers["u"].local_view(rows)
        return None

    def reference(self) -> dict[str, np.ndarray]:
        return {"uold": self._initial["u"].copy()}


class JacobiSweepKernel(LoopKernel):
    """Fig. 3 loop1 (the sweep): 5-point relaxation with error reduction."""

    name = "jacobi-sweep"
    label = "loop1"

    def __init__(
        self,
        u: np.ndarray,
        uold: np.ndarray,
        f: np.ndarray,
        *,
        ax: float,
        ay: float,
        b: float,
        omega: float,
    ):
        if not (u.shape == uold.shape == f.shape) or u.ndim != 2:
            raise ValueError("u, uold, f must be 2-D arrays of equal shape")
        self.m = u.shape[1]
        self.ax, self.ay, self.b, self.omega = float(ax), float(ay), float(b), float(omega)
        super().__init__(
            n_iters=u.shape[0], arrays={"u": u, "uold": uold, "f": f}
        )

    def maps(self) -> tuple[MapSpec, ...]:
        return (
            MapSpec("uold", MapDirection.TO, (Align(self.label), Full()), halo=(1, 1)),
            MapSpec("f", MapDirection.TO, (Align(self.label), Full())),
            MapSpec("u", MapDirection.TOFROM, (Align(self.label), Full())),
        )

    @property
    def is_reduction(self) -> bool:
        return True

    def flops_per_iter(self) -> float:
        return 13.0 * self.m  # 5-point update + residual accumulation per point

    def mem_accesses_per_iter(self) -> float:
        return 7.0 * self.m  # 5 uold loads, f load, u store

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> float:
        n = self.n_iters
        interior = rows.intersect(IterRange(1, n - 1))
        if interior.empty:
            return 0.0
        uold = buffers["uold"]
        base = interior.start - uold.region[0].start
        k = len(interior)
        js = slice(1, self.m - 1)
        centre = uold.data[base : base + k, js]
        resid = (
            self.ax
            * (uold.data[base - 1 : base - 1 + k, js] + uold.data[base + 1 : base + 1 + k, js])
            + self.ay
            * (uold.data[base : base + k, 0 : self.m - 2] + uold.data[base : base + k, 2 : self.m])
            + self.b * centre
            - buffers["f"].local_view(interior)[:, js]
        ) / self.b
        u = buffers["u"].local_view(interior)
        u[:, js] = centre - self.omega * resid
        return float((resid * resid).sum())

    def reference(self) -> float | dict[str, np.ndarray]:
        u0, uold, f = self._initial["u"], self._initial["uold"], self._initial["f"]
        u = u0.copy()
        js = slice(1, self.m - 1)
        resid = (
            self.ax * (uold[:-2, js] + uold[2:, js])
            + self.ay * (uold[1:-1, 0 : self.m - 2] + uold[1:-1, 2 : self.m])
            + self.b * uold[1:-1, js]
            - f[1:-1, js]
        ) / self.b
        u[1:-1, js] = uold[1:-1, js] - self.omega * resid
        return {"u": u, "__reduction__": float((resid * resid).sum())}


@dataclass
class JacobiResult:
    """Outcome of a distributed Jacobi solve."""

    iterations: int
    final_error: float
    sim_time_s: float
    halo_time_s: float
    u: np.ndarray
    per_loop_results: list = field(default_factory=list)


class JacobiSolver:
    """Distributed Jacobi relaxation on an ``n x m`` grid (paper Fig. 3)."""

    def __init__(self, n: int, m: int | None = None, *, seed: int = 0):
        m = m or n
        if n < 3 or m < 3:
            raise ValueError("grid must be at least 3x3")
        rng = np.random.default_rng(seed)
        self.n, self.m = n, m
        self.u = np.zeros((n, m))
        self.uold = np.zeros((n, m))
        self.f = rng.standard_normal((n, m))
        # Standard Jacobi coefficients for a unit-square Poisson problem.
        dx, dy = 1.0 / (n - 1), 1.0 / (m - 1)
        self.ax, self.ay = 1.0 / (dx * dx), 1.0 / (dy * dy)
        self.b = -2.0 / (dx * dx) - 2.0 / (dy * dy) - 1.0
        self.omega = 0.8

    def solve(
        self,
        runtime: HompRuntime,
        *,
        devices=None,
        schedule="AUTO",
        max_iters: int = 100,
        tol: float = 1e-8,
    ) -> JacobiResult:
        """Run the distributed solve, accounting mapping + halo costs."""
        region = TargetDataRegion(
            runtime=runtime,
            maps={
                "f": (self.f, MapDirection.TO),
                "u": (self.u, MapDirection.TOFROM),
                "uold": (self.uold, MapDirection.ALLOC),
            },
            devices=devices,
            partitioned=frozenset({"f", "u", "uold"}),
        )
        halo_total = 0.0
        error = float("inf")
        iters = 0
        loop_results = []
        with region:
            ids = region._ids
            submachine = runtime.machine.subset(ids)
            row_dist = DimDistribution.from_policy(
                Block(), IterRange(0, self.n), len(ids)
            )
            while iters < max_iters and error > tol:
                copy_k = JacobiCopyKernel(self.u, self.uold)
                # v1-style alignment: BLOCK-partition the data, align the
                # copy loop with u's distribution (Fig. 3's ALIGN(loop1)).
                copy_k.set_partition("u", Block())
                copy_k.set_partition("uold", Block())
                r1 = region.parallel_for(copy_k, schedule=Align("u"))
                # The copy loop rewrote uold: the ledger already dropped
                # every other device's claim on the written rows, so the
                # exchange below pays for boundary rows once, then elides
                # them until the next write.
                exchange = plan_halo_exchange(
                    submachine, row_dist, width=1, row_bytes=self.m * 8,
                    residency=region.residency, array="uold",
                )
                halo_total += exchange.time_s
                sweep_k = JacobiSweepKernel(
                    self.u,
                    self.uold,
                    self.f,
                    ax=self.ax,
                    ay=self.ay,
                    b=self.b,
                    omega=self.omega,
                )
                r2 = region.parallel_for(sweep_k, schedule=schedule)
                error = float(r2.reduction or 0.0)
                loop_results.append((r1, r2))
                iters += 1
        return JacobiResult(
            iterations=iters,
            final_error=error,
            sim_time_s=region.total_time_s + halo_total,
            halo_time_s=halo_total,
            u=self.u,
            per_loop_results=loop_results,
        )

    def reference(self, *, max_iters: int = 100, tol: float = 1e-8):
        """Serial solve with identical arithmetic; returns (u, iters, error)."""
        u = np.zeros((self.n, self.m))
        uold = np.zeros_like(u)
        f = self.f
        js = slice(1, self.m - 1)
        error = float("inf")
        iters = 0
        while iters < max_iters and error > tol:
            uold[:, :] = u
            resid = (
                self.ax * (uold[:-2, js] + uold[2:, js])
                + self.ay * (uold[1:-1, 0 : self.m - 2] + uold[1:-1, 2 : self.m])
                + self.b * uold[1:-1, js]
                - f[1:-1, js]
            ) / self.b
            u[1:-1, js] = uold[1:-1, js] - self.omega * resid
            error = float((resid * resid).sum())
            iters += 1
        return u, iters, error
