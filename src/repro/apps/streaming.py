"""Streaming workloads: kernels with a host-side batch advance hook.

Three applications exercising the stream runtime
(:mod:`repro.runtime.stream`), each an existing Table IV kernel plus the
``stream_advance(batch, window)`` protocol the runner calls between
batches: the hook writes the batch's *new* data into the host arrays and
returns the dirty dim-0 row ranges per array, which the runner
invalidates on every region device so the next batch re-stages exactly
the sliding-window delta.

All advances are deterministic functions of ``(seed, batch)`` alone —
never of the schedule or the device split — so two streams of the same
workload under different schedulers see bit-identical inputs batch for
batch, and their outputs (elementwise kernels) and reductions
(integer-valued data, exact float addition) must match exactly.  That is
the cross-scheduler checksum contract the stream benchmarks pin.

* :class:`SlidingStencilKernel` — the radius-3 star stencil over a grid
  whose leading ``window`` rows are fresh sensor rows each batch.
* :class:`OnlineSumKernel` — running sum over a ring buffer receiving
  ``window`` new samples per batch; values are integer-valued floats so
  per-device partial sums combine exactly in any order.
* :class:`StreamingBlockMatchingKernel` — block matching of a reference
  frame against a video feed whose newest ``window`` rows change per
  batch.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.block_matching import BlockMatchingKernel
from repro.kernels.stencil import Stencil2DKernel
from repro.kernels.sumreduce import SumKernel
from repro.util.ranges import IterRange

__all__ = [
    "SlidingStencilKernel",
    "OnlineSumKernel",
    "StreamingBlockMatchingKernel",
]


def _batch_rng(seed: int, batch: int, salt: int) -> np.random.Generator:
    """Deterministic per-(stream, batch) RNG, independent of schedule."""
    return np.random.default_rng(((seed + 1) * salt + batch) % (2**63))


class SlidingStencilKernel(Stencil2DKernel):
    """Stencil over a grid whose leading rows are refreshed every batch."""

    name = "stream-stencil"

    def __init__(self, n: int, *, seed: int = 0):
        super().__init__(n, seed=seed)
        self._stream_seed = seed

    def stream_advance(self, batch: int, window: int) -> dict:
        rows = min(window, self.n)
        if rows <= 0:
            return {}
        rng = _batch_rng(self._stream_seed, batch, 1_000_003)
        self.arrays["u_in"][:rows, :] = rng.standard_normal((rows, self.n))
        return {"u_in": IterRange(0, rows)}

    def checksum(self) -> float:
        return float(self.arrays["u_out"].sum())


class OnlineSumKernel(SumKernel):
    """Running sum over a ring buffer of integer-valued samples.

    Values are drawn as integers and stored as floats: every partial sum
    is exactly representable, so the combined reduction is bit-identical
    no matter how the iteration space was split — the property that lets
    the benchmarks compare reductions across schedulers exactly.
    """

    name = "stream-sum"

    def __init__(self, n: int, *, seed: int = 0):
        super().__init__(n, seed=seed)
        self._stream_seed = seed
        rng = _batch_rng(seed, 0, 611_953)
        self.arrays["x"][:] = rng.integers(-1000, 1000, n).astype(np.float64)

    def stream_advance(self, batch: int, window: int) -> dict:
        w = min(window, self.n_iters)
        if w <= 0:
            return {}
        rng = _batch_rng(self._stream_seed, batch, 9_999_991)
        self.arrays["x"][:w] = rng.integers(-1000, 1000, w).astype(np.float64)
        return {"x": IterRange(0, w)}

    def reference(self) -> float:
        # The live buffer, not the construction-time snapshot: the stream
        # advance rewrites samples in place between batches.
        return float(self.arrays["x"].sum())


class StreamingBlockMatchingKernel(BlockMatchingKernel):
    """Block matching of a fixed reference frame against a live feed."""

    name = "stream-bm"

    def __init__(self, n: int, *, window: int = 4, search: int = 0, seed: int = 0):
        super().__init__(n, window=window, search=search, seed=seed)
        self._stream_seed = seed

    def stream_advance(self, batch: int, window: int) -> dict:
        rows = min(window, self.n)
        if rows <= 0:
            return {}
        rng = _batch_rng(self._stream_seed, batch, 7_368_787)
        self.arrays["frame2"][:rows, :] = rng.random((rows, self.n))
        return {"frame2": IterRange(0, rows)}

    def checksum(self) -> float:
        return float(self.arrays["sad"].sum())
