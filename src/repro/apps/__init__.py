"""Higher-level applications built on the HOMP runtime (paper Fig. 3)."""

from repro.apps.jacobi import JacobiSolver, JacobiResult, JacobiCopyKernel, JacobiSweepKernel
from repro.apps.blas_chain import BlasChain, BlasChainResult, PowerIteration, PowerIterationResult

__all__ = [
    "JacobiSolver",
    "JacobiResult",
    "JacobiCopyKernel",
    "JacobiSweepKernel",
    "BlasChain",
    "BlasChainResult",
    "PowerIteration",
    "PowerIterationResult",
]
