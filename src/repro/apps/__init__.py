"""Higher-level applications built on the HOMP runtime (paper Fig. 3)."""

from repro.apps.jacobi import JacobiSolver, JacobiResult, JacobiCopyKernel, JacobiSweepKernel
from repro.apps.blas_chain import BlasChain, BlasChainResult, PowerIteration, PowerIterationResult
from repro.apps.streaming import (
    OnlineSumKernel,
    SlidingStencilKernel,
    StreamingBlockMatchingKernel,
)

__all__ = [
    "SlidingStencilKernel",
    "OnlineSumKernel",
    "StreamingBlockMatchingKernel",
    "JacobiSolver",
    "JacobiResult",
    "JacobiCopyKernel",
    "JacobiSweepKernel",
    "BlasChain",
    "BlasChainResult",
    "PowerIteration",
    "PowerIterationResult",
]
