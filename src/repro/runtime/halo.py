"""Halo exchange across devices (paper Fig. 3's ``#pragma omp halo_exchange``).

With a row-block distribution, each device must refresh ``width`` boundary
rows from each neighbour every iteration.  Between discrete devices the
bytes travel device -> host -> device (two link crossings; the paper's
machine has no peer-to-peer path between its K80 cards and MICs);
host-shared devices — SHARED memory *and* UNIFIED memory, whose pages
the driver migrates on access rather than at exchange time — exchange
for free.  The numeric ground truth lives in host arrays, so only the
*cost* needs simulating — the plan records who sends what to whom and
the virtual time the exchange adds.

When the enclosing target-data region's residency view is passed in
(``residency=`` + ``array=``), the plan consults the ledger: boundary
rows already valid on the receiving device are elided (reported in
:attr:`HaloExchange.elided_bytes`), and the rows a transfer does deliver
are marked resident so the *next* exchange is free until someone writes
them (``note_write`` invalidation re-opens the bill).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.distribution import DimDistribution
from repro.errors import DistributionError
from repro.machine.spec import MachineSpec, MemoryKind
from repro.memory.residency import RegionResidency
from repro.util.ranges import IterRange

__all__ = ["HaloExchange", "plan_halo_exchange"]


@dataclass(frozen=True)
class _Transfer:
    src: int
    dst: int
    nbytes: int
    #: Boundary rows delivered to ``dst`` (None for width-only planning).
    rows: IterRange | None = None


@dataclass(frozen=True)
class HaloExchange:
    """A planned halo exchange and its simulated cost."""

    transfers: tuple[_Transfer, ...]
    time_s: float
    #: Bytes the residency ledger proved already valid on the receiver —
    #: boundary rows that did *not* need to move this exchange.
    elided_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)


def _span(dist: DimDistribution, devid: int) -> IterRange:
    """Contiguous extent a device owns (row-block distributions)."""
    ranges = dist.device_ranges(devid)
    return IterRange(min(r.start for r in ranges), max(r.stop for r in ranges))


def _crossing_time(spec, nbytes: int) -> float:
    """One link crossing for ``nbytes`` on ``spec``'s link.

    Host-shared endpoints are free: SHARED memory by construction, and
    UNIFIED memory because its pages migrate lazily at access time — that
    cost is the engine's unified-memory model, not the exchange's.
    """
    if spec.memory is not MemoryKind.DISCRETE:
        return 0.0
    return spec.link.transfer_time(nbytes)


def plan_halo_exchange(
    machine: MachineSpec,
    dist: DimDistribution,
    *,
    width: int,
    row_bytes: int,
    residency: RegionResidency | None = None,
    array: str | None = None,
) -> HaloExchange:
    """Plan the boundary exchange for a contiguous row-block distribution.

    Each adjacent owner pair exchanges ``width`` rows in both directions:
    the lower owner's last ``width`` rows refresh the upper device and
    vice versa.  Per-device time is the serial sum of its link crossings
    (send up + send down + receive up + receive down); the exchange
    completes when the slowest device is done, since all devices
    synchronise after it.

    With ``residency`` (a region's ledger view; device indices here are
    local positions in its device list) and ``array`` (the ledger name of
    the exchanged array), rows already valid on the receiver are elided
    and delivered rows are marked resident.
    """
    if width < 0:
        raise DistributionError(f"halo width must be >= 0, got {width}")
    if dist.ndev != len(machine):
        raise DistributionError(
            f"distribution covers {dist.ndev} devices, machine has {len(machine)}"
        )
    track = (
        residency is not None
        and array is not None
        and residency.knows(array)
    )
    owners = [
        d
        for d in range(dist.ndev)
        if dist.device_size(d) > 0
    ]
    transfers: list[_Transfer] = []
    elided_bytes = 0
    if width > 0 and row_bytes > 0:
        for a, b in zip(owners, owners[1:]):
            sa, sb = _span(dist, a), _span(dist, b)
            # a's top rows refresh b; b's bottom rows refresh a.
            legs = (
                (a, b, IterRange(max(sa.start, sa.stop - width), sa.stop)),
                (b, a, IterRange(sb.start, min(sb.stop, sb.start + width))),
            )
            for src, dst, rows in legs:
                if rows.empty:
                    continue
                if track:
                    missing = residency.missing_in(dst, array, rows)
                    elided_bytes += row_bytes * (len(rows) - missing)
                    residency.mark_resident(dst, array, rows)
                    if missing == 0:
                        continue  # receiver already holds the rows
                    nbytes = row_bytes * missing
                else:
                    nbytes = row_bytes * len(rows)
                transfers.append(
                    _Transfer(src=src, dst=dst, nbytes=nbytes, rows=rows)
                )

    per_device = [0.0] * dist.ndev
    for t in transfers:
        # device -> host on the source link, host -> device on the target.
        per_device[t.src] += _crossing_time(machine[t.src], t.nbytes)
        per_device[t.dst] += _crossing_time(machine[t.dst], t.nbytes)
    return HaloExchange(
        transfers=tuple(transfers),
        time_s=max(per_device, default=0.0),
        elided_bytes=elided_bytes,
    )
