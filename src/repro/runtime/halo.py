"""Halo exchange across devices (paper Fig. 3's ``#pragma omp halo_exchange``).

With a row-block distribution, each device must refresh its boundary
rows from each neighbour every iteration.  Between discrete devices the
bytes travel device -> host -> device (two link crossings; the paper's
machine has no peer-to-peer path between its K80 cards and MICs);
host-shared devices — SHARED memory *and* UNIFIED memory, whose pages
the driver migrates on access rather than at exchange time — exchange
for free.  The numeric ground truth lives in host arrays, so only the
*cost* needs simulating — the plan records who sends what to whom and
the virtual time the exchange adds.

*Which* rows move is no longer decided here: the boundary legs are
derived symbolically by :meth:`repro.ir.ops.HaloOp.legs` from the Region
footprints (a device owning span ``s`` with halo ``(lo, hi)`` needs
``[s.start - lo, s.stop + hi)``; whatever falls outside its span arrives
from the adjacent owner).  This module is the IR op's runtime consumer:
it prices the legs on a machine and routes them through the residency
ledger.

When the enclosing target-data region's residency view is passed in
(``residency=`` + ``array=``), the plan consults the ledger: boundary
rows already valid on the receiving device are elided (reported in
:attr:`HaloExchange.elided_bytes`), and the rows a transfer does deliver
are marked resident so the *next* exchange is free until someone writes
them (``note_write`` invalidation re-opens the bill).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.distribution import DimDistribution
from repro.errors import DistributionError
from repro.ir.ops import HaloOp
from repro.machine.spec import MachineSpec, MemoryKind
from repro.memory.residency import RegionResidency
from repro.util.ranges import IterRange

__all__ = ["HaloExchange", "plan_halo_exchange", "plan_halo_op"]


@dataclass(frozen=True)
class _Transfer:
    src: int
    dst: int
    nbytes: int
    #: Boundary rows delivered to ``dst`` (None for width-only planning).
    rows: IterRange | None = None


@dataclass(frozen=True)
class HaloExchange:
    """A planned halo exchange and its simulated cost."""

    transfers: tuple[_Transfer, ...]
    time_s: float
    #: Bytes the residency ledger proved already valid on the receiver —
    #: boundary rows that did *not* need to move this exchange.
    elided_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)


def _crossing_time(spec, nbytes: int) -> float:
    """One link crossing for ``nbytes`` on ``spec``'s link.

    Host-shared endpoints are free: SHARED memory by construction, and
    UNIFIED memory because its pages migrate lazily at access time — that
    cost is the engine's unified-memory model, not the exchange's.
    """
    if spec.memory is not MemoryKind.DISCRETE:
        return 0.0
    return spec.link.transfer_time(nbytes)


def plan_halo_op(
    machine: MachineSpec,
    dist: DimDistribution,
    op: HaloOp,
    *,
    residency: RegionResidency | None = None,
) -> HaloExchange:
    """Price a symbolic :class:`~repro.ir.ops.HaloOp` on a machine.

    The op's :meth:`~repro.ir.ops.HaloOp.legs` decide *which* rows move
    between which adjacent owners; this function decides *what that
    costs*: per-device time is the serial sum of its link crossings
    (send up + send down + receive up + receive down) and the exchange
    completes when the slowest device is done, since all devices
    synchronise after it.

    With ``residency`` (a region's ledger view; device indices here are
    local positions in its device list) and a named ``op.array``, rows
    already valid on the receiver are elided and delivered rows are
    marked resident.
    """
    if dist.ndev != len(machine):
        raise DistributionError(
            f"distribution covers {dist.ndev} devices, machine has {len(machine)}"
        )
    track = (
        residency is not None
        and bool(op.array)
        and residency.knows(op.array)
    )
    transfers: list[_Transfer] = []
    elided_bytes = 0
    if op.row_bytes > 0:
        for leg in op.legs(dist):
            src, dst, rows = leg.src, leg.dst, leg.rows
            if track:
                missing = residency.missing_in(dst, op.array, rows)
                elided_bytes += op.row_bytes * (len(rows) - missing)
                residency.mark_resident(dst, op.array, rows)
                if missing == 0:
                    continue  # receiver already holds the rows
                nbytes = op.row_bytes * missing
            else:
                nbytes = op.row_bytes * len(rows)
            transfers.append(
                _Transfer(src=src, dst=dst, nbytes=nbytes, rows=rows)
            )

    per_device = [0.0] * dist.ndev
    for t in transfers:
        # device -> host on the source link, host -> device on the target.
        per_device[t.src] += _crossing_time(machine[t.src], t.nbytes)
        per_device[t.dst] += _crossing_time(machine[t.dst], t.nbytes)
    return HaloExchange(
        transfers=tuple(transfers),
        time_s=max(per_device, default=0.0),
        elided_bytes=elided_bytes,
    )


def plan_halo_exchange(
    machine: MachineSpec,
    dist: DimDistribution,
    *,
    width: int,
    row_bytes: int,
    residency: RegionResidency | None = None,
    array: str | None = None,
) -> HaloExchange:
    """Plan a symmetric-width boundary exchange (the directive surface).

    A thin wrapper: builds the equivalent :class:`~repro.ir.ops.HaloOp`
    (``lower = upper = width``) and hands it to :func:`plan_halo_op`.
    Kept as the public entry point for ``halo_exchange`` consumers
    (Jacobi, the residency sweeps); new IR-driven callers price the
    :class:`~repro.ir.ops.HaloOp` the derive-halo pass attached instead.
    """
    if width < 0:
        raise DistributionError(f"halo width must be >= 0, got {width}")
    op = HaloOp(
        array=array or "",
        lower=width,
        upper=width,
        row_bytes=row_bytes,
    )
    return plan_halo_op(machine, dist, op, residency=residency)
