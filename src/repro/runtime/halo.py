"""Halo exchange across devices (paper Fig. 3's ``#pragma omp halo_exchange``).

With a row-block distribution, each device must refresh ``width`` boundary
rows from each neighbour every iteration.  Between discrete devices the
bytes travel device -> host -> device (two link crossings; the paper's
machine has no peer-to-peer path between its K80 cards and MICs);
host-shared devices exchange for free.  The numeric ground truth lives in
host arrays, so only the *cost* needs simulating — the plan records who
sends what to whom and the virtual time the exchange adds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.distribution import DimDistribution
from repro.errors import DistributionError
from repro.machine.spec import MachineSpec

__all__ = ["HaloExchange", "plan_halo_exchange"]


@dataclass(frozen=True)
class _Transfer:
    src: int
    dst: int
    nbytes: int


@dataclass(frozen=True)
class HaloExchange:
    """A planned halo exchange and its simulated cost."""

    transfers: tuple[_Transfer, ...]
    time_s: float

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)


def plan_halo_exchange(
    machine: MachineSpec,
    dist: DimDistribution,
    *,
    width: int,
    row_bytes: int,
) -> HaloExchange:
    """Plan the boundary exchange for a contiguous row-block distribution.

    Each adjacent owner pair exchanges ``width`` rows in both directions.
    Per-device time is the serial sum of its link crossings (send up +
    send down + receive up + receive down); the exchange completes when
    the slowest device is done, since all devices synchronise after it.
    """
    if width < 0:
        raise DistributionError(f"halo width must be >= 0, got {width}")
    if dist.ndev != len(machine):
        raise DistributionError(
            f"distribution covers {dist.ndev} devices, machine has {len(machine)}"
        )
    owners = [
        d
        for d in range(dist.ndev)
        if dist.device_size(d) > 0
    ]
    transfers: list[_Transfer] = []
    nbytes = width * row_bytes
    if width > 0 and nbytes > 0:
        for a, b in zip(owners, owners[1:]):
            transfers.append(_Transfer(src=a, dst=b, nbytes=nbytes))
            transfers.append(_Transfer(src=b, dst=a, nbytes=nbytes))

    per_device = [0.0] * dist.ndev
    for t in transfers:
        # device -> host on the source link, host -> device on the target.
        src_cost = machine[t.src].link.transfer_time(t.nbytes)
        dst_cost = machine[t.dst].link.transfer_time(t.nbytes)
        per_device[t.src] += src_cost
        per_device[t.dst] += dst_cost
    return HaloExchange(
        transfers=tuple(transfers),
        time_s=max(per_device, default=0.0),
    )
