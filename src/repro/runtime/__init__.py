"""The HOMP runtime: user-facing offload API, target-data regions, halo
exchange, and device selection."""

from repro.runtime.runtime import HompRuntime
from repro.runtime.data_env import TargetDataRegion
from repro.runtime.halo import HaloExchange, plan_halo_exchange
from repro.runtime.offload_info import ArrayInfo, OffloadInfo
from repro.runtime.stream import StreamResult, run_stream

__all__ = [
    "HompRuntime",
    "TargetDataRegion",
    "StreamResult",
    "run_stream",
    "HaloExchange",
    "plan_halo_exchange",
    "ArrayInfo",
    "OffloadInfo",
]
