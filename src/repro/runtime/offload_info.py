"""The ``homp_offloading_info`` object (paper §V).

"Such a request is represented as an ``homp_offloading_info`` object that
contains information for data source pointers, dimension information of an
array, data distribution policies, data mapping directions, offloading
loop distribution policies, etc."

:class:`OffloadInfo` is that object: a fully-resolved, immutable snapshot
of one offload request, assembled before execution.  Proxy behaviour in
this reproduction is driven directly by the kernel/scheduler objects, so
OffloadInfo's role is introspection — examples print it, tests assert on
it, and it round-trips to a plain dict for logging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec
from repro.memory.space import MapDirection
from repro.sched.base import LoopScheduler
from repro.util.ranges import IterRange

__all__ = ["ArrayInfo", "OffloadInfo"]


@dataclass(frozen=True)
class ArrayInfo:
    """Dimension, policy and mapping info for one mapped array."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int
    direction: MapDirection
    policies: tuple[str, ...]
    halo: tuple[int, int]
    resident: bool


@dataclass(frozen=True)
class OffloadInfo:
    """One offload request, fully described."""

    kernel_name: str
    loop_label: str
    iter_space: IterRange
    algorithm: str
    cutoff_ratio: float
    device_ids: tuple[int, ...]
    device_names: tuple[str, ...]
    arrays: tuple[ArrayInfo, ...]
    is_reduction: bool
    serialize_offload: bool = False
    fault_plan: str | None = None  # FaultPlan.describe(), when one is set

    @classmethod
    def build(
        cls,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        machine: MachineSpec,
        device_ids: list[int],
        *,
        cutoff_ratio: float = 0.0,
        serialize_offload: bool = False,
        fault_plan: str | None = None,
    ) -> "OffloadInfo":
        arrays = tuple(
            ArrayInfo(
                name=m.name,
                shape=tuple(kernel.arrays[m.name].shape),
                dtype=str(kernel.arrays[m.name].dtype),
                nbytes=int(kernel.arrays[m.name].nbytes),
                direction=m.direction,
                policies=tuple(str(p) for p in m.policies),
                halo=m.halo,
                resident=m.name in kernel.resident,
            )
            for m in kernel.effective_maps()
        )
        return cls(
            kernel_name=kernel.name,
            loop_label=kernel.label,
            iter_space=kernel.iter_space,
            algorithm=scheduler.notation,
            cutoff_ratio=cutoff_ratio,
            device_ids=tuple(device_ids),
            device_names=tuple(machine[i].name for i in device_ids),
            arrays=arrays,
            is_reduction=kernel.is_reduction,
            serialize_offload=serialize_offload,
            fault_plan=fault_plan,
        )

    @classmethod
    def from_ir(
        cls,
        op,
        decls,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        machine: MachineSpec,
        device_ids: list[int],
        *,
        cutoff_ratio: float = 0.0,
        serialize_offload: bool = False,
        fault_plan: str | None = None,
    ) -> "OffloadInfo":
        """Build from a lowered :class:`~repro.ir.ops.OffloadOp`.

        Map identity (name, direction, policies, halo) comes from the IR
        op's :class:`~repro.ir.ops.MapOp` entries, array geometry from
        ``decls`` (name -> :class:`~repro.ir.ops.DataDecl`); only the
        residency flag is read from the live kernel, because an enclosing
        target-data region sets it at execution time.  For a faithfully
        lowered op the result is value-identical to :meth:`build`.
        """
        arrays = tuple(
            ArrayInfo(
                name=m.array,
                shape=decls[m.array].shape,
                dtype=decls[m.array].dtype,
                nbytes=decls[m.array].nbytes,
                direction=m.direction,
                policies=tuple(str(p) for p in m.policies),
                halo=m.halo,
                resident=m.array in kernel.resident,
            )
            for m in op.maps
        )
        return cls(
            kernel_name=kernel.name,
            loop_label=op.label,
            iter_space=IterRange(0, op.n_iters),
            algorithm=scheduler.notation,
            cutoff_ratio=cutoff_ratio,
            device_ids=tuple(device_ids),
            device_names=tuple(machine[i].name for i in device_ids),
            arrays=arrays,
            is_reduction=kernel.is_reduction,
            serialize_offload=serialize_offload,
            fault_plan=fault_plan,
        )

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "loop": f"{self.loop_label}[{self.iter_space.start}:{self.iter_space.stop}]",
            "algorithm": self.algorithm,
            "cutoff_ratio": self.cutoff_ratio,
            "devices": list(self.device_names),
            "reduction": self.is_reduction,
            "serialize_offload": self.serialize_offload,
            "fault_plan": self.fault_plan,
            "arrays": [
                {
                    "name": a.name,
                    "shape": list(a.shape),
                    "dtype": a.dtype,
                    "map": a.direction.value,
                    "partition": list(a.policies),
                    "halo": list(a.halo),
                    "resident": a.resident,
                }
                for a in self.arrays
            ],
        }

    def describe(self) -> str:
        lines = [
            f"offload {self.kernel_name}: loop {self.loop_label}"
            f"[{self.iter_space.start}:{self.iter_space.stop}) via "
            f"{self.algorithm}"
            + (f", cutoff {self.cutoff_ratio:.0%}" if self.cutoff_ratio else "")
        ]
        lines.append(f"  devices: {', '.join(self.device_names)}")
        for a in self.arrays:
            extra = " (resident)" if a.resident else ""
            halo = f" halo{a.halo}" if a.halo != (0, 0) else ""
            lines.append(
                f"  map({a.direction.value}: {a.name}{list(a.shape)} "
                f"partition[{', '.join(a.policies)}]{halo}){extra}"
            )
        return "\n".join(lines)
