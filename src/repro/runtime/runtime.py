"""HompRuntime — the entry point a HOMP program talks to.

Construction reads a machine description (a :class:`MachineSpec`, built
from presets or loaded from the JSON machine file, paper §V).  The two
offload entry points are:

* :meth:`HompRuntime.parallel_for` — Python-API form: a kernel, an
  algorithm (paper notation or instance), a device selection, an optional
  CUTOFF ratio;
* :meth:`HompRuntime.offload` — directive form: a HOMP pragma string is
  parsed and mapped onto the same machinery (device clause -> device ids,
  ``dist_schedule(target:...)`` -> scheduler, map ``partition`` entries ->
  kernel policy overrides).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.dist.policy import Align, Auto, Policy
from repro.engine.batch import BatchRequest
from repro.engine.core import make_backend
from repro.engine.simulator import OffloadEngine
from repro.engine.threaded import ThreadedEngine  # noqa: F401 — registers "threaded"
from repro.engine.trace import OffloadResult
from repro.errors import DeviceError, OffloadError, SchedulingError
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.ir.lower import data_region, from_directive
from repro.ir.ops import (
    DataDecl,
    FusedOffloadOp,
    MapOp,
    OffloadOp as IROffloadOp,
    Program,
    ReduceOp,
    Region,
    StreamOp,
)
from repro.ir.passes import normalize_maps, run_passes
from repro.ir.verify import verify_program
from repro.kernels.base import LoopKernel
from repro.lang.device_spec import parse_device_clause
from repro.lang.pragma import OffloadDirective
from repro.machine.spec import MachineSpec
from repro.memory.residency import RegionResidency, ResidencyLedger
from repro.sched.align_sched import AlignedScheduler
from repro.sched.base import LoopScheduler
from repro.sched.cutoff import default_cutoff_ratio
from repro.runtime.offload_info import OffloadInfo
from repro.sched.registry import make_scheduler
from repro.sched.selector import select_algorithm

__all__ = ["HompRuntime", "OffloadSpec"]


@dataclass
class OffloadSpec:
    """One cell of a :meth:`HompRuntime.parallel_for_many` batch.

    ``execute_numerically`` overrides the runtime-level flag per cell
    (None = inherit) — the sweep runner executes numerics once per shared
    kernel instance and skips them for the timing-only repeats.
    """

    kernel: LoopKernel
    schedule: object = "AUTO"
    cutoff_ratio: float | str = 0.0
    execute_numerically: bool | None = None


@dataclass
class HompRuntime:
    """A running HOMP instance bound to one machine description."""

    machine: MachineSpec
    seed: int = 0
    execute_numerically: bool = True
    #: Per-device buffer-residency ledger shared by this runtime's
    #: target-data regions (global device ids).  Regions retain/release
    #: mapped ranges here; offloads running inside a region charge only
    #: the delta between what a chunk touches and what is resident.
    ledger: ResidencyLedger = field(default_factory=ResidencyLedger)

    @classmethod
    def from_file(cls, path, **kwargs) -> "HompRuntime":
        """Initialise from a machine description file (paper §V)."""
        return cls(machine=MachineSpec.from_file(path), **kwargs)

    @property
    def num_devices(self) -> int:
        return len(self.machine)

    def effective_device_count(self, ids: list[int] | None = None) -> int:
        """Device count for the CUTOFF default, counting all host CPUs as
        one device (the paper's "considering 2 CPUs as one host device")."""
        ids = ids if ids is not None else list(range(len(self.machine)))
        hosts = sum(1 for i in ids if self.machine[i].is_host)
        return (1 if hosts else 0) + sum(
            1 for i in ids if not self.machine[i].is_host
        )

    def select_devices(self, devices) -> list[int]:
        """Normalise a device selection: clause string, id list, or None."""
        if devices is None or devices == "*":
            return list(range(len(self.machine)))
        if isinstance(devices, str):
            return parse_device_clause(devices, self.machine)
        ids = list(devices)
        for i in ids:
            if not 0 <= i < len(self.machine):
                raise DeviceError(f"device id {i} out of range")
        if not ids:
            raise DeviceError("empty device selection")
        return ids

    @staticmethod
    def _lease_engine(engine, executor, submachine: MachineSpec, run_options: dict):
        """Configuration lease on a caller-provided (pooled) engine.

        Validates exclusivity with ``executor`` and the machine binding,
        then returns the ``configured`` context manager that applies this
        run's options for the duration of the run and restores the
        engine's base configuration afterwards.
        """
        if executor is not None:
            raise OffloadError(
                "pass either executor= (a backend to build) or engine= "
                "(an already-built instance), not both"
            )
        if not hasattr(engine, "configured") or not hasattr(engine, "run"):
            raise OffloadError(
                f"engine= expects an execution backend instance, got "
                f"{type(engine).__name__}"
            )
        if engine.machine.to_dict() != submachine.to_dict():
            raise OffloadError(
                f"pooled engine is bound to machine {engine.machine.name!r} "
                f"but this offload selects {submachine.name!r}; pool one "
                "engine per (machine, device selection)"
            )
        return engine.configured(**run_options)

    def _resolve_scheduler(
        self,
        schedule,
        kernel: LoopKernel,
        submachine: MachineSpec,
        sched_kwargs: dict,
    ) -> LoopScheduler:
        if isinstance(schedule, LoopScheduler):
            return schedule
        if isinstance(schedule, Policy):
            if isinstance(schedule, Align):
                return AlignedScheduler(schedule.target, schedule.ratio)
            if isinstance(schedule, Auto):
                return make_scheduler(
                    select_algorithm(kernel, submachine), **sched_kwargs
                )
            raise SchedulingError(f"policy {schedule} is not a loop schedule")
        if isinstance(schedule, str):
            name = schedule.strip()
            if name.upper() == "AUTO":
                name = select_algorithm(kernel, submachine)
            return make_scheduler(name, **sched_kwargs)
        raise SchedulingError(f"cannot interpret schedule {schedule!r}")

    def parallel_for(
        self,
        kernel: LoopKernel,
        *,
        schedule="AUTO",
        devices=None,
        cutoff_ratio: float | str = 0.0,
        resident: frozenset[str] | set[str] | None = None,
        residency: ResidencyLedger | None = None,
        record_events: bool = False,
        serialize_offload: bool = False,
        fault_plan: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
        tracer=None,
        executor: "str | type | None" = None,
        engine=None,
        ir_op: "IROffloadOp | None" = None,
        ir_decls: "dict[str, DataDecl] | None" = None,
        **sched_kwargs,
    ) -> OffloadResult:
        """Offload one parallel loop across the selected devices.

        ``schedule`` — paper Table II notation, ``"AUTO"`` (heuristic
        selection), a :class:`Policy` (``Align``/``Auto``), or a scheduler
        instance.  ``cutoff_ratio`` — a fraction, or ``"auto"`` for the
        paper's 1/ndev default.  ``resident`` — array names held on the
        devices by an enclosing target-data region.  ``residency`` — the
        region's :class:`~repro.memory.residency.ResidencyLedger`; when
        given, the engine charges each chunk only the bytes not already
        resident on its device (the view onto the selected devices is
        built here, after device selection, so overriding ``devices``
        stays consistent).  ``fault_plan`` —
        faults to inject (device ids in the plan index the *selected*
        devices, in selection order); ``resilience`` — retry/quarantine
        policy for those faults (defaults apply when None).  ``tracer`` —
        a :class:`repro.obs.Tracer` receiving the offload's span stream
        (None = no tracing; ``REPRO_OBS=off`` force-disables any tracer).
        ``executor`` — which execution backend runs the offload: a registry
        name (``"virtual"`` — deterministic discrete-event simulation, the
        default; ``"threaded"`` — one real host thread per device on a
        wall clock) or a backend class.  Options a backend cannot honour
        (e.g. ``serialize_offload`` on the threaded backend) raise
        :class:`~repro.errors.OffloadError` when set.  ``engine`` — an
        already-built backend *instance* to run on (a pooled engine from
        :mod:`repro.service`); it must be bound to exactly the selected
        submachine, per-run options are applied through its ``configured``
        lease hook, and results are byte-identical to the engine this call
        would otherwise construct.  ``engine`` and ``executor`` are
        mutually exclusive.  ``ir_op``/``ir_decls`` — when the call comes
        from :meth:`run_program`, the lowered
        :class:`~repro.ir.ops.OffloadOp` and the program's declarations;
        the :class:`~repro.runtime.offload_info.OffloadInfo` is then
        constructed from the IR op (value-identical to the direct build).
        """
        ids = self.select_devices(devices)
        submachine = self.machine.subset(ids)
        scheduler = self._resolve_scheduler(schedule, kernel, submachine, sched_kwargs)

        if cutoff_ratio == "auto":
            ratio = default_cutoff_ratio(self.effective_device_count(ids))
        else:
            ratio = float(cutoff_ratio)
        if ratio > 0.0 and not scheduler.supports_cutoff:
            # Table II: CUTOFF applies only to the model/profile algorithms.
            ratio = 0.0

        engine_kwargs: dict = {}
        if fault_plan is not None:
            engine_kwargs["fault_plan"] = fault_plan
        if resilience is not None:
            engine_kwargs["resilience"] = resilience
        if tracer is not None:
            engine_kwargs["tracer"] = tracer
        if residency is not None:
            engine_kwargs["residency"] = RegionResidency(residency, tuple(ids))
        run_options = dict(
            seed=self.seed,
            execute_numerically=self.execute_numerically,
            record_events=record_events,
            serialize_offload=serialize_offload,
            **engine_kwargs,
        )
        if engine is None:
            engine = make_backend(
                executor if executor is not None else OffloadEngine,
                submachine,
                **run_options,
            )
            lease = nullcontext(engine)
        else:
            lease = self._lease_engine(engine, executor, submachine, run_options)
        prev_resident = kernel.resident
        if resident is not None:
            kernel.resident = frozenset(resident)
        try:
            if ir_op is not None:
                info = OffloadInfo.from_ir(
                    ir_op,
                    ir_decls or {},
                    kernel,
                    scheduler,
                    self.machine,
                    ids,
                    cutoff_ratio=ratio,
                    serialize_offload=serialize_offload,
                    fault_plan=(
                        fault_plan.describe() if fault_plan is not None else None
                    ),
                )
            else:
                info = OffloadInfo.build(
                    kernel,
                    scheduler,
                    self.machine,
                    ids,
                    cutoff_ratio=ratio,
                    serialize_offload=serialize_offload,
                    fault_plan=(
                        fault_plan.describe() if fault_plan is not None else None
                    ),
                )
            with lease:
                result = engine.run(kernel, scheduler, cutoff_ratio=ratio)
        finally:
            kernel.resident = prev_resident
        result.meta["device_ids"] = ids
        result.meta["offload_info"] = info
        if record_events:
            result.meta["timeline"] = engine.timeline
        return result

    @staticmethod
    def _validate_specs(specs) -> "list[OffloadSpec]":
        """Fail fast on malformed batch input, naming the offending index.

        ``parallel_for_many`` hands the whole batch to a backend; without
        this check a bad cell surfaces as an opaque attribute error deep
        inside the scheduler or the tensor rounds.  Returns the
        normalized list so generator inputs are consumed exactly once.
        """
        try:
            items = list(specs)
        except TypeError:
            raise SchedulingError(
                f"parallel_for_many expects a list of OffloadSpec, got "
                f"{type(specs).__name__}"
            ) from None
        if not items:
            raise SchedulingError(
                "parallel_for_many: empty spec list (nothing to offload); "
                "pass at least one OffloadSpec"
            )
        for i, spec in enumerate(items):
            if not isinstance(spec, OffloadSpec):
                raise SchedulingError(
                    f"parallel_for_many: specs[{i}] is "
                    f"{type(spec).__name__}, expected OffloadSpec"
                )
            if not isinstance(spec.kernel, LoopKernel):
                raise SchedulingError(
                    f"parallel_for_many: specs[{i}].kernel is "
                    f"{type(spec.kernel).__name__}, expected a LoopKernel"
                )
            if spec.cutoff_ratio != "auto":
                try:
                    ratio = float(spec.cutoff_ratio)
                except (TypeError, ValueError):
                    raise SchedulingError(
                        f"parallel_for_many: specs[{i}].cutoff_ratio "
                        f"{spec.cutoff_ratio!r} is not a fraction or 'auto'"
                    ) from None
                if not 0.0 <= ratio <= 1.0:
                    raise SchedulingError(
                        f"parallel_for_many: specs[{i}].cutoff_ratio "
                        f"{ratio} is outside [0, 1]"
                    )
            if spec.execute_numerically not in (None, True, False):
                raise SchedulingError(
                    f"parallel_for_many: specs[{i}].execute_numerically is "
                    f"{spec.execute_numerically!r}, expected True, False or "
                    "None"
                )
        return items

    def parallel_for_many(
        self,
        specs: "list[OffloadSpec]",
        *,
        devices=None,
        serialize_offload: bool = False,
        executor: "str | type | None" = None,
        engine=None,
    ) -> list[OffloadResult]:
        """Offload a batch of independent loops through one backend.

        The batch form of :meth:`parallel_for`: every cell runs on the
        same device selection with the same engine configuration.  When
        the backend implements ``run_many`` (the ``"batch"`` backend), the
        whole list is handed over in one call so cells advance together as
        array ops; otherwise cells run through ``run`` one by one.  Either
        way, results are positionally aligned with ``specs`` and carry the
        same ``meta`` a :meth:`parallel_for` result would.

        ``engine`` accepts an already-built backend instance (a pooled
        engine), exactly as in :meth:`parallel_for`; the batch's options
        are applied through its ``configured`` lease for the duration of
        the call.  The spec list is validated up front: an empty list or a
        malformed spec raises :class:`~repro.errors.SchedulingError`
        naming the offending index instead of failing deep in the backend.
        """
        specs = self._validate_specs(specs)
        ids = self.select_devices(devices)
        submachine = self.machine.subset(ids)
        run_options = dict(
            seed=self.seed,
            execute_numerically=self.execute_numerically,
            record_events=False,
            serialize_offload=serialize_offload,
        )
        if engine is None:
            engine = make_backend(
                executor if executor is not None else OffloadEngine,
                submachine,
                **run_options,
            )
            lease = nullcontext(engine)
        else:
            lease = self._lease_engine(engine, executor, submachine, run_options)
        requests: list[BatchRequest] = []
        infos: list[OffloadInfo] = []
        for i, spec in enumerate(specs):
            try:
                scheduler = self._resolve_scheduler(
                    spec.schedule, spec.kernel, submachine, {}
                )
            except (SchedulingError, KeyError) as exc:
                raise SchedulingError(
                    f"parallel_for_many: specs[{i}].schedule "
                    f"{spec.schedule!r} cannot be resolved: {exc}"
                ) from exc
            if spec.cutoff_ratio == "auto":
                ratio = default_cutoff_ratio(self.effective_device_count(ids))
            else:
                ratio = float(spec.cutoff_ratio)
            if ratio > 0.0 and not scheduler.supports_cutoff:
                ratio = 0.0
            requests.append(
                BatchRequest(
                    kernel=spec.kernel,
                    scheduler=scheduler,
                    cutoff_ratio=ratio,
                    execute_numerically=spec.execute_numerically,
                )
            )
            infos.append(
                OffloadInfo.build(
                    spec.kernel,
                    scheduler,
                    self.machine,
                    ids,
                    cutoff_ratio=ratio,
                    serialize_offload=serialize_offload,
                )
            )
        with lease:
            if hasattr(engine, "run_many"):
                results = engine.run_many(requests)
            else:
                results = []
                for req in requests:
                    if (
                        req.execute_numerically is not None
                        and req.execute_numerically
                        != getattr(
                            engine, "execute_numerically",
                            self.execute_numerically,
                        )
                    ):
                        with engine.configured(
                            execute_numerically=req.execute_numerically
                        ):
                            results.append(
                                engine.run(
                                    req.kernel, req.scheduler,
                                    cutoff_ratio=req.cutoff_ratio,
                                )
                            )
                    else:
                        results.append(
                            engine.run(
                                req.kernel, req.scheduler,
                                cutoff_ratio=req.cutoff_ratio,
                            )
                        )
        for result, info in zip(results, infos):
            result.meta["device_ids"] = list(ids)
            result.meta["offload_info"] = info
        return results

    def target_data(
        self,
        directive: "str | OffloadDirective",
        arrays: dict,
    ):
        """Open a target-data region from a ``parallel target data``
        directive (paper Fig. 3, lines 1-7).

        ``arrays`` maps the directive's variable names to host ndarrays;
        scalars in the map clauses are ignored (they are trivially shared).
        Partitioned arrays (non-FULL dim-0 policy) are staged as one
        per-device share, replicated arrays in full.  Returns an *unopened*
        :class:`~repro.runtime.data_env.TargetDataRegion` (use ``with``).

        The directive lowers through the IR first (``parse -> lower ->
        verify -> normalize-maps``): duplicate map clauses of one array
        merge into a single direction-unioned entry, and the region is
        constructed from the resulting :class:`~repro.ir.ops.MapOp` set.
        """
        from repro.runtime.data_env import TargetDataRegion

        program = verify_program(normalize_maps(data_region(directive, arrays)))
        return TargetDataRegion.from_ir(
            self,
            program.region_maps,
            dict(arrays),
            devices=program.region_devices,
        )

    def _run_offload_op(
        self, op: IROffloadOp, decls: "dict[str, DataDecl]", **kwargs
    ) -> OffloadResult:
        """Execute one lowered offload, exactly as the directive path did:
        partition overrides are applied to the kernel (and persist), the
        schedule/devices/serialization come from the op."""
        kernel = op.kernel
        for name, pol in op.partition_overrides:
            kernel.set_partition(name, pol)
        # Without the `parallel target` composite, data distribution and
        # offloading are performed by a single host thread (paper §III.4).
        kwargs.setdefault("serialize_offload", op.serialize_offload)
        return self.parallel_for(
            kernel,
            schedule=op.schedule,
            devices=op.devices,
            ir_op=op,
            ir_decls=decls,
            **kwargs,
        )

    def _run_fused_op(
        self,
        op: FusedOffloadOp,
        decls: "dict[str, DataDecl]",
        group: int,
        **kwargs,
    ) -> list[OffloadResult]:
        """Execute a fused group inside one implicit target-data region.

        The merged ``region_maps`` open a
        :class:`~repro.runtime.data_env.TargetDataRegion`, so the
        residency ledger holds every shared array across the members and
        elides the intermediate transfers — each member's
        ``meta["residency"]["bytes_elided"]`` reports what fusion saved.
        """
        from repro.runtime.data_env import TargetDataRegion

        arrays = {}
        for member in op.members:
            for name in member.map_names:
                arrays.setdefault(name, member.kernel.arrays[name])
        region = TargetDataRegion.from_ir(
            self, op.region_maps, arrays, devices=op.devices
        )
        results: list[OffloadResult] = []
        with region:
            for i, member in enumerate(op.members):
                member_kwargs = dict(kwargs)
                for name, pol in member.partition_overrides:
                    member.kernel.set_partition(name, pol)
                member_kwargs.setdefault(
                    "serialize_offload", member.serialize_offload
                )
                result = region.parallel_for(
                    member.kernel,
                    schedule=member.schedule,
                    ir_op=member,
                    ir_decls=decls,
                    **member_kwargs,
                )
                result.meta["fusion"] = {
                    "group": group,
                    "member": i,
                    "arrays": sorted(arrays),
                }
                results.append(result)
        for result in results:
            result.meta["fusion"]["region_time_s"] = region.total_time_s
        return results

    def _run_stream_op(
        self, op: StreamOp, decls: "dict[str, DataDecl]", **kwargs
    ):
        """Execute a streamed offload (see :mod:`repro.runtime.stream`)."""
        from repro.runtime.stream import run_stream

        return run_stream(self, op, decls, **kwargs)

    def stream(
        self,
        kernel: LoopKernel,
        *,
        batches: int,
        window: int = 0,
        schedule="AUTO",
        devices=None,
        **kwargs,
    ):
        """Offload one kernel over ``batches`` data batches (Python-API
        form of the ``stream(batches=N, window=W)`` clause).

        Builds the :class:`~repro.ir.ops.StreamOp` the directive path
        would lower to (the kernel's effective maps become both the batch
        template and the hoisted persistent data region) and runs it
        through :mod:`repro.runtime.stream`: one target-data region held
        across all batches, one engine with cross-batch carry, one
        scheduler instance (``STREAM_REBALANCE`` re-derives the split
        between batches from observed rates).  ``window`` rows are
        refreshed by the host between batches — via the kernel's
        ``stream_advance(batch, window)`` hook when it has one, else the
        leading rows of every inbound map.  A 1-batch stream degenerates
        to a literal :meth:`parallel_for`.  Returns a
        :class:`~repro.runtime.stream.StreamResult`.
        """
        if batches < 1:
            raise SchedulingError(f"stream needs batches >= 1, got {batches}")
        if window < 0:
            raise SchedulingError(f"stream window must be >= 0, got {window}")
        maps = tuple(
            MapOp(
                array=m.name,
                direction=m.direction,
                policies=m.policies,
                halo=m.halo,
                region=Region.for_map(m.policies, m.halo),
            )
            for m in kernel.effective_maps()
        )
        template = IROffloadOp(
            kernel=kernel,
            label=kernel.label,
            n_iters=kernel.n_iters,
            schedule=schedule,
            devices=devices,
            maps=maps,
            reduce=ReduceOp() if kernel.is_reduction else None,
        )
        op = StreamOp(
            template=template, batches=batches, window=window, region_maps=maps
        )
        return self._run_stream_op(op, {}, **kwargs)

    def run_program(
        self, program: Program, *, passes=None, **kwargs
    ) -> list[OffloadResult]:
        """Execute a lowered offload program: verify -> passes -> run.

        The IR entry point (``docs/IR.md``): ``program`` comes from
        :func:`repro.ir.lower.from_directive` /
        :func:`~repro.ir.lower.from_directives`.  ``passes`` selects the
        rewrite pipeline — ``None`` runs the default (normalize-maps,
        derive-halo, fuse-adjacent-offloads), an empty tuple disables
        rewriting.  Returns one :class:`~repro.engine.trace.OffloadResult`
        per lowered offload, positionally aligned with the input ops
        (fused groups contribute one result per member; a
        :class:`~repro.ir.ops.StreamOp` contributes one
        :class:`~repro.runtime.stream.StreamResult` covering all its
        batches).  ``kwargs`` are forwarded to every
        :meth:`parallel_for` call (tracer, executor, cutoff_ratio, ...).

        A single-offload program produces a result byte-identical to the
        historical direct directive interpretation — pinned by the
        differential suite in ``tests/ir/test_ir_differential.py``.
        """
        verify_program(program)
        program = verify_program(run_passes(program, passes))
        decls = {d.name: d for d in program.decls}
        results: list[OffloadResult] = []
        for group, op in enumerate(program.ops):
            if isinstance(op, FusedOffloadOp):
                results.extend(
                    self._run_fused_op(op, decls, group, **dict(kwargs))
                )
            elif isinstance(op, StreamOp):
                results.append(
                    self._run_stream_op(op, decls, **dict(kwargs))
                )
            else:
                results.append(
                    self._run_offload_op(op, decls, **dict(kwargs))
                )
        return results

    def offload(self, directive: str | OffloadDirective, kernel: LoopKernel,
                **kwargs) -> OffloadResult:
        """Offload a kernel under a HOMP directive string (Fig. 2 style).

        One front-end path: the directive lowers into a single-offload
        :class:`~repro.ir.ops.Program` which runs through
        :meth:`run_program` (verify -> passes -> execute).  Results are
        byte-identical to the historical direct interpretation of the
        directive.
        """
        schedule = kwargs.pop("schedule", None)
        program = from_directive(directive, kernel, schedule=schedule)
        return self.run_program(program, **kwargs)[0]
