"""Target-data regions (the paper's ``parallel target data`` in Fig. 3).

A :class:`TargetDataRegion` keeps named arrays resident on the selected
devices across several offloads — the Jacobi pattern: map ``f``, ``u``,
``uold`` once, iterate many parallel loops without re-transferring, unmap
(copy back ``tofrom`` data) at exit.

Entry derives a :class:`~repro.memory.residency.DataPlacementPlan` from
the region's dim-0 policies (FULL replicates, BLOCK/CYCLIC split, ALIGN
follows its target scaled by the ratio, AUTO takes the BLOCK shape the
schedulers converge to) and retains each device's owner ranges in the
runtime's :class:`~repro.memory.residency.ResidencyLedger` — reference
counted, like the real runtime's device buffers, so nested regions
mapping the same array stage nothing and only the outermost exit drains
the buffer.  Entry charges the copy-in of exactly the rows *not already
valid* on each device; exit releases the references and charges the
copy-out of the valid rows whose refcount reached zero — and only on a
clean exit: when the body raises, buffers are torn down without the
copy-back (the data never materialised).

While the region is open, offloads issued through :meth:`parallel_for`
run with the ledger attached: the engine charges each chunk only the
delta between the rows it touches and what is resident, writes update
ownership (``note_write``), and a device dropout invalidates everything
the lost device held so surviving devices re-pay honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.policy import Block, Full, Policy
from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.memory.residency import DataPlacementPlan, RegionResidency
from repro.memory.space import MapDirection
from repro.runtime.runtime import HompRuntime
from repro.util.ranges import IterRange

__all__ = ["TargetDataRegion"]


@dataclass
class TargetDataRegion:
    """Context manager holding arrays resident across offloads."""

    runtime: HompRuntime
    maps: dict[str, tuple[np.ndarray, MapDirection]]
    devices: list[int] | str | None = None
    partitioned: frozenset[str] = frozenset()  # arrays block-split, not replicated
    #: Dim-0 placement policy per partitioned array (from the directive's
    #: ``partition(...)`` entries); missing names default to BLOCK when
    #: partitioned, FULL otherwise.
    policies: dict[str, Policy] = field(default_factory=dict)
    map_in_s: float = 0.0
    map_out_s: float = 0.0
    offload_s: float = field(default=0.0, init=False)
    _open: bool = field(default=False, init=False)
    _ids: list[int] = field(default_factory=list, init=False)
    _plan: DataPlacementPlan | None = field(default=None, init=False)
    #: (local index, global devid, array, retained ranges) per ledger ref.
    _retained: list[tuple[int, int, str, tuple[IterRange, ...]]] = field(
        default_factory=list, init=False
    )

    @classmethod
    def from_ir(
        cls,
        runtime: HompRuntime,
        map_ops,
        arrays: dict[str, np.ndarray],
        *,
        devices=None,
    ) -> "TargetDataRegion":
        """Build a region from IR :class:`~repro.ir.ops.MapOp` entries.

        ``map_ops`` is a program's ``region_maps`` (the lowered ``target
        data`` directive) or a fused group's merged environment; ``arrays``
        binds each mapped name to its host array.  An array is partitioned
        when any of its policies is non-FULL, and its dim-0 policy drives
        the placement plan — exactly the directive path's rules.
        """
        maps: dict[str, tuple[np.ndarray, MapDirection]] = {}
        partitioned: set[str] = set()
        policies: dict[str, Policy] = {}
        for m in map_ops:
            maps[m.array] = (arrays[m.array], m.direction)
            if m.policies and not all(isinstance(p, Full) for p in m.policies):
                partitioned.add(m.array)
                policies[m.array] = m.policies[0]  # dim-0 placement policy
        return cls(
            runtime=runtime,
            maps=maps,
            devices=devices,
            partitioned=frozenset(partitioned),
            policies=policies,
        )

    def _policy_for(self, name: str) -> Policy:
        pol = self.policies.get(name)
        if pol is not None:
            return pol
        return Block() if name in self.partitioned else Full()

    def __enter__(self) -> "TargetDataRegion":
        ids = self.runtime.select_devices(self.devices)
        if not ids:
            raise OffloadError(
                "target data region opened with zero devices: nothing can "
                "hold the mapped arrays"
            )
        specs = [self.runtime.machine[i] for i in ids]
        ledger = self.runtime.ledger

        entries: dict[str, tuple[int, Policy]] = {}
        for name, (arr, _direction) in self.maps.items():
            rows = int(arr.shape[0]) if arr.ndim else 1
            entries[name] = (rows, self._policy_for(name))
        plan = DataPlacementPlan.derive(entries, len(ids))

        per_device_in = [0.0] * len(ids)
        per_device_out = [0.0] * len(ids)
        retained: list[tuple[int, int, str, tuple[IterRange, ...]]] = []
        for name, (arr, direction) in self.maps.items():
            rows, _pol = entries[name]
            if rows <= 0:
                continue  # zero-extent array: nothing to place or move
            row_bytes = arr.nbytes // rows
            ledger.register(name, rows, row_bytes)
            for k, gid in enumerate(ids):
                ranges = plan.ranges(name, k)
                if not ranges:
                    continue
                placed = sum(len(r) for r in ranges)
                if direction.copies_in:
                    # Only the rows not already valid on the device cross
                    # the link (an enclosing region may have staged them).
                    missing = ledger.missing_count(gid, name, ranges)
                    per_device_in[k] += specs[k].link.transfer_time(
                        row_bytes * missing
                    )
                if direction.copies_out:
                    # Projected copy-back; exit replaces this with the
                    # rows actually drained (zero if the body raises).
                    per_device_out[k] += specs[k].link.transfer_time(
                        row_bytes * placed
                    )
                ledger.retain(gid, name, ranges)
                if direction.copies_in:
                    ledger.mark_valid(gid, name, ranges)
                retained.append((k, gid, name, ranges))

        self.map_in_s = max(per_device_in, default=0.0)
        self.map_out_s = max(per_device_out, default=0.0)
        self.offload_s = 0.0
        self._ids = ids
        self._plan = plan
        self._retained = retained
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._open = False
        ledger = self.runtime.ledger
        per_device_out = [0.0] * len(self._ids)
        for k, gid, name, ranges in self._retained:
            _arr, direction = self.maps[name]
            row_bytes = ledger.row_bytes(name) if ledger.known(name) else 0
            _dropped, n_valid = ledger.release(gid, name, ranges)
            if exc_type is None and direction.copies_out and n_valid:
                spec = self.runtime.machine[gid]
                per_device_out[k] += spec.link.transfer_time(
                    row_bytes * n_valid
                )
        self._retained = []
        # Copy-back happens only when the region body completed; a raising
        # body tears the buffers down without draining them (no map-out).
        self.map_out_s = (
            max(per_device_out, default=0.0) if exc_type is None else 0.0
        )

    @property
    def plan(self) -> DataPlacementPlan:
        """The placement plan derived at entry (open regions only)."""
        if self._plan is None:
            raise OffloadError("target data region is not open")
        return self._plan

    @property
    def residency(self) -> RegionResidency:
        """Ledger view bound to this region's devices (for halo planning)."""
        if not self._open:
            raise OffloadError("target data region is not open")
        return RegionResidency(self.runtime.ledger, self._ids)

    def parallel_for(self, kernel, **kwargs) -> OffloadResult:
        """Offload with this region's arrays held resident."""
        if not self._open:
            raise OffloadError("target data region is not open")
        kwargs.setdefault("devices", self._ids)
        kwargs.setdefault("residency", self.runtime.ledger)
        resident = frozenset(self.maps) & frozenset(kernel.arrays)
        result = self.runtime.parallel_for(kernel, resident=resident, **kwargs)
        self.offload_s += result.total_time_s
        return result

    @property
    def total_time_s(self) -> float:
        """Mapping cost + all offloads issued inside the region."""
        return self.map_in_s + self.offload_s + self.map_out_s
