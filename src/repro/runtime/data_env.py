"""Target-data regions (the paper's ``parallel target data`` in Fig. 3).

A :class:`TargetDataRegion` keeps named arrays resident on the selected
devices across several offloads — the Jacobi pattern: map ``f``, ``u``,
``uold`` once, iterate many parallel loops without re-transferring, unmap
(copy back ``tofrom`` data) at exit.

Entry charges the copy-in of each array's per-device share (BLOCK-shaped:
``1/ndev`` of partitioned arrays, the whole array for FULL maps); exit
charges the copy-out.  While the region is open, offloads issued through
:meth:`parallel_for` mark those arrays ``resident`` so their per-chunk bus
costs vanish.  This mirrors the real runtime's reference-counted device
buffers without modelling their exact placement, which is a documented
simplification (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.memory.space import MapDirection
from repro.runtime.runtime import HompRuntime

__all__ = ["TargetDataRegion"]


@dataclass
class TargetDataRegion:
    """Context manager holding arrays resident across offloads."""

    runtime: HompRuntime
    maps: dict[str, tuple[np.ndarray, MapDirection]]
    devices: list[int] | str | None = None
    partitioned: frozenset[str] = frozenset()  # arrays block-split, not replicated
    map_in_s: float = 0.0
    map_out_s: float = 0.0
    offload_s: float = field(default=0.0, init=False)
    _open: bool = field(default=False, init=False)

    def __enter__(self) -> "TargetDataRegion":
        ids = self.runtime.select_devices(self.devices)
        specs = [self.runtime.machine[i] for i in ids]
        n_owners = max(1, len(ids))
        per_device_in = [0.0] * len(ids)
        per_device_out = [0.0] * len(ids)
        for name, (arr, direction) in self.maps.items():
            for k, spec in enumerate(specs):
                share = (
                    arr.nbytes / n_owners if name in self.partitioned else arr.nbytes
                )
                if direction.copies_in:
                    per_device_in[k] += spec.link.transfer_time(share)
                if direction.copies_out:
                    per_device_out[k] += spec.link.transfer_time(share)
        self.map_in_s = max(per_device_in, default=0.0)
        self.map_out_s = max(per_device_out, default=0.0)
        self._ids = ids
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._open = False

    def parallel_for(self, kernel, **kwargs) -> OffloadResult:
        """Offload with this region's arrays held resident."""
        if not self._open:
            raise OffloadError("target data region is not open")
        kwargs.setdefault("devices", self._ids)
        resident = frozenset(self.maps) & frozenset(kernel.arrays)
        result = self.runtime.parallel_for(kernel, resident=resident, **kwargs)
        self.offload_s += result.total_time_s
        return result

    @property
    def total_time_s(self) -> float:
        """Mapping cost + all offloads issued inside the region."""
        return self.map_in_s + self.offload_s + self.map_out_s
