"""Stream execution: one offload template run over many data batches.

The runner behind :class:`~repro.ir.ops.StreamOp` (the
``stream(batches=N, window=W)`` clause, HSTREAM direction).  A stream is
*not* N independent offloads:

* **One persistent data region.**  The template's maps — hoisted into
  ``StreamOp.region_maps`` by the ``stream-pipeline`` pass — open a
  single :class:`~repro.runtime.data_env.TargetDataRegion` around the
  whole batch sequence, so device-resident state survives across
  batches and a steady-state batch pays only the sliding-window delta
  the host refreshed since the last one (``bytes_elided`` in each batch
  result's residency meta records the savings).
* **One engine, cross-batch double buffering.**  Every batch runs on
  the same backend instance; between batches the runner threads the
  engine's :meth:`~repro.engine.core.RunContext.carry_out` into the
  next run's ``carry_in``, so batch k+1's copy-ins queue behind (and
  overlap with) batch k's still-draining compute and copy-out stages.
  All times are cumulative stream time; spans are stamped ``batch=<k>``
  through :class:`~repro.obs.tracer.BatchTracer`.
* **One scheduler instance.**  A stateful scheduler (STREAM_REBALANCE)
  keeps its observed-rate history and its lost-device set across
  ``start`` calls, re-deriving the split between batches; stateless
  schedulers simply re-partition each batch.

Between batches the host *advances* the stream: a kernel exposing
``stream_advance(batch, window)`` mutates its host arrays and returns
the dirty dim-0 row ranges per array; the runner invalidates those rows
on every region device so the next batch re-stages exactly the delta.
Kernels without the hook fall back to the leading ``window`` rows of
every inbound map (a ring buffer where new data lands at the front).

Degenerate contract: a 1-batch stream is executed as a literal
:meth:`~repro.runtime.runtime.HompRuntime.parallel_for` — no region, no
carry — so its single result is byte-identical (pickle-equal) to the
one-shot path on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields

from repro.engine.core import make_backend
from repro.engine.simulator import OffloadEngine
from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.ir.lower import decl_for
from repro.ir.ops import DataDecl, StreamOp
from repro.obs.tracer import BatchTracer
from repro.util.ranges import IterRange

__all__ = ["StreamResult", "run_stream"]


@dataclass
class StreamResult:
    """Outcome of one streamed offload (all batches)."""

    kernel_name: str
    algorithm: str
    batches: int
    window: int
    #: One :class:`~repro.engine.trace.OffloadResult` per batch, in
    #: order.  ``total_time_s`` values are *cumulative* stream times.
    results: list[OffloadResult]
    #: Region-transfer totals across the whole stream.
    bytes_moved: float = 0.0
    bytes_elided: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        """End-to-end stream makespan (the last batch's finish time)."""
        return self.results[-1].total_time_s if self.results else 0.0

    @property
    def batch_times_s(self) -> list[float]:
        """Per-batch latency: deltas of the cumulative finish times."""
        out: list[float] = []
        prev = 0.0
        for r in self.results:
            out.append(r.total_time_s - prev)
            prev = r.total_time_s
        return out

    @property
    def throughput_batches_per_s(self) -> float:
        total = self.total_time_s
        return self.batches / total if total > 0 else 0.0

    @property
    def reductions(self) -> list[float | None]:
        return [r.reduction for r in self.results]


def _advance_stream(runtime, region, op: StreamOp, kernel, batch: int) -> None:
    """Host-side refresh between batch ``batch - 1`` and ``batch``.

    The kernel's ``stream_advance`` hook (when present) mutates the host
    arrays and names the dirty dim-0 ranges; the fallback treats the
    leading ``window`` rows of every inbound map as refreshed.  Dirty
    rows are invalidated on every region device so the next batch's
    chunks re-pay exactly the delta through the residency ledger.
    """
    advance = getattr(kernel, "stream_advance", None)
    if advance is not None:
        dirty = advance(batch, op.window) or {}
    elif op.window > 0:
        maps = op.region_maps if op.region_maps else op.template.maps
        dirty = {
            m.array: IterRange(0, op.window)
            for m in maps
            if m.direction.copies_in
        }
    else:
        return
    ledger = runtime.ledger
    for name, ranges in dirty.items():
        if isinstance(ranges, IterRange):
            ranges = [ranges]
        ranges = [r for r in ranges if not r.empty]
        if not ranges:
            continue
        for gid in region._ids:
            ledger.invalidate(gid, name, ranges)


def run_stream(
    runtime,
    op: StreamOp,
    decls: "dict[str, DataDecl] | None" = None,
    **kwargs,
) -> StreamResult:
    """Execute a :class:`~repro.ir.ops.StreamOp` on ``runtime``.

    ``kwargs`` are forwarded to every per-batch offload (cutoff_ratio,
    fault_plan, resilience, tracer, executor, record_events, ...); the
    fault plan's virtual-time windows apply over the *cumulative* stream
    timeline, so a slowdown window hits whichever batches run inside it
    and a mid-stream dropout kills the device for every later batch.
    """
    from repro.runtime.data_env import TargetDataRegion

    decls = decls or {}
    kernel = op.template.kernel
    for name, pol in op.template.partition_overrides:
        kernel.set_partition(name, pol)
    kwargs.setdefault("serialize_offload", op.serialize_offload)

    if op.batches == 1:
        # Degenerate stream: literally the one-shot path (no region, no
        # carry) — byte-identical to parallel_for on every backend.
        result = runtime.parallel_for(
            kernel,
            schedule=op.template.schedule,
            devices=op.devices,
            **kwargs,
        )
        return StreamResult(
            kernel_name=result.kernel_name,
            algorithm=result.algorithm,
            batches=1,
            window=op.window,
            results=[result],
            meta={"degenerate": True},
        )

    base_tracer = kwargs.pop("tracer", None)
    executor = kwargs.pop("executor", None)
    engine = kwargs.pop("engine", None)

    ids = runtime.select_devices(op.devices)
    submachine = runtime.machine.subset(ids)
    scheduler = runtime._resolve_scheduler(
        op.template.schedule, kernel, submachine, {}
    )
    if engine is None:
        engine = make_backend(
            executor if executor is not None else OffloadEngine, submachine
        )
    elif executor is not None:
        raise OffloadError(
            "pass either executor= (a backend to build) or engine= "
            "(an already-built instance), not both"
        )
    supports_carry = any(
        f.name == "carry_in" for f in dataclass_fields(engine)
    )

    region_maps = op.region_maps if op.region_maps else op.template.maps
    arrays = {m.array: kernel.arrays[m.array] for m in region_maps}
    decls = dict(decls)
    for name in op.template.map_names:
        if name not in decls:
            decls[name] = decl_for(name, kernel.arrays[name])
    region = TargetDataRegion.from_ir(runtime, region_maps, arrays, devices=ids)

    results: list[OffloadResult] = []
    bytes_moved = bytes_elided = 0.0
    try:
        with region:
            carry = None
            for k in range(op.batches):
                if k > 0:
                    _advance_stream(runtime, region, op, kernel, k)
                if supports_carry:
                    engine.carry_in = carry
                batch_kwargs = dict(kwargs)
                if base_tracer is not None:
                    batch_kwargs["tracer"] = BatchTracer(base_tracer, batch=k)
                result = region.parallel_for(
                    kernel,
                    schedule=scheduler,
                    engine=engine,
                    ir_op=op.template,
                    ir_decls=decls,
                    **batch_kwargs,
                )
                result.meta["stream"] = {
                    "batch": k,
                    "batches": op.batches,
                    "window": op.window,
                }
                res = result.meta.get("residency")
                if res is not None:
                    bytes_moved += res["bytes_moved"]
                    bytes_elided += res["bytes_elided"]
                results.append(result)
                if supports_carry:
                    carry = engine._run_ctx.carry_out()
    finally:
        if supports_carry:
            engine.carry_in = None

    return StreamResult(
        kernel_name=kernel.name,
        algorithm=scheduler.describe(),
        batches=op.batches,
        window=op.window,
        results=results,
        bytes_moved=bytes_moved,
        bytes_elided=bytes_elided,
        meta={
            "device_ids": list(ids),
            "region_time_s": region.total_time_s,
            "pipelined": supports_carry,
        },
    )
