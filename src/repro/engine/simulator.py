"""Deterministic discrete-event execution of one offloaded loop.

Each device is the paper's Fig. 4 proxy thread, modelled as three pipeline
engines in virtual time:

* a copy-in engine (host -> device DMA),
* a compute engine,
* a copy-out engine (device -> host DMA),

A proxy acquires a chunk (paying the scheduler's compare-and-swap
overhead), stages its aligned input over the link, computes, and returns
the output.  Discrete-memory devices are double-buffered: the proxy may
request its next chunk as soon as the current chunk's copy-in finished and
at most one chunk is queued behind the running one — that is how dynamic
chunking overlaps data movement with computation (the effect the paper
credits for SCHED_DYNAMIC's wins on data-intensive kernels).  Host devices
run their chunks serially (the proxy *is* the compute resource).

Chunk acquisition across devices is linearised by a priority queue on
virtual request time, reproducing the ordering a real CAS-based shared
cursor produces, but deterministically.  The kernel is executed
numerically for every chunk (through the DeviceBuffer path), so the
simulated timeline and the real numeric result come from the same chunk
stream.

When a :class:`~repro.faults.plan.FaultPlan` is attached, the engine
consults it at each pipeline stage: slowdowns scale stage durations,
transfer errors cost bounded retries with backoff (in virtual time), and
dropouts remove a device permanently.  A chunk counts as covered — and is
executed numerically — only if its whole pipeline succeeds, so the numeric
result of a survivable faulted run matches the fault-free one; lost chunks
are reassigned to the surviving devices through the scheduler's
``requeue``/``device_lost`` hooks or an engine-level orphan queue.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.engine.events import ChunkEvent, Timeline
from repro.engine.trace import DeviceTrace, OffloadResult
from repro.errors import FaultError, OffloadError
from repro.faults.events import ChunkFault, FaultKind
from repro.faults.plan import FaultPlan, faults_enabled
from repro.faults.policy import HealthTracker, ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.device import Device
from repro.machine.spec import MachineSpec, MemoryKind
from repro.memory.unified import UnifiedMemoryModel
from repro.obs import span as _sp
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS as _CHUNK_SIZE_BUCKETS
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, resolve_tracer
from repro.sched.base import BARRIER, LoopScheduler, SchedContext
from repro.util.ranges import IterRange, split_block

__all__ = ["OffloadEngine"]


@dataclass
class _DevState:
    device: Device
    trace: DeviceTrace
    copy_in_free: float = 0.0
    comp_free: float = 0.0
    copy_out_free: float = 0.0
    finish: float = 0.0
    first_chunk: bool = True
    done: bool = False
    at_barrier: float | None = None
    lost: bool = False  # permanently dead (dropout or quarantine)


@dataclass
class OffloadEngine:
    """Runs one kernel offload under one scheduling algorithm."""

    machine: MachineSpec
    seed: int = 0
    execute_numerically: bool = True
    collect_chunks: bool = False
    record_events: bool = False
    #: Without the paper's `parallel target` composite (§III.4), offloading
    #: to the target devices is serialised: one host thread stages every
    #: device's input in turn.  True = one shared dispatch resource.
    serialize_offload: bool = False
    #: Ablation switch: with double buffering off, a proxy only requests
    #: its next chunk after the current one fully drains (copy-out done),
    #: removing all transfer/compute overlap within a device.
    double_buffer: bool = True
    #: Cost model for devices with UNIFIED memory (paper §V.C): shared
    #: semantics, but pages migrate over the bus at driver speed.
    unified_model: UnifiedMemoryModel = field(default_factory=UnifiedMemoryModel)
    #: Faults to inject (None or an empty plan = fault-free run; the
    #: REPRO_FAULTS env switch can disable any plan globally).
    fault_plan: FaultPlan | None = None
    #: Retry/quarantine behaviour under the fault plan.
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Observability sink (:mod:`repro.obs`).  The default null tracer is
    #: permanently disabled; the hot loop reads its ``enabled`` flag once
    #: per run, so untraced offloads pay no per-chunk cost.  ``REPRO_OBS``
    #: can kill even an attached tracer (see ``resolve_tracer``).
    tracer: Tracer | NullTracer = NULL_TRACER
    _chunk_log: list[tuple[int, IterRange]] = field(default_factory=list)
    _events: list[ChunkEvent] = field(default_factory=list)
    _faults: list[ChunkFault] = field(default_factory=list)

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        devices = [Device(i, spec) for i, spec in enumerate(self.machine.devices)]
        for dev in devices:
            dev.reseed(self.seed)
        obs = resolve_tracer(self.tracer)
        traced = obs.enabled  # one attribute check; hot path branches on a local
        met = obs.metrics if traced else None
        ctx = SchedContext(
            kernel=kernel, devices=devices, cutoff_ratio=cutoff_ratio,
            metrics=met,
        )
        scheduler.start(ctx)
        self._chunk_log.clear()
        self._events.clear()
        self._faults.clear()

        plan = self.fault_plan
        plan_active = plan is not None and not plan.empty and faults_enabled()
        retry = self.resilience.retry
        health = HealthTracker(self.resilience.quarantine_after)
        xfer_attempts: dict[int, int] = {}  # per-device monotonic counters
        orphans: deque[IterRange] = deque()

        states = [
            _DevState(device=d, trace=DeviceTrace(devid=d.devid, name=d.name))
            for d in devices
        ]
        reduction = kernel.identity()
        covered = 0
        dispatch_free = 0.0  # shared host dispatcher (serialize_offload)
        # Devices sharing a PCIe slot contend for one bus resource.
        group_free: dict[str, float] = {}

        # (request_time, devid): pop the earliest requester; devid breaks ties
        # deterministically.
        heap: list[tuple[float, int]] = [(0.0, d.devid) for d in devices]
        heapq.heapify(heap)

        def release_barrier() -> None:
            waiting = [s for s in states if s.at_barrier is not None]
            t_rel = max(s.at_barrier for s in waiting)  # type: ignore[type-var]
            for s in waiting:
                if traced and t_rel > s.at_barrier:  # type: ignore[operator]
                    obs.span(
                        _sp.SPAN_BARRIER, _sp.CAT_STAGE, s.device.devid,
                        s.device.name, s.at_barrier, t_rel,
                    )
                s.trace.barrier_s += t_rel - s.at_barrier  # type: ignore[operator]
                s.at_barrier = None
                heapq.heappush(heap, (t_rel, s.device.devid))
            scheduler.at_barrier()

        def emit(
            kind: FaultKind,
            st: _DevState,
            t_f: float,
            *,
            chunk: IterRange | None = None,
            stage: str = "",
            detail: str = "",
        ) -> None:
            self._faults.append(
                ChunkFault(
                    kind=kind,
                    devid=st.device.devid,
                    device_name=st.device.name,
                    t=t_f,
                    chunk=chunk,
                    stage=stage,
                    detail=detail,
                )
            )

        def add_orphan(chunk: IterRange, t_now: float) -> None:
            """Reassign a lost chunk to the survivors and wake idle ones."""
            alive = [s for s in states if not s.lost]
            if not alive:
                orphans.append(chunk)  # unrecoverable; reported at the end
                return
            if not scheduler.requeue(chunk):
                orphans.extend(
                    p for p in split_block(chunk, len(alive)) if not p.empty
                )
            for s in alive:
                if s.done:  # drained earlier; there is work again
                    s.done = False
                    heapq.heappush(heap, (max(t_now, s.finish), s.device.devid))

        def mark_lost(
            st: _DevState,
            t_lost: float,
            kind: FaultKind,
            *,
            chunk: IterRange | None = None,
            detail: str = "",
        ) -> None:
            st.lost = True
            st.done = True
            st.trace.lost_at = t_lost
            emit(kind, st, t_lost, chunk=chunk, detail=detail)
            for reserved in scheduler.device_lost(st.device.devid):
                add_orphan(reserved, t_lost)
            # The dead device can no longer hold up a barrier.
            pending = [s for s in states if not s.done and s.at_barrier is None]
            waiting = [s for s in states if s.at_barrier is not None]
            if not pending and waiting:
                release_barrier()

        def transfer_attempts(
            st: _DevState,
            chunk: IterRange,
            direction: str,
            t_x: float,
            start_t: float,
        ) -> tuple[float, int, bool]:
            """Outcome of one (possibly retried) transfer.

            Returns ``(pad_s, retried, ok)``: virtual time wasted on failed
            attempts and backoffs, the number of retried attempts, and
            whether a transfer eventually went through.  Draws come from
            the plan's counter-based hash keyed on a per-device monotonic
            attempt counter, so a re-served chunk faces fresh draws.
            """
            if not plan_active or t_x <= 0.0:
                return 0.0, 0, True
            devid = st.device.devid
            pad = 0.0
            fails = 0
            while True:
                n = xfer_attempts.get(devid, 0)
                xfer_attempts[devid] = n + 1
                if not plan.transfer_fails(devid, n, direction):
                    return pad, fails, True
                pad += t_x  # the failed attempt still occupied the link
                fails += 1
                if fails > retry.max_retries:
                    emit(
                        FaultKind.TRANSFER_FAIL,
                        st,
                        start_t + pad,
                        chunk=chunk,
                        stage=direction,
                        detail=f"gave up after {fails} attempts",
                    )
                    return pad, fails - 1, False
                emit(
                    FaultKind.RETRY,
                    st,
                    start_t + pad,
                    chunk=chunk,
                    stage=direction,
                    detail=f"attempt {fails} failed",
                )
                pad += retry.backoff(fails - 1)

        while heap:
            t, devid = heapq.heappop(heap)
            st = states[devid]
            if st.done:
                continue
            drop_t = plan.dropout_t(devid) if plan_active else None
            if drop_t is not None and t >= drop_t:
                mark_lost(
                    st, drop_t, FaultKind.DROPOUT, detail="lost while idle"
                )
                continue
            decision = scheduler.next(devid)

            if decision is None and orphans:
                # Scheduler is drained but lost work remains: adopt it.
                decision = orphans.popleft()

            if decision is None:
                st.done = True
                # If everyone else is parked at the barrier, release them.
                pending = [s for s in states if not s.done and s.at_barrier is None]
                waiting = [s for s in states if s.at_barrier is not None]
                if not pending and waiting:
                    release_barrier()
                continue

            if decision is BARRIER:
                st.at_barrier = max(t, st.finish)
                pending = [
                    s for s in states if not s.done and s.at_barrier is None
                ]
                if not pending:
                    release_barrier()
                continue

            chunk: IterRange = decision  # type: ignore[assignment]
            if chunk.empty:
                raise OffloadError(
                    f"{scheduler.notation} handed an empty chunk to device {devid}"
                )

            spec = st.device.spec
            cost = kernel.chunk_cost(chunk)
            bytes_in = cost.xfer_in_bytes + (
                cost.replicated_in_bytes if st.first_chunk else 0.0
            )
            t_setup = spec.setup_overhead_s if st.first_chunk else 0.0
            st.first_chunk = False

            t_sched = spec.sched_overhead_s
            acquire_end = t + t_sched + t_setup
            if spec.memory is MemoryKind.UNIFIED:
                # Unified memory: no explicit copies in the program, but
                # the pages still cross the bus — at driver-migration
                # speed (the 10-18x of paper section V.C).
                t_in = self.unified_model.migration_time(spec.link, bytes_in)
                t_out = self.unified_model.migration_time(
                    spec.link, cost.xfer_out_bytes
                )
            else:
                t_in = st.device.transfer_time(bytes_in)
                t_out = st.device.transfer_time(cost.xfer_out_bytes)
            t_comp = st.device.compute_time(cost.flops, cost.mem_bytes)

            group = spec.pcie_group
            in_start = max(acquire_end, st.copy_in_free)
            if self.serialize_offload:
                in_start = max(in_start, dispatch_free)
            if group is not None:
                in_start = max(in_start, group_free.get(group, 0.0))
            if plan_active:
                t_in *= plan.slowdown_factor(devid, in_start)
            pad_in, retries_in, in_ok = transfer_attempts(
                st, chunk, "in", t_in, in_start
            )
            in_end = in_start + pad_in + t_in if in_ok else in_start + pad_in
            if self.serialize_offload:
                dispatch_free = in_end
            if group is not None and in_end > in_start:
                group_free[group] = in_end
            comp_prev_end = st.comp_free
            if in_ok:
                comp_start = max(in_end, st.comp_free)
                if plan_active:
                    t_comp *= plan.slowdown_factor(devid, comp_start)
                comp_end = comp_start + t_comp
                out_start = max(comp_end, st.copy_out_free)
                if group is not None:
                    out_start = max(out_start, group_free.get(group, 0.0))
                if plan_active:
                    t_out *= plan.slowdown_factor(devid, out_start)
                pad_out, retries_out, out_ok = transfer_attempts(
                    st, chunk, "out", t_out, out_start
                )
                out_end = (
                    out_start + pad_out + t_out if out_ok
                    else out_start + pad_out
                )
                if group is not None and out_end > out_start:
                    group_free[group] = out_end
            else:
                # Copy-in never succeeded: compute and copy-out don't run.
                comp_start = comp_end = in_end
                out_start = out_end = in_end
                pad_out, retries_out, out_ok = 0.0, 0, True

            dropped = (
                drop_t is not None and out_end > drop_t
            )  # the device dies before this chunk's outputs return
            ok = in_ok and out_ok and not dropped
            retried = retries_in + retries_out
            tr = st.trace

            if dropped:
                tr.faults += 1
                if self.record_events:
                    self._events.append(
                        ChunkEvent(
                            devid=devid,
                            device_name=st.device.name,
                            chunk=chunk,
                            acquire_t=t,
                            in_start=min(in_start, drop_t),
                            in_end=min(in_end, drop_t),
                            comp_start=min(comp_start, drop_t),
                            comp_end=min(comp_end, drop_t),
                            out_start=min(out_start, drop_t),
                            out_end=min(out_end, drop_t),
                            status="dropped",
                            retries=retried,
                        )
                    )
                mark_lost(
                    st,
                    drop_t,
                    FaultKind.DROPOUT,
                    chunk=chunk,
                    detail="chunk in flight was lost",
                )
                add_orphan(chunk, drop_t)
                continue

            st.copy_in_free = in_end
            st.comp_free = comp_end
            st.copy_out_free = out_end
            st.finish = max(st.finish, out_end)

            tr.setup_s += t_setup
            tr.sched_s += t_sched
            tr.retry_s += pad_in + pad_out
            tr.retries += retried

            if traced:
                # Mirror exactly what the legacy DeviceTrace buckets charge
                # (the obs equivalence test pins the two paths together).
                dn = st.device.name
                ck = (chunk.start, chunk.stop)
                obs.span(
                    _sp.SPAN_SCHED, _sp.CAT_SCHED, devid, dn,
                    t, t + t_sched, chunk=ck,
                )
                met.observe(
                    "sched_decision_s", t_sched,
                    device=dn, algorithm=scheduler.notation,
                )
                met.inc("sched_decisions", 1.0, device=dn)
                if t_setup > 0.0:
                    obs.span(
                        _sp.SPAN_SETUP, _sp.CAT_SCHED, devid, dn,
                        t + t_sched, acquire_end,
                    )
                if pad_in > 0.0:
                    obs.span(
                        _sp.SPAN_RETRY, _sp.CAT_FAULT, devid, dn,
                        in_start, in_start + pad_in,
                        stage="in", retries=retries_in, chunk=ck,
                    )
                if pad_out > 0.0:
                    obs.span(
                        _sp.SPAN_RETRY, _sp.CAT_FAULT, devid, dn,
                        out_start, out_start + pad_out,
                        stage="out", retries=retries_out, chunk=ck,
                    )
                if retried:
                    met.inc("transfer_retries", retried, device=dn)
                if in_ok:
                    if t_in > 0.0:
                        obs.span(
                            _sp.SPAN_XFER_IN, _sp.CAT_STAGE, devid, dn,
                            in_end - t_in, in_end,
                            bytes=bytes_in, chunk=ck,
                        )
                    if t_comp > 0.0:
                        obs.span(
                            _sp.SPAN_COMPUTE, _sp.CAT_STAGE, devid, dn,
                            comp_start, comp_end,
                            iters=len(chunk), chunk=ck,
                        )
                if ok and t_out > 0.0:
                    obs.span(
                        _sp.SPAN_XFER_OUT, _sp.CAT_STAGE, devid, dn,
                        out_end - t_out, out_end,
                        bytes=cost.xfer_out_bytes, chunk=ck,
                    )

            if self.record_events:
                self._events.append(
                    ChunkEvent(
                        devid=devid,
                        device_name=st.device.name,
                        chunk=chunk,
                        acquire_t=t,
                        in_start=in_start,
                        in_end=in_end,
                        comp_start=comp_start,
                        comp_end=comp_end,
                        out_start=out_start,
                        out_end=out_end,
                        status="ok" if ok else "failed",
                        retries=retried,
                    )
                )

            if not ok:
                # Transfer retries exhausted: the chunk is lost (its outputs
                # never returned), the device stays alive unless its fault
                # streak quarantines it.
                tr.faults += 1
                if in_ok:  # copy-in and compute did happen
                    tr.xfer_in_s += t_in
                    tr.compute_s += t_comp
                add_orphan(chunk, out_end)
                if health.record_failure(devid):
                    mark_lost(
                        st,
                        out_end,
                        FaultKind.QUARANTINE,
                        chunk=chunk,
                        detail=(
                            f"{health.consecutive_faults(devid)} consecutive "
                            "chunk faults"
                        ),
                    )
                else:
                    # Pipeline state is torn down; resume serially.
                    heapq.heappush(heap, (out_end, devid))
                continue

            covered += len(chunk)
            if self.collect_chunks:
                self._chunk_log.append((devid, chunk))
            tr.xfer_in_s += t_in
            tr.xfer_out_s += t_out
            tr.compute_s += t_comp
            tr.chunks += 1
            tr.iters += len(chunk)
            if traced:
                dn = st.device.name
                obs.instant(
                    _sp.MARK_CHUNK, _sp.CAT_MARK, devid, dn, out_end,
                    iters=len(chunk), chunk=(chunk.start, chunk.stop),
                    retries=retried,
                )
                met.inc("chunks_issued", 1.0, device=dn)
                met.inc("iterations", len(chunk), device=dn)
                met.observe(
                    "chunk_iters", len(chunk), device=dn,
                    buckets=_CHUNK_SIZE_BUCKETS,
                )
            if plan_active:
                health.record_success(devid)

            if self.execute_numerically:
                partial = kernel.execute_chunk(
                    chunk, shared=st.device.shares_host_memory
                )
                if kernel.is_reduction:
                    reduction = kernel.combine(reduction, partial)

            scheduler.observe(devid, chunk, t_in + t_comp + t_out)

            if st.device.shares_host_memory:
                # The host proxy is the compute resource: strictly serial.
                next_req = comp_end
            elif self.double_buffer:
                # Double buffering: next request once this chunk's input is
                # staged and at most one chunk is queued behind the running
                # one.
                next_req = max(in_end, comp_prev_end)
            else:
                # Ablation: single-buffered proxy drains the whole pipeline
                # before asking for more work.
                next_req = out_end
            heapq.heappush(heap, (next_req, devid))

        if covered != kernel.n_iters:
            lost = [s.device.name for s in states if s.lost]
            if plan_active and lost:
                raise FaultError(
                    f"{scheduler.notation} covered {covered} of "
                    f"{kernel.n_iters} iterations; devices lost: "
                    f"{', '.join(lost)}; {len(orphans)} orphaned chunks "
                    "were never adopted"
                )
            raise OffloadError(
                f"{scheduler.notation} covered {covered} of {kernel.n_iters} "
                "iterations"
            )

        participating = [s for s in states if s.trace.participated]
        total = max((s.finish for s in participating), default=0.0)
        for s in participating:
            # Closing barrier: everyone alive waits for the slowest device
            # (lost devices never rejoin).
            if not s.lost:
                if traced and total > s.finish:
                    obs.span(
                        _sp.SPAN_BARRIER, _sp.CAT_STAGE, s.device.devid,
                        s.device.name, s.finish, total,
                    )
                s.trace.barrier_s += total - s.finish
            s.trace.finish_s = s.finish

        if traced:
            for s in participating:
                obs.instant(
                    _sp.MARK_FINISH, _sp.CAT_MARK, s.device.devid,
                    s.device.name, s.finish,
                )
            for f in self._faults:
                obs.instant(
                    f"fault:{f.kind.value}", _sp.CAT_FAULT, f.devid,
                    f.device_name, f.t,
                    stage=f.stage, detail=f.detail,
                    chunk=(
                        (f.chunk.start, f.chunk.stop)
                        if f.chunk is not None else None
                    ),
                )
                met.inc(
                    "fault_events", 1.0,
                    kind=f.kind.value, device=f.device_name,
                )
                if f.kind is FaultKind.QUARANTINE:
                    met.inc("quarantines", 1.0, device=f.device_name)
            obs.span(
                _sp.SPAN_OFFLOAD, _sp.CAT_OFFLOAD, -1, "", 0.0, total,
                kernel=kernel.name, algorithm=scheduler.describe(),
                machine=self.machine.name, seed=self.seed,
            )
            obs.meta.update(
                kernel=kernel.name,
                algorithm=scheduler.describe(),
                machine=self.machine.name,
                seed=self.seed,
            )

        meta: dict = {"seed": self.seed, "machine": self.machine.name}
        if plan_active:
            meta["faults"] = {
                "plan": plan.describe(),
                "events": len(self._faults),
                "retries": sum(
                    1 for f in self._faults if f.kind is FaultKind.RETRY
                ),
                "lost": sorted(s.device.name for s in states if s.lost),
                "quarantined": sorted(
                    states[d].device.name for d in health.quarantined
                ),
            }
        return OffloadResult(
            kernel_name=kernel.name,
            algorithm=scheduler.describe(),
            total_time_s=total,
            traces=[s.trace for s in states],
            reduction=reduction if kernel.is_reduction else None,
            meta=meta,
        )

    @property
    def chunk_log(self) -> list[tuple[int, IterRange]]:
        """(devid, chunk) assignments of the last run (collect_chunks=True)."""
        return list(self._chunk_log)

    @property
    def timeline(self) -> Timeline:
        """Chunk-event timeline of the last run (record_events=True)."""
        return Timeline(events=list(self._events), faults=list(self._faults))

    @property
    def faults(self) -> list[ChunkFault]:
        """Fault occurrences of the last run (empty for fault-free runs)."""
        return list(self._faults)
