"""Deterministic discrete-event execution of one offloaded loop.

Each device is the paper's Fig. 4 proxy thread, modelled as three pipeline
engines in virtual time:

* a copy-in engine (host -> device DMA),
* a compute engine,
* a copy-out engine (device -> host DMA),

A proxy acquires a chunk (paying the scheduler's compare-and-swap
overhead), stages its aligned input over the link, computes, and returns
the output.  Discrete-memory devices are double-buffered: the proxy may
request its next chunk as soon as the current chunk's copy-in finished and
at most one chunk is queued behind the running one — that is how dynamic
chunking overlaps data movement with computation (the effect the paper
credits for SCHED_DYNAMIC's wins on data-intensive kernels).  Host devices
run their chunks serially (the proxy *is* the compute resource).

Chunk acquisition across devices is linearised by a priority queue on
virtual request time (:class:`~repro.engine.core.VirtualClock`),
reproducing the ordering a real CAS-based shared cursor produces, but
deterministically.  The kernel is executed numerically for every chunk
(through the DeviceBuffer path), so the simulated timeline and the real
numeric result come from the same chunk stream.

This module is the **virtual-time backend** of the shared execution core
(:mod:`repro.engine.core`): the chunk lifecycle — fault draws, bounded
retries, orphan reassignment, quarantine, trace buckets, observability
spans, coverage/reduction accounting — lives in
:class:`~repro.engine.core.RunContext`; this file only resolves *when*
each pipeline stage happens (contention on PCIe groups, the serialised
dispatch resource, unified-memory migration, double buffering) and walks
the event heap.  When a :class:`~repro.faults.plan.FaultPlan` is attached,
slowdowns scale stage durations, transfer errors cost bounded retries with
backoff (in virtual time), and dropouts remove a device permanently; a
chunk counts as covered — and is executed numerically — only if its whole
pipeline succeeds, so the numeric result of a survivable faulted run
matches the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.core import (
    ChunkPhase,
    EngineBase,
    RunContext,
    VirtualClock,
    register_backend,
)
from repro.engine.trace import OffloadResult
from repro.faults.events import FaultKind
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec, MemoryKind
from repro.memory.residency import RegionResidency
from repro.memory.unified import UnifiedMemoryModel
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.sched.base import BARRIER, LoopScheduler

__all__ = ["OffloadEngine"]


@dataclass
class OffloadEngine(EngineBase):
    """Runs one kernel offload under one scheduling algorithm."""

    #: Registry name of this backend (virtual-time discrete-event).
    backend_name = "virtual"

    machine: MachineSpec
    seed: int = 0
    execute_numerically: bool = True
    collect_chunks: bool = False
    record_events: bool = False
    #: Without the paper's `parallel target` composite (§III.4), offloading
    #: to the target devices is serialised: one host thread stages every
    #: device's input in turn.  True = one shared dispatch resource.
    serialize_offload: bool = False
    #: Ablation switch: with double buffering off, a proxy only requests
    #: its next chunk after the current one fully drains (copy-out done),
    #: removing all transfer/compute overlap within a device.
    double_buffer: bool = True
    #: Cost model for devices with UNIFIED memory (paper §V.C): shared
    #: semantics, but pages migrate over the bus at driver speed.
    unified_model: UnifiedMemoryModel = field(default_factory=UnifiedMemoryModel)
    #: Faults to inject (None or an empty plan = fault-free run; the
    #: REPRO_FAULTS env switch can disable any plan globally).
    fault_plan: FaultPlan | None = None
    #: Retry/quarantine behaviour under the fault plan.
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Observability sink (:mod:`repro.obs`).  The default null tracer is
    #: permanently disabled; the hot loop reads its ``enabled`` flag once
    #: per run, so untraced offloads pay no per-chunk cost.  ``REPRO_OBS``
    #: can kill even an attached tracer (see ``resolve_tracer``).
    tracer: Tracer | NullTracer = NULL_TRACER
    #: Residency view of an enclosing target-data region (None outside one).
    #: When set, per-chunk transfer bytes are the *delta* between what the
    #: chunk touches and what the placement already made resident.
    residency: "RegionResidency | None" = None
    #: Cross-batch pipeline carry for stream execution (devid ->
    #: :class:`~repro.engine.core.DeviceCarry`).  None = cold start; set
    #: by the stream runner between batches so batch k+1's copy-in can
    #: overlap batch k's still-running compute.
    carry_in: "dict | None" = None

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        core = RunContext(
            machine=self.machine,
            kernel=kernel,
            scheduler=scheduler,
            cutoff_ratio=cutoff_ratio,
            seed=self.seed,
            execute_numerically=self.execute_numerically,
            collect_chunks=self.collect_chunks,
            record_events=self.record_events,
            fault_plan=self.fault_plan,
            resilience=self.resilience,
            tracer=self.tracer,
            residency=self.residency,
            base_meta={"seed": self.seed, "machine": self.machine.name},
            carry_in=self.carry_in,
        )
        self._begin_run(core)
        try:
            return self._event_loop(core)
        finally:
            self._end_run()

    def _event_loop(self, core: RunContext) -> OffloadResult:
        """Virtual-time event scheduling: the backend-specific part."""
        kernel = core.kernel
        scheduler = core.scheduler
        states = core.states
        plan = core.plan
        plan_active = core.plan_active
        unified_model = self.unified_model
        serialize_offload = self.serialize_offload
        double_buffer = self.double_buffer

        dispatch_free = 0.0  # shared host dispatcher (serialize_offload)
        # Devices sharing a PCIe slot contend for one bus resource.
        group_free: dict[str, float] = {}

        carry = core.carry_in
        if carry:
            # Stream batch with a warm pipeline: each surviving device
            # wakes at its carried next-request time instead of 0.0, so
            # this batch's copy-ins queue behind (and overlap with) the
            # previous batch's still-draining stages.
            clock = VirtualClock()
            for s in states:
                if s.done:
                    continue
                c = carry.get(s.device.devid)
                clock.push(c.ready if c is not None else 0.0, s.device.devid)
        else:
            clock = VirtualClock([s.device.devid for s in states])

        def wake(st, t: float) -> None:
            clock.push(max(t, st.finish), st.device.devid)

        def release_barrier() -> None:
            core.release_barrier(
                lambda st, t_rel: clock.push(t_rel, st.device.devid)
            )

        def maybe_release_barrier() -> None:
            if core.barrier_ready():
                release_barrier()

        core.wake = wake
        core.maybe_release_barrier = maybe_release_barrier

        while clock.pending:
            t, devid = clock.pop()
            st = states[devid]
            if st.done:
                continue
            drop_t = plan.dropout_t(devid) if plan_active else None
            if drop_t is not None and t >= drop_t:
                core.mark_lost(
                    st, drop_t, FaultKind.DROPOUT, detail="lost while idle"
                )
                continue
            decision = scheduler.next(devid)

            if decision is None and core.orphans:
                # Scheduler is drained but lost work remains: adopt it.
                decision = core.orphans.popleft()

            if decision is None:
                st.done = True
                st.drain_t = t  # when the next batch may first request
                # If everyone else is parked at the barrier, release them.
                maybe_release_barrier()
                continue

            if decision is BARRIER:
                st.at_barrier = max(t, st.finish)
                maybe_release_barrier()
                continue

            tm = core.begin_chunk(devid, decision, t)
            chunk = tm.chunk

            spec = st.device.spec
            cost = kernel.chunk_cost(chunk)
            core.chunk_bytes(st, tm, cost)
            tm.t_setup = spec.setup_overhead_s if st.first_chunk else 0.0
            st.first_chunk = False

            tm.t_sched = spec.sched_overhead_s
            acquire_end = t + tm.t_sched + tm.t_setup
            if spec.memory is MemoryKind.UNIFIED:
                # Unified memory: no explicit copies in the program, but
                # the pages still cross the bus — at driver-migration
                # speed (the 10-18x of paper section V.C).
                t_in = unified_model.migration_time(spec.link, tm.bytes_in)
                t_out = unified_model.migration_time(spec.link, tm.bytes_out)
            else:
                t_in = st.device.transfer_time(tm.bytes_in)
                t_out = st.device.transfer_time(tm.bytes_out)
            t_comp = st.device.compute_time(cost.flops, cost.mem_bytes)

            group = spec.pcie_group
            in_start = max(acquire_end, st.copy_in_free)
            if serialize_offload:
                in_start = max(in_start, dispatch_free)
            if group is not None:
                in_start = max(in_start, group_free.get(group, 0.0))
            if plan_active:
                t_in *= plan.slowdown_factor(devid, in_start)
            tm.advance(ChunkPhase.XFER_IN)
            tm.pad_in, tm.retries_in, tm.in_ok = core.transfer_attempts(
                st, chunk, "in", t_in, in_start
            )
            in_end = (
                in_start + tm.pad_in + t_in if tm.in_ok
                else in_start + tm.pad_in
            )
            if serialize_offload:
                dispatch_free = in_end
            if group is not None and in_end > in_start:
                group_free[group] = in_end
            comp_prev_end = st.comp_free
            if tm.in_ok:
                tm.advance(ChunkPhase.COMPUTE)
                comp_start = max(in_end, st.comp_free)
                if plan_active:
                    t_comp *= plan.slowdown_factor(devid, comp_start)
                comp_end = comp_start + t_comp
                tm.advance(ChunkPhase.XFER_OUT)
                out_start = max(comp_end, st.copy_out_free)
                if group is not None:
                    out_start = max(out_start, group_free.get(group, 0.0))
                if plan_active:
                    t_out *= plan.slowdown_factor(devid, out_start)
                tm.pad_out, tm.retries_out, tm.out_ok = core.transfer_attempts(
                    st, chunk, "out", t_out, out_start
                )
                out_end = (
                    out_start + tm.pad_out + t_out if tm.out_ok
                    else out_start + tm.pad_out
                )
                if group is not None and out_end > out_start:
                    group_free[group] = out_end
            else:
                # Copy-in never succeeded: compute and copy-out don't run.
                comp_start = comp_end = in_end
                out_start = out_end = in_end
                tm.pad_out, tm.retries_out, tm.out_ok = 0.0, 0, True

            tm.t_in, tm.t_comp, tm.t_out = t_in, t_comp, t_out
            tm.in_start, tm.in_end = in_start, in_end
            tm.comp_start, tm.comp_end = comp_start, comp_end
            tm.out_start, tm.out_end = out_start, out_end
            tm.dropped = (
                drop_t is not None and out_end > drop_t
            )  # the device dies before this chunk's outputs return

            if tm.dropped:
                core.drop_chunk(st, tm, drop_t)
                continue

            st.copy_in_free = in_end
            st.comp_free = comp_end
            st.copy_out_free = out_end
            st.finish = max(st.finish, out_end)

            core.account_chunk(st, tm)

            if not tm.ok:
                # Transfer retries exhausted: the chunk is lost (its outputs
                # never returned), the device stays alive unless its fault
                # streak quarantines it; pipeline state is torn down, so a
                # surviving device resumes serially.
                if not core.fail_chunk(st, tm):
                    clock.push(out_end, devid)
                continue

            core.commit_chunk(st, tm, t_in + t_comp + t_out)

            if st.device.shares_host_memory:
                # The host proxy is the compute resource: strictly serial.
                next_req = comp_end
            elif double_buffer:
                # Double buffering: next request once this chunk's input is
                # staged and at most one chunk is queued behind the running
                # one.
                next_req = max(in_end, comp_prev_end)
            else:
                # Ablation: single-buffered proxy drains the whole pipeline
                # before asking for more work.
                next_req = out_end
            clock.push(next_req, devid)

        return core.finalize()


register_backend(
    "virtual", OffloadEngine, aliases=("simulated", "simulator", "sim")
)
