"""Deterministic discrete-event execution of one offloaded loop.

Each device is the paper's Fig. 4 proxy thread, modelled as three pipeline
engines in virtual time:

* a copy-in engine (host -> device DMA),
* a compute engine,
* a copy-out engine (device -> host DMA),

A proxy acquires a chunk (paying the scheduler's compare-and-swap
overhead), stages its aligned input over the link, computes, and returns
the output.  Discrete-memory devices are double-buffered: the proxy may
request its next chunk as soon as the current chunk's copy-in finished and
at most one chunk is queued behind the running one — that is how dynamic
chunking overlaps data movement with computation (the effect the paper
credits for SCHED_DYNAMIC's wins on data-intensive kernels).  Host devices
run their chunks serially (the proxy *is* the compute resource).

Chunk acquisition across devices is linearised by a priority queue on
virtual request time, reproducing the ordering a real CAS-based shared
cursor produces, but deterministically.  The kernel is executed
numerically for every chunk (through the DeviceBuffer path), so the
simulated timeline and the real numeric result come from the same chunk
stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.engine.events import ChunkEvent, Timeline
from repro.engine.trace import DeviceTrace, OffloadResult
from repro.errors import OffloadError
from repro.kernels.base import LoopKernel
from repro.machine.device import Device
from repro.machine.spec import MachineSpec, MemoryKind
from repro.memory.unified import UnifiedMemoryModel
from repro.sched.base import BARRIER, LoopScheduler, SchedContext
from repro.util.ranges import IterRange

__all__ = ["OffloadEngine"]


@dataclass
class _DevState:
    device: Device
    trace: DeviceTrace
    copy_in_free: float = 0.0
    comp_free: float = 0.0
    copy_out_free: float = 0.0
    finish: float = 0.0
    first_chunk: bool = True
    done: bool = False
    at_barrier: float | None = None


@dataclass
class OffloadEngine:
    """Runs one kernel offload under one scheduling algorithm."""

    machine: MachineSpec
    seed: int = 0
    execute_numerically: bool = True
    collect_chunks: bool = False
    record_events: bool = False
    #: Without the paper's `parallel target` composite (§III.4), offloading
    #: to the target devices is serialised: one host thread stages every
    #: device's input in turn.  True = one shared dispatch resource.
    serialize_offload: bool = False
    #: Ablation switch: with double buffering off, a proxy only requests
    #: its next chunk after the current one fully drains (copy-out done),
    #: removing all transfer/compute overlap within a device.
    double_buffer: bool = True
    #: Cost model for devices with UNIFIED memory (paper §V.C): shared
    #: semantics, but pages migrate over the bus at driver speed.
    unified_model: UnifiedMemoryModel = field(default_factory=UnifiedMemoryModel)
    _chunk_log: list[tuple[int, IterRange]] = field(default_factory=list)
    _events: list[ChunkEvent] = field(default_factory=list)

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        devices = [Device(i, spec) for i, spec in enumerate(self.machine.devices)]
        for dev in devices:
            dev.reseed(self.seed)
        ctx = SchedContext(
            kernel=kernel, devices=devices, cutoff_ratio=cutoff_ratio
        )
        scheduler.start(ctx)
        self._chunk_log.clear()
        self._events.clear()

        states = [
            _DevState(device=d, trace=DeviceTrace(devid=d.devid, name=d.name))
            for d in devices
        ]
        reduction = kernel.identity()
        covered = 0
        dispatch_free = 0.0  # shared host dispatcher (serialize_offload)
        # Devices sharing a PCIe slot contend for one bus resource.
        group_free: dict[str, float] = {}

        # (request_time, devid): pop the earliest requester; devid breaks ties
        # deterministically.
        heap: list[tuple[float, int]] = [(0.0, d.devid) for d in devices]
        heapq.heapify(heap)

        def active_ids() -> list[int]:
            return [s.device.devid for s in states if not s.done]

        def release_barrier() -> None:
            waiting = [s for s in states if s.at_barrier is not None]
            t_rel = max(s.at_barrier for s in waiting)  # type: ignore[type-var]
            for s in waiting:
                s.trace.barrier_s += t_rel - s.at_barrier  # type: ignore[operator]
                s.at_barrier = None
                heapq.heappush(heap, (t_rel, s.device.devid))
            scheduler.at_barrier()

        while heap:
            t, devid = heapq.heappop(heap)
            st = states[devid]
            if st.done:
                continue
            decision = scheduler.next(devid)

            if decision is None:
                st.done = True
                # If everyone else is parked at the barrier, release them.
                pending = [s for s in states if not s.done and s.at_barrier is None]
                waiting = [s for s in states if s.at_barrier is not None]
                if not pending and waiting:
                    release_barrier()
                continue

            if decision is BARRIER:
                st.at_barrier = max(t, st.finish)
                pending = [
                    s for s in states if not s.done and s.at_barrier is None
                ]
                if not pending:
                    release_barrier()
                continue

            chunk: IterRange = decision  # type: ignore[assignment]
            if chunk.empty:
                raise OffloadError(
                    f"{scheduler.notation} handed an empty chunk to device {devid}"
                )
            covered += len(chunk)
            if self.collect_chunks:
                self._chunk_log.append((devid, chunk))

            spec = st.device.spec
            cost = kernel.chunk_cost(chunk)
            bytes_in = cost.xfer_in_bytes + (
                cost.replicated_in_bytes if st.first_chunk else 0.0
            )
            t_setup = spec.setup_overhead_s if st.first_chunk else 0.0
            st.first_chunk = False

            t_sched = spec.sched_overhead_s
            acquire_end = t + t_sched + t_setup
            if spec.memory is MemoryKind.UNIFIED:
                # Unified memory: no explicit copies in the program, but
                # the pages still cross the bus — at driver-migration
                # speed (the 10-18x of paper section V.C).
                t_in = self.unified_model.migration_time(spec.link, bytes_in)
                t_out = self.unified_model.migration_time(
                    spec.link, cost.xfer_out_bytes
                )
            else:
                t_in = st.device.transfer_time(bytes_in)
                t_out = st.device.transfer_time(cost.xfer_out_bytes)
            t_comp = st.device.compute_time(cost.flops, cost.mem_bytes)

            group = spec.pcie_group
            in_start = max(acquire_end, st.copy_in_free)
            if self.serialize_offload:
                in_start = max(in_start, dispatch_free)
            if group is not None:
                in_start = max(in_start, group_free.get(group, 0.0))
            in_end = in_start + t_in
            if self.serialize_offload:
                dispatch_free = in_end
            if group is not None and t_in > 0:
                group_free[group] = in_end
            comp_prev_end = st.comp_free
            comp_start = max(in_end, st.comp_free)
            comp_end = comp_start + t_comp
            out_start = max(comp_end, st.copy_out_free)
            if group is not None:
                out_start = max(out_start, group_free.get(group, 0.0))
            out_end = out_start + t_out
            if group is not None and t_out > 0:
                group_free[group] = out_end

            st.copy_in_free = in_end
            st.comp_free = comp_end
            st.copy_out_free = out_end
            st.finish = max(st.finish, out_end)

            if self.record_events:
                self._events.append(
                    ChunkEvent(
                        devid=devid,
                        device_name=st.device.name,
                        chunk=chunk,
                        acquire_t=t,
                        in_start=in_start,
                        in_end=in_end,
                        comp_start=comp_start,
                        comp_end=comp_end,
                        out_start=out_start,
                        out_end=out_end,
                    )
                )

            tr = st.trace
            tr.setup_s += t_setup
            tr.sched_s += t_sched
            tr.xfer_in_s += t_in
            tr.xfer_out_s += t_out
            tr.compute_s += t_comp
            tr.chunks += 1
            tr.iters += len(chunk)

            if self.execute_numerically:
                partial = kernel.execute_chunk(
                    chunk, shared=st.device.shares_host_memory
                )
                if kernel.is_reduction:
                    reduction = kernel.combine(reduction, partial)

            scheduler.observe(devid, chunk, t_in + t_comp + t_out)

            if st.device.shares_host_memory:
                # The host proxy is the compute resource: strictly serial.
                next_req = comp_end
            elif self.double_buffer:
                # Double buffering: next request once this chunk's input is
                # staged and at most one chunk is queued behind the running
                # one.
                next_req = max(in_end, comp_prev_end)
            else:
                # Ablation: single-buffered proxy drains the whole pipeline
                # before asking for more work.
                next_req = out_end
            heapq.heappush(heap, (next_req, devid))

        if covered != kernel.n_iters:
            raise OffloadError(
                f"{scheduler.notation} covered {covered} of {kernel.n_iters} "
                "iterations"
            )

        participating = [s for s in states if s.trace.participated]
        total = max((s.finish for s in participating), default=0.0)
        for s in participating:
            # Closing barrier: everyone waits for the slowest device.
            s.trace.barrier_s += total - s.finish
            s.trace.finish_s = s.finish

        return OffloadResult(
            kernel_name=kernel.name,
            algorithm=scheduler.describe(),
            total_time_s=total,
            traces=[s.trace for s in states],
            reduction=reduction if kernel.is_reduction else None,
            meta={"seed": self.seed, "machine": self.machine.name},
        )

    @property
    def chunk_log(self) -> list[tuple[int, IterRange]]:
        """(devid, chunk) assignments of the last run (collect_chunks=True)."""
        return list(self._chunk_log)

    @property
    def timeline(self) -> Timeline:
        """Chunk-event timeline of the last run (record_events=True)."""
        return Timeline(events=list(self._events))
