"""Per-device execution traces and the offload result.

Fig. 6 of the paper breaks each device's offloading time into operations
(data movement, compute, scheduling, barrier waits) and overlays the
incurred load imbalance.  :class:`DeviceTrace` accumulates those buckets
as the simulator charges costs; :class:`OffloadResult` derives the
figure's percentages and the imbalance metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import seconds_to_ms

__all__ = ["DeviceTrace", "OffloadResult"]


@dataclass
class DeviceTrace:
    """Accumulated time buckets for one device across one offload."""

    devid: int
    name: str
    setup_s: float = 0.0  # one-off device setup (buffer alloc, stream init)
    sched_s: float = 0.0
    xfer_in_s: float = 0.0
    xfer_out_s: float = 0.0
    compute_s: float = 0.0
    barrier_s: float = 0.0
    chunks: int = 0
    iters: int = 0
    finish_s: float = 0.0  # when this device's pipeline drained
    retry_s: float = 0.0   # virtual time lost to transfer retries/backoff
    retries: int = 0       # transfer retries survived
    faults: int = 0        # chunk-level faults (exhausted retries, dropout)
    lost_at: float | None = None  # dropout/quarantine time, None if healthy

    @property
    def participated(self) -> bool:
        return self.chunks > 0

    @property
    def lost(self) -> bool:
        return self.lost_at is not None

    @property
    def data_movement_s(self) -> float:
        return self.xfer_in_s + self.xfer_out_s

    @property
    def busy_s(self) -> float:
        return (
            self.setup_s + self.sched_s + self.data_movement_s
            + self.compute_s + self.retry_s
        )

    def breakdown_pct(self) -> dict[str, float]:
        """Share of each bucket in this device's total offload time."""
        total = self.busy_s + self.barrier_s
        if total <= 0:
            return {"sched": 0.0, "data": 0.0, "compute": 0.0, "barrier": 0.0}
        return {
            "sched": 100.0 * (self.sched_s + self.setup_s) / total,
            "data": 100.0 * (self.data_movement_s + self.retry_s) / total,
            "compute": 100.0 * self.compute_s / total,
            "barrier": 100.0 * self.barrier_s / total,
        }


@dataclass
class OffloadResult:
    """Outcome of one offloaded parallel loop."""

    kernel_name: str
    algorithm: str
    total_time_s: float
    traces: list[DeviceTrace]
    reduction: float | None = None
    meta: dict = field(default_factory=dict)

    @property
    def total_time_ms(self) -> float:
        return seconds_to_ms(self.total_time_s)

    @property
    def participating(self) -> list[DeviceTrace]:
        return [t for t in self.traces if t.participated]

    @property
    def devices_used(self) -> int:
        return len(self.participating)

    def imbalance_pct(self) -> float:
        """Average idle share over participating devices (the Fig. 6 curve).

        A device finishing at ``finish_s`` while the offload lasts
        ``total_time_s`` idled for the difference; imbalance is the mean of
        that idle fraction.  0% = perfectly balanced.
        """
        parts = self.participating
        if not parts or self.total_time_s <= 0:
            return 0.0
        idle = [
            max(0.0, self.total_time_s - t.finish_s) / self.total_time_s
            for t in parts
        ]
        return 100.0 * sum(idle) / len(idle)

    def breakdown_pct(self) -> dict[str, float]:
        """Average Fig.-6-style breakdown over participating devices.

        This is the *unweighted* per-device mean of each device's
        percentage breakdown, matching Fig. 6's "accumulated breakdown"
        presentation: every participating device contributes equally,
        regardless of how long it ran.  It is **not** time-weighted — a
        device that finished in 1 ms at 90% compute pulls the average as
        hard as one that ran 100 ms at 10% compute.  Sum the raw
        ``DeviceTrace`` buckets first for a time-weighted view (see the
        pinned two-device asymmetric case in ``tests/engine/test_trace``).
        """
        parts = self.participating
        if not parts:
            return {"sched": 0.0, "data": 0.0, "compute": 0.0, "barrier": 0.0}
        keys = ("sched", "data", "compute", "barrier")
        acc = {k: 0.0 for k in keys}
        for t in parts:
            for k, v in t.breakdown_pct().items():
                acc[k] += v
        return {k: v / len(parts) for k, v in acc.items()}

    def iterations_per_device(self) -> dict[str, int]:
        return {t.name: t.iters for t in self.traces}
