"""Per-chunk event records: the simulator's observable timeline.

When the engine runs with ``record_events=True`` it emits one
:class:`ChunkEvent` per executed chunk with the exact virtual-time spans
of its pipeline stages (acquisition, copy-in, compute, copy-out).  This is
what the overlap tests assert on and what the timeline renderer draws —
the paper's Fig. 4 stages, made visible.

Under an active fault plan (:mod:`repro.faults`) the timeline also carries
:class:`~repro.faults.events.ChunkFault` records, and chunk events that
did not complete are marked by ``status`` (``"failed"`` — transfer retries
exhausted; ``"dropped"`` — the device died mid-chunk) with their spans
clipped to the time the device actually spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.events import ChunkFault, FaultKind
from repro.util.ranges import IterRange

__all__ = ["ChunkEvent", "Timeline", "render_timeline"]


@dataclass(frozen=True)
class ChunkEvent:
    """One chunk's journey through a device's pipeline (times in seconds)."""

    devid: int
    device_name: str
    chunk: IterRange
    acquire_t: float       # when the proxy popped the shared cursor
    in_start: float
    in_end: float
    comp_start: float
    comp_end: float
    out_start: float
    out_end: float
    status: str = "ok"     # "ok" | "failed" (retries exhausted) | "dropped"
    retries: int = 0       # transfer retries survived by this chunk

    @property
    def completed(self) -> bool:
        return self.status == "ok"

    @property
    def spans(self) -> dict[str, tuple[float, float]]:
        return {
            "in": (self.in_start, self.in_end),
            "comp": (self.comp_start, self.comp_end),
            "out": (self.out_start, self.out_end),
        }

    def overlaps_compute_of(self, other: "ChunkEvent") -> bool:
        """Does this chunk's copy-in overlap the other's compute span?"""
        return self.in_start < other.comp_end and other.comp_start < self.in_end


@dataclass
class Timeline:
    """All chunk events of one offload, ordered by acquisition time."""

    events: list[ChunkEvent]
    faults: list[ChunkFault] = field(default_factory=list)

    def for_device(self, devid: int) -> list[ChunkEvent]:
        return [e for e in self.events if e.devid == devid]

    def faults_for_device(self, devid: int) -> list[ChunkFault]:
        return [f for f in self.faults if f.devid == devid]

    def makespan(self) -> float:
        return max((e.out_end for e in self.events), default=0.0)

    def device_overlap_fraction(self, devid: int) -> float:
        """Fraction of a device's transfer time hidden under its compute."""
        evs = self.for_device(devid)
        total_xfer = sum((e.in_end - e.in_start) + (e.out_end - e.out_start) for e in evs)
        if total_xfer == 0.0:
            return 0.0
        comp_spans = [(e.comp_start, e.comp_end) for e in evs]
        hidden = 0.0
        for e in evs:
            for a, b in ((e.in_start, e.in_end), (e.out_start, e.out_end)):
                for c0, c1 in comp_spans:
                    lo, hi = max(a, c0), min(b, c1)
                    if hi > lo:
                        hidden += hi - lo
        return min(1.0, hidden / total_xfer)


#: One-character lane marks for fault kinds (render_timeline's legend).
_FAULT_MARKS = {
    FaultKind.RETRY: "r",
    FaultKind.TRANSFER_FAIL: "x",
    FaultKind.DROPOUT: "D",
    FaultKind.QUARANTINE: "Q",
}


def render_timeline(timeline: Timeline, *, width: int = 72) -> str:
    """ASCII Gantt chart: one row per device per pipeline stage.

    ``i``/``c``/``o`` mark copy-in, compute and copy-out activity; seeing
    ``i`` columns under ``c`` columns of the same device *is* the
    transfer/compute overlap the paper credits SCHED_DYNAMIC with.

    When the timeline carries fault records, each affected device gains a
    fourth ``flt`` lane marking where its faults fired: ``r`` retry,
    ``x`` transfer failure (retries exhausted), ``D`` dropout,
    ``Q`` quarantine.
    """
    if not timeline.events:
        return "(empty timeline)"
    span = timeline.makespan()
    if span <= 0:
        return "(zero-length timeline)"
    scale = width / span
    devids = sorted(
        {e.devid for e in timeline.events} | {f.devid for f in timeline.faults}
    )
    lines = [f"timeline: {span * 1e3:.3f} ms total, {width} cols"]
    names = {e.devid: e.device_name for e in timeline.events}
    names.update({f.devid: f.device_name for f in timeline.faults})
    for d in devids:
        evs = timeline.for_device(d)
        name = names[d]
        rows = {"in": [" "] * width, "comp": [" "] * width, "out": [" "] * width}
        marks = {"in": "i", "comp": "c", "out": "o"}
        for e in evs:
            for stage, (a, b) in e.spans.items():
                if b <= a:
                    continue
                lo = min(width - 1, int(a * scale))
                hi = min(width, max(lo + 1, int(b * scale)))
                for x in range(lo, hi):
                    rows[stage][x] = marks[stage]
        lines.append(f"{name:>10s} in   |{''.join(rows['in'])}|")
        lines.append(f"{'':>10s} comp |{''.join(rows['comp'])}|")
        lines.append(f"{'':>10s} out  |{''.join(rows['out'])}|")
        dev_faults = timeline.faults_for_device(d)
        if dev_faults:
            lane = [" "] * width
            for f in dev_faults:
                x = min(width - 1, int(f.t * scale))
                mark = _FAULT_MARKS[f.kind]
                # Terminal faults (D/Q) outrank retries sharing a column.
                if lane[x] == " " or mark in ("D", "Q"):
                    lane[x] = mark
            lines.append(f"{'':>10s} flt  |{''.join(lane)}|")
    if timeline.faults:
        lines.append(
            f"faults: {len(timeline.faults)} "
            "(r=retry x=transfer-fail D=dropout Q=quarantine)"
        )
    return "\n".join(lines)
