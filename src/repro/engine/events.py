"""Per-chunk event records: the simulator's observable timeline.

When the engine runs with ``record_events=True`` it emits one
:class:`ChunkEvent` per executed chunk with the exact virtual-time spans
of its pipeline stages (acquisition, copy-in, compute, copy-out).  This is
what the overlap tests assert on and what the timeline renderer draws —
the paper's Fig. 4 stages, made visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.ranges import IterRange

__all__ = ["ChunkEvent", "Timeline", "render_timeline"]


@dataclass(frozen=True)
class ChunkEvent:
    """One chunk's journey through a device's pipeline (times in seconds)."""

    devid: int
    device_name: str
    chunk: IterRange
    acquire_t: float       # when the proxy popped the shared cursor
    in_start: float
    in_end: float
    comp_start: float
    comp_end: float
    out_start: float
    out_end: float

    @property
    def spans(self) -> dict[str, tuple[float, float]]:
        return {
            "in": (self.in_start, self.in_end),
            "comp": (self.comp_start, self.comp_end),
            "out": (self.out_start, self.out_end),
        }

    def overlaps_compute_of(self, other: "ChunkEvent") -> bool:
        """Does this chunk's copy-in overlap the other's compute span?"""
        return self.in_start < other.comp_end and other.comp_start < self.in_end


@dataclass
class Timeline:
    """All chunk events of one offload, ordered by acquisition time."""

    events: list[ChunkEvent]

    def for_device(self, devid: int) -> list[ChunkEvent]:
        return [e for e in self.events if e.devid == devid]

    def makespan(self) -> float:
        return max((e.out_end for e in self.events), default=0.0)

    def device_overlap_fraction(self, devid: int) -> float:
        """Fraction of a device's transfer time hidden under its compute."""
        evs = self.for_device(devid)
        total_xfer = sum((e.in_end - e.in_start) + (e.out_end - e.out_start) for e in evs)
        if total_xfer == 0.0:
            return 0.0
        comp_spans = [(e.comp_start, e.comp_end) for e in evs]
        hidden = 0.0
        for e in evs:
            for a, b in ((e.in_start, e.in_end), (e.out_start, e.out_end)):
                for c0, c1 in comp_spans:
                    lo, hi = max(a, c0), min(b, c1)
                    if hi > lo:
                        hidden += hi - lo
        return min(1.0, hidden / total_xfer)


def render_timeline(timeline: Timeline, *, width: int = 72) -> str:
    """ASCII Gantt chart: one row per device per pipeline stage.

    ``i``/``c``/``o`` mark copy-in, compute and copy-out activity; seeing
    ``i`` columns under ``c`` columns of the same device *is* the
    transfer/compute overlap the paper credits SCHED_DYNAMIC with.
    """
    if not timeline.events:
        return "(empty timeline)"
    span = timeline.makespan()
    if span <= 0:
        return "(zero-length timeline)"
    scale = width / span
    devids = sorted({e.devid for e in timeline.events})
    lines = [f"timeline: {span * 1e3:.3f} ms total, {width} cols"]
    for d in devids:
        evs = timeline.for_device(d)
        name = evs[0].device_name
        rows = {"in": [" "] * width, "comp": [" "] * width, "out": [" "] * width}
        marks = {"in": "i", "comp": "c", "out": "o"}
        for e in evs:
            for stage, (a, b) in e.spans.items():
                lo = min(width - 1, int(a * scale))
                hi = min(width, max(lo + 1, int(b * scale)))
                for x in range(lo, hi):
                    rows[stage][x] = marks[stage]
        lines.append(f"{name:>10s} in   |{''.join(rows['in'])}|")
        lines.append(f"{'':>10s} comp |{''.join(rows['comp'])}|")
        lines.append(f"{'':>10s} out  |{''.join(rows['out'])}|")
    return "\n".join(lines)
