"""Shared offload execution core: one chunk-lifecycle state machine.

Every executor — the virtual-time simulator (:mod:`repro.engine.simulator`)
and the wall-clock thread pool (:mod:`repro.engine.threaded`) — drives the
same per-chunk lifecycle::

    request -> sched-decision -> xfer_in -> compute -> xfer_out -> observe
                     |               |                     |
                  barrier          retry ... retry       retry
                     |               |                     |
                   (wait)         requeue  ------------ requeue
                                     |                     |
                                 quarantine ---------- quarantine

:class:`RunContext` owns everything that is *not* time: fault-plan draws
and the bounded retry loop, orphan-chunk reassignment through the
scheduler's ``requeue``/``device_lost`` hooks, quarantine via
:class:`~repro.faults.policy.HealthTracker`, the
:class:`~repro.engine.trace.DeviceTrace` bucket accounting, observability
span/metric emission at each transition, coverage and reduction tracking,
and the final :class:`~repro.engine.trace.OffloadResult` assembly.  A
backend contributes only the *scheduling of events in time*: the simulator
resolves the pipeline analytically on a virtual event heap
(:class:`VirtualClock`); the threaded executor lets real threads race and
reads a :class:`WallClock`.

Backends register themselves in a process-wide registry
(:func:`register_backend`) and are selected by name through
``HompRuntime.parallel_for(executor=...)`` or ``repro.bench``.

Determinism contract: for the virtual-time backend, routing the lifecycle
through this module is **bit-identical** to the pre-core engine — the
transition helpers replay the exact arithmetic, accumulation order and
event-emission order of the original monolithic loop (pinned by
``tests/engine/test_bit_identity.py`` and the CI smoke fixture).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields
from enum import Enum
from typing import Any, Callable, ClassVar, Protocol, runtime_checkable

from repro.engine.events import ChunkEvent, Timeline
from repro.engine.trace import DeviceTrace, OffloadResult
from repro.errors import EngineBusyError, FaultError, OffloadError
from repro.faults.events import ChunkFault, FaultKind
from repro.faults.plan import FaultPlan, faults_enabled
from repro.faults.policy import HealthTracker, ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.device import Device
from repro.machine.spec import MachineSpec
from repro.obs import span as _sp
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS as _CHUNK_SIZE_BUCKETS
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, resolve_tracer
from repro.sched.base import LoopScheduler, SchedContext
from repro.util.ranges import IterRange, split_block

__all__ = [
    "CORE_VERSION",
    "STREAM_VERSION",
    "ChunkPhase",
    "LIFECYCLE",
    "StageTiming",
    "DeviceState",
    "DeviceCarry",
    "RunContext",
    "EngineBase",
    "Clock",
    "VirtualClock",
    "WallClock",
    "ExecutionBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "make_backend",
]

#: Version of the execution core.  Part of the sweep-cache fingerprint:
#: bump on any change that could perturb virtual-time results.
CORE_VERSION = "1"

#: Version of the streaming execution path (cross-batch carry, the
#: stream-pipeline IR pass, STREAM_REBALANCE).  Part of the sweep-cache
#: fingerprint: bump on any change that could perturb stream results.
STREAM_VERSION = "1"


# ---------------------------------------------------------------------------
# Chunk lifecycle state machine
# ---------------------------------------------------------------------------

class ChunkPhase(Enum):
    """Phases a chunk passes through inside one offload."""

    REQUEST = "request"
    SCHED = "sched-decision"
    XFER_IN = "xfer_in"
    COMPUTE = "compute"
    XFER_OUT = "xfer_out"
    OBSERVE = "observe"
    DONE = "done"
    RETRY = "retry"
    REQUEUE = "requeue"
    QUARANTINE = "quarantine"
    LOST = "lost"


#: Legal transitions.  ``RETRY`` loops on the transfer stages; a chunk whose
#: retries are exhausted (or whose device died mid-flight) leaves through
#: ``REQUEUE``/``LOST`` and is re-served to the survivors; ``QUARANTINE``
#: additionally removes the device.
LIFECYCLE: dict[ChunkPhase, frozenset[ChunkPhase]] = {
    ChunkPhase.REQUEST: frozenset({ChunkPhase.SCHED, ChunkPhase.LOST}),
    ChunkPhase.SCHED: frozenset({ChunkPhase.XFER_IN, ChunkPhase.LOST}),
    ChunkPhase.XFER_IN: frozenset({
        ChunkPhase.RETRY, ChunkPhase.COMPUTE, ChunkPhase.REQUEUE,
        ChunkPhase.LOST,
    }),
    ChunkPhase.RETRY: frozenset({
        ChunkPhase.XFER_IN, ChunkPhase.XFER_OUT, ChunkPhase.COMPUTE,
        ChunkPhase.OBSERVE, ChunkPhase.REQUEUE, ChunkPhase.LOST,
    }),
    ChunkPhase.COMPUTE: frozenset({ChunkPhase.XFER_OUT, ChunkPhase.LOST}),
    ChunkPhase.XFER_OUT: frozenset({
        ChunkPhase.RETRY, ChunkPhase.OBSERVE, ChunkPhase.REQUEUE,
        ChunkPhase.LOST,
    }),
    ChunkPhase.OBSERVE: frozenset({ChunkPhase.DONE}),
    ChunkPhase.REQUEUE: frozenset({ChunkPhase.QUARANTINE, ChunkPhase.REQUEST}),
    ChunkPhase.QUARANTINE: frozenset(),
    ChunkPhase.LOST: frozenset(),
    ChunkPhase.DONE: frozenset(),
}


@dataclass
class StageTiming:
    """Resolved timeline of one chunk's trip through the pipeline.

    A backend fills the timestamps in its own notion of time (virtual or
    wall seconds since offload start); the core charges trace buckets and
    emits spans from them.  ``phase`` tracks the lifecycle position and is
    validated against :data:`LIFECYCLE` on every transition.
    """

    chunk: IterRange
    acquire_t: float = 0.0
    t_sched: float = 0.0
    t_setup: float = 0.0
    t_in: float = 0.0
    t_comp: float = 0.0
    t_out: float = 0.0
    pad_in: float = 0.0
    pad_out: float = 0.0
    retries_in: int = 0
    retries_out: int = 0
    in_ok: bool = True
    out_ok: bool = True
    in_start: float = 0.0
    in_end: float = 0.0
    comp_start: float = 0.0
    comp_end: float = 0.0
    out_start: float = 0.0
    out_end: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    #: Bytes a residency view proved already on-device (zero without one).
    elided_in: float = 0.0
    elided_out: float = 0.0
    dropped: bool = False
    phase: ChunkPhase = ChunkPhase.REQUEST

    @property
    def retried(self) -> int:
        return self.retries_in + self.retries_out

    @property
    def ok(self) -> bool:
        return self.in_ok and self.out_ok and not self.dropped

    def advance(self, to: ChunkPhase) -> None:
        """Move to ``to``, enforcing the lifecycle transition table."""
        if to not in LIFECYCLE[self.phase]:
            raise OffloadError(
                f"illegal chunk lifecycle transition "
                f"{self.phase.value} -> {to.value} for chunk {self.chunk}"
            )
        self.phase = to


@dataclass
class DeviceState:
    """Mutable per-device execution state shared by all backends."""

    device: Device
    trace: DeviceTrace
    copy_in_free: float = 0.0
    comp_free: float = 0.0
    copy_out_free: float = 0.0
    finish: float = 0.0
    first_chunk: bool = True
    done: bool = False
    at_barrier: float | None = None
    lost: bool = False  # permanently dead (dropout or quarantine)
    #: Virtual time at which the device drained (would have requested its
    #: next chunk); the cross-batch carry's per-device ready time.
    drain_t: float = 0.0


@dataclass(frozen=True)
class DeviceCarry:
    """Per-device pipeline state threaded from one stream batch to the next.

    A stream batch does not start from a cold pipeline: batch ``k+1``'s
    copy-in may begin while batch ``k``'s compute is still running on the
    same device.  The carry records where each of the device's three
    pipeline engines frees (in cumulative stream time), when the device
    may request its first chunk of the next batch (``ready`` — the
    request it would have made had more work existed), whether it has
    already paid its one-time setup overhead (``first_chunk``), and
    whether it is permanently gone (``lost``: dropout/quarantine persists
    for the rest of the stream).
    """

    copy_in_free: float = 0.0
    comp_free: float = 0.0
    copy_out_free: float = 0.0
    finish: float = 0.0
    ready: float = 0.0
    first_chunk: bool = True
    lost: bool = False


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------

@runtime_checkable
class Clock(Protocol):
    """Minimal time source a backend exposes to shared code."""

    def now(self) -> float:
        """Current offload time in seconds (virtual or wall)."""
        ...  # pragma: no cover - protocol


class VirtualClock:
    """Event-heap clock for the discrete-event backend.

    Time is whatever the most recently popped event says it is; devices
    are linearised by a priority queue on ``(request_time, devid)``,
    reproducing the ordering a CAS-based shared cursor produces, but
    deterministically.
    """

    __slots__ = ("_heap", "_now")

    def __init__(self, devids: list[int] | None = None):
        import heapq

        self._heap: list[tuple[float, int]] = [
            (0.0, devid) for devid in (devids or [])
        ]
        heapq.heapify(self._heap)
        self._now = 0.0

    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> bool:
        return bool(self._heap)

    def push(self, t: float, devid: int) -> None:
        import heapq

        heapq.heappush(self._heap, (t, devid))

    def pop(self) -> tuple[float, int]:
        import heapq

        t, devid = heapq.heappop(self._heap)
        self._now = t
        return t, devid


class WallClock:
    """Wall-clock time source, as seconds since the offload started."""

    __slots__ = ("_t0",)

    def __init__(self):
        import time

        self._t0 = time.perf_counter()

    def now(self) -> float:
        import time

        return time.perf_counter() - self._t0


# ---------------------------------------------------------------------------
# The shared run context
# ---------------------------------------------------------------------------

class RunContext:
    """All mutable state of one offload run, plus the transition helpers.

    One instance is created per ``run()`` call and discarded with it, so a
    mid-run exception cannot leak state into the next run and two engines
    (or two runs racing on one engine — rejected anyway, see
    :class:`EngineBase`) never share accounting.
    """

    def __init__(
        self,
        *,
        machine: MachineSpec,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        cutoff_ratio: float = 0.0,
        seed: int = 0,
        execute_numerically: bool = True,
        collect_chunks: bool = False,
        record_events: bool = False,
        fault_plan: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
        tracer: Tracer | NullTracer | None = NULL_TRACER,
        residency=None,
        base_meta: dict | None = None,
        obs_meta_extra: dict | None = None,
        carry_in: "dict[int, DeviceCarry] | None" = None,
    ):
        self.machine = machine
        self.kernel = kernel
        self.scheduler = scheduler
        self.seed = seed
        self.execute_numerically = execute_numerically
        self.collect_chunks = collect_chunks
        self.record_events = record_events

        self.devices = [Device(i, spec) for i, spec in enumerate(machine.devices)]
        for dev in self.devices:
            dev.reseed(seed)
        self.obs = resolve_tracer(tracer)
        #: one attribute check; hot paths branch on this local-able flag
        self.traced = self.obs.enabled
        self.met = self.obs.metrics if self.traced else None
        #: RegionResidency view of the enclosing target-data region, or
        #: None.  With None the transfer arithmetic below is bit-identical
        #: to the pre-ledger engine (the bit-identity contract); with a
        #: view, chunks charge only the delta against what is resident.
        self.residency = residency
        self.bytes_moved = 0.0
        self.bytes_elided = 0.0
        self.sched_ctx = SchedContext(
            kernel=kernel, devices=self.devices, cutoff_ratio=cutoff_ratio,
            metrics=self.met, residency=residency,
        )
        scheduler.start(self.sched_ctx)

        self.plan = fault_plan
        self.plan_active = (
            fault_plan is not None and not fault_plan.empty and faults_enabled()
        )
        resilience = ResiliencePolicy() if resilience is None else resilience
        self.retry = resilience.retry
        self.health = HealthTracker(resilience.quarantine_after)
        self.xfer_attempts: dict[int, int] = {}  # per-device monotonic counters
        self.orphans: deque[IterRange] = deque()

        self.states = [
            DeviceState(device=d, trace=DeviceTrace(devid=d.devid, name=d.name))
            for d in self.devices
        ]
        #: Cross-batch pipeline carry (streams only; None = cold start,
        #: which leaves every code path bit-identical to the one-shot run).
        self.carry_in = carry_in
        self.reduction = kernel.identity()
        self.covered = 0
        self.chunk_log: list[tuple[int, IterRange]] = []
        self.events: list[ChunkEvent] = []
        self.faults: list[ChunkFault] = []

        self.base_meta = dict(base_meta or {})
        self.obs_meta_extra = dict(obs_meta_extra or {})

        # Backend hooks, installed before the event loop starts:
        #: revive an idle (drained) device because new work appeared.
        self.wake: Callable[[DeviceState, float], None] = lambda st, t: None
        #: re-check the barrier (a device just drained or died).
        self.maybe_release_barrier: Callable[[], None] = lambda: None

        if carry_in:
            for devid, carry in carry_in.items():
                st = self.states[devid]
                st.copy_in_free = carry.copy_in_free
                st.comp_free = carry.comp_free
                st.copy_out_free = carry.copy_out_free
                st.finish = carry.finish
                st.first_chunk = carry.first_chunk
                if carry.lost:
                    st.lost = True
                    st.done = True
            for devid, carry in carry_in.items():
                if not carry.lost:
                    continue
                # The device died in an earlier batch; surrender whatever
                # share this batch's scheduler reserved for it.
                for reserved in scheduler.device_lost(devid):
                    self.add_orphan(reserved, carry.finish)

    # -- lifecycle entry -----------------------------------------------------

    def begin_chunk(self, devid: int, chunk: IterRange, t: float) -> StageTiming:
        """``request -> sched-decision``: a device acquired a chunk."""
        if chunk.empty:
            raise OffloadError(
                f"{self.scheduler.notation} handed an empty chunk to "
                f"device {devid}"
            )
        tm = StageTiming(chunk=chunk, acquire_t=t)
        tm.advance(ChunkPhase.SCHED)
        return tm

    def chunk_bytes(self, st: DeviceState, tm: StageTiming, cost) -> None:
        """Fill ``tm.bytes_in``/``bytes_out`` (and elisions) for one chunk.

        Without a residency view this replays the pre-ledger arithmetic
        exactly (flat per-chunk transfer bytes plus the FULL-map replica
        on a device's first chunk) — the bit-identity contract.  With a
        view, the bytes are the delta between what the chunk touches and
        what the ledger says is already on the device; elided bytes are
        recorded on the timing for span/metric emission.  Does not clear
        ``st.first_chunk`` — backends do, after charging setup overhead.
        """
        res = self.residency
        if res is None:
            tm.bytes_in = cost.xfer_in_bytes + (
                cost.replicated_in_bytes if st.first_chunk else 0.0
            )
            tm.bytes_out = cost.xfer_out_bytes
            return
        tm.bytes_in, tm.bytes_out, tm.elided_in, tm.elided_out = (
            res.charge_chunk(
                st.device.devid, self.kernel, tm.chunk,
                first_chunk=st.first_chunk,
            )
        )

    # -- fault machinery (identical draws and emission order to pre-core) ----

    def emit_fault(
        self,
        kind: FaultKind,
        st: DeviceState,
        t_f: float,
        *,
        chunk: IterRange | None = None,
        stage: str = "",
        detail: str = "",
    ) -> None:
        self.faults.append(
            ChunkFault(
                kind=kind,
                devid=st.device.devid,
                device_name=st.device.name,
                t=t_f,
                chunk=chunk,
                stage=stage,
                detail=detail,
            )
        )

    def add_orphan(self, chunk: IterRange, t_now: float) -> None:
        """Reassign a lost chunk to the survivors and wake idle ones."""
        alive = [s for s in self.states if not s.lost]
        if not alive:
            self.orphans.append(chunk)  # unrecoverable; reported at the end
            return
        if not self.scheduler.requeue(chunk):
            self.orphans.extend(
                p for p in split_block(chunk, len(alive)) if not p.empty
            )
        for s in alive:
            if s.done:  # drained earlier; there is work again
                s.done = False
                self.wake(s, t_now)

    def mark_lost(
        self,
        st: DeviceState,
        t_lost: float,
        kind: FaultKind,
        *,
        chunk: IterRange | None = None,
        detail: str = "",
    ) -> None:
        """``-> lost``/``-> quarantine``: the device leaves permanently."""
        st.lost = True
        st.done = True
        st.trace.lost_at = t_lost
        if self.residency is not None:
            # Dropout loses the device's buffer contents: reassigned
            # chunks must re-pay their transfers on the survivors.
            lost_rows = self.residency.device_lost(st.device.devid)
            if self.traced and lost_rows:
                self.met.inc(
                    "residency_rows_invalidated", lost_rows,
                    device=st.device.name,
                )
        self.emit_fault(kind, st, t_lost, chunk=chunk, detail=detail)
        for reserved in self.scheduler.device_lost(st.device.devid):
            self.add_orphan(reserved, t_lost)
        # The dead device can no longer hold up a barrier.
        self.maybe_release_barrier()

    def transfer_attempts(
        self,
        st: DeviceState,
        chunk: IterRange,
        direction: str,
        t_x: float,
        start_t: float,
        *,
        sleep: Callable[[float], None] | None = None,
    ) -> tuple[float, int, bool]:
        """Outcome of one (possibly retried) transfer.

        Returns ``(pad_s, retried, ok)``: time wasted on failed attempts
        and backoffs, the number of retried attempts, and whether a
        transfer eventually went through.  Draws come from the plan's
        counter-based hash keyed on a per-device monotonic attempt
        counter, so a re-served chunk faces fresh draws.  In virtual time
        the pad is pure arithmetic; a wall-clock backend passes ``sleep``
        to realise each failed attempt and backoff as real waiting.
        """
        if not self.plan_active or t_x <= 0.0:
            return 0.0, 0, True
        plan = self.plan
        retry = self.retry
        devid = st.device.devid
        pad = 0.0
        fails = 0
        while True:
            n = self.xfer_attempts.get(devid, 0)
            self.xfer_attempts[devid] = n + 1
            if not plan.transfer_fails(devid, n, direction):
                return pad, fails, True
            pad += t_x  # the failed attempt still occupied the link
            if sleep is not None:
                sleep(t_x)
            fails += 1
            if fails > retry.max_retries:
                self.emit_fault(
                    FaultKind.TRANSFER_FAIL,
                    st,
                    start_t + pad,
                    chunk=chunk,
                    stage=direction,
                    detail=f"gave up after {fails} attempts",
                )
                return pad, fails - 1, False
            self.emit_fault(
                FaultKind.RETRY,
                st,
                start_t + pad,
                chunk=chunk,
                stage=direction,
                detail=f"attempt {fails} failed",
            )
            backoff = retry.backoff(fails - 1)
            pad += backoff
            if sleep is not None:
                sleep(backoff)

    # -- barriers ------------------------------------------------------------

    def barrier_ready(self) -> bool:
        """All devices that can still work are parked at the barrier."""
        pending = [s for s in self.states if not s.done and s.at_barrier is None]
        waiting = [s for s in self.states if s.at_barrier is not None]
        return not pending and bool(waiting)

    def release_barrier(
        self, wake: Callable[[DeviceState, float], None]
    ) -> float:
        """Charge barrier waits, release every parked device via ``wake``.

        Returns the release time (the slowest arrival).
        """
        waiting = [s for s in self.states if s.at_barrier is not None]
        t_rel = max(s.at_barrier for s in waiting)  # type: ignore[type-var]
        for s in waiting:
            if self.traced and t_rel > s.at_barrier:  # type: ignore[operator]
                self.obs.span(
                    _sp.SPAN_BARRIER, _sp.CAT_STAGE, s.device.devid,
                    s.device.name, s.at_barrier, t_rel,
                )
            s.trace.barrier_s += t_rel - s.at_barrier  # type: ignore[operator]
            s.at_barrier = None
            wake(s, t_rel)
        self.scheduler.at_barrier()
        return t_rel

    # -- per-chunk transition accounting --------------------------------------

    def note_decision(self, st: DeviceState, t0: float, t1: float) -> None:
        """Record a scheduling decision that yielded no chunk (barrier or
        drain); chunk-bearing decisions are charged in :meth:`account_chunk`.
        """
        if self.traced:
            dn = st.device.name
            self.obs.span(
                _sp.SPAN_SCHED, _sp.CAT_SCHED, st.device.devid, dn, t0, t1,
            )
            self.met.observe(
                "sched_decision_s", t1 - t0,
                device=dn, algorithm=self.scheduler.notation,
            )
            self.met.inc("sched_decisions", 1.0, device=dn)

    def drop_chunk(self, st: DeviceState, tm: StageTiming, drop_t: float) -> None:
        """``-> lost``: the device died before this chunk's outputs returned."""
        tm.advance(ChunkPhase.LOST)
        st.trace.faults += 1
        if self.record_events:
            self.events.append(
                ChunkEvent(
                    devid=st.device.devid,
                    device_name=st.device.name,
                    chunk=tm.chunk,
                    acquire_t=tm.acquire_t,
                    in_start=min(tm.in_start, drop_t),
                    in_end=min(tm.in_end, drop_t),
                    comp_start=min(tm.comp_start, drop_t),
                    comp_end=min(tm.comp_end, drop_t),
                    out_start=min(tm.out_start, drop_t),
                    out_end=min(tm.out_end, drop_t),
                    status="dropped",
                    retries=tm.retried,
                )
            )
        self.mark_lost(
            st,
            drop_t,
            FaultKind.DROPOUT,
            chunk=tm.chunk,
            detail="chunk in flight was lost",
        )
        self.add_orphan(tm.chunk, drop_t)

    def account_chunk(self, st: DeviceState, tm: StageTiming) -> None:
        """Charge the overhead buckets and emit this chunk's stage spans.

        Runs for every chunk that finished its pipeline (successfully or
        with exhausted retries) — the bucket/ span structure mirrors
        exactly what the pre-core engine charged, which the obs
        equivalence tests pin against the legacy traces.
        """
        tr = st.trace
        tr.setup_s += tm.t_setup
        tr.sched_s += tm.t_sched
        tr.retry_s += tm.pad_in + tm.pad_out
        tr.retries += tm.retried
        moved = (tm.bytes_in if tm.in_ok else 0.0) + (
            tm.bytes_out if tm.ok else 0.0
        )
        elided = tm.elided_in + tm.elided_out
        self.bytes_moved += moved
        self.bytes_elided += elided

        if self.traced:
            obs = self.obs
            met = self.met
            devid = st.device.devid
            dn = st.device.name
            chunk = tm.chunk
            ck = (chunk.start, chunk.stop)
            obs.span(
                _sp.SPAN_SCHED, _sp.CAT_SCHED, devid, dn,
                tm.acquire_t, tm.acquire_t + tm.t_sched, chunk=ck,
            )
            met.observe(
                "sched_decision_s", tm.t_sched,
                device=dn, algorithm=self.scheduler.notation,
            )
            met.inc("sched_decisions", 1.0, device=dn)
            if tm.t_setup > 0.0:
                obs.span(
                    _sp.SPAN_SETUP, _sp.CAT_SCHED, devid, dn,
                    tm.acquire_t + tm.t_sched,
                    tm.acquire_t + tm.t_sched + tm.t_setup,
                )
            if tm.pad_in > 0.0:
                obs.span(
                    _sp.SPAN_RETRY, _sp.CAT_FAULT, devid, dn,
                    tm.in_start, tm.in_start + tm.pad_in,
                    stage="in", retries=tm.retries_in, chunk=ck,
                )
            if tm.pad_out > 0.0:
                obs.span(
                    _sp.SPAN_RETRY, _sp.CAT_FAULT, devid, dn,
                    tm.out_start, tm.out_start + tm.pad_out,
                    stage="out", retries=tm.retries_out, chunk=ck,
                )
            if tm.retried:
                met.inc("transfer_retries", tm.retried, device=dn)
            if tm.in_ok:
                if tm.t_in > 0.0:
                    if tm.elided_in > 0.0:
                        obs.span(
                            _sp.SPAN_XFER_IN, _sp.CAT_STAGE, devid, dn,
                            tm.in_end - tm.t_in, tm.in_end,
                            bytes=tm.bytes_in, elided=tm.elided_in, chunk=ck,
                        )
                    else:
                        obs.span(
                            _sp.SPAN_XFER_IN, _sp.CAT_STAGE, devid, dn,
                            tm.in_end - tm.t_in, tm.in_end,
                            bytes=tm.bytes_in, chunk=ck,
                        )
                if tm.t_comp > 0.0:
                    obs.span(
                        _sp.SPAN_COMPUTE, _sp.CAT_STAGE, devid, dn,
                        tm.comp_start, tm.comp_end,
                        iters=len(chunk), chunk=ck,
                    )
            if tm.ok and tm.t_out > 0.0:
                if tm.elided_out > 0.0:
                    obs.span(
                        _sp.SPAN_XFER_OUT, _sp.CAT_STAGE, devid, dn,
                        tm.out_end - tm.t_out, tm.out_end,
                        bytes=tm.bytes_out, elided=tm.elided_out, chunk=ck,
                    )
                else:
                    obs.span(
                        _sp.SPAN_XFER_OUT, _sp.CAT_STAGE, devid, dn,
                        tm.out_end - tm.t_out, tm.out_end,
                        bytes=tm.bytes_out, chunk=ck,
                    )
            met.inc("bytes_moved", moved, device=dn)
            if elided > 0.0:
                met.inc("bytes_elided", elided, device=dn)

        if self.record_events:
            self.events.append(
                ChunkEvent(
                    devid=st.device.devid,
                    device_name=st.device.name,
                    chunk=tm.chunk,
                    acquire_t=tm.acquire_t,
                    in_start=tm.in_start,
                    in_end=tm.in_end,
                    comp_start=tm.comp_start,
                    comp_end=tm.comp_end,
                    out_start=tm.out_start,
                    out_end=tm.out_end,
                    status="ok" if tm.ok else "failed",
                    retries=tm.retried,
                )
            )

    def fail_chunk(self, st: DeviceState, tm: StageTiming) -> bool:
        """``-> requeue`` (and maybe ``-> quarantine``) after exhausted
        retries: the chunk's outputs never returned, the chunk is handed
        back for reassignment, and the device's health streak is charged.

        Returns True when this fault quarantined the device (the caller
        must not schedule it again).
        """
        tm.advance(ChunkPhase.REQUEUE)
        tr = st.trace
        tr.faults += 1
        if tm.in_ok:  # copy-in and compute did happen
            tr.xfer_in_s += tm.t_in
            tr.compute_s += tm.t_comp
        if self.residency is not None:
            # The charge marked rows valid, but the chunk's pipeline never
            # completed (its outputs never returned): conservatively drop
            # those marks so later reads re-pay instead of under-charging.
            self.residency.forget_chunk(st.device.devid, self.kernel, tm.chunk)
        self.add_orphan(tm.chunk, tm.out_end)
        if self.health.record_failure(st.device.devid):
            tm.advance(ChunkPhase.QUARANTINE)
            self.mark_lost(
                st,
                tm.out_end,
                FaultKind.QUARANTINE,
                chunk=tm.chunk,
                detail=(
                    f"{self.health.consecutive_faults(st.device.devid)} "
                    "consecutive chunk faults"
                ),
            )
            return True
        tm.advance(ChunkPhase.REQUEST)  # pipeline torn down; resume serially
        return False

    #: Sentinel: commit_chunk should execute the kernel itself.
    _EXECUTE: ClassVar[object] = object()

    def commit_chunk(
        self,
        st: DeviceState,
        tm: StageTiming,
        observe_elapsed: float,
        *,
        partial: Any = _EXECUTE,
    ) -> None:
        """``xfer_out -> observe -> done``: the chunk completed.

        Charges the stage buckets, counts coverage, executes the kernel
        numerically (exactly once per covered chunk) and feeds the
        scheduler's ``observe`` hook with ``observe_elapsed``.  A backend
        that must execute outside the core's call (the threaded backend
        computes without holding its lock) passes the already-computed
        ``partial`` instead; the reduction combine still happens here, in
        commit order.
        """
        tm.advance(ChunkPhase.OBSERVE)
        chunk = tm.chunk
        devid = st.device.devid
        self.covered += len(chunk)
        if self.collect_chunks:
            self.chunk_log.append((devid, chunk))
        tr = st.trace
        tr.xfer_in_s += tm.t_in
        tr.xfer_out_s += tm.t_out
        tr.compute_s += tm.t_comp
        tr.chunks += 1
        tr.iters += len(chunk)
        if self.traced:
            dn = st.device.name
            self.obs.instant(
                _sp.MARK_CHUNK, _sp.CAT_MARK, devid, dn, tm.out_end,
                iters=len(chunk), chunk=(chunk.start, chunk.stop),
                retries=tm.retried,
            )
            self.met.inc("chunks_issued", 1.0, device=dn)
            self.met.inc("iterations", len(chunk), device=dn)
            self.met.observe(
                "chunk_iters", len(chunk), device=dn,
                buckets=_CHUNK_SIZE_BUCKETS,
            )
        if self.plan_active:
            self.health.record_success(devid)

        if partial is RunContext._EXECUTE:
            partial = (
                self.kernel.execute_chunk(
                    chunk, shared=st.device.shares_host_memory
                )
                if self.execute_numerically else None
            )
        if self.kernel.is_reduction and partial is not None:
            self.reduction = self.kernel.combine(self.reduction, partial)

        self.scheduler.observe(devid, chunk, observe_elapsed)
        tm.advance(ChunkPhase.DONE)

    # -- finalisation ---------------------------------------------------------

    def finalize(self, total: float | None = None) -> OffloadResult:
        """Coverage check, closing barrier, obs flush, result assembly.

        ``total`` is the offload's end time; None (the virtual backend)
        derives it from the slowest participating device.
        """
        kernel = self.kernel
        scheduler = self.scheduler
        states = self.states
        if self.covered != kernel.n_iters:
            lost = [s.device.name for s in states if s.lost]
            if self.plan_active and lost:
                raise FaultError(
                    f"{scheduler.notation} covered {self.covered} of "
                    f"{kernel.n_iters} iterations; devices lost: "
                    f"{', '.join(lost)}; {len(self.orphans)} orphaned chunks "
                    "were never adopted"
                )
            raise OffloadError(
                f"{scheduler.notation} covered {self.covered} of "
                f"{kernel.n_iters} iterations"
            )

        participating = [s for s in states if s.trace.participated]
        if total is None:
            total = max((s.finish for s in participating), default=0.0)
        for s in participating:
            # Closing barrier: everyone alive waits for the slowest device
            # (lost devices never rejoin).
            if not s.lost:
                if self.traced and total > s.finish:
                    self.obs.span(
                        _sp.SPAN_BARRIER, _sp.CAT_STAGE, s.device.devid,
                        s.device.name, s.finish, total,
                    )
                s.trace.barrier_s += total - s.finish
            s.trace.finish_s = s.finish

        if self.traced:
            obs = self.obs
            met = self.met
            for s in participating:
                obs.instant(
                    _sp.MARK_FINISH, _sp.CAT_MARK, s.device.devid,
                    s.device.name, s.finish,
                )
            for f in self.faults:
                obs.instant(
                    f"fault:{f.kind.value}", _sp.CAT_FAULT, f.devid,
                    f.device_name, f.t,
                    stage=f.stage, detail=f.detail,
                    chunk=(
                        (f.chunk.start, f.chunk.stop)
                        if f.chunk is not None else None
                    ),
                )
                met.inc(
                    "fault_events", 1.0,
                    kind=f.kind.value, device=f.device_name,
                )
                if f.kind is FaultKind.QUARANTINE:
                    met.inc("quarantines", 1.0, device=f.device_name)
            obs.span(
                _sp.SPAN_OFFLOAD, _sp.CAT_OFFLOAD, -1, "", 0.0, total,
                kernel=kernel.name, algorithm=scheduler.describe(),
                machine=self.machine.name, seed=self.seed,
            )
            obs.meta.update(
                kernel=kernel.name,
                algorithm=scheduler.describe(),
                machine=self.machine.name,
                seed=self.seed,
            )
            if self.obs_meta_extra:
                obs.meta.update(**self.obs_meta_extra)

        meta: dict = dict(self.base_meta)
        if self.residency is not None:
            # Only region-scoped runs carry this key: no-region results
            # stay pickle-identical to the pre-ledger engine.
            meta["residency"] = {
                "bytes_moved": self.bytes_moved,
                "bytes_elided": self.bytes_elided,
            }
        if self.plan_active:
            meta["faults"] = {
                "plan": self.plan.describe(),
                "events": len(self.faults),
                "retries": sum(
                    1 for f in self.faults if f.kind is FaultKind.RETRY
                ),
                "lost": sorted(s.device.name for s in states if s.lost),
                "quarantined": sorted(
                    states[d].device.name for d in self.health.quarantined
                ),
            }
        return OffloadResult(
            kernel_name=kernel.name,
            algorithm=scheduler.describe(),
            total_time_s=total,
            traces=[s.trace for s in states],
            reduction=self.reduction if kernel.is_reduction else None,
            meta=meta,
        )

    def carry_out(self) -> "dict[int, DeviceCarry]":
        """Per-device pipeline state to seed the next stream batch with.

        Meaningful after :meth:`finalize`: each device's engine-free
        times, its natural next-request time (``drain_t``, recorded by
        the backend when the device drained) and its lost flag, all in
        cumulative stream time.
        """
        return {
            st.device.devid: DeviceCarry(
                copy_in_free=st.copy_in_free,
                comp_free=st.comp_free,
                copy_out_free=st.copy_out_free,
                finish=st.finish,
                ready=st.drain_t,
                first_chunk=st.first_chunk,
                lost=st.lost,
            )
            for st in self.states
        }

    @property
    def timeline(self) -> Timeline:
        return Timeline(events=list(self.events), faults=list(self.faults))


# ---------------------------------------------------------------------------
# Engine base: run-slot guard and last-run introspection
# ---------------------------------------------------------------------------

class EngineBase:
    """Re-entrancy guard plus last-run introspection for engine objects.

    Engine instances are reusable but not concurrently so: each ``run()``
    builds a fresh :class:`RunContext`, and a second ``run()`` entered
    while one is still in flight raises :class:`~repro.errors.EngineBusyError`
    instead of silently corrupting shared accounting.
    """

    # Deliberately *not* annotated: subclasses are dataclasses, and an
    # annotated class attribute here would become their first field.
    _run_ctx = None

    @property
    def busy(self) -> bool:
        """Whether a ``run()`` is currently in flight on this engine."""
        lock = self.__dict__.get("_run_gate")
        return lock is not None and lock.locked()

    @contextmanager
    def configured(self, **options: Any):
        """Temporarily override engine fields for one leased run.

        The pool-safety hook behind engine reuse (:mod:`repro.service`):
        a pooled engine is built once with its base configuration, and the
        exclusive lease holder overrides per-job knobs (seed, fault plan,
        tracer, ...) for the duration of the ``with`` block; every
        override is restored on exit, success or raise.  Option semantics
        mirror :func:`make_backend`: an option the backend has no field
        for is dropped when falsy and rejected when set, and ``machine``
        can never be overridden (engines are bound to one machine).

        Requires exclusive ownership — entering while a run is in flight
        raises :class:`~repro.errors.EngineBusyError` (best effort; the
        ``run()`` gate stays the authoritative guard).
        """
        if self.busy:
            raise EngineBusyError(
                f"{type(self).__name__} instance is mid-run; configure a "
                "pooled engine only while holding its exclusive lease"
            )
        names = {f.name for f in dataclass_fields(self)}
        saved: dict[str, Any] = {}
        try:
            for key, value in options.items():
                if key == "machine":
                    raise OffloadError(
                        "configured() cannot rebind an engine's machine; "
                        "pool one engine per machine instead"
                    )
                if key not in names:
                    if value:  # a meaningful option this backend lacks
                        raise OffloadError(
                            f"execution backend "
                            f"{getattr(self, 'backend_name', type(self).__name__)!r}"
                            f" does not support option {key}={value!r}"
                        )
                    continue
                saved[key] = getattr(self, key)
                setattr(self, key, value)
            yield self
        finally:
            for key, value in saved.items():
                setattr(self, key, value)

    def _begin_run(self, core: RunContext) -> None:
        lock = self.__dict__.get("_run_gate")
        if lock is None:
            # setdefault is atomic under the GIL: exactly one lock survives.
            lock = self.__dict__.setdefault("_run_gate", threading.Lock())
        if not lock.acquire(blocking=False):
            raise EngineBusyError(
                f"{type(self).__name__} instance is already running an "
                "offload; engines are reusable sequentially, not "
                "concurrently — create one engine per in-flight run"
            )
        self._run_ctx = core

    def _end_run(self) -> None:
        self.__dict__["_run_gate"].release()

    @property
    def chunk_log(self) -> list[tuple[int, IterRange]]:
        """(devid, chunk) assignments of the last run (collect_chunks=True)."""
        return list(self._run_ctx.chunk_log) if self._run_ctx else []

    @property
    def timeline(self) -> Timeline:
        """Chunk-event timeline of the last run (record_events=True)."""
        if self._run_ctx is None:
            return Timeline(events=[], faults=[])
        return self._run_ctx.timeline

    @property
    def faults(self) -> list[ChunkFault]:
        """Fault occurrences of the last run (empty for fault-free runs)."""
        return list(self._run_ctx.faults) if self._run_ctx else []


# ---------------------------------------------------------------------------
# Backend protocol and registry
# ---------------------------------------------------------------------------

@runtime_checkable
class ExecutionBackend(Protocol):
    """What an executor must look like to be driven by the runtime."""

    backend_name: ClassVar[str]
    machine: MachineSpec

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        """Execute one offloaded loop and return its result."""
        ...  # pragma: no cover - protocol


_BACKENDS: dict[str, type] = {}
_ALIASES: dict[str, str] = {}


def register_backend(name: str, cls: type, *, aliases: tuple[str, ...] = ()) -> type:
    """Register an :class:`ExecutionBackend` class under ``name``.

    Canonical names are what :func:`backend_names` lists; aliases resolve
    to them.  Re-registering a name replaces it (latest wins), so test
    doubles can shadow the real backends — and any alias previously
    pointing elsewhere under that name is dropped, so the canonical
    registration wins.  An alias that would shadow a *different* canonical
    name is rejected: silently rerouting ``"virtual"`` to another backend
    is never what a caller wants.
    """
    key = name.strip().lower()
    alias_keys = [alias.strip().lower() for alias in aliases]
    for akey in alias_keys:
        if akey in _BACKENDS and akey != key:
            raise OffloadError(
                f"backend alias {akey!r} (for {name!r}) collides with the "
                f"registered backend name {akey!r}"
            )
    _BACKENDS[key] = cls
    _ALIASES.pop(key, None)
    for akey in alias_keys:
        _ALIASES[akey] = key
    return cls


def backend_names() -> tuple[str, ...]:
    """Canonical names of all registered execution backends."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(spec: "str | type | ExecutionBackend") -> type:
    """Backend class for a registry name, alias, class, or instance."""
    if isinstance(spec, str):
        key = spec.strip().lower()
        key = _ALIASES.get(key, key)
        try:
            return _BACKENDS[key]
        except KeyError:
            aliases = ", ".join(
                f"{a}->{c}" for a, c in sorted(_ALIASES.items())
            )
            raise OffloadError(
                f"unknown execution backend {spec!r}; registered: "
                f"{', '.join(backend_names())}"
                + (f"; aliases: {aliases}" if aliases else "")
            ) from None
    if isinstance(spec, type):
        return spec
    return type(spec)


def make_backend(
    spec: "str | type", machine: MachineSpec, **options: Any
) -> "ExecutionBackend":
    """Instantiate a backend, passing only the options it understands.

    Backends are dataclasses; ``options`` the target has no field for are
    dropped when falsy and rejected when set, so a caller cannot silently
    lose a meaningful knob (e.g. ``serialize_offload`` on the threaded
    backend).
    """
    cls = resolve_backend(spec)
    names = {f.name for f in dataclass_fields(cls)}
    kwargs = {}
    for key, value in options.items():
        if key in names:
            kwargs[key] = value
        elif value:  # a meaningful option the backend cannot honour
            raise OffloadError(
                f"execution backend {getattr(cls, 'backend_name', cls.__name__)!r}"
                f" does not support option {key}={value!r}"
            )
    return cls(machine=machine, **kwargs)
