"""Offload execution engine.

The simulator (`repro.engine.simulator`) replays the paper's Fig. 4 proxy
thread per device in deterministic virtual time, with a three-stage
pipeline (copy-in / compute / copy-out engines) so multi-chunk schedulers
overlap data movement with computation like a real double-buffered
runtime.  A real-thread executor (`repro.engine.threaded`) is provided as
an extension for actually-parallel host execution.
"""

from repro.engine.trace import DeviceTrace, OffloadResult
from repro.engine.simulator import OffloadEngine
from repro.engine.events import ChunkEvent, Timeline, render_timeline

__all__ = [
    "DeviceTrace",
    "OffloadResult",
    "OffloadEngine",
    "ChunkEvent",
    "Timeline",
    "render_timeline",
]
