"""Offload execution engine.

One chunk-lifecycle state machine (`repro.engine.core`) drives every
executor: scheduling decisions, fault draws and bounded retries, orphan
reassignment, quarantine, trace buckets, observability spans, coverage
and reduction accounting all live in the shared
:class:`~repro.engine.core.RunContext`.  Backends supply only the
scheduling of events in time and register themselves by name:

* ``"virtual"`` — :class:`~repro.engine.simulator.OffloadEngine` replays
  the paper's Fig. 4 proxy thread per device in deterministic virtual
  time, with a three-stage pipeline (copy-in / compute / copy-out
  engines) so multi-chunk schedulers overlap data movement with
  computation like a real double-buffered runtime.
* ``"threaded"`` — :class:`~repro.engine.threaded.ThreadedEngine` runs
  one real host thread per device on a wall clock, with the same
  fault/resilience semantics.
* ``"batch"`` — :class:`~repro.engine.batch.BatchEngine` advances whole
  grids of cells at once as numpy array ops over a
  ``(cells x devices x chunks)`` cost tensor, bit-identical to
  ``"virtual"`` for the static scheduler families and falling back to it
  per cell for everything timing-dependent.
* ``"cluster"`` — :class:`~repro.cluster.engine.ClusterEngine` splits
  the loop across the nodes of a :class:`~repro.cluster.spec.ClusterSpec`
  and runs each shard on an intra-node ``"virtual"`` engine, charging
  cross-node staging to the inter-node fabric; a single-node cluster is
  bit-identical to ``"virtual"``.

Select a backend with ``HompRuntime.parallel_for(executor=...)`` or
build one directly via :func:`~repro.engine.core.make_backend`.
"""

from repro.engine.trace import DeviceTrace, OffloadResult
from repro.engine.core import (
    ChunkPhase,
    EngineBase,
    ExecutionBackend,
    LIFECYCLE,
    RunContext,
    StageTiming,
    backend_names,
    make_backend,
    register_backend,
    resolve_backend,
)
# Importing the backend modules registers them.
from repro.engine.simulator import OffloadEngine
from repro.engine.threaded import ThreadedEngine
from repro.engine.batch import BATCH_VERSION, BatchEngine, BatchRequest
from repro.engine.events import ChunkEvent, Timeline, render_timeline
# Last, as a plain module import: the cluster backend composes the
# intra-node engine above, and binding its class here would fail when an
# import chain *starts* from repro.cluster (the module is mid-init then).
import repro.cluster.engine  # noqa: F401  (registers the "cluster" backend)

__all__ = [
    "DeviceTrace",
    "OffloadResult",
    "ChunkPhase",
    "LIFECYCLE",
    "StageTiming",
    "RunContext",
    "EngineBase",
    "ExecutionBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "make_backend",
    "OffloadEngine",
    "ThreadedEngine",
    "BatchEngine",
    "BatchRequest",
    "BATCH_VERSION",
    "ChunkEvent",
    "Timeline",
    "render_timeline",
]
