"""Vectorized batch execution of many offload cells at once.

Every figure/table in the reproduction is a *grid* of independent
(machine, kernel, policy) cells, and the virtual-time simulator resolves
each one by walking a pure-Python event heap chunk by chunk.  For the
static scheduling families (BLOCK, MODEL_*, the PROFILE pair, HISTORY,
ALIGN) the chunk stream is *timing-oblivious*: ``next()`` depends only on
the asking device's own call history plus the barrier phase, never on the
clock.  That means a whole batch of cells can be advanced wave by wave as
numpy array ops over a ``(cells x devices x chunks)`` cost tensor:

1. **Enumerate** — each cell's schedulers are asked for their next wave of
   chunks per device (up to the next BARRIER or drain), exactly as often
   as the event loop would ask.
2. **Tensorize** — closed-form chunk costs (``LoopKernel.chunk_cost``),
   Hockney transfers, unified-memory migration and the roofline compute
   time are evaluated elementwise over the whole batch, then the per-device
   pipeline recurrence (copy-in/compute/copy-out frees, double buffering)
   is scanned along the chunk axis.
3. **Commit** — per cell, chunks are replayed through the shared
   :class:`~repro.engine.core.RunContext` helpers in exact event order
   (stable sort on ``(request_time, devid)``, the heap's ordering), so
   accounting, reduction combine order and scheduler ``observe`` feedback
   are bit-identical to the simulator's.

Because every float op replicates the simulator's operation order (same
associativity, same ``max``/``+``/``*``/``/`` sequence, numpy float64 ==
IEEE-754 double), the resulting :class:`OffloadResult` pickles are
**bit-identical** to ``virtual``'s — pinned by
``tests/engine/test_batch_differential.py`` over the full fig5/fig9 grids.

Anything timing-dependent falls back to the simulator per cell,
transparently: dynamic/guided/work-stealing schedulers
(``batch_vectorizable`` is False), active fault plans, tracers, residency
views, noisy devices, and multi-chunk waves on contended machines (PCIe
groups or ``serialize_offload``), where cross-device event interleaving
feeds back into the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.core import ChunkPhase, EngineBase, RunContext, register_backend
from repro.engine.simulator import OffloadEngine
from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.faults.plan import FaultPlan, faults_enabled
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import ELEM, LoopKernel
from repro.machine.spec import MachineSpec, MemoryKind
from repro.memory.residency import RegionResidency
from repro.memory.unified import UnifiedMemoryModel
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, resolve_tracer
from repro.sched.base import BARRIER, LoopScheduler
from repro.util.ranges import IterRange
from repro.util.units import gbs_to_bytes_per_s, gflops_to_flops

__all__ = ["BATCH_VERSION", "BatchRequest", "BatchEngine"]

#: Version of the vectorized batch backend.  Part of the sweep-cache
#: fingerprint (batch results are cacheable virtual-time artifacts): bump
#: on any change that could perturb them.
BATCH_VERSION = "1"


@dataclass
class BatchRequest:
    """One cell of a batch: a kernel under one scheduler instance.

    ``execute_numerically`` overrides the engine-level flag per cell
    (None = inherit); the grid runner uses this to run numerics once per
    shared kernel instance instead of once per cell.
    """

    kernel: LoopKernel
    scheduler: LoopScheduler
    cutoff_ratio: float = 0.0
    execute_numerically: bool | None = None


class _Cell:
    """Per-cell mutable state threaded through the wave rounds."""

    __slots__ = (
        "request", "core", "req", "cin", "comp", "cout", "fin", "first",
        "dispatch", "group_free", "wave_chunks", "wave_barrier", "result",
        "fell_back",
    )

    def __init__(self, request: BatchRequest, core: RunContext, ndev: int):
        self.request = request
        self.core = core
        # Per-device pipeline state, mirroring DeviceState's float fields
        # (kept as arrays so rounds can stack cells into (C, D) tensors).
        self.req = np.zeros(ndev)        # next request (= event pop) time
        self.cin = np.zeros(ndev)        # copy_in_free
        self.comp = np.zeros(ndev)       # comp_free
        self.cout = np.zeros(ndev)       # copy_out_free
        self.fin = np.zeros(ndev)        # finish
        self.first = np.ones(ndev, dtype=bool)
        self.dispatch = 0.0              # shared dispatcher (serialize_offload)
        self.group_free: dict[str, float] = {}
        self.wave_chunks: list[list[IterRange]] = []
        self.wave_barrier: list[bool] = []
        self.result: OffloadResult | None = None
        self.fell_back = False


class _DeviceConsts:
    """Per-device scalar columns of the cost tensors, hoisted once."""

    __slots__ = (
        "sched", "setup", "launch", "sflops", "mbps", "lat", "bps",
        "perbuf", "zero", "host", "groups", "contended",
    )

    def __init__(self, machine: MachineSpec, um: UnifiedMemoryModel,
                 serialize_offload: bool):
        specs = list(machine.devices)
        self.sched = np.array([s.sched_overhead_s for s in specs])
        self.setup = np.array([s.setup_overhead_s for s in specs])
        self.launch = np.array([s.launch_overhead_s for s in specs])
        self.sflops = np.array(
            [gflops_to_flops(s.sustained_gflops) for s in specs]
        )
        self.mbps = np.array(
            [gbs_to_bytes_per_s(s.mem_bandwidth_gbs) for s in specs]
        )
        self.lat = np.array([s.link.latency_s for s in specs])
        bps, perbuf, zero = [], [], []
        for s in specs:
            if s.memory is MemoryKind.UNIFIED:
                # migration_time: per-buffer driver cost + Hockney at the
                # derated bandwidth (same product order as the slow Link).
                bps.append(
                    gbs_to_bytes_per_s(
                        s.link.bandwidth_gbs * um.bandwidth_fraction
                    )
                )
                perbuf.append(um.per_buffer_overhead_s)
                zero.append(s.link.is_shared)
            elif s.memory is MemoryKind.SHARED:
                bps.append(1.0)  # masked; shared memory never transfers
                perbuf.append(0.0)
                zero.append(True)
            else:
                bps.append(
                    1.0 if s.link.is_shared
                    else gbs_to_bytes_per_s(s.link.bandwidth_gbs)
                )
                perbuf.append(0.0)
                zero.append(s.link.is_shared)
        self.bps = np.array(bps)
        self.perbuf = np.array(perbuf)
        self.zero = np.array(zero, dtype=bool)
        self.host = np.array(
            [s.memory is not MemoryKind.DISCRETE for s in specs], dtype=bool
        )
        self.groups = [s.pcie_group for s in specs]
        self.contended = serialize_offload or any(
            g is not None for g in self.groups
        )


@dataclass
class BatchEngine(EngineBase):
    """Numpy-vectorized batch backend (registered as ``"batch"``).

    Field-compatible with :class:`~repro.engine.simulator.OffloadEngine`,
    so ``make_backend`` treats the two interchangeably.  ``run`` handles a
    single cell; :meth:`run_many` advances a whole batch in lockstep.  For
    introspection (``chunk_log``/``timeline``/``faults``), the last cell's
    run context is retained.
    """

    backend_name = "batch"

    machine: MachineSpec
    seed: int = 0
    execute_numerically: bool = True
    collect_chunks: bool = False
    record_events: bool = False
    serialize_offload: bool = False
    double_buffer: bool = True
    unified_model: UnifiedMemoryModel = field(default_factory=UnifiedMemoryModel)
    fault_plan: FaultPlan | None = None
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    tracer: Tracer | NullTracer = NULL_TRACER
    residency: "RegionResidency | None" = None

    # -- public entry points -------------------------------------------------

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        return self.run_many(
            [BatchRequest(kernel=kernel, scheduler=scheduler,
                          cutoff_ratio=cutoff_ratio)]
        )[0]

    def run_many(self, requests: list[BatchRequest]) -> list[OffloadResult]:
        """Execute a batch of cells; results are positionally aligned.

        Vectorizable cells advance together through the tensor rounds;
        the rest run through a per-cell virtual-time simulator with the
        same configuration — either way, each cell's result is what
        ``virtual`` would have produced.
        """
        results: list[OffloadResult | None] = [None] * len(requests)
        vectorized: list[int] = []
        engine_ok = self._engine_vectorizable()
        for i, req in enumerate(requests):
            if engine_ok and req.scheduler.batch_vectorizable:
                vectorized.append(i)
            else:
                results[i] = self._fallback(req)
        if vectorized:
            cells = [self._make_cell(requests[i]) for i in vectorized]
            self._begin_run(cells[0].core)
            try:
                self._advance(cells)
            finally:
                self._end_run()
            for i, cell in zip(vectorized, cells):
                if cell.fell_back:
                    results[i] = self._fallback(cell.request)
                else:
                    results[i] = cell.result
                    self._run_ctx = cell.core
        return results  # type: ignore[return-value]

    # -- vectorizability ------------------------------------------------------

    def _engine_vectorizable(self) -> bool:
        """Engine-level preconditions for the tensor path.

        Fault injection perturbs per-chunk draws and timelines, tracers
        expect spans emitted at event-loop call sites, residency views
        charge order-dependent deltas, and noisy devices draw from
        per-call RNG streams — all of these fall back to ``virtual``.
        """
        if self.fault_plan is not None and not self.fault_plan.empty \
                and faults_enabled():
            return False
        if resolve_tracer(self.tracer).enabled:
            return False
        if self.residency is not None:
            return False
        if any(spec.noise > 0 for spec in self.machine.devices):
            return False
        return True

    def _fallback(self, req: BatchRequest) -> OffloadResult:
        """Run one cell through the virtual-time simulator, transparently."""
        execute = (
            self.execute_numerically
            if req.execute_numerically is None else req.execute_numerically
        )
        eng = OffloadEngine(
            machine=self.machine,
            seed=self.seed,
            execute_numerically=execute,
            collect_chunks=self.collect_chunks,
            record_events=self.record_events,
            serialize_offload=self.serialize_offload,
            double_buffer=self.double_buffer,
            unified_model=self.unified_model,
            fault_plan=self.fault_plan,
            resilience=self.resilience,
            tracer=self.tracer,
            residency=self.residency,
        )
        result = eng.run(
            req.kernel, req.scheduler, cutoff_ratio=req.cutoff_ratio
        )
        self._run_ctx = eng._run_ctx
        return result

    # -- batch machinery ------------------------------------------------------

    def _make_cell(self, req: BatchRequest) -> _Cell:
        execute = (
            self.execute_numerically
            if req.execute_numerically is None else req.execute_numerically
        )
        core = RunContext(
            machine=self.machine,
            kernel=req.kernel,
            scheduler=req.scheduler,
            cutoff_ratio=req.cutoff_ratio,
            seed=self.seed,
            execute_numerically=execute,
            collect_chunks=self.collect_chunks,
            record_events=self.record_events,
            fault_plan=self.fault_plan,
            resilience=self.resilience,
            tracer=self.tracer,
            residency=self.residency,
            base_meta={"seed": self.seed, "machine": self.machine.name},
        )
        return _Cell(req, core, len(core.states))

    def _advance(self, cells: list[_Cell]) -> None:
        consts = _DeviceConsts(
            self.machine, self.unified_model, self.serialize_offload
        )
        while True:
            active = [
                c for c in cells if c.result is None and not c.fell_back
            ]
            if not active:
                return
            for c in active:
                self._enumerate_wave(c)
            if consts.contended:
                # Multi-chunk waves on a contended machine interleave
                # across devices in a timing-dependent order: only the
                # event heap can resolve them.  Waves are enumerated
                # before any commit, so a wave-1 bailout is clean.
                for c in active:
                    if any(len(ch) > 1 for ch in c.wave_chunks):
                        if c.core.covered:
                            raise OffloadError(
                                f"{c.core.scheduler.notation}: multi-chunk "
                                "wave on a contended machine after commits "
                                "began — run this cell on the 'virtual' "
                                "backend"
                            )
                        c.fell_back = True
                active = [c for c in active if not c.fell_back]
                if not active:
                    return
            slot_times = self._compute_wave(active, consts)
            for ci, c in enumerate(active):
                self._commit_wave(c, ci, slot_times)

    def _enumerate_wave(self, cell: _Cell) -> None:
        """Ask each device's scheduler for its wave, to BARRIER or drain.

        Legal exactly because the scheduler is timing-oblivious: the event
        loop would issue the same ``next()`` calls per device, just
        interleaved with the commits this backend performs afterwards.
        """
        core = cell.core
        limit = core.kernel.n_iters + 1
        cell.wave_chunks = []
        cell.wave_barrier = []
        for st in core.states:
            chunks: list[IterRange] = []
            barrier = False
            if not st.done:
                while True:
                    decision = core.scheduler.next(st.device.devid)
                    if decision is None:
                        st.done = True
                        break
                    if decision is BARRIER:
                        barrier = True
                        break
                    chunks.append(decision)
                    if len(chunks) > limit:
                        raise OffloadError(
                            f"{core.scheduler.notation} handed more chunks "
                            "than iterations in one wave — scheduler bug?"
                        )
            cell.wave_chunks.append(chunks)
            cell.wave_barrier.append(barrier)

    def _compute_wave(self, active: list[_Cell], consts: _DeviceConsts):
        """Resolve this wave's pipeline timeline as (C, D, K) tensors.

        Every elementwise op replicates the simulator's expression order,
        so the float64 results are bit-identical to the event loop's.
        Returns the per-slot arrays the commit phase reads, or None when
        the wave carries no chunks at all.
        """
        C = len(active)
        D = len(self.machine)
        K = max(
            (len(ch) for c in active for ch in c.wave_chunks), default=0
        )
        if K == 0:
            return None

        n = np.zeros((C, D, K), dtype=np.int64)
        eff = np.ones((C, D, K))
        fpi = np.empty((C, 1, 1))
        mempi = np.empty((C, 1, 1))
        xin_row = np.empty((C, 1, 1))
        xout_row = np.empty((C, 1, 1))
        rep = np.empty((C, 1, 1))
        for ci, c in enumerate(active):
            kernel = c.core.kernel
            cc = kernel._cost_constants()
            fpi[ci] = cc.flops_per_iter
            mempi[ci] = cc.mem_bytes_per_iter
            # chunk_cost multiplies elems * ELEM first, then by n.
            xin_row[ci] = cc.xfer_in_elems * ELEM
            xout_row[ci] = cc.xfer_out_elems * ELEM
            rep[ci] = cc.replicated_in_bytes
            for d, chunks in enumerate(c.wave_chunks):
                for k, chunk in enumerate(chunks):
                    n[ci, d, k] = len(chunk)
                    eff[ci, d, k] = kernel.chunk_efficiency(len(chunk))

        first = np.stack([c.first for c in active])        # (C, D)
        first_slot = np.zeros((C, D, K), dtype=bool)
        first_slot[:, :, 0] = first & (n[:, :, 0] > 0)

        # Closed-form chunk costs (LoopKernel.chunk_cost, elementwise).
        flops = (fpi * n) / eff
        mem = mempi * n
        b_in = (xin_row * n) + np.where(first_slot, rep, 0.0)
        b_out = xout_row * n
        # Roofline compute (Device.compute_time) and Hockney / unified
        # migration transfers (Link.transfer_time / migration_time).
        sflops = consts.sflops[None, :, None]
        mbps = consts.mbps[None, :, None]
        launch = consts.launch[None, :, None]
        lat = consts.lat[None, :, None]
        bps = consts.bps[None, :, None]
        perbuf = consts.perbuf[None, :, None]
        zero = consts.zero[None, :, None]
        t_comp = np.maximum(flops / sflops, mem / mbps) + launch
        t_in = np.where(zero | (b_in == 0.0), 0.0, perbuf + (lat + b_in / bps))
        t_out = np.where(
            zero | (b_out == 0.0), 0.0, perbuf + (lat + b_out / bps)
        )

        # Pipeline scan along the chunk axis, on (C, D) state slices.
        req = np.stack([c.req for c in active])
        cin = np.stack([c.cin for c in active])
        comp = np.stack([c.comp for c in active])
        cout = np.stack([c.cout for c in active])
        fin = np.stack([c.fin for c in active])
        sched2 = consts.sched[None, :]
        setup2 = consts.setup[None, :]
        host2 = consts.host[None, :]

        shape = (C, D, K)
        acq = np.zeros(shape)
        t_setup = np.zeros(shape)
        in_s = np.zeros(shape)
        in_e = np.zeros(shape)
        cp_s = np.zeros(shape)
        cp_e = np.zeros(shape)
        ou_s = np.zeros(shape)
        ou_e = np.zeros(shape)

        if consts.contended:
            # Serialized dispatch / PCIe-group contention: resolve devices
            # in event order (all same-wave requests tie on time, so the
            # heap pops them in devid order), K == 1 guaranteed above.
            disp = np.array([c.dispatch for c in active])
            names = sorted({g for g in consts.groups if g is not None})
            gfree = {
                g: np.array([c.group_free.get(g, 0.0) for c in active])
                for g in names
            }
            for d in range(D):
                valid = n[:, d, 0] > 0
                setup_d = np.where(first_slot[:, d, 0], consts.setup[d], 0.0)
                acquire_end = (req[:, d] + consts.sched[d]) + setup_d
                in_start = np.maximum(acquire_end, cin[:, d])
                if self.serialize_offload:
                    in_start = np.maximum(in_start, disp)
                g = consts.groups[d]
                if g is not None:
                    in_start = np.maximum(in_start, gfree[g])
                in_end = in_start + t_in[:, d, 0]
                if self.serialize_offload:
                    disp = np.where(valid, in_end, disp)
                if g is not None:
                    gfree[g] = np.where(
                        valid & (in_end > in_start), in_end, gfree[g]
                    )
                comp_prev = comp[:, d].copy()
                comp_start = np.maximum(in_end, comp[:, d])
                comp_end = comp_start + t_comp[:, d, 0]
                out_start = np.maximum(comp_end, cout[:, d])
                if g is not None:
                    out_start = np.maximum(out_start, gfree[g])
                out_end = out_start + t_out[:, d, 0]
                if g is not None:
                    gfree[g] = np.where(
                        valid & (out_end > out_start), out_end, gfree[g]
                    )
                acq[:, d, 0] = req[:, d]
                t_setup[:, d, 0] = setup_d
                in_s[:, d, 0] = in_start
                in_e[:, d, 0] = in_end
                cp_s[:, d, 0] = comp_start
                cp_e[:, d, 0] = comp_end
                ou_s[:, d, 0] = out_start
                ou_e[:, d, 0] = out_end
                cin[:, d] = np.where(valid, in_end, cin[:, d])
                comp[:, d] = np.where(valid, comp_end, comp[:, d])
                cout[:, d] = np.where(valid, out_end, cout[:, d])
                fin[:, d] = np.where(
                    valid, np.maximum(fin[:, d], out_end), fin[:, d]
                )
                if consts.host[d]:
                    nxt = comp_end
                elif self.double_buffer:
                    nxt = np.maximum(in_end, comp_prev)
                else:
                    nxt = out_end
                req[:, d] = np.where(valid, nxt, req[:, d])
            for ci, c in enumerate(active):
                c.dispatch = float(disp[ci])
                for g in names:
                    c.group_free[g] = float(gfree[g][ci])
        else:
            for k in range(K):
                valid = n[:, :, k] > 0
                setup_k = np.where(first_slot[:, :, k], setup2, 0.0)
                acquire_end = (req + sched2) + setup_k
                in_start = np.maximum(acquire_end, cin)
                in_end = in_start + t_in[:, :, k]
                comp_prev = comp
                comp_start = np.maximum(in_end, comp)
                comp_end = comp_start + t_comp[:, :, k]
                out_start = np.maximum(comp_end, cout)
                out_end = out_start + t_out[:, :, k]
                acq[:, :, k] = req
                t_setup[:, :, k] = setup_k
                in_s[:, :, k] = in_start
                in_e[:, :, k] = in_end
                cp_s[:, :, k] = comp_start
                cp_e[:, :, k] = comp_end
                ou_s[:, :, k] = out_start
                ou_e[:, :, k] = out_end
                cin = np.where(valid, in_end, cin)
                comp = np.where(valid, comp_end, comp)
                cout = np.where(valid, out_end, cout)
                fin = np.where(valid, np.maximum(fin, out_end), fin)
                if self.double_buffer:
                    nxt = np.where(
                        host2, comp_end, np.maximum(in_end, comp_prev)
                    )
                else:
                    nxt = np.where(host2, comp_end, out_end)
                req = np.where(valid, nxt, req)

        for ci, c in enumerate(active):
            c.req = req[ci].copy()
            c.cin = cin[ci].copy()
            c.comp = comp[ci].copy()
            c.cout = cout[ci].copy()
            c.fin = fin[ci].copy()
        return {
            "b_in": b_in, "b_out": b_out, "t_in": t_in, "t_comp": t_comp,
            "t_out": t_out, "acq": acq, "t_setup": t_setup, "in_s": in_s,
            "in_e": in_e, "cp_s": cp_s, "cp_e": cp_e, "ou_s": ou_s,
            "ou_e": ou_e,
        }

    def _commit_wave(self, cell: _Cell, ci: int, slots) -> None:
        """Replay this wave's chunks through the RunContext in event order,
        then release the barrier or finalize the cell."""
        core = cell.core
        order: list[tuple[float, int, int, IterRange]] = []
        for d, chunks in enumerate(cell.wave_chunks):
            for k, chunk in enumerate(chunks):
                order.append((float(slots["acq"][ci, d, k]), d, k, chunk))
        # The event heap pops (request_time, devid) in sorted order; the
        # sort is stable, so a device's equal-time chunks keep their
        # issue order.
        order.sort(key=lambda s: (s[0], s[1]))
        for acq_t, d, k, chunk in order:
            st = core.states[d]
            spec = st.device.spec
            tm = core.begin_chunk(d, chunk, acq_t)
            tm.bytes_in = float(slots["b_in"][ci, d, k])
            tm.bytes_out = float(slots["b_out"][ci, d, k])
            tm.t_setup = float(slots["t_setup"][ci, d, k])
            st.first_chunk = False
            tm.t_sched = spec.sched_overhead_s
            tm.advance(ChunkPhase.XFER_IN)
            tm.advance(ChunkPhase.COMPUTE)
            tm.advance(ChunkPhase.XFER_OUT)
            t_in = float(slots["t_in"][ci, d, k])
            t_comp = float(slots["t_comp"][ci, d, k])
            t_out = float(slots["t_out"][ci, d, k])
            tm.t_in, tm.t_comp, tm.t_out = t_in, t_comp, t_out
            tm.in_start = float(slots["in_s"][ci, d, k])
            tm.in_end = float(slots["in_e"][ci, d, k])
            tm.comp_start = float(slots["cp_s"][ci, d, k])
            tm.comp_end = float(slots["cp_e"][ci, d, k])
            tm.out_start = float(slots["ou_s"][ci, d, k])
            tm.out_end = float(slots["ou_e"][ci, d, k])
            st.copy_in_free = tm.in_end
            st.comp_free = tm.comp_end
            st.copy_out_free = tm.out_end
            st.finish = max(st.finish, tm.out_end)
            core.account_chunk(st, tm)
            core.commit_chunk(st, tm, t_in + t_comp + t_out)

        cell.first &= np.array(
            [len(ch) == 0 for ch in cell.wave_chunks], dtype=bool
        )
        waiting = False
        for d, barrier in enumerate(cell.wave_barrier):
            if barrier:
                st = core.states[d]
                st.at_barrier = max(float(cell.req[d]), st.finish)
                waiting = True
        if all(st.done for st in core.states):
            cell.result = core.finalize()
            return
        if not waiting or not core.barrier_ready():
            raise OffloadError(
                f"{core.scheduler.notation}: wave ended with devices "
                "neither drained nor at the barrier — scheduler bug?"
            )
        t_rel = core.release_barrier(lambda st, t: None)
        for d, st in enumerate(core.states):
            if not st.done:
                cell.req[d] = t_rel


register_backend("batch", BatchEngine, aliases=("vectorized", "vec"))
