"""Real-thread executor (extension beyond the simulator).

Runs the same kernel/scheduler machinery with actual host threads — one
proxy thread per simulated device, a lock-protected shared chunk queue,
and wall-clock timing.  There is no heterogeneity to exploit on the host,
so this is *not* how figures are produced; it exists to

* demonstrate that the scheduler protocol works under genuine concurrency
  (races on the shared cursor, out-of-order observe() calls), and
* let the profiling algorithms operate on real measured throughput.

Per the mpi4py/threading guidance for Python HPC code, the per-chunk work
is NumPy-heavy (releases the GIL), so proxy threads do overlap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.engine.trace import DeviceTrace, OffloadResult
from repro.errors import OffloadError
from repro.kernels.base import LoopKernel
from repro.machine.device import Device
from repro.machine.spec import MachineSpec
from repro.obs import span as _sp
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, resolve_tracer
from repro.sched.base import BARRIER, LoopScheduler, SchedContext

__all__ = ["ThreadedEngine"]


@dataclass
class ThreadedEngine:
    """Executes an offload with one real host thread per device."""

    machine: MachineSpec
    #: Observability sink; spans carry *wall* time (``perf_counter``
    #: offsets from offload start), unlike the simulator's virtual time.
    tracer: Tracer | NullTracer = NULL_TRACER

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        devices = [Device(i, spec) for i, spec in enumerate(self.machine.devices)]
        obs = resolve_tracer(self.tracer)
        traced = obs.enabled
        met = obs.metrics if traced else None
        ctx = SchedContext(
            kernel=kernel, devices=devices, cutoff_ratio=cutoff_ratio,
            metrics=met,
        )
        scheduler.start(ctx)

        lock = threading.Lock()
        barrier_cond = threading.Condition(lock)
        state = {
            "arrived": set(),
            "done": set(),
            "generation": 0,
            "covered": 0,
        }
        traces = [DeviceTrace(devid=d.devid, name=d.name) for d in devices]
        partials: list[float | None] = [kernel.identity() for _ in devices]
        errors: list[BaseException] = []
        t0 = time.perf_counter()

        def proxy(devid: int) -> None:
            trace = traces[devid]
            try:
                while True:
                    with lock:
                        dec_t0 = time.perf_counter()
                        decision = scheduler.next(devid)
                        dec_t1 = time.perf_counter()
                        if traced:
                            obs.span(
                                _sp.SPAN_SCHED, _sp.CAT_SCHED, devid,
                                devices[devid].name,
                                dec_t0 - t0, dec_t1 - t0,
                            )
                            met.observe(
                                "sched_decision_s", dec_t1 - dec_t0,
                                device=devices[devid].name,
                                algorithm=scheduler.notation,
                            )
                            met.inc(
                                "sched_decisions", 1.0,
                                device=devices[devid].name,
                            )
                        if decision is BARRIER:
                            gen = state["generation"]
                            state["arrived"].add(devid)
                            active = set(range(len(devices))) - state["done"]
                            if state["arrived"] >= active:
                                scheduler.at_barrier()
                                state["generation"] += 1
                                state["arrived"].clear()
                                barrier_cond.notify_all()
                            else:
                                while (
                                    state["generation"] == gen and not errors
                                ):
                                    barrier_cond.wait(timeout=5.0)
                            continue
                        if decision is None:
                            state["done"].add(devid)
                            active = set(range(len(devices))) - state["done"]
                            if state["arrived"] and state["arrived"] >= active:
                                scheduler.at_barrier()
                                state["generation"] += 1
                                state["arrived"].clear()
                                barrier_cond.notify_all()
                            return
                        chunk = decision
                        state["covered"] += len(chunk)
                    start = time.perf_counter()
                    partial = kernel.execute_chunk(chunk, shared=True)
                    end = time.perf_counter()
                    elapsed = end - start
                    with lock:
                        if kernel.is_reduction:
                            partials[devid] = kernel.combine(
                                partials[devid], partial
                            )
                        scheduler.observe(devid, chunk, max(elapsed, 1e-9))
                        trace.compute_s += elapsed
                        trace.chunks += 1
                        trace.iters += len(chunk)
                        trace.finish_s = time.perf_counter() - t0
                        if traced:
                            dn = devices[devid].name
                            obs.span(
                                _sp.SPAN_COMPUTE, _sp.CAT_STAGE, devid, dn,
                                start - t0, end - t0,
                                iters=len(chunk),
                                chunk=(chunk.start, chunk.stop),
                            )
                            obs.instant(
                                _sp.MARK_CHUNK, _sp.CAT_MARK, devid, dn,
                                end - t0, iters=len(chunk),
                                chunk=(chunk.start, chunk.stop), retries=0,
                            )
                            met.inc("chunks_issued", 1.0, device=dn)
                            met.inc("iterations", len(chunk), device=dn)
            except BaseException as exc:  # surface worker failures to caller
                with lock:
                    errors.append(exc)
                    barrier_cond.notify_all()

        threads = [
            threading.Thread(target=proxy, args=(d.devid,), name=f"proxy-{d.name}")
            for d in devices
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise OffloadError(f"proxy thread failed: {errors[0]!r}") from errors[0]
        if state["covered"] != kernel.n_iters:
            raise OffloadError(
                f"{scheduler.notation} covered {state['covered']} of "
                f"{kernel.n_iters} iterations"
            )
        total = time.perf_counter() - t0
        if traced:
            for tr in traces:
                if tr.participated:
                    obs.instant(
                        _sp.MARK_FINISH, _sp.CAT_MARK, tr.devid, tr.name,
                        tr.finish_s,
                    )
            obs.span(
                _sp.SPAN_OFFLOAD, _sp.CAT_OFFLOAD, -1, "", 0.0, total,
                kernel=kernel.name, algorithm=scheduler.describe(),
                machine=self.machine.name,
            )
            obs.meta.update(
                kernel=kernel.name,
                algorithm=scheduler.describe(),
                machine=self.machine.name,
                executor="threaded",
            )
        reduction = partials[0]
        for p in partials[1:]:
            reduction = kernel.combine(reduction, p)
        return OffloadResult(
            kernel_name=kernel.name,
            algorithm=scheduler.describe(),
            total_time_s=total,
            traces=traces,
            reduction=reduction if kernel.is_reduction else None,
            meta={"executor": "threaded", "machine": self.machine.name},
        )
