"""Real-thread executor: the wall-clock backend of the execution core.

Runs the same kernel/scheduler machinery with actual host threads — one
proxy thread per simulated device, a lock-protected shared chunk queue,
and wall-clock timing.  There is no heterogeneity to exploit on the host,
so this is *not* how figures are produced; it exists to

* demonstrate that the scheduler protocol works under genuine concurrency
  (races on the shared cursor, out-of-order observe() calls), and
* let the profiling algorithms operate on real measured throughput.

Per the mpi4py/threading guidance for Python HPC code, the per-chunk work
is NumPy-heavy (releases the GIL), so proxy threads do overlap.

The chunk lifecycle — scheduling decisions, fault draws and bounded
retries, orphan reassignment, quarantine, trace buckets, span/metric
emission, coverage and the final result — is the shared core's
(:class:`~repro.engine.core.RunContext`); this module only decides *when*
things happen, on a :class:`~repro.engine.core.WallClock`.  That buys the
threaded executor full fault/resilience parity with the simulator:

* ``Slowdown`` stretches a chunk's compute by sleeping the extra time,
* ``TransferError`` draws from the same counter-based hash against a
  *nominal* link time (host-shared devices use a tiny epsilon so flaky
  links still fire), with real backoff sleeps,
* ``DeviceDropout`` (wall seconds since offload start) kills the proxy at
  a chunk boundary; its in-flight chunk and reserved ranges are requeued
  through ``scheduler.requeue``/``device_lost`` and drained by survivors.

Exactly-once numerics: transfer outcomes and the dropout check are
resolved *before* the kernel executes a chunk, so a failed or lost chunk
was never applied to the output arrays and can be re-served safely (the
simulator gets the same guarantee by only executing committed chunks).
Wall-clock consequence: fault timestamps for the copy-out leg are stamped
when the outcome is drawn, not where a real DMA would sit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.engine.core import (
    ChunkPhase,
    EngineBase,
    RunContext,
    WallClock,
    register_backend,
)
from repro.engine.trace import OffloadResult
from repro.errors import OffloadError
from repro.faults.events import FaultKind
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.kernels.base import LoopKernel
from repro.machine.spec import MachineSpec
from repro.memory.residency import RegionResidency
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.sched.base import BARRIER, LoopScheduler

__all__ = ["ThreadedEngine"]

#: Nominal transfer time credited to a host-shared link so fault draws
#: still fire for devices whose real staging cost is zero.
_EPS_XFER_S = 1e-9


@dataclass
class ThreadedEngine(EngineBase):
    """Executes an offload with one real host thread per device."""

    #: Registry name of this backend (wall-clock, real threads).
    backend_name = "threaded"

    machine: MachineSpec
    seed: int = 0
    execute_numerically: bool = True
    collect_chunks: bool = False
    record_events: bool = False
    #: Faults to inject; times are wall seconds since offload start.
    fault_plan: FaultPlan | None = None
    #: Retry/quarantine behaviour under the fault plan.
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Observability sink; spans carry *wall* time (``perf_counter``
    #: offsets from offload start), unlike the simulator's virtual time.
    tracer: Tracer | NullTracer = NULL_TRACER
    #: Residency view of an enclosing target-data region (None outside one).
    #: Same elision semantics as the virtual backend: per-chunk bytes are
    #: the delta against what the placement already made resident.
    residency: "RegionResidency | None" = None

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        core = RunContext(
            machine=self.machine,
            kernel=kernel,
            scheduler=scheduler,
            cutoff_ratio=cutoff_ratio,
            seed=self.seed,
            execute_numerically=self.execute_numerically,
            collect_chunks=self.collect_chunks,
            record_events=self.record_events,
            fault_plan=self.fault_plan,
            resilience=self.resilience,
            tracer=self.tracer,
            residency=self.residency,
            base_meta={
                "executor": "threaded", "machine": self.machine.name,
                "seed": self.seed,
            },
            obs_meta_extra={"executor": "threaded"},
        )
        self._begin_run(core)
        try:
            return self._thread_loop(core)
        finally:
            self._end_run()

    def _thread_loop(self, core: RunContext) -> OffloadResult:
        """Wall-clock event scheduling: the backend-specific part."""
        kernel = core.kernel
        scheduler = core.scheduler
        states = core.states
        plan = core.plan
        plan_active = core.plan_active

        lock = threading.Lock()
        cond = threading.Condition(lock)
        errors: list[BaseException] = []
        clock = WallClock()

        core.wake = lambda st, t: cond.notify_all()

        def maybe_release_barrier() -> None:
            if core.barrier_ready():
                core.release_barrier(lambda st, t_rel: None)
                cond.notify_all()

        core.maybe_release_barrier = maybe_release_barrier

        def proxy(devid: int) -> None:
            st = states[devid]
            drop_t = plan.dropout_t(devid) if plan_active else None
            try:
                while True:
                    with lock:
                        if errors:
                            return
                        if (
                            drop_t is not None
                            and clock.now() >= drop_t
                            and not st.lost
                        ):
                            core.mark_lost(
                                st, drop_t, FaultKind.DROPOUT,
                                detail="lost while idle",
                            )
                            cond.notify_all()
                            return
                        dec_t0 = clock.now()
                        decision = scheduler.next(devid)
                        dec_t1 = clock.now()
                        if decision is None and core.orphans:
                            # Scheduler drained but lost work remains.
                            decision = core.orphans.popleft()
                        if decision is BARRIER:
                            core.note_decision(st, dec_t0, dec_t1)
                            st.at_barrier = dec_t1
                            maybe_release_barrier()
                            while st.at_barrier is not None and not errors:
                                cond.wait(timeout=5.0)
                            continue
                        if decision is None:
                            core.note_decision(st, dec_t0, dec_t1)
                            st.done = True
                            maybe_release_barrier()
                            cond.notify_all()
                            # Park: a dying device may orphan work that
                            # only this proxy can drain.  ``add_orphan``
                            # revives us by clearing ``done``; the work
                            # may sit in the scheduler (requeue accepted)
                            # or in ``core.orphans``, so go back and ask.
                            while st.done:
                                if not any(not s.done for s in states):
                                    return
                                cond.wait(timeout=0.1)
                                if errors:
                                    return
                            continue
                        tm = core.begin_chunk(devid, decision, dec_t0)
                        chunk = tm.chunk
                        tm.t_sched = dec_t1 - dec_t0
                        cost = kernel.chunk_cost(chunk)
                        core.chunk_bytes(st, tm, cost)
                        st.first_chunk = False
                        # Pre-flight both (simulated) transfer legs: draws,
                        # fault events and backoff sleeps happen now, so a
                        # doomed chunk is never executed numerically.
                        tm.advance(ChunkPhase.XFER_IN)
                        tm.in_start = clock.now()
                        if plan_active:
                            t_nom_in = max(
                                st.device.transfer_time(tm.bytes_in),
                                _EPS_XFER_S,
                            )
                            tm.pad_in, tm.retries_in, tm.in_ok = (
                                core.transfer_attempts(
                                    st, chunk, "in", t_nom_in, tm.in_start,
                                    sleep=time.sleep,
                                )
                            )
                            if tm.in_ok:
                                t_nom_out = max(
                                    st.device.transfer_time(tm.bytes_out),
                                    _EPS_XFER_S,
                                )
                                tm.pad_out, tm.retries_out, tm.out_ok = (
                                    core.transfer_attempts(
                                        st, chunk, "out", t_nom_out,
                                        clock.now(), sleep=time.sleep,
                                    )
                                )
                        tm.in_end = clock.now()
                        dropped = (
                            drop_t is not None
                            and tm.ok
                            and clock.now() >= drop_t
                        )
                        if dropped or not tm.ok:
                            now = clock.now()
                            tm.comp_start = tm.comp_end = now
                            tm.out_start = tm.out_end = now
                            if dropped:
                                tm.dropped = True
                                core.drop_chunk(st, tm, drop_t)
                                cond.notify_all()
                                return
                            st.finish = max(st.finish, tm.out_end)
                            core.account_chunk(st, tm)
                            quarantined = core.fail_chunk(st, tm)
                            cond.notify_all()
                            if quarantined:
                                return
                            continue
                        tm.advance(ChunkPhase.COMPUTE)
                    # Compute outside the lock: NumPy releases the GIL, so
                    # proxy threads genuinely overlap here.
                    comp_start = clock.now()
                    partial = (
                        kernel.execute_chunk(
                            chunk, shared=st.device.shares_host_memory
                        )
                        if core.execute_numerically else None
                    )
                    if plan_active:
                        factor = plan.slowdown_factor(devid, comp_start)
                        if factor > 1.0:
                            # A straggler: stretch the chunk by the extra
                            # time the slowdown would have cost.
                            time.sleep((factor - 1.0) * (clock.now() - comp_start))
                    comp_end = clock.now()
                    elapsed = comp_end - comp_start
                    with lock:
                        tm.advance(ChunkPhase.XFER_OUT)
                        tm.comp_start, tm.comp_end = comp_start, comp_end
                        tm.t_comp = elapsed
                        tm.out_start = tm.out_end = comp_end
                        st.finish = max(st.finish, tm.out_end)
                        core.account_chunk(st, tm)
                        core.commit_chunk(
                            st, tm, max(elapsed, 1e-9), partial=partial
                        )
            except BaseException as exc:  # surface worker failures to caller
                with lock:
                    errors.append(exc)
                    cond.notify_all()

        threads = [
            threading.Thread(
                target=proxy, args=(s.device.devid,),
                name=f"proxy-{s.device.name}",
            )
            for s in states
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise OffloadError(f"proxy thread failed: {errors[0]!r}") from errors[0]
        return core.finalize(clock.now())


register_backend("threaded", ThreadedEngine, aliases=("wall", "threads"))
