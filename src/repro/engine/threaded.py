"""Real-thread executor (extension beyond the simulator).

Runs the same kernel/scheduler machinery with actual host threads — one
proxy thread per simulated device, a lock-protected shared chunk queue,
and wall-clock timing.  There is no heterogeneity to exploit on the host,
so this is *not* how figures are produced; it exists to

* demonstrate that the scheduler protocol works under genuine concurrency
  (races on the shared cursor, out-of-order observe() calls), and
* let the profiling algorithms operate on real measured throughput.

Per the mpi4py/threading guidance for Python HPC code, the per-chunk work
is NumPy-heavy (releases the GIL), so proxy threads do overlap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.engine.trace import DeviceTrace, OffloadResult
from repro.errors import OffloadError
from repro.kernels.base import LoopKernel
from repro.machine.device import Device
from repro.machine.spec import MachineSpec
from repro.sched.base import BARRIER, LoopScheduler, SchedContext

__all__ = ["ThreadedEngine"]


@dataclass
class ThreadedEngine:
    """Executes an offload with one real host thread per device."""

    machine: MachineSpec

    def run(
        self,
        kernel: LoopKernel,
        scheduler: LoopScheduler,
        *,
        cutoff_ratio: float = 0.0,
    ) -> OffloadResult:
        devices = [Device(i, spec) for i, spec in enumerate(self.machine.devices)]
        ctx = SchedContext(kernel=kernel, devices=devices, cutoff_ratio=cutoff_ratio)
        scheduler.start(ctx)

        lock = threading.Lock()
        barrier_cond = threading.Condition(lock)
        state = {
            "arrived": set(),
            "done": set(),
            "generation": 0,
            "covered": 0,
        }
        traces = [DeviceTrace(devid=d.devid, name=d.name) for d in devices]
        partials: list[float | None] = [kernel.identity() for _ in devices]
        errors: list[BaseException] = []
        t0 = time.perf_counter()

        def proxy(devid: int) -> None:
            trace = traces[devid]
            try:
                while True:
                    with lock:
                        decision = scheduler.next(devid)
                        if decision is BARRIER:
                            gen = state["generation"]
                            state["arrived"].add(devid)
                            active = set(range(len(devices))) - state["done"]
                            if state["arrived"] >= active:
                                scheduler.at_barrier()
                                state["generation"] += 1
                                state["arrived"].clear()
                                barrier_cond.notify_all()
                            else:
                                while (
                                    state["generation"] == gen and not errors
                                ):
                                    barrier_cond.wait(timeout=5.0)
                            continue
                        if decision is None:
                            state["done"].add(devid)
                            active = set(range(len(devices))) - state["done"]
                            if state["arrived"] and state["arrived"] >= active:
                                scheduler.at_barrier()
                                state["generation"] += 1
                                state["arrived"].clear()
                                barrier_cond.notify_all()
                            return
                        chunk = decision
                        state["covered"] += len(chunk)
                    start = time.perf_counter()
                    partial = kernel.execute_chunk(chunk, shared=True)
                    elapsed = time.perf_counter() - start
                    with lock:
                        if kernel.is_reduction:
                            partials[devid] = kernel.combine(
                                partials[devid], partial
                            )
                        scheduler.observe(devid, chunk, max(elapsed, 1e-9))
                        trace.compute_s += elapsed
                        trace.chunks += 1
                        trace.iters += len(chunk)
                        trace.finish_s = time.perf_counter() - t0
            except BaseException as exc:  # surface worker failures to caller
                with lock:
                    errors.append(exc)
                    barrier_cond.notify_all()

        threads = [
            threading.Thread(target=proxy, args=(d.devid,), name=f"proxy-{d.name}")
            for d in devices
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise OffloadError(f"proxy thread failed: {errors[0]!r}") from errors[0]
        if state["covered"] != kernel.n_iters:
            raise OffloadError(
                f"{scheduler.notation} covered {state['covered']} of "
                f"{kernel.n_iters} iterations"
            )
        total = time.perf_counter() - t0
        reduction = partials[0]
        for p in partials[1:]:
            reduction = kernel.combine(reduction, p)
        return OffloadResult(
            kernel_name=kernel.name,
            algorithm=scheduler.describe(),
            total_time_s=total,
            traces=traces,
            reduction=reduction if kernel.is_reduction else None,
            meta={"executor": "threaded", "machine": self.machine.name},
        )
