"""Shared input-array pool for benchmark kernels.

Grid sweeps build a *fresh* kernel per (kernel, policy) cell because runs
mutate output arrays — but the expensive part of construction is
regenerating multi-MB random inputs with ``default_rng(seed)`` for every
cell.  The pool generates each distinct input set **once** per
``(kernel, n, seed, params)`` key and hands every subsequent instance a
private copy of the cached base (a memcpy instead of an RNG sweep), so
values are bit-identical to direct generation.

The base arrays are kept read-only so a buggy aliasing consumer fails
loudly instead of corrupting later instances.  Set ``REPRO_INPUT_POOL=off``
to bypass the pool entirely (every call then runs its generator directly).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Hashable

import numpy as np

__all__ = [
    "INPUT_POOL_ENV",
    "pool_enabled",
    "pooled_inputs",
    "pool_stats",
    "clear_pool",
]

INPUT_POOL_ENV = "REPRO_INPUT_POOL"

#: Base arrays per key, LRU-evicted beyond this many generator results.
_MAX_ENTRIES = 32

_BASE: "OrderedDict[Hashable, dict[str, np.ndarray]]" = OrderedDict()
_HITS = 0
_MISSES = 0
#: Service worker threads build kernels concurrently; the lock keeps the
#: LRU bookkeeping coherent and each base generated exactly once per key.
_LOCK = threading.Lock()


def pool_enabled() -> bool:
    """True unless ``REPRO_INPUT_POOL`` is set to ``off``/``0``/``false``."""
    return os.environ.get(INPUT_POOL_ENV, "").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


def pooled_inputs(
    key: Hashable, make: Callable[[], dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Copies of the cached base arrays for ``key``, generating on miss.

    ``make`` must be deterministic in ``key`` (same key => bit-identical
    arrays); kernel constructors guarantee that by keying on every
    parameter their RNG consumes.  Returned arrays are fresh writable
    copies — mutating them never affects the pool.
    """
    global _HITS, _MISSES
    if not pool_enabled():
        return make()
    with _LOCK:
        base = _BASE.get(key)
        if base is None:
            _MISSES += 1
            base = make()
            for arr in base.values():
                arr.setflags(write=False)
            _BASE[key] = base
            while len(_BASE) > _MAX_ENTRIES:
                _BASE.popitem(last=False)
        else:
            _HITS += 1
            _BASE.move_to_end(key)
        return {name: arr.copy() for name, arr in base.items()}


def pool_stats() -> dict[str, int]:
    """Hit/miss/entry counters (for tests and diagnostics)."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_BASE)}


def clear_pool() -> None:
    """Drop all cached bases and reset counters."""
    global _HITS, _MISSES
    with _LOCK:
        _BASE.clear()
        _HITS = 0
        _MISSES = 0
