"""Kernel abstraction: a parallel loop + its data maps + analytic costs.

A :class:`LoopKernel` describes one offloadable parallel loop the way a
HOMP ``parallel target`` region does:

* an iteration space (always 1-D here; 2-D loops are collapsed over rows,
  exactly like the paper's ``collapse(2)`` Jacobi loops),
* a set of :class:`MapSpec` entries — which arrays it touches, in which
  direction, partitioned how, with what halo,
* analytic per-iteration costs (FLOPs, device-memory bytes, bus bytes)
  that feed both the simulator's clock and the Table IV ratios,
* the *real* NumPy computation, executed per chunk through
  :class:`~repro.memory.buffer.DeviceBuffer` objects so the whole
  index-translation / copy-in / copy-out path is exercised numerically.

``execute_chunk(rows, shared=...)`` is what a device proxy calls for each
chunk it acquires; outputs land back in the kernel's host arrays, and
:meth:`check` compares them against a serial reference run.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.dist.policy import Full, Policy
from repro.errors import MappingError
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.kernel_model import KernelCosts
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["MapSpec", "ChunkCost", "LoopKernel"]

ELEM = 8  # double precision throughout, as in the paper's kernels


@dataclass(frozen=True)
class MapSpec:
    """One ``map(direction: name[...] partition([policies]) halo(lo,hi))``."""

    name: str
    direction: MapDirection
    policies: tuple[Policy, ...]
    halo: tuple[int, int] = (0, 0)

    def __post_init__(self) -> None:
        if self.halo[0] < 0 or self.halo[1] < 0:
            raise MappingError(f"map {self.name!r}: halo must be >= 0")

    @property
    def partitioned(self) -> bool:
        """True when dim 0 is split across devices (ALIGN'd to the loop, or
        statically BLOCK/CYCLIC partitioned)."""
        return not isinstance(self.policies[0], Full)

    @property
    def replicated(self) -> bool:
        return all(isinstance(p, Full) for p in self.policies)


@dataclass(frozen=True)
class ChunkCost:
    """Simulated costs of one chunk on one device."""

    flops: float
    mem_bytes: float
    xfer_in_bytes: float
    xfer_out_bytes: float
    replicated_in_bytes: float  # charged only on a device's first chunk


@dataclass(frozen=True)
class _CostConstants:
    """Per-iteration cost constants hoisted out of the chunk hot path.

    ``chunk_cost`` is called once per chunk — thousands of times per
    dynamic/guided offload — and every field here is invariant across
    chunks: it only changes when the effective maps change (a
    ``set_partition`` override or a ``resident`` reassignment), which
    invalidates the cache.
    """

    flops_per_iter: float
    mem_bytes_per_iter: float  # includes ELEM and device_mem_factor
    xfer_in_elems: float
    xfer_out_elems: float
    replicated_in_bytes: float


@dataclass
class _RunStats:
    chunks: int = 0
    iterations: int = 0


class LoopKernel(ABC):
    """Base class for offloadable parallel-loop kernels."""

    #: short name used in figures/tables (e.g. "axpy")
    name: str = "kernel"
    #: loop label referenced by ALIGN(...) in directives
    label: str = "loop"
    #: Table IV characterisation the paper assigns this kernel
    table_class: IntensityClass = IntensityClass.BALANCED
    #: Multiplier on effective device-memory traffic when *executing* (not
    #: in the Table IV accounting): kernels whose access pattern runs below
    #: streaming bandwidth (e.g. atomics-based reductions on Kepler-era
    #: GPUs) set this > 1.
    device_mem_factor: float = 1.0

    def __init__(self, n_iters: int, arrays: dict[str, np.ndarray]):
        if n_iters <= 0:
            raise ValueError(f"{self.name}: n_iters must be positive")
        self.n_iters = int(n_iters)
        self.arrays = dict(arrays)
        self.stats = _RunStats()
        # Per-array dim-0 policy overrides (set_partition) and arrays held
        # resident by an enclosing target-data region (no per-chunk bus
        # traffic for them).
        self._policy_overrides: dict[str, Policy] = {}
        self._resident: frozenset[str] = frozenset()
        self._cost_cache: _CostConstants | None = None
        # Per-(thread, array) discrete-memory staging storage, reused
        # across chunks (flat capacity buffers; execute_chunk carves
        # shaped views out).  Keyed by thread so the wall-clock backend's
        # concurrent execute_chunk calls never share staging storage.
        self._staging: dict[tuple[int, str], np.ndarray] = {}
        self._stats_lock = threading.Lock()
        written: set[str] = set()
        for m in self.maps():
            if m.name not in self.arrays:
                raise MappingError(f"{self.name}: map names unknown array {m.name!r}")
            arr = self.arrays[m.name]
            if len(m.policies) != arr.ndim:
                raise MappingError(
                    f"{self.name}: map {m.name!r} has {len(m.policies)} policies "
                    f"for a rank-{arr.ndim} array"
                )
            if m.direction.copies_out:
                written.add(m.name)
        mapped = {m.name for m in self.maps()}
        # Pristine inputs: reference() must see pre-run values even for
        # arrays the kernel updates in place (tofrom maps).  Arrays mapped
        # only inbound are aliased instead of copied — compute() must not
        # write through a pure-input (to) map, which is already the
        # contract the discrete-memory path enforces.
        self._initial = {
            k: (v if k in mapped and k not in written else v.copy())
            for k, v in self.arrays.items()
        }

    # -- declarative surface -------------------------------------------------

    @property
    def iter_space(self) -> IterRange:
        return IterRange(0, self.n_iters)

    @property
    def resident(self) -> frozenset[str]:
        """Arrays held on the devices by an enclosing target-data region."""
        return self._resident

    @resident.setter
    def resident(self, names: frozenset[str]) -> None:
        names = frozenset(names)
        if names != self._resident:
            self._resident = names
            self._invalidate_cost_cache()

    def _invalidate_cost_cache(self) -> None:
        """Drop hoisted per-iteration constants (maps changed)."""
        self._cost_cache = None

    @abstractmethod
    def maps(self) -> tuple[MapSpec, ...]:
        """The kernel's map clauses (as declared)."""

    def set_partition(self, name: str, policy: Policy) -> None:
        """Override an array's dim-0 partition policy.

        This is how a directive's ``partition([BLOCK])`` on a mapped array
        replaces the kernel's declared policy (e.g. to use the paper's
        v1-style "align computation with data").
        """
        if name not in self.arrays:
            raise MappingError(f"{self.name}: no mapped array {name!r}")
        self._policy_overrides[name] = policy
        self._invalidate_cost_cache()

    def effective_maps(self) -> tuple[MapSpec, ...]:
        """Maps with partition overrides applied."""
        if not self._policy_overrides:
            return self.maps()
        out = []
        for m in self.maps():
            override = self._policy_overrides.get(m.name)
            if override is not None:
                m = MapSpec(
                    name=m.name,
                    direction=m.direction,
                    policies=(override, *m.policies[1:]),
                    halo=m.halo,
                )
            out.append(m)
        return tuple(out)

    # -- analytic per-iteration costs ----------------------------------------

    @abstractmethod
    def flops_per_iter(self) -> float:
        """Arithmetic operations per loop iteration."""

    @abstractmethod
    def mem_accesses_per_iter(self) -> float:
        """Device-memory load/stores per iteration, in *elements*."""

    def ops_per_iter(self) -> float:
        """Normalisation unit for Table IV ratios (defaults to FLOPs)."""
        return self.flops_per_iter()

    def xfer_elems_per_iter(self) -> float:
        """Bus elements per iteration, derived from the partitioned maps."""
        total = 0.0
        for m in self.effective_maps():
            if not m.partitioned or m.name in self.resident:
                continue
            row = self._row_elems(m)
            if m.direction.copies_in:
                total += row
            if m.direction.copies_out:
                total += row
        return total

    def _row_elems(self, m: MapSpec) -> int:
        """Elements per dim-0 index of a mapped array."""
        arr = self.arrays[m.name]
        n = 1
        for extent in arr.shape[1:]:
            n *= extent
        return n

    def row_nbytes(self, name: str) -> int:
        """Bytes per dim-0 index of a mapped array (the residency ledger's
        charging unit)."""
        arr = self.arrays[name]
        n = arr.itemsize
        for extent in arr.shape[1:]:
            n *= extent
        return n

    def replicated_in_bytes(self) -> float:
        """Bytes of FULL-mapped input copied once to each discrete device."""
        return self._cost_constants().replicated_in_bytes

    def _replicated_in_bytes_scan(self) -> float:
        total = 0.0
        for m in self.effective_maps():
            if m.name in self.resident:
                continue
            if m.replicated and m.direction.copies_in:
                total += self.arrays[m.name].nbytes
        return total

    def chunk_efficiency(self, n: int) -> float:
        """Fraction of sustained throughput a chunk of ``n`` iterations
        achieves.  Defaults to 1.0; kernels that need large tiles to fill a
        wide device (GEMM) override this, which is one reason chunked
        scheduling loses to BLOCK on compute-intensive kernels."""
        return 1.0

    def _cost_constants(self) -> _CostConstants:
        """Hoisted per-iteration constants, rebuilt only after map changes.

        The multiplication order in each field matches the historical
        per-call expressions exactly, so cached and uncached chunk costs
        are bit-identical.
        """
        cc = self._cost_cache
        if cc is None:
            cc = _CostConstants(
                flops_per_iter=self.flops_per_iter(),
                mem_bytes_per_iter=(
                    self.mem_accesses_per_iter() * ELEM * self.device_mem_factor
                ),
                xfer_in_elems=self._xfer_dir_elems(True),
                xfer_out_elems=self._xfer_dir_elems(False),
                replicated_in_bytes=self._replicated_in_bytes_scan(),
            )
            self._cost_cache = cc
        return cc

    def chunk_cost(self, rows: IterRange) -> ChunkCost:
        """Simulated cost of executing ``rows`` as one chunk.

        Hot path: called once per chunk (thousands of times under dynamic
        or guided scheduling), so it works from :meth:`_cost_constants`
        instead of rescanning ``effective_maps()`` per call.
        """
        n = len(rows)
        eff = self.chunk_efficiency(n)
        if not 0.0 < eff <= 1.0:
            raise ValueError(f"{self.name}: chunk_efficiency must be in (0, 1]")
        cc = self._cost_constants()
        return ChunkCost(
            flops=cc.flops_per_iter * n / eff,
            mem_bytes=cc.mem_bytes_per_iter * n,
            xfer_in_bytes=cc.xfer_in_elems * ELEM * n,
            xfer_out_bytes=cc.xfer_out_elems * ELEM * n,
            replicated_in_bytes=cc.replicated_in_bytes,
        )

    def _xfer_dir_elems(self, inbound: bool) -> float:
        total = 0.0
        for m in self.effective_maps():
            if not m.partitioned or m.name in self.resident:
                continue
            if inbound and m.direction.copies_in:
                total += self._row_elems(m)
            if not inbound and m.direction.copies_out:
                total += self._row_elems(m)
        return total

    def costs(self) -> KernelCosts:
        """Whole-loop analytic costs (Table IV reproduction)."""
        fpi = self.flops_per_iter()
        mpi = self.mem_accesses_per_iter() * ELEM
        xpi = self.xfer_elems_per_iter() * ELEM
        opi = self.ops_per_iter()
        return KernelCosts(
            flops_of=lambda n: fpi * n,
            mem_bytes_of=lambda n: mpi * n,
            xfer_bytes_of=lambda n: xpi * n,
            elem_bytes=ELEM,
            ops_of=lambda n: opi * n,
        )

    def mem_comp(self) -> float:
        """Table IV MemComp at this problem size."""
        return self.costs().mem_comp(self.n_iters)

    def data_comp(self) -> float:
        """Table IV DataComp at this problem size."""
        return self.costs().data_comp(self.n_iters)

    # -- execution -------------------------------------------------------------

    def input_region(self, m: MapSpec, rows: IterRange) -> tuple[IterRange, ...]:
        """Global region of array ``m`` a chunk needs (halo-expanded)."""
        arr = self.arrays[m.name]
        dims: list[IterRange] = []
        for d, policy in enumerate(m.policies):
            extent = IterRange(0, arr.shape[d])
            if d == 0 and m.partitioned:
                dims.append(rows.expand(m.halo[0], m.halo[1], clamp=extent))
            else:
                dims.append(extent)
        return tuple(dims)

    def execute_chunk(self, rows: IterRange, *, shared: bool = True) -> float | None:
        """Run ``rows`` through the full buffer path.

        ``shared=True`` models a host device (buffers are views);
        ``shared=False`` models discrete memory (buffers are copies moved by
        explicit copy-in/copy-out).  Returns a partial reduction value for
        reduction kernels, else None.
        """
        if rows.empty:
            return self.identity()
        if not self.iter_space.contains_range(rows):
            raise MappingError(
                f"{self.name}: chunk [{rows.start},{rows.stop}) outside "
                f"iteration space [0,{self.n_iters})"
            )
        buffers: dict[str, DeviceBuffer] = {}
        maps = self.effective_maps()
        for m in maps:
            region = self.input_region(m, rows)
            buf = DeviceBuffer(
                name=m.name,
                host_array=self.arrays[m.name],
                region=region,
                shared=shared,
                storage=None if shared else self._staging_view(m.name, region),
            )
            if m.direction.copies_in:
                buf.copy_in()
            buffers[m.name] = buf
        partial = self.compute(buffers, rows)
        for m in maps:
            if m.direction.copies_out:
                buffers[m.name].copy_out()
        with self._stats_lock:
            self.stats.chunks += 1
            self.stats.iterations += len(rows)
        return partial

    def _staging_view(self, name: str, region: tuple[IterRange, ...]) -> np.ndarray:
        """A reusable discrete-memory staging array shaped for ``region``.

        Each array keeps one flat capacity buffer, grown when a chunk needs
        more; per-chunk views are carved out of it, so dynamic/guided runs
        stop paying an allocation per chunk.  Contents carry over between
        chunks, which is equivalent to the former ``np.empty_like``
        allocation: copy-in overwrites inbound regions and outbound-only
        maps must be fully written by ``compute`` either way.
        """
        host = self.arrays[name]
        shape = tuple(len(r) for r in region)
        size = 1
        for extent in shape:
            size *= extent
        key = (threading.get_ident(), name)
        flat = self._staging.get(key)
        if flat is None or flat.size < size or flat.dtype != host.dtype:
            flat = np.empty(size, dtype=host.dtype)
            self._staging[key] = flat
        return flat[:size].reshape(shape)

    @abstractmethod
    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> float | None:
        """The loop body over ``rows``, on device-local buffers."""

    # -- reductions -------------------------------------------------------------

    @property
    def is_reduction(self) -> bool:
        return False

    def identity(self) -> float | None:
        """Reduction identity (None for non-reduction kernels)."""
        return 0.0 if self.is_reduction else None

    def combine(self, a: float | None, b: float | None) -> float | None:
        """Combine two partial reduction values."""
        if not self.is_reduction:
            return None
        return float(a or 0.0) + float(b or 0.0)

    # -- verification -----------------------------------------------------------

    @abstractmethod
    def reference(self) -> dict[str, np.ndarray] | float:
        """Serial reference result: output arrays, or the reduction value."""

    def snapshot_inputs(self) -> dict[str, np.ndarray]:
        """Copies of all arrays (call before running, for reference checks)."""
        return {k: v.copy() for k, v in self.arrays.items()}
