"""AXPY: ``y[i] += a * x[i]`` — the paper's running example (Figs. 1-2).

Table IV: MemComp 1.5, DataComp 1.5, data-intensive.  Per iteration the
loop does 2 FLOPs (multiply + add), touches 3 elements of memory (load x,
load y, store y) and moves 3 elements over the bus (x in, y in and out):
3/2 = 1.5 on both ratios.
"""

from __future__ import annotations

import numpy as np

from repro.dist.policy import Align
from repro.kernels.base import LoopKernel, MapSpec
from repro.kernels.pool import pooled_inputs
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["AxpyKernel"]


class AxpyKernel(LoopKernel):
    name = "axpy"
    label = "loop"
    table_class = IntensityClass.DATA_INTENSIVE

    def __init__(self, n: int, *, a: float = 2.5, seed: int = 0):
        def _generate() -> dict[str, np.ndarray]:
            rng = np.random.default_rng(seed)
            return {"x": rng.standard_normal(n), "y": rng.standard_normal(n)}

        self.a = float(a)
        super().__init__(n_iters=n, arrays=pooled_inputs(("axpy", n, seed), _generate))

    def maps(self) -> tuple[MapSpec, ...]:
        return (
            MapSpec("x", MapDirection.TO, (Align(self.label),)),
            MapSpec("y", MapDirection.TOFROM, (Align(self.label),)),
        )

    def flops_per_iter(self) -> float:
        return 2.0

    def mem_accesses_per_iter(self) -> float:
        return 3.0  # load x, load y, store y

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> None:
        x = buffers["x"].local_view(rows)
        y = buffers["y"].local_view(rows)
        y += self.a * x
        return None

    def reference(self) -> dict[str, np.ndarray]:
        return {"y": self._initial["y"] + self.a * self._initial["x"]}
