"""Block matching between two frames (Table IV row "Block Matching").

Motion-estimation style kernel: for each pixel ``(i, j)`` compute the best
(minimum) sum-of-absolute-differences between the ``W x W`` block of
``frame1`` anchored at the pixel and candidate blocks of ``frame2``
displaced by up to ``search`` pixels, storing the best SAD.  Iteration =
one row of anchors.

With the defaults (window ``W = 4``, ``search = 0``: one candidate) the
per-pixel counts reproduce the paper's ratios: 3 ops per compared pixel
(subtract, abs, accumulate) x 16 pixels = 48 ops; idealised memory traffic
of the two blocks with ~2x reuse from overlapping anchors = 24 accesses
(MemComp 0.5); bus traffic one pixel of each frame in + one SAD out = 3
elements (DataComp 0.0625 ~= the table's 0.06).  A non-zero ``search``
turns on a genuine candidate search (compute-intensity grows as
``(2*search+1)^2``), used by the extension tests.
"""

from __future__ import annotations

import numpy as np

from repro.dist.policy import Align, Full
from repro.kernels.base import LoopKernel, MapSpec
from repro.kernels.pool import pooled_inputs
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["BlockMatchingKernel"]


class BlockMatchingKernel(LoopKernel):
    name = "bm"
    label = "loop"
    table_class = IntensityClass.COMPUTE_INTENSIVE

    def __init__(self, n: int, *, window: int = 4, search: int = 0, seed: int = 0):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if search < 0:
            raise ValueError(f"search must be >= 0, got {search}")
        if n < window + 2 * search:
            raise ValueError(f"frame size {n} too small for window/search")
        def _generate() -> dict[str, np.ndarray]:
            rng = np.random.default_rng(seed)
            frame1 = rng.random((n, n))
            frame2 = frame1 + 0.05 * rng.standard_normal((n, n))
            return {"frame1": frame1, "frame2": frame2}

        # Anchors where every candidate block stays in-frame.
        self.n = n
        self.window = window
        self.search = search
        self.anchors = n - window - 2 * search + 1
        arrays = pooled_inputs(("bm", n, seed), _generate)
        arrays["sad"] = np.zeros((self.anchors, self.anchors))
        super().__init__(n_iters=self.anchors, arrays=arrays)

    def maps(self) -> tuple[MapSpec, ...]:
        # An anchor row i reads frame1 rows [i, i+W) and frame2 rows
        # [i, i+2*search+W) (candidate row offsets span [0, 2*search]).
        return (
            MapSpec(
                "frame1",
                MapDirection.TO,
                (Align(self.label), Full()),
                halo=(0, self.window - 1),
            ),
            MapSpec(
                "frame2",
                MapDirection.TO,
                (Align(self.label), Full()),
                halo=(0, self.window - 1 + 2 * self.search),
            ),
            MapSpec("sad", MapDirection.FROM, (Align(self.label), Full())),
        )

    @property
    def _candidates(self) -> int:
        return (2 * self.search + 1) ** 2

    def flops_per_iter(self) -> float:
        # 3 ops per compared pixel, per candidate, per anchor; N-ish anchors/row.
        return 3.0 * self.window**2 * self._candidates * self.anchors

    def mem_accesses_per_iter(self) -> float:
        # Two W x W blocks per candidate with ~2x reuse across overlapping
        # anchors (idealised, as in the paper's table).
        return 1.5 * self.window**2 * self._candidates * self.anchors

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> None:
        f1 = buffers["frame1"]
        f2 = buffers["frame2"]
        out = buffers["sad"].local_view(rows)
        w, s = self.window, self.search
        na = self.anchors
        m = len(rows)
        base1 = rows.start - f1.region[0].start
        base2 = rows.start - f2.region[0].start
        best = np.full((m, na), np.inf)
        for di in range(-s, s + 1):
            for dj in range(-s, s + 1):
                sad = np.zeros((m, na))
                for wi in range(w):
                    for wj in range(w):
                        a = f1.data[base1 + wi : base1 + wi + m, s + wj : s + wj + na]
                        b = f2.data[
                            base2 + s + di + wi : base2 + s + di + wi + m,
                            s + dj + wj : s + dj + wj + na,
                        ]
                        sad += np.abs(a - b)
                np.minimum(best, sad, out=best)
        out[:, :] = best
        return None

    def reference(self) -> dict[str, np.ndarray]:
        f1 = self._initial["frame1"]
        f2 = self._initial["frame2"]
        w, s, na = self.window, self.search, self.anchors
        best = np.full((na, na), np.inf)
        for di in range(-s, s + 1):
            for dj in range(-s, s + 1):
                sad = np.zeros((na, na))
                for wi in range(w):
                    for wj in range(w):
                        a = f1[wi : wi + na, s + wj : s + wj + na]
                        b = f2[s + di + wi : s + di + wi + na, s + dj + wj : s + dj + wj + na]
                        sad += np.abs(a - b)
                np.minimum(best, sad, out=best)
        return {"sad": best}
