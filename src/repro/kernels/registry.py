"""Kernel registry and the paper's named workloads.

Table V names the evaluation problem sizes: ``axpy-10M``, ``sum-300M``,
``matvec-48k``, ``matul-6144`` (sic), ``stencil2d-256``, ``bm2d-256``.
``make_kernel`` builds any kernel at any size; ``paper_workload`` builds
the named ones, optionally scaled down (the default for CI-speed
benchmarks — simulated times are unaffected by numeric array size only in
so far as cost is analytic in ``n``, so scaling changes absolute numbers
but not who-wins shapes).
"""

from __future__ import annotations

from typing import Callable

from repro.kernels.axpy import AxpyKernel
from repro.kernels.base import LoopKernel
from repro.kernels.block_matching import BlockMatchingKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.matvec import MatVecKernel
from repro.kernels.stencil import Stencil2DKernel
from repro.kernels.sumreduce import SumKernel

__all__ = ["KERNELS", "make_kernel", "PAPER_SIZES", "paper_workload"]

KERNELS: dict[str, Callable[..., LoopKernel]] = {
    "axpy": AxpyKernel,
    "sum": SumKernel,
    "matvec": MatVecKernel,
    "matmul": MatMulKernel,
    "stencil": Stencil2DKernel,
    "bm": BlockMatchingKernel,
}

#: Table V problem sizes (iteration-space extent per kernel).
PAPER_SIZES: dict[str, int] = {
    "axpy": 10_000_000,
    "sum": 300_000_000,
    "matvec": 48_000,
    "matmul": 6_144,
    "stencil": 256,
    "bm": 256,
}


def make_kernel(name: str, n: int, **kwargs) -> LoopKernel:
    """Instantiate a kernel by short name at iteration-space size ``n``."""
    try:
        factory = KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known: {sorted(KERNELS)}"
        ) from None
    return factory(n, **kwargs)


def paper_workload(name: str, *, scale: float = 1.0, **kwargs) -> LoopKernel:
    """The paper's named workload, with iteration space scaled by ``scale``.

    ``scale=1.0`` reproduces the paper's exact sizes (large: matmul-6144
    allocates ~900 MB of matrices); benchmarks default to a smaller scale.
    """
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    base = PAPER_SIZES[name]
    n = max(16, int(base * scale))
    return make_kernel(name, n, **kwargs)
