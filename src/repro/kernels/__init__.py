"""The paper's six evaluation kernels (Table IV) plus the Fig. 3 Jacobi.

Each kernel pairs a real NumPy computation (run over exactly the chunks the
scheduler assigns, so distribution bugs corrupt outputs) with the analytic
FLOP/byte model that drives simulated cost and reproduces Table IV's
MemComp/DataComp ratios.
"""

from repro.kernels.base import LoopKernel, MapSpec, ChunkCost
from repro.kernels.axpy import AxpyKernel
from repro.kernels.sumreduce import SumKernel
from repro.kernels.matvec import MatVecKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.stencil import Stencil2DKernel
from repro.kernels.block_matching import BlockMatchingKernel
from repro.kernels.pool import (
    INPUT_POOL_ENV,
    clear_pool,
    pool_enabled,
    pool_stats,
    pooled_inputs,
)
from repro.kernels.registry import KERNELS, make_kernel

__all__ = [
    "INPUT_POOL_ENV",
    "clear_pool",
    "pool_enabled",
    "pool_stats",
    "pooled_inputs",
    "LoopKernel",
    "MapSpec",
    "ChunkCost",
    "AxpyKernel",
    "SumKernel",
    "MatVecKernel",
    "MatMulKernel",
    "Stencil2DKernel",
    "BlockMatchingKernel",
    "KERNELS",
    "make_kernel",
]
