"""Matrix-vector product: ``y = A @ x`` over rows (Table IV: balanced).

Per row (one iteration, N columns): 2N FLOPs; N loads of A, N loads of x,
one store of y -> MemComp = (2N+1)/2N = 1 + 0.5/N.  Bus traffic per row:
the A row (N, in) plus y (tofrom: 2) -> DataComp = (N+2)/2N = 0.5 + 1/N;
x is FULL-mapped and broadcast once per device, so it amortises out of the
per-iteration ratio exactly as in the paper's table.
"""

from __future__ import annotations

import numpy as np

from repro.dist.policy import Align, Full
from repro.kernels.base import LoopKernel, MapSpec
from repro.kernels.pool import pooled_inputs
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["MatVecKernel"]


class MatVecKernel(LoopKernel):
    name = "matvec"
    label = "loop"
    table_class = IntensityClass.BALANCED

    def __init__(self, n: int, *, seed: int = 0):
        def _generate() -> dict[str, np.ndarray]:
            rng = np.random.default_rng(seed)
            return {"A": rng.standard_normal((n, n)), "x": rng.standard_normal(n)}

        self.n = n
        arrays = pooled_inputs(("matvec", n, seed), _generate)
        arrays["y"] = np.zeros(n)
        super().__init__(n_iters=n, arrays=arrays)

    def maps(self) -> tuple[MapSpec, ...]:
        return (
            MapSpec("A", MapDirection.TO, (Align(self.label), Full())),
            MapSpec("x", MapDirection.TO, (Full(),)),
            MapSpec("y", MapDirection.TOFROM, (Align(self.label),)),
        )

    def flops_per_iter(self) -> float:
        return 2.0 * self.n

    def mem_accesses_per_iter(self) -> float:
        return 2.0 * self.n + 1.0  # A row + x + y store

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> None:
        a = buffers["A"].local_view(rows)
        x = buffers["x"].data
        y = buffers["y"].local_view(rows)
        y[:] = a @ x
        return None

    def reference(self) -> dict[str, np.ndarray]:
        return {"y": self._initial["A"] @ self._initial["x"]}
