"""Sum: ``s = sum(x[i])`` — data-intensive reduction (Table IV: 1 / 1).

Per iteration: 1 FLOP (add), 1 memory load, 1 element over the bus.  Each
device produces a partial sum; the runtime combines partials on the host,
mirroring OpenMP's ``reduction(+:s)`` across devices.
"""

from __future__ import annotations

import numpy as np

from repro.dist.policy import Align
from repro.kernels.base import LoopKernel, MapSpec
from repro.kernels.pool import pooled_inputs
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["SumKernel"]


class SumKernel(LoopKernel):
    name = "sum"
    label = "loop"
    table_class = IntensityClass.DATA_INTENSIVE
    # Atomics/multi-pass reductions on Kepler-generation devices run well
    # below streaming bandwidth; the Table IV accounting stays at 1 access
    # per iteration, but execution pays ~4x that traffic.
    device_mem_factor = 4.0

    def __init__(self, n: int, *, seed: int = 0):
        def _generate() -> dict[str, np.ndarray]:
            rng = np.random.default_rng(seed)
            return {"x": rng.standard_normal(n)}

        super().__init__(n_iters=n, arrays=pooled_inputs(("sum", n, seed), _generate))

    def maps(self) -> tuple[MapSpec, ...]:
        return (MapSpec("x", MapDirection.TO, (Align(self.label),)),)

    @property
    def is_reduction(self) -> bool:
        return True

    def flops_per_iter(self) -> float:
        return 1.0

    def mem_accesses_per_iter(self) -> float:
        return 1.0

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> float:
        return float(buffers["x"].local_view(rows).sum())

    def reference(self) -> float:
        return float(self._initial["x"].sum())
