"""Matrix multiplication: ``C = A @ B`` over rows (Table IV: compute-intensive).

Per row (one iteration, 2N^2 FLOPs) the idealised streaming counts are
N loads of A's row, N amortised loads of B (N^2 total over N iterations),
N stores of C's row: MemComp = 3N / 2N^2 = 1.5/N.  Bus traffic counts all
three matrices once — A and C rows per iteration plus B broadcast, also
amortised: DataComp = 3N / 2N^2 = 1.5/N, matching the paper's table.
"""

from __future__ import annotations

import numpy as np

from repro.dist.policy import Align, Full
from repro.kernels.base import LoopKernel, MapSpec
from repro.kernels.pool import pooled_inputs
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["MatMulKernel"]


class MatMulKernel(LoopKernel):
    name = "matmul"
    label = "loop"
    table_class = IntensityClass.COMPUTE_INTENSIVE

    def __init__(self, n: int, *, seed: int = 0):
        def _generate() -> dict[str, np.ndarray]:
            rng = np.random.default_rng(seed)
            return {"A": rng.standard_normal((n, n)), "B": rng.standard_normal((n, n))}

        self.n = n
        arrays = pooled_inputs(("matmul", n, seed), _generate)
        arrays["C"] = np.zeros((n, n))
        super().__init__(n_iters=n, arrays=arrays)

    def maps(self) -> tuple[MapSpec, ...]:
        return (
            MapSpec("A", MapDirection.TO, (Align(self.label), Full())),
            MapSpec("B", MapDirection.TO, (Full(), Full())),
            MapSpec("C", MapDirection.FROM, (Align(self.label), Full())),
        )

    def flops_per_iter(self) -> float:
        return 2.0 * self.n * self.n

    def chunk_efficiency(self, n: int) -> float:
        # GEMM needs a deep row-block to reach sustained rate: small chunks
        # under-fill the device (half-efficiency point at 64 rows).
        return n / (n + 64.0)

    def mem_accesses_per_iter(self) -> float:
        # A row (N) + B amortised (N^2 over N iters) + C row (N).
        return 3.0 * self.n

    def xfer_elems_per_iter(self) -> float:
        # The paper's DataComp counts the broadcast B once, amortised over
        # the loop (A + B + C = 3N^2 elements for 2N^3 ops -> 1.5/N).  The
        # per-chunk simulation charges B separately (replicated_in_bytes);
        # this override only affects the Table IV ratio.
        return super().xfer_elems_per_iter() + float(self.n)

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> None:
        a = buffers["A"].local_view(rows)
        b = buffers["B"].data
        c = buffers["C"].local_view(rows)
        c[:] = a @ b
        return None

    def reference(self) -> dict[str, np.ndarray]:
        return {"C": self._initial["A"] @ self._initial["B"]}
