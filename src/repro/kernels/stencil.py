"""13-point 2-D star stencil over an NxN grid (Table IV row "Stencil").

A radius-3 star (centre + 3 neighbours in each of the 4 directions = 13
points), iterated over rows with ``collapse``-style flattening.  Per grid
point: 13 fused multiply-adds counted as 26 FLOPs, 13 loads + 1 store = 14
memory accesses (MemComp ~= 0.54, the paper rounds to 0.5), and 2 bus
elements (point in, point out) -> DataComp = 2/26 = 1/13 exactly as in the
table.  Chunks need a 3-row halo of the input, exercising the halo-aware
buffer path; the paper tags this kernel "neighbourhood communication".
"""

from __future__ import annotations

import numpy as np

from repro.dist.policy import Align, Full
from repro.kernels.base import LoopKernel, MapSpec
from repro.kernels.pool import pooled_inputs
from repro.memory.buffer import DeviceBuffer
from repro.memory.space import MapDirection
from repro.model.roofline import IntensityClass
from repro.util.ranges import IterRange

__all__ = ["Stencil2DKernel", "RADIUS", "WEIGHTS"]

RADIUS = 3
#: centre weight + one weight per ring (applied to all 4 neighbours of a ring)
WEIGHTS = (0.5, 0.08, 0.03, 0.014)


class Stencil2DKernel(LoopKernel):
    name = "stencil"
    label = "loop"
    table_class = IntensityClass.COMPUTE_INTENSIVE

    def __init__(self, n: int, *, seed: int = 0):
        if n <= 2 * RADIUS:
            raise ValueError(f"stencil grid must exceed {2 * RADIUS}, got {n}")
        def _generate() -> dict[str, np.ndarray]:
            rng = np.random.default_rng(seed)
            return {"u_in": rng.standard_normal((n, n))}

        self.n = n
        arrays = pooled_inputs(("stencil", n, seed), _generate)
        # boundary rows/cols keep their input values
        arrays["u_out"] = arrays["u_in"].copy()
        super().__init__(n_iters=n, arrays=arrays)

    def maps(self) -> tuple[MapSpec, ...]:
        return (
            MapSpec(
                "u_in",
                MapDirection.TO,
                (Align(self.label), Full()),
                halo=(RADIUS, RADIUS),
            ),
            MapSpec("u_out", MapDirection.FROM, (Align(self.label), Full())),
        )

    def flops_per_iter(self) -> float:
        return 26.0 * self.n  # 13 FMAs per point, N points per row

    def mem_accesses_per_iter(self) -> float:
        return 14.0 * self.n  # 13 loads + 1 store per point

    def compute(self, buffers: dict[str, DeviceBuffer], rows: IterRange) -> None:
        src = buffers["u_in"]
        dst = buffers["u_out"]
        # The FROM-mapped output buffer starts uninitialised on a discrete
        # device; the kernel must define every point of its chunk, so
        # boundary rows/columns are copied through from the input first.
        whole = dst.local_view(rows)
        src_base = rows.start - src.region[0].start
        whole[:, :] = src.data[src_base : src_base + len(rows), :]
        interior = rows.intersect(IterRange(RADIUS, self.n - RADIUS))
        if interior.empty:
            return None
        out = dst.local_view(interior)
        # Local row index of `interior.start` inside the halo-padded buffer.
        base = interior.start - src.region[0].start
        m = len(interior)
        js = slice(RADIUS, self.n - RADIUS)
        centre = src.data[base : base + m, js]
        acc = WEIGHTS[0] * centre
        for k in range(1, RADIUS + 1):
            w = WEIGHTS[k]
            acc = acc + w * (
                src.data[base - k : base - k + m, js]
                + src.data[base + k : base + k + m, js]
                + src.data[base : base + m, RADIUS - k : self.n - RADIUS - k]
                + src.data[base : base + m, RADIUS + k : self.n - RADIUS + k]
            )
        out[:, js] = acc
        return None

    def reference(self) -> dict[str, np.ndarray]:
        u = self._initial["u_in"]
        out = u.copy()
        n = self.n
        js = slice(RADIUS, n - RADIUS)
        i0, i1 = RADIUS, n - RADIUS
        acc = WEIGHTS[0] * u[i0:i1, js]
        for k in range(1, RADIUS + 1):
            w = WEIGHTS[k]
            acc = acc + w * (
                u[i0 - k : i1 - k, js]
                + u[i0 + k : i1 + k, js]
                + u[i0:i1, RADIUS - k : n - RADIUS - k]
                + u[i0:i1, RADIUS + k : n - RADIUS + k]
            )
        out[i0:i1, js] = acc
        return {"u_out": out}
