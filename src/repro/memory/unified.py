"""Unified (managed) memory cost model — the paper's §V.C observation.

On the paper's Kepler-generation GPUs, unified memory migrates whole
managed allocations at kernel-launch granularity through the driver, with
far lower effective bandwidth than a pipelined explicit ``cudaMemcpy``; the
paper measured "maximum of 10 and 18 times slowdown in our BLAS examples"
and therefore defaults to explicit movement.  This model reproduces that
regime: migration achieves a small fraction of the link bandwidth and pays
a per-buffer driver cost, so bandwidth-dominated (BLAS-1/2) offloads come
out an order of magnitude slower.

The ablation benchmark ``benchmarks/test_ablation_unified_memory.py``
regenerates the 10-18x window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.interconnect import Link

__all__ = ["UnifiedMemoryModel"]


@dataclass(frozen=True)
class UnifiedMemoryModel:
    """Cost of demand-migrated access to a managed buffer.

    ``bandwidth_fraction`` - fraction of the explicit-copy link bandwidth
      that driver-managed migration achieves (Kepler-era UVM: ~1/12).
    ``per_buffer_overhead_s`` - driver bookkeeping per managed buffer per
      kernel launch.
    """

    bandwidth_fraction: float = 1.0 / 12.0
    per_buffer_overhead_s: float = 50e-6

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_fraction <= 1:
            raise ValueError("bandwidth_fraction must be in (0, 1]")
        if self.per_buffer_overhead_s < 0:
            raise ValueError("per_buffer_overhead_s must be >= 0")

    def migration_time(self, link: Link, nbytes: float) -> float:
        """Time to fault/migrate ``nbytes`` of managed data across ``link``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        if link.is_shared:
            return 0.0
        slow_link = Link(
            latency_s=link.latency_s,
            bandwidth_gbs=link.bandwidth_gbs * self.bandwidth_fraction,
        )
        return self.per_buffer_overhead_s + slow_link.transfer_time(nbytes)

    def slowdown_vs_explicit(self, link: Link, nbytes: float) -> float:
        """Ratio migrated/explicit for one buffer (inf-safe)."""
        explicit = link.transfer_time(nbytes)
        if explicit == 0.0:
            return 1.0
        return self.migration_time(link, nbytes) / explicit
