"""Memory model: device buffers, map semantics, copy-vs-share decisions,
the unified-memory cost model behind the paper's section V.C claim, and
the residency ledger / data-placement plans behind target-data regions."""

from repro.memory.space import MapDirection
from repro.memory.buffer import DeviceBuffer
from repro.memory.mapper import DataMapper, MapDecision
from repro.memory.residency import (
    DATA_VERSION,
    DataPlacementPlan,
    RegionResidency,
    ResidencyLedger,
)
from repro.memory.unified import UnifiedMemoryModel

__all__ = [
    "MapDirection",
    "DeviceBuffer",
    "DataMapper",
    "MapDecision",
    "UnifiedMemoryModel",
    "DATA_VERSION",
    "ResidencyLedger",
    "DataPlacementPlan",
    "RegionResidency",
]
