"""Memory model: device buffers, map semantics, copy-vs-share decisions,
and the unified-memory cost model behind the paper's section V.C claim."""

from repro.memory.space import MapDirection
from repro.memory.buffer import DeviceBuffer
from repro.memory.mapper import DataMapper, MapDecision
from repro.memory.unified import UnifiedMemoryModel

__all__ = [
    "MapDirection",
    "DeviceBuffer",
    "DataMapper",
    "MapDecision",
    "UnifiedMemoryModel",
]
