"""Device buffers: the numerically real half of the simulation.

A :class:`DeviceBuffer` is a device's storage for its subregion of a host
array.  For a device sharing the host address space the buffer is a *view*
(writes land in the host array directly — the runtime "shares" the data);
for discrete memory it is a *copy*, and ``copy_in`` / ``copy_out`` move
bytes explicitly, exactly like the paper's runtime.  Index translation from
global array coordinates to the buffer's local coordinates is what the
paper's compiler book-keeping variables do; here :meth:`global_to_local`
carries the subregion offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MappingError
from repro.util.ranges import IterRange

__all__ = ["DeviceBuffer"]


@dataclass
class DeviceBuffer:
    """Storage for one mapped (sub)array on one device.

    ``storage`` optionally supplies pre-allocated discrete-memory backing
    (a staging buffer reused across chunks); it must match the region's
    shape and the host array's dtype.  Ignored for shared buffers, which
    are always views of host memory.
    """

    name: str
    host_array: np.ndarray
    region: tuple[IterRange, ...]  # per-dim global ranges held by this buffer
    shared: bool  # view of host memory vs discrete copy
    storage: np.ndarray | None = None
    data: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if len(self.region) != self.host_array.ndim:
            raise MappingError(
                f"buffer {self.name!r}: region rank {len(self.region)} != "
                f"array rank {self.host_array.ndim}"
            )
        for dim, r in enumerate(self.region):
            if r.start < 0 or r.stop > self.host_array.shape[dim]:
                raise MappingError(
                    f"buffer {self.name!r}: dim {dim} range [{r.start},{r.stop}) "
                    f"outside array extent {self.host_array.shape[dim]}"
                )
        if self.shared:
            self.data = self.host_array[self._global_index()]  # a view: writes are shared
        elif self.storage is not None:
            shape = tuple(len(r) for r in self.region)
            if self.storage.shape != shape or self.storage.dtype != self.host_array.dtype:
                raise MappingError(
                    f"buffer {self.name!r}: storage shape/dtype "
                    f"{self.storage.shape}/{self.storage.dtype} does not match "
                    f"region {shape}/{self.host_array.dtype}"
                )
            self.data = self.storage
        else:
            self.data = np.empty_like(self.host_array[self._global_index()])

    def _global_index(self) -> tuple[slice, ...]:
        return tuple(r.as_slice() for r in self.region)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def copy_in(self) -> int:
        """Host -> device. Returns bytes moved (0 when shared)."""
        if self.shared:
            return 0
        np.copyto(self.data, self.host_array[self._global_index()])
        return self.nbytes

    def copy_out(self) -> int:
        """Device -> host. Returns bytes moved (0 when shared)."""
        if self.shared:
            return 0
        self.host_array[self._global_index()] = self.data
        return self.nbytes

    def copy_out_rows(self, rows: IterRange) -> int:
        """Device -> host for a global row range only (per-chunk results).

        Used by chunked schedulers that return each chunk's output as soon
        as it finishes (enabling transfer/compute overlap).  ``rows``
        indexes the first dimension in *global* coordinates.
        """
        if self.shared:
            return 0
        r0 = self.region[0]
        sub = rows.intersect(r0)
        if sub.empty:
            return 0
        local = sub.shift(-r0.start)
        rest = tuple(r.as_slice() for r in self.region[1:])
        self.host_array[(sub.as_slice(), *rest)] = self.data[(local.as_slice(), *rest_local(self.region[1:]))]
        row_bytes = self.data[0].nbytes if self.data.ndim > 0 and self.data.shape[0] else 0
        return len(sub) * row_bytes

    def global_to_local(self, index: tuple[int, ...]) -> tuple[int, ...]:
        """Translate a global element coordinate into buffer coordinates."""
        if len(index) != len(self.region):
            raise MappingError(f"rank mismatch indexing buffer {self.name!r}")
        local = []
        for dim, (i, r) in enumerate(zip(index, self.region)):
            if i not in r:
                raise MappingError(
                    f"buffer {self.name!r}: global index {i} outside dim-{dim} "
                    f"range [{r.start},{r.stop})"
                )
            local.append(i - r.start)
        return tuple(local)

    def local_view(self, rows: IterRange) -> np.ndarray:
        """View of the buffer covering a *global* first-dim range."""
        r0 = self.region[0]
        if not r0.contains_range(rows):
            raise MappingError(
                f"buffer {self.name!r}: rows [{rows.start},{rows.stop}) outside "
                f"held range [{r0.start},{r0.stop})"
            )
        local = rows.shift(-r0.start)
        return self.data[local.as_slice()]


def rest_local(region_tail: tuple[IterRange, ...]) -> tuple[slice, ...]:
    """Local slices for trailing dims (they always hold their full range)."""
    return tuple(slice(0, len(r)) for r in region_tail)
