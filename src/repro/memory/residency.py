"""Residency ledger and data-placement plans (paper §III / Fig. 3).

The paper's ``parallel target data`` regions keep *ranges* of arrays
resident on each device: FULL maps replicate, BLOCK/ALIGN maps place one
owner range per device, and later offloads only pay the bus for data a
chunk touches that is **not** already there.  This module makes that an
explicit subsystem:

* :class:`ResidencyLedger` — per-(device, array) reference-counted mapped
  row ranges (like the real runtime's refcounted target-data buffers)
  plus the subset of rows whose device copy is currently *valid*.
  Nested regions retain the same ranges again; a range is unmapped (and
  eligible for copy-out) only when its refcount drops to zero.
* :class:`DataPlacementPlan` — the per-device owner ranges a region
  derives from its :mod:`repro.dist` policies: FULL replicates, BLOCK and
  CYCLIC split, ALIGN copies another entry's placement (scaled by its
  ratio), AUTO follows the loop distribution's shape (BLOCK at plan time).
* :class:`RegionResidency` — a view binding the runtime's ledger to one
  offload's device selection; the execution core charges each chunk the
  *delta* between what it touches and what is resident, schedulers read
  plan-aware data-cost terms from it, and device dropout invalidates the
  lost device's entries through it.

Validity semantics: entry marks planned ranges valid for ``to``/``tofrom``
maps only (``alloc``/``from`` storage exists but holds no data yet); a
kernel write marks the writer's rows valid and invalidates every other
device's copy of those rows; a halo exchange re-validates boundary rows on
the neighbour.  All row arithmetic is clamped to the array's registered
extent.

Everything here is deterministic and free of wall-clock state, so ledger
decisions are identical across the virtual and threaded backends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.dist.policy import Align, Block, Cyclic, Full, Policy
from repro.errors import MappingError
from repro.util.ranges import IterRange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.base import LoopKernel

__all__ = [
    "DATA_VERSION",
    "ResidencyLedger",
    "DataPlacementPlan",
    "RegionResidency",
    "ClusterResidency",
]

#: Version of the data-placement layer.  Part of the sweep-cache
#: fingerprint: bump on any change that could perturb transfer charging.
DATA_VERSION = "1"


# ---------------------------------------------------------------------------
# Interval arithmetic over half-open (start, stop) spans
# ---------------------------------------------------------------------------

_Span = tuple[int, int]


def _merge(spans: Iterable[_Span]) -> list[_Span]:
    """Sorted union of spans, empty ones dropped, adjacents coalesced."""
    out: list[list[int]] = []
    for s, e in sorted(spans):
        if s >= e:
            continue
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1][1] = e
        else:
            out.append([s, e])
    return [(s, e) for s, e in out]


def _subtract(a: list[_Span], b: list[_Span]) -> list[_Span]:
    """Rows of ``a`` not covered by ``b`` (both merged)."""
    out: list[_Span] = []
    for s, e in a:
        cur = s
        for bs, be in b:
            if be <= cur:
                continue
            if bs >= e:
                break
            if bs > cur:
                out.append((cur, bs))
            cur = max(cur, be)
            if cur >= e:
                break
        if cur < e:
            out.append((cur, e))
    return out


def _intersect(a: list[_Span], b: list[_Span]) -> list[_Span]:
    """Rows covered by both ``a`` and ``b`` (both merged)."""
    out: list[_Span] = []
    i = j = 0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if s < e:
            out.append((s, e))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _count(spans: list[_Span]) -> int:
    return sum(e - s for s, e in spans)


_Seg = tuple[int, int, int]  # (start, stop, refs)


def _overlay(
    segs: list[_Seg], spans: list[_Span], delta: int
) -> tuple[list[_Seg], list[_Span]]:
    """Add ``delta`` references over ``spans`` of a disjoint segment list.

    Returns the new segment list and the spans whose refcount reached
    zero (always empty for ``delta > 0``).  Releasing rows that were
    never retained is a ledger invariant violation and raises.
    """
    bounds = sorted(
        {p for s, e, _ in segs for p in (s, e)}
        | {p for s, e in spans for p in (s, e)}
    )
    new: list[list[int]] = []
    dropped: list[_Span] = []
    for lo, hi in zip(bounds, bounds[1:]):
        refs = 0
        for s, e, r in segs:
            if s <= lo and hi <= e:
                refs = r
                break
        inside = any(s <= lo and hi <= e for s, e in spans)
        nr = refs + delta if inside else refs
        if nr < 0:
            raise MappingError(
                f"residency ledger: rows [{lo},{hi}) released more times "
                "than they were retained"
            )
        if inside and refs > 0 and nr == 0:
            dropped.append((lo, hi))
        if nr > 0:
            if new and new[-1][1] == lo and new[-1][2] == nr:
                new[-1][1] = hi
            else:
                new.append([lo, hi, nr])
    return [(s, e, r) for s, e, r in new], _merge(dropped)


def _spans(ranges: Iterable[IterRange]) -> list[_Span]:
    return _merge((r.start, r.stop) for r in ranges)


def _ranges(spans: list[_Span]) -> list[IterRange]:
    return [IterRange(s, e) for s, e in spans]


# ---------------------------------------------------------------------------
# The ledger
# ---------------------------------------------------------------------------

class ResidencyLedger:
    """Which rows of which named arrays live (and are valid) on which device.

    Keys are array *names* — the same identity target-data maps and kernel
    maps use — and global device ids.  Mapped ranges are reference-counted
    so nested regions compose like real target-data regions: the inner
    region's entry of an already-mapped range moves nothing, and only the
    release that drops a range to zero references unmaps it (making it the
    copy-out candidate).  Thread-safe: the wall-clock backend charges
    chunks from concurrent proxy threads.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._rows: dict[str, int] = {}
        self._row_bytes: dict[str, int] = {}
        self._refs: dict[tuple[int, str], list[_Seg]] = {}
        self._valid: dict[tuple[int, str], list[_Span]] = {}

    # -- geometry ------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when no array is mapped anywhere (all regions drained)."""
        return not self._rows

    def known(self, name: str) -> bool:
        """Is ``name`` currently mapped (by any open region)?"""
        return name in self._rows

    def arrays(self) -> tuple[str, ...]:
        return tuple(sorted(self._rows))

    def rows_of(self, name: str) -> int:
        return self._rows[name]

    def row_bytes(self, name: str) -> int:
        return self._row_bytes[name]

    def register(self, name: str, rows: int, row_bytes: int) -> None:
        """Declare an array's dim-0 extent and bytes per row.

        Idempotent for matching geometry; a second region mapping the same
        name with a different shape is a mapping conflict.
        """
        with self._lock:
            if name in self._rows:
                if (rows, row_bytes) != (self._rows[name], self._row_bytes[name]):
                    raise MappingError(
                        f"array {name!r} is already mapped with "
                        f"{self._rows[name]} rows x {self._row_bytes[name]} B, "
                        f"cannot remap as {rows} rows x {row_bytes} B"
                    )
                return
            self._rows[name] = int(rows)
            self._row_bytes[name] = int(row_bytes)

    def _clamped(self, name: str, ranges: Iterable[IterRange]) -> list[_Span]:
        rows = self._rows[name]
        return _merge(
            (max(0, r.start), min(rows, r.stop)) for r in ranges
        )

    # -- reference counting --------------------------------------------------

    def retain(self, dev: int, name: str, ranges: Iterable[IterRange]) -> None:
        """Add one mapping reference over ``ranges`` on ``dev``."""
        with self._lock:
            spans = self._clamped(name, ranges)
            if not spans:
                return
            key = (dev, name)
            new, _ = _overlay(self._refs.get(key, []), spans, +1)
            self._refs[key] = new

    def release(
        self, dev: int, name: str, ranges: Iterable[IterRange]
    ) -> tuple[list[IterRange], int]:
        """Drop one mapping reference over ``ranges`` on ``dev``.

        Returns ``(unmapped, valid_rows)``: the ranges whose refcount
        reached zero (the device buffer is gone for them) and how many of
        those rows held valid data — the copy-out candidates.  When the
        device's last reference for ``name`` goes, all its validity state
        for the array goes with it; when the array's last reference across
        *all* devices goes, its geometry is forgotten too.
        """
        with self._lock:
            if name not in self._rows:
                return [], 0
            key = (dev, name)
            spans = self._clamped(name, ranges)
            new, unmapped = _overlay(self._refs.get(key, []), spans, -1)
            valid = self._valid.get(key, [])
            n_valid = _count(_intersect(valid, unmapped))
            if new:
                self._refs[key] = new
                remaining = _subtract(valid, unmapped)
                if remaining:
                    self._valid[key] = remaining
                else:
                    self._valid.pop(key, None)
            else:
                self._refs.pop(key, None)
                self._valid.pop(key, None)
            if not any(k[1] == name for k in self._refs):
                del self._rows[name]
                del self._row_bytes[name]
                for k in [k for k in self._valid if k[1] == name]:
                    del self._valid[k]
            return _ranges(unmapped), n_valid

    def retained(self, dev: int, name: str) -> list[IterRange]:
        """Ranges currently mapped (refcount > 0) on ``dev``."""
        with self._lock:
            return _ranges(
                _merge((s, e) for s, e, _ in self._refs.get((dev, name), []))
            )

    def retained_count(self, dev: int, name: str) -> int:
        with self._lock:
            return sum(e - s for s, e, _ in self._refs.get((dev, name), []))

    # -- validity ------------------------------------------------------------

    def mark_valid(self, dev: int, name: str, ranges: Iterable[IterRange]) -> None:
        """The device's copy of ``ranges`` now holds the data."""
        with self._lock:
            spans = self._clamped(name, ranges)
            if not spans:
                return
            key = (dev, name)
            self._valid[key] = _merge(self._valid.get(key, []) + spans)

    def invalidate(self, dev: int, name: str, ranges: Iterable[IterRange]) -> None:
        """The device's copy of ``ranges`` is stale (or never arrived)."""
        with self._lock:
            if name not in self._rows:
                return
            key = (dev, name)
            valid = self._valid.get(key)
            if not valid:
                return
            remaining = _subtract(valid, self._clamped(name, ranges))
            if remaining:
                self._valid[key] = remaining
            else:
                del self._valid[key]

    def note_write(self, dev: int, name: str, rows: IterRange) -> None:
        """``dev`` wrote ``rows``: its copy becomes the valid one and every
        other device's copy of those rows goes stale."""
        with self._lock:
            self.mark_valid(dev, name, [rows])
            others = {
                k[0]
                for src in (self._valid, self._refs)
                for k in src
                if k[1] == name and k[0] != dev
            }
            for other in others:
                self.invalidate(other, name, [rows])

    def invalidate_device(self, dev: int) -> int:
        """Drop all validity on ``dev`` (dropout: contents are lost; the
        mappings themselves survive until their regions release them).
        Returns the number of rows invalidated."""
        with self._lock:
            keys = [k for k in self._valid if k[0] == dev]
            lost = 0
            for k in keys:
                lost += _count(self._valid[k])
                del self._valid[k]
            return lost

    def valid_rows(self, dev: int, name: str) -> list[IterRange]:
        with self._lock:
            return _ranges(list(self._valid.get((dev, name), [])))

    def valid_count(
        self, dev: int, name: str, ranges: Iterable[IterRange]
    ) -> int:
        with self._lock:
            if name not in self._rows:
                return 0
            return _count(
                _intersect(
                    self._valid.get((dev, name), []), self._clamped(name, ranges)
                )
            )

    def missing_rows(
        self, dev: int, name: str, ranges: Iterable[IterRange]
    ) -> list[IterRange]:
        """Rows of ``ranges`` whose data is *not* valid on ``dev``."""
        with self._lock:
            return _ranges(
                _subtract(
                    self._clamped(name, ranges),
                    self._valid.get((dev, name), []),
                )
            )

    def missing_count(
        self, dev: int, name: str, ranges: Iterable[IterRange]
    ) -> int:
        with self._lock:
            return _count(
                _subtract(
                    self._clamped(name, ranges),
                    self._valid.get((dev, name), []),
                )
            )

    def missing_everywhere(
        self, devs: Iterable[int], name: str, ranges: Iterable[IterRange]
    ) -> int:
        """Rows of ``ranges`` valid on *none* of ``devs`` — the rows whose
        staged copy is gone everywhere (never staged, or lost with a
        dropped device) and must cross the bus again.  Rows valid on any
        sibling are refreshed host-mediated within the region, for free."""
        with self._lock:
            if name not in self._rows:
                return 0
            want = self._clamped(name, ranges)
            for d in devs:
                if not want:
                    return 0
                want = _subtract(want, self._valid.get((d, name), []))
            return _count(want)

    def describe(self) -> dict:
        """Deterministic snapshot (debugging / tests)."""
        with self._lock:
            return {
                "arrays": {
                    n: {"rows": self._rows[n], "row_bytes": self._row_bytes[n]}
                    for n in sorted(self._rows)
                },
                "refs": {
                    f"{d}:{n}": [(s, e, r) for s, e, r in segs]
                    for (d, n), segs in sorted(self._refs.items())
                },
                "valid": {
                    f"{d}:{n}": list(spans)
                    for (d, n), spans in sorted(self._valid.items())
                },
            }


# ---------------------------------------------------------------------------
# Placement plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DataPlacementPlan:
    """Per-device owner ranges for every array of one target-data region.

    Derived once at region entry from the region's :mod:`repro.dist`
    policies (paper Table I): FULL replicates the whole extent on every
    device, BLOCK/CYCLIC split it, ALIGN copies the placement of its
    target entry scaled by the ALIGN ratio, and AUTO — whose loop split
    is only decided by the scheduler at offload time — takes the BLOCK
    shape the runtime's schedulers converge to.  Unresolvable ALIGN
    targets (loop labels, cycles) fall back to BLOCK the same way.
    """

    ndev: int
    placements: Mapping[str, tuple[tuple[IterRange, ...], ...]]

    def arrays(self) -> tuple[str, ...]:
        return tuple(sorted(self.placements))

    def ranges(self, name: str, dev: int) -> tuple[IterRange, ...]:
        """Owner ranges of ``name`` on local device index ``dev``."""
        return self.placements[name][dev]

    def placed_rows(self, name: str, dev: int) -> int:
        return sum(len(r) for r in self.placements[name][dev])

    def describe(self) -> dict:
        return {
            name: [
                [(r.start, r.stop) for r in per_dev]
                for per_dev in self.placements[name]
            ]
            for name in self.arrays()
        }

    @classmethod
    def derive(
        cls, entries: Mapping[str, tuple[int, Policy]], ndev: int
    ) -> "DataPlacementPlan":
        """Build the plan for ``entries`` (name -> (dim-0 rows, policy))."""
        if ndev <= 0:
            raise MappingError(f"placement plan needs ndev > 0, got {ndev}")
        memo: dict[str, tuple[tuple[IterRange, ...], ...]] = {}
        resolving: set[str] = set()

        def split_static(
            rows: int, policy: Policy
        ) -> tuple[tuple[IterRange, ...], ...]:
            parts = policy.split(IterRange(0, rows), ndev)
            return tuple(
                tuple(r for r in ranges if not r.empty) for ranges in parts
            )

        def resolve(name: str) -> tuple[tuple[IterRange, ...], ...]:
            if name in memo:
                return memo[name]
            rows, policy = entries[name]
            region = IterRange(0, rows)
            if isinstance(policy, Full):
                placed = tuple((region,) for _ in range(ndev))
            elif isinstance(policy, (Block, Cyclic)):
                placed = split_static(rows, policy)
            elif isinstance(policy, Align):
                target = policy.target
                if (
                    target in entries
                    and target != name
                    and target not in resolving
                ):
                    resolving.add(name)
                    base = resolve(target)
                    resolving.discard(name)
                    ratio = policy.ratio

                    def s(x: int) -> int:
                        return min(rows, max(0, round(x * ratio)))

                    placed = tuple(
                        tuple(
                            sr
                            for r in per_dev
                            for sr in [IterRange(s(r.start), s(r.stop))]
                            if not sr.empty
                        )
                        for per_dev in base
                    )
                else:
                    # Loop-label target (resolved only at offload time) or
                    # a cycle: the schedulers' static shape is BLOCK.
                    placed = split_static(rows, Block())
            else:  # Auto and anything future: follow the loop shape
                placed = split_static(rows, Block())
            memo[name] = placed
            return placed

        for name in entries:
            resolve(name)
        return cls(ndev=ndev, placements=dict(memo))


# ---------------------------------------------------------------------------
# The per-offload view
# ---------------------------------------------------------------------------

class RegionResidency:
    """A ledger bound to one offload's device selection.

    The execution core, the scheduler context and the halo planner all
    address devices by *local* index (position in the offload's device
    list); the ledger speaks global device ids.  This view translates and
    packages the three questions the data path asks:

    * what does this chunk cost, given what is already resident
      (:meth:`charge_chunk`)?
    * what are a device's steady-state per-iteration / fixed data costs
      (:meth:`per_iter_xfer_bytes`, :meth:`replicated_in_bytes`)?
    * a device died — forget everything it held (:meth:`device_lost`).
    """

    __slots__ = ("ledger", "ids")

    def __init__(self, ledger: ResidencyLedger, device_ids: Iterable[int]):
        self.ledger = ledger
        self.ids = tuple(device_ids)

    def global_id(self, local_dev: int) -> int:
        return self.ids[local_dev]

    # -- engine-core charging ------------------------------------------------

    def charge_chunk(
        self,
        local_dev: int,
        kernel: "LoopKernel",
        chunk: IterRange,
        *,
        first_chunk: bool,
    ) -> tuple[float, float, float, float]:
        """Bytes one chunk moves and elides on ``local_dev``.

        Returns ``(bytes_in, bytes_out, elided_in, elided_out)``.  For
        ledger-known arrays the inbound charge is the halo-expanded rows
        the chunk reads minus what is valid on *any* region device — the
        region's host image mediates sibling refreshes for free (the same
        abstraction the explicit halo-exchange cost sits on top of), so a
        chunk pays only for rows that were never staged (reading an
        ALLOC/FROM array before any write) or whose only valid copy died
        with a dropout; read rows are then recorded as the reader's valid
        copy so a retry or re-adoption stays free.  Outbound rows stay on
        the device until the region drains: elided, and recorded as the
        writer's exclusive copy (``note_write`` stales the siblings, which
        is what halo planning measures).  Arrays the ledger does not know
        follow the flat per-chunk model (full rows in, full rows out),
        matching the pre-ledger engine bit for bit.
        """
        led = self.ledger
        dev = self.ids[local_dev]
        bytes_in = bytes_out = 0.0
        elided_in = elided_out = 0.0
        resident = kernel.resident
        for m in kernel.effective_maps():
            name = m.name
            known = led.known(name)
            if m.partitioned:
                if known:
                    row_b = led.row_bytes(name)
                    region0 = kernel.input_region(m, chunk)[0]
                    if m.direction.copies_in:
                        miss = led.missing_everywhere(self.ids, name, [region0])
                        bytes_in += row_b * miss
                        elided_in += row_b * (len(region0) - miss)
                        led.mark_valid(dev, name, [region0])
                    if m.direction.copies_out:
                        elided_out += row_b * len(chunk)
                        led.note_write(dev, name, chunk)
                elif name in resident:
                    continue  # legacy boolean residency: free, untracked
                else:
                    row_b = kernel.row_nbytes(name)
                    n = len(chunk)
                    if m.direction.copies_in:
                        bytes_in += row_b * n
                    if m.direction.copies_out:
                        bytes_out += row_b * n
            else:  # FULL map: inbound replica on first chunk only
                if m.direction.copies_in and first_chunk:
                    if known:
                        whole = IterRange(0, led.rows_of(name))
                        miss = led.missing_everywhere(self.ids, name, [whole])
                        bytes_in += led.row_bytes(name) * miss
                        elided_in += led.row_bytes(name) * (len(whole) - miss)
                        led.mark_valid(dev, name, [whole])
                    elif name not in resident:
                        bytes_in += kernel.arrays[name].nbytes
                if known and m.direction.copies_out:
                    led.note_write(dev, name, chunk)
        return bytes_in, bytes_out, elided_in, elided_out

    def forget_chunk(
        self, local_dev: int, kernel: "LoopKernel", chunk: IterRange
    ) -> None:
        """A charged chunk never completed (transfer retries exhausted):
        conservatively drop the validity its charge recorded."""
        led = self.ledger
        dev = self.ids[local_dev]
        for m in kernel.effective_maps():
            if m.partitioned and led.known(m.name):
                region0 = kernel.input_region(m, chunk)[0]
                led.invalidate(dev, m.name, [region0])

    def device_lost(self, local_dev: int) -> int:
        """Dropout: everything the device held is gone; reassigned chunks
        will re-pay their transfers.  Returns rows invalidated."""
        return self.ledger.invalidate_device(self.ids[local_dev])

    # -- scheduler data-cost terms (Table III DataT / fixed costs) -----------

    def per_iter_xfer_bytes(self, local_dev: int, kernel: "LoopKernel") -> float:
        """Steady-state bus bytes per iteration the model should assume.

        Ledger-known partitioned arrays charge only the fraction of the
        device's mapped ranges valid *nowhere* in the region (zero on an
        intact placement, the full rate again after a dropout took the
        only copy); unknown arrays charge the flat per-row rate, exactly
        like the plain ``kernel.xfer_elems_per_iter()`` model.
        """
        led = self.ledger
        dev = self.ids[local_dev]
        total = 0.0
        resident = kernel.resident
        for m in kernel.effective_maps():
            if not m.partitioned:
                continue
            name = m.name
            if led.known(name):
                if not m.direction.copies_in:
                    continue  # outbound rows stay resident until region exit
                held = led.retained(dev, name)
                n_held = sum(len(r) for r in held)
                if n_held == 0:
                    frac = 1.0  # nothing placed here: every row is foreign
                else:
                    frac = led.missing_everywhere(self.ids, name, held) / n_held
                total += led.row_bytes(name) * frac
            elif name in resident:
                continue
            else:
                row_b = kernel.row_nbytes(name)
                if m.direction.copies_in:
                    total += row_b
                if m.direction.copies_out:
                    total += row_b
        return total

    def replicated_in_bytes(self, local_dev: int, kernel: "LoopKernel") -> float:
        """One-off broadcast bytes for FULL-mapped inputs on this device."""
        led = self.ledger
        total = 0.0
        for m in kernel.effective_maps():
            if not m.replicated or not m.direction.copies_in:
                continue
            name = m.name
            if led.known(name):
                whole = IterRange(0, led.rows_of(name))
                total += led.row_bytes(name) * led.missing_everywhere(
                    self.ids, name, [whole]
                )
            elif name not in kernel.resident:
                total += kernel.arrays[name].nbytes
        return total

    # -- halo routing ---------------------------------------------------------

    def knows(self, name: str) -> bool:
        return self.ledger.known(name)

    def missing_in(self, local_dev: int, name: str, rows: IterRange) -> int:
        """Rows of ``rows`` not valid on the device (bytes = rows x row_bytes)."""
        return self.ledger.missing_count(self.ids[local_dev], name, [rows])

    def mark_resident(self, local_dev: int, name: str, rows: IterRange) -> None:
        """Rows arrived on the device (halo delivery)."""
        self.ledger.mark_valid(self.ids[local_dev], name, [rows])


# ---------------------------------------------------------------------------
# Node-granular residency (repro.cluster)
# ---------------------------------------------------------------------------

class ClusterResidency:
    """The PR 5 ledger at *node* granularity: which rows already live on
    which node, and what a node's loop shard therefore costs in inter-node
    fabric bytes.

    The :class:`ResidencyLedger` keys devices by plain integers, so the
    same machinery tracks node indices unchanged; only the charging unit
    differs — one charge per node *shard* (the whole intra-node offload)
    instead of per chunk, because intra-node transfers are priced by the
    node's own engine run and only cross-node movement belongs to the
    fabric.

    Two placements, mirroring the paper's partition policies lifted one
    level up:

    * ``head`` (flat staging): all data starts on the head node; every
      other node stages its full shard inputs in and copies its outputs
      back — what a naive flat BLOCK over the whole cluster pays.
    * ``aligned``: partitioned arrays were pre-distributed to the shard
      owners (and FULL-mapped inputs broadcast) when the cluster data
      region opened; an offload then moves only rows a node reads but
      does not own — the cross-node *halo* — and outputs stay node-
      resident.  The pre-distribution itself is the one-time
      :meth:`scatter_bytes` cost, amortised across repeated offloads.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise MappingError(f"cluster residency needs n_nodes > 0, got {n_nodes}")
        self.n_nodes = n_nodes
        self.ledger = ResidencyLedger()
        self.nodes = tuple(range(n_nodes))

    # -- region setup ---------------------------------------------------------

    def register_kernel(self, kernel: "LoopKernel") -> None:
        """Declare every mapped array's geometry with the ledger."""
        for m in kernel.effective_maps():
            arr = kernel.arrays[m.name]
            self.ledger.register(m.name, len(arr), kernel.row_nbytes(m.name))

    def place_aligned(
        self, kernel: "LoopKernel", shards: Iterable[IterRange]
    ) -> None:
        """Mark the aligned pre-distribution valid: each node owns its
        shard's rows of every partitioned array, FULL-mapped inputs are
        replicated everywhere.  Mapping references are retained so the
        ledger keeps the arrays alive for the offload's duration."""
        shards = list(shards)
        whole = {
            m.name: IterRange(0, self.ledger.rows_of(m.name))
            for m in kernel.effective_maps()
        }
        for m in kernel.effective_maps():
            if m.partitioned:
                for node, shard in enumerate(shards):
                    owned = kernel.input_region(m, shard)[0]
                    self.ledger.retain(node, m.name, [owned])
                    self.ledger.mark_valid(
                        node, m.name, [shard.intersect(whole[m.name])]
                    )
            else:
                for node in self.nodes:
                    self.ledger.retain(node, m.name, [whole[m.name]])
                    if m.direction.copies_in:
                        self.ledger.mark_valid(node, m.name, [whole[m.name]])

    def scatter_bytes(self, kernel: "LoopKernel", shards: Iterable[IterRange]) -> list[float]:
        """Per-node bytes the aligned pre-distribution itself moves: each
        node's owned shard rows of partitioned inputs plus a full replica
        of every FULL-mapped input (nothing for the head node, which
        already holds the host image)."""
        out: list[float] = []
        for node, shard in enumerate(shards):
            total = 0.0
            if node != 0:
                for m in kernel.effective_maps():
                    if not m.direction.copies_in:
                        continue
                    row_b = self.ledger.row_bytes(m.name)
                    if m.partitioned:
                        rows = self.ledger.rows_of(m.name)
                        owned = shard.intersect(IterRange(0, rows))
                        total += row_b * len(owned)
                    else:
                        total += row_b * self.ledger.rows_of(m.name)
            out.append(total)
        return out

    # -- per-shard fabric charging -------------------------------------------

    def charge_shard(
        self,
        node: int,
        kernel: "LoopKernel",
        shard: IterRange,
        *,
        collect_outputs: bool,
    ) -> tuple[float, float, float, float]:
        """Fabric bytes node ``node``'s shard moves and elides.

        Returns ``(bytes_in, bytes_out, elided_in, elided_out)`` exactly
        like :meth:`RegionResidency.charge_chunk`, but against the *node*
        ledger: inbound pays the halo-expanded shard rows not valid on
        this node (everything under head placement, only the cross-node
        halo under aligned), outbound pays the shard's written rows when
        ``collect_outputs`` (head placement returns results to the head
        node) and stays node-resident otherwise.  Node 0 — the head — is
        the host image and never pays the fabric.
        """
        led = self.ledger
        bytes_in = bytes_out = 0.0
        elided_in = elided_out = 0.0
        is_head = node == 0
        for m in kernel.effective_maps():
            name = m.name
            row_b = led.row_bytes(name)
            if m.partitioned:
                region0 = kernel.input_region(m, shard)[0]
                if m.direction.copies_in:
                    if is_head:
                        elided_in += row_b * len(region0)
                    else:
                        miss = led.missing_count(node, name, [region0])
                        bytes_in += row_b * miss
                        elided_in += row_b * (len(region0) - miss)
                    led.mark_valid(node, name, [region0])
                if m.direction.copies_out:
                    if collect_outputs and not is_head:
                        bytes_out += row_b * len(shard)
                    else:
                        elided_out += row_b * len(shard)
                    led.note_write(node, name, shard)
            else:
                if m.direction.copies_in:
                    whole = IterRange(0, led.rows_of(name))
                    if is_head:
                        elided_in += row_b * len(whole)
                    else:
                        miss = led.missing_count(node, name, [whole])
                        bytes_in += row_b * miss
                        elided_in += row_b * (len(whole) - miss)
                    led.mark_valid(node, name, [whole])
                if m.direction.copies_out:
                    led.note_write(node, name, shard)
        return bytes_in, bytes_out, elided_in, elided_out

    def describe(self) -> dict:
        return {"n_nodes": self.n_nodes, "ledger": self.ledger.describe()}
