"""Copy-vs-share mapping decisions (paper §V.C).

"If the data mapping semantics of the user program allow, the HOMP runtime
makes mapping decisions (shared or copied) according to the memory types
(shared or discrete) of the devices."  :class:`DataMapper` encodes that
rule: host CPUs share; discrete devices copy; unified-memory devices share
*semantically* but pay migration costs through
:class:`~repro.memory.unified.UnifiedMemoryModel` unless the program asked
for explicit movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.machine.spec import DeviceSpec, MemoryKind
from repro.memory.space import MapDirection

__all__ = ["MapDecision", "DataMapper"]


class MapDecision(Enum):
    SHARE = "share"
    COPY = "copy"
    MIGRATE = "migrate"  # unified memory: shared semantics, paged transfers


@dataclass(frozen=True)
class DataMapper:
    """Decides how each mapped array reaches each device.

    ``prefer_unified`` mirrors the paper's default of *not* using unified
    memory unless the program explicitly asks ("we do not use this feature
    because of the observed poor performances").
    """

    prefer_unified: bool = False

    def decide(self, spec: DeviceSpec, direction: MapDirection) -> MapDecision:
        if spec.memory is MemoryKind.SHARED:
            return MapDecision.SHARE
        if spec.memory is MemoryKind.UNIFIED:
            return MapDecision.MIGRATE if self.prefer_unified else MapDecision.COPY
        return MapDecision.COPY

    def bytes_in(
        self, decision: MapDecision, direction: MapDirection, nbytes: int
    ) -> int:
        """Bus bytes moved host->device before the kernel."""
        if decision is MapDecision.SHARE:
            return 0
        if direction is MapDirection.ALLOC:
            return 0
        return nbytes if direction.copies_in else 0

    def bytes_out(
        self, decision: MapDecision, direction: MapDirection, nbytes: int
    ) -> int:
        """Bus bytes moved device->host after the kernel."""
        if decision is MapDecision.SHARE:
            return 0
        if direction is MapDirection.ALLOC:
            return 0
        return nbytes if direction.copies_out else 0
