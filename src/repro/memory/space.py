"""Map directions, as in OpenMP ``map(to|from|tofrom|alloc: ...)``.

The direction decides which transfers a mapped array generates for a
discrete-memory device: TO copies host->device before the kernel, FROM
copies device->host after it, TOFROM does both, ALLOC only allocates
device storage (the Jacobi example maps its scratch ``uold`` as alloc).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import MappingError

__all__ = ["MapDirection"]


class MapDirection(str, Enum):
    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"

    @classmethod
    def parse(cls, token: str) -> "MapDirection":
        t = token.strip().lower()
        for member in cls:
            if member.value == t:
                return member
        raise MappingError(f"unknown map direction {token!r}")

    @property
    def copies_in(self) -> bool:
        return self in (MapDirection.TO, MapDirection.TOFROM)

    @property
    def copies_out(self) -> bool:
        return self in (MapDirection.FROM, MapDirection.TOFROM)
