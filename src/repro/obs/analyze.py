"""Span-derived analyses: Fig. 6 recomputed from the trace stream.

The legacy path accumulates :class:`~repro.engine.trace.DeviceTrace`
buckets *while* the engine runs; these functions recompute the same
quantities purely from the emitted spans.  The equivalence test in
``tests/obs`` pins the two paths together to 1e-9, which is the contract
that makes the span stream trustworthy: anything Fig. 6 says, the trace
says too.

Bucket mapping (identical to ``DeviceTrace.breakdown_pct``):

* ``sched``  = sched + setup spans
* ``data``   = xfer_in + xfer_out + retry spans
* ``compute``= compute spans
* ``barrier``= barrier spans
"""

from __future__ import annotations

from repro.obs.span import (
    MARK_CHUNK,
    MARK_FINISH,
    SPAN_BARRIER,
    SPAN_COMPUTE,
    SPAN_OFFLOAD,
    SPAN_RETRY,
    SPAN_SCHED,
    SPAN_SETUP,
    SPAN_XFER_IN,
    SPAN_XFER_OUT,
)
from repro.obs.tracer import Tracer

__all__ = [
    "device_buckets",
    "participating_devices",
    "total_time_from_spans",
    "finish_times_from_spans",
    "imbalance_pct_from_spans",
    "breakdown_pct_from_spans",
    "iterations_from_spans",
]

_BUCKET_NAMES = (
    SPAN_SCHED,
    SPAN_SETUP,
    SPAN_XFER_IN,
    SPAN_XFER_OUT,
    SPAN_COMPUTE,
    SPAN_BARRIER,
    SPAN_RETRY,
)


def device_buckets(tracer: Tracer, devid: int) -> dict[str, float]:
    """Summed span durations per bucket name for one device."""
    out = {name: 0.0 for name in _BUCKET_NAMES}
    for s in tracer.spans:
        if s.devid == devid and s.name in out:
            out[s.name] += s.duration
    return out


def participating_devices(tracer: Tracer) -> list[int]:
    """Devices that completed at least one chunk (``chunk`` marks)."""
    seen: list[int] = []
    for s in tracer.spans:
        if s.name == MARK_CHUNK and s.devid not in seen:
            seen.append(s.devid)
    return sorted(seen)


def total_time_from_spans(tracer: Tracer) -> float:
    """Duration of the run-level ``offload`` span (0.0 when absent)."""
    for s in tracer.spans:
        if s.name == SPAN_OFFLOAD:
            return s.duration
    return 0.0


def finish_times_from_spans(tracer: Tracer) -> dict[int, float]:
    """devid -> pipeline-drain time, from the ``finish`` marks."""
    return {
        s.devid: s.t0 for s in tracer.spans if s.name == MARK_FINISH
    }


def imbalance_pct_from_spans(tracer: Tracer) -> float:
    """The Fig. 6 imbalance curve, recomputed from spans.

    Mean idle fraction over participating devices — the same formula as
    :meth:`~repro.engine.trace.OffloadResult.imbalance_pct`.
    """
    parts = participating_devices(tracer)
    total = total_time_from_spans(tracer)
    if not parts or total <= 0:
        return 0.0
    finish = finish_times_from_spans(tracer)
    idle = [max(0.0, total - finish.get(d, 0.0)) / total for d in parts]
    return 100.0 * sum(idle) / len(idle)


def _device_breakdown_pct(buckets: dict[str, float]) -> dict[str, float]:
    busy = sum(buckets.values())  # all seven bucket names, incl. barrier
    if busy <= 0:
        return {"sched": 0.0, "data": 0.0, "compute": 0.0, "barrier": 0.0}
    data = (
        buckets[SPAN_XFER_IN] + buckets[SPAN_XFER_OUT] + buckets[SPAN_RETRY]
    )
    return {
        "sched": 100.0 * (buckets[SPAN_SCHED] + buckets[SPAN_SETUP]) / busy,
        "data": 100.0 * data / busy,
        "compute": 100.0 * buckets[SPAN_COMPUTE] / busy,
        "barrier": 100.0 * buckets[SPAN_BARRIER] / busy,
    }


def breakdown_pct_from_spans(tracer: Tracer) -> dict[str, float]:
    """Fig.-6 breakdown recomputed from spans.

    Unweighted mean of the per-device percentage breakdowns over
    participating devices — matching
    :meth:`~repro.engine.trace.OffloadResult.breakdown_pct` (see its
    docstring for the averaging caveat).
    """
    parts = participating_devices(tracer)
    if not parts:
        return {"sched": 0.0, "data": 0.0, "compute": 0.0, "barrier": 0.0}
    acc = {"sched": 0.0, "data": 0.0, "compute": 0.0, "barrier": 0.0}
    for d in parts:
        for k, v in _device_breakdown_pct(device_buckets(tracer, d)).items():
            acc[k] += v
    return {k: v / len(parts) for k, v in acc.items()}


def iterations_from_spans(tracer: Tracer) -> dict[str, int]:
    """Device name -> iterations completed, from the ``chunk`` marks."""
    out: dict[str, int] = {}
    for s in tracer.spans:
        if s.name == MARK_CHUNK:
            out[s.device] = out.get(s.device, 0) + int(s.arg("iters", 0))
    return out
