"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` accumulates whatever the instrumented code
feeds it — chunk counts, per-device iteration totals, retries,
quarantines, cache hits, scheduler decision latencies.  The registry
itself never consults the wall clock or any RNG: identical runs produce
identical snapshots, byte for byte, which is what lets traced benchmark
runs stay reproducible.

Histogram bucket boundaries are fixed at first registration of a metric
name (never derived from observed data), so two runs that observe the
same values always land them in the same buckets.

A registry is safe to share across threads: the get-or-create lookups and
the mutation shorthands (:meth:`MetricsRegistry.inc`,
:meth:`~MetricsRegistry.set_gauge`, :meth:`~MetricsRegistry.observe`), as
well as :meth:`~MetricsRegistry.merge` and
:meth:`~MetricsRegistry.snapshot`, hold one registry-wide lock — pooled
threaded engines and the offload service can feed one aggregate registry
without lost increments.  Mutating a :class:`Counter`/:class:`Gauge`/
:class:`Histogram` object *returned* by the registry is not synchronised;
concurrent writers must go through the registry shorthands.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Seconds-scale latency buckets (scheduler decisions, stage durations).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Iteration-count buckets (chunk sizes).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: _LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    labels: _LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Fixed-boundary cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``counts[i]`` is the number of observations ``<= buckets[i]``
    (non-cumulative storage; the exporter cumulates).
    """

    name: str
    buckets: tuple[float, ...]
    labels: _LabelKey = ()
    counts: list[int] = field(default_factory=list)
    overflow: int = 0
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise ValueError(
                f"histogram {self.name}: buckets must be non-empty and sorted"
            )
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with (inf, count)."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets, self.counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self.overflow))
        return out


class MetricsRegistry:
    """Get-or-create store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        self._hist_buckets: dict[str, tuple[float, ...]] = {}
        # Reentrant: merge() mutates through histogram() under the lock.
        self._lock = threading.RLock()

    # -- get-or-create --------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter(name=name, labels=key[1])
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge(name=name, labels=key[1])
        return g

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        """Histogram for ``name``; bucket boundaries are pinned by the
        first registration of the name and shared by every label set."""
        key = (name, _label_key(labels))
        with self._lock:
            fixed = self._hist_buckets.get(name)
            if fixed is None:
                fixed = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
                self._hist_buckets[name] = fixed
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(
                    name=name, buckets=fixed, labels=key[1]
                )
        return h

    # -- shorthands ------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        with self._lock:
            self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self.gauge(name, **labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> None:
        with self._lock:
            self.histogram(name, buckets=buckets, **labels).observe(value)

    # -- introspection ---------------------------------------------------------

    def counters(self) -> Iterator[Counter]:
        for key in sorted(self._counters):
            yield self._counters[key]

    def gauges(self) -> Iterator[Gauge]:
        for key in sorted(self._gauges):
            yield self._gauges[key]

    def histograms(self) -> Iterator[Histogram]:
        for key in sorted(self._histograms):
            yield self._histograms[key]

    def counter_value(self, name: str, **labels: Any) -> float:
        c = self._counters.get((name, _label_key(labels)))
        return c.value if c is not None else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Deterministic (sorted) plain-dict view of every metric."""
        with self._lock:
            return {
                "counters": {
                    _flat_name(c.name, c.labels): c.value
                    for c in self.counters()
                },
                "gauges": {
                    _flat_name(g.name, g.labels): g.value
                    for g in self.gauges()
                },
                "histograms": {
                    _flat_name(h.name, h.labels): {
                        "sum": h.total,
                        "count": h.count,
                        "buckets": h.cumulative(),
                    }
                    for h in self.histograms()
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's totals into this one (grid aggregation)."""
        # Lock both registries in a global (id) order so two concurrent
        # opposite-direction merges cannot deadlock.
        first, second = (
            (self._lock, other._lock)
            if id(self) <= id(other)
            else (other._lock, self._lock)
        )
        with first, second:
            for c in other.counters():
                self._counters.setdefault(
                    (c.name, c.labels), Counter(name=c.name, labels=c.labels)
                ).value += c.value
            for g in other.gauges():
                self.gauge(g.name, **dict(g.labels)).set(g.value)
            for h in other.histograms():
                mine = self.histogram(
                    h.name, buckets=h.buckets, **dict(h.labels)
                )
                if mine.buckets != h.buckets:
                    raise ValueError(
                        f"histogram {h.name}: bucket boundaries differ across "
                        "registries"
                    )
                for i, c in enumerate(h.counts):
                    mine.counts[i] += c
                mine.overflow += h.overflow
                mine.total += h.total
                mine.count += h.count


def _flat_name(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"
