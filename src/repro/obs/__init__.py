"""Observability subsystem: span tracing, metrics, trace exporters.

Fig. 6 of the paper is an observability claim — per-device breakdowns of
scheduling, data movement, compute and barrier time explain why each
algorithm balances or fails.  ``repro.obs`` turns that from an aggregated
after-the-fact table into a first-class runtime layer:

* :class:`~repro.obs.tracer.Tracer` collects typed
  :class:`~repro.obs.span.Span` records (offload → device → chunk →
  sched/xfer_in/compute/xfer_out/retry/fault) in virtual time from the
  simulator and wall time from the threaded engine;
* :class:`~repro.obs.metrics.MetricsRegistry` accumulates deterministic
  counters, gauges and fixed-bucket histograms (chunks, iterations,
  retries, quarantines, cache hits, scheduler decision latencies);
* :mod:`~repro.obs.export` renders Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), JSONL span streams and Prometheus text;
* :mod:`~repro.obs.analyze` recomputes ``imbalance_pct`` /
  ``breakdown_pct`` from spans, pinned to the legacy ``DeviceTrace``
  path by an equivalence test.

Disabled (the default — no tracer attached, or ``REPRO_OBS=off``), the
engines pay one attribute check per offload and results are bit-identical
to a build without the subsystem.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.analyze import (
    breakdown_pct_from_spans,
    device_buckets,
    finish_times_from_spans,
    imbalance_pct_from_spans,
    iterations_from_spans,
    participating_devices,
    total_time_from_spans,
)
from repro.obs.export import (
    metrics_to_prom,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prom,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.span import Span
from repro.obs.tracer import (
    NULL_TRACER,
    OBS_ENV,
    NodeTracer,
    NullTracer,
    Tracer,
    obs_enabled,
    resolve_tracer,
)

__all__ = [
    # span / tracer
    "Span",
    "Tracer",
    "NodeTracer",
    "NullTracer",
    "NULL_TRACER",
    "OBS_ENV",
    "obs_enabled",
    "resolve_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # export
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "metrics_to_prom",
    "write_prom",
    # analyses
    "device_buckets",
    "participating_devices",
    "total_time_from_spans",
    "finish_times_from_spans",
    "imbalance_pct_from_spans",
    "breakdown_pct_from_spans",
    "iterations_from_spans",
]
