"""Tracers: where instrumented code sends its spans.

Two implementations share one duck type:

* :class:`Tracer` — records every span and instant in memory, alongside a
  :class:`~repro.obs.metrics.MetricsRegistry`; this is what exporters and
  analyses consume.
* :class:`NullTracer` — the permanently disabled singleton
  (:data:`NULL_TRACER`).  Instrumented hot paths read one attribute
  (``tracer.enabled``) into a local bool and skip every emission when it
  is False, so a run without observability pays a single attribute check
  per offload, not per chunk.

``REPRO_OBS=off`` (or ``0``/``false``/``no``) is the global kill switch:
:func:`resolve_tracer` collapses *any* tracer to :data:`NULL_TRACER`, so
an instrumented sweep can be A/B'd against a clean one without touching
code.  The switch mirrors ``REPRO_FAULTS`` / ``REPRO_BENCH_CACHE``.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, freeze_args

__all__ = [
    "OBS_ENV",
    "obs_enabled",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "NodeTracer",
    "BatchTracer",
    "resolve_tracer",
]

OBS_ENV = "REPRO_OBS"


def obs_enabled() -> bool:
    """Global kill switch: ``REPRO_OBS=off`` disables every tracer."""
    v = os.environ.get(OBS_ENV, "on").strip().lower()
    return v not in ("off", "0", "false", "no")


class NullTracer:
    """No-op tracer; every emission is a constant-time discard."""

    __slots__ = ()

    enabled = False
    clock = "none"
    metrics: MetricsRegistry | None = None

    def span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def instant(self, *args: Any, **kwargs: Any) -> None:
        return None

    @property
    def spans(self) -> list[Span]:
        return []


#: The shared disabled tracer (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


class Tracer:
    """In-memory span collector with an attached metrics registry.

    ``clock`` documents the time base of the recorded spans:
    ``"virtual"`` (the simulator's deterministic clock) or ``"wall"``
    (the threaded engine's ``perf_counter`` offsets).
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: str = "virtual",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if clock not in ("virtual", "wall"):
            raise ValueError(f"clock must be 'virtual' or 'wall', got {clock!r}")
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list[Span] = []
        #: Run-level context (kernel, algorithm, machine), set by engines.
        self.meta: dict[str, Any] = {}

    # -- emission --------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str,
        devid: int,
        device: str,
        t0: float,
        t1: float,
        **args: Any,
    ) -> None:
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                devid=devid,
                device=device,
                t0=t0,
                t1=t1,
                args=freeze_args(args),
            )
        )

    def instant(
        self,
        name: str,
        cat: str,
        devid: int,
        device: str,
        t: float,
        **args: Any,
    ) -> None:
        self.span(name, cat, devid, device, t, t, **args)

    # -- queries ---------------------------------------------------------------

    def for_device(self, devid: int) -> list[Span]:
        return [s for s in self.spans if s.devid == devid]

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def device_names(self) -> dict[int, str]:
        """devid -> device name, for every device that emitted a span."""
        out: dict[int, str] = {}
        for s in self.spans:
            if s.devid >= 0 and s.devid not in out:
                out[s.devid] = s.device
        return out

    def clear(self) -> None:
        self.spans.clear()
        self.meta.clear()


class NodeTracer:
    """A node-scoped view of a tracer (the cluster backend's obs hook).

    Every emission an intra-node engine makes through this view lands in
    the *base* tracer's span stream with three rewrites: the device id is
    offset to the cluster-global id, the timestamp is shifted to cluster
    time (the node's shard starts only after its fabric staging), and a
    ``node=<k>`` arg is stamped on the span — which is how exporters and
    span-derived analyses tell apart same-named devices on different
    nodes.  Queries and metrics go straight to the base tracer.
    """

    __slots__ = ("base", "node", "devid_offset", "t_offset")

    def __init__(
        self,
        base: "Tracer | NullTracer",
        *,
        node: int,
        devid_offset: int = 0,
        t_offset: float = 0.0,
    ) -> None:
        self.base = base
        self.node = node
        self.devid_offset = devid_offset
        self.t_offset = t_offset

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    @property
    def clock(self) -> str:
        return self.base.clock

    @property
    def metrics(self) -> MetricsRegistry | None:
        return self.base.metrics

    @property
    def meta(self) -> dict:
        return getattr(self.base, "meta", {})

    @property
    def spans(self) -> list[Span]:
        return self.base.spans

    def span(
        self,
        name: str,
        cat: str,
        devid: int,
        device: str,
        t0: float,
        t1: float,
        **args: Any,
    ) -> None:
        self.base.span(
            name,
            cat,
            devid + self.devid_offset if devid >= 0 else devid,
            device,
            t0 + self.t_offset,
            t1 + self.t_offset,
            node=self.node,
            **args,
        )

    def instant(
        self,
        name: str,
        cat: str,
        devid: int,
        device: str,
        t: float,
        **args: Any,
    ) -> None:
        self.span(name, cat, devid, device, t, t, **args)


class BatchTracer:
    """A stream-batch-scoped view of a tracer (the stream runner's hook).

    Every emission a per-batch engine run makes through this view lands
    in the *base* tracer's span stream with a ``batch=<k>`` arg stamped
    on it — how exporters and span-derived analyses tell apart the same
    device's work across the batches of one stream.  Timestamps pass
    through unchanged: stream batches already run in cumulative stream
    time (the cross-batch carry), so spans from different batches
    interleave truthfully on one timeline.
    """

    __slots__ = ("base", "batch")

    def __init__(self, base: "Tracer | NullTracer", *, batch: int) -> None:
        self.base = base
        self.batch = batch

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    @property
    def clock(self) -> str:
        return self.base.clock

    @property
    def metrics(self) -> MetricsRegistry | None:
        return self.base.metrics

    @property
    def meta(self) -> dict:
        return getattr(self.base, "meta", {})

    @property
    def spans(self) -> list[Span]:
        return self.base.spans

    def span(
        self,
        name: str,
        cat: str,
        devid: int,
        device: str,
        t0: float,
        t1: float,
        **args: Any,
    ) -> None:
        self.base.span(name, cat, devid, device, t0, t1, batch=self.batch, **args)

    def instant(
        self,
        name: str,
        cat: str,
        devid: int,
        device: str,
        t: float,
        **args: Any,
    ) -> None:
        self.span(name, cat, devid, device, t, t, **args)


def resolve_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """The tracer an engine should actually emit to.

    ``None`` or a disabled tracer resolves to :data:`NULL_TRACER`; so does
    anything when the ``REPRO_OBS`` kill switch is off.
    """
    if tracer is None or not tracer.enabled or not obs_enabled():
        return NULL_TRACER
    return tracer
