"""Typed spans: the unit of the observability subsystem.

A :class:`Span` is one named, categorised interval on one device's
timeline — a scheduler decision, a pipeline stage, a retry storm, a
barrier wait, or the whole offload.  Spans carry *virtual* time when
emitted by :class:`~repro.engine.simulator.OffloadEngine` and wall time
when emitted by :class:`~repro.engine.threaded.ThreadedEngine`; which one
a tracer recorded is stamped in ``Tracer.clock``.

An *instant* is a zero-duration span (``t0 == t1``): fault occurrences,
per-chunk completion marks, device-finish marks.

Span names and categories are closed vocabularies (the constants below),
so exporters and analyses can dispatch without string guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "Span",
    "CAT_OFFLOAD",
    "CAT_SCHED",
    "CAT_STAGE",
    "CAT_FAULT",
    "CAT_MARK",
    "SPAN_SCHED",
    "SPAN_SETUP",
    "SPAN_XFER_IN",
    "SPAN_COMPUTE",
    "SPAN_XFER_OUT",
    "SPAN_RETRY",
    "SPAN_BARRIER",
    "SPAN_OFFLOAD",
    "MARK_CHUNK",
    "MARK_FINISH",
]

# -- categories ---------------------------------------------------------------
CAT_OFFLOAD = "offload"  # the run-level envelope span
CAT_SCHED = "sched"      # scheduler decisions and one-off device setup
CAT_STAGE = "stage"      # pipeline stages: xfer_in / compute / xfer_out / barrier
CAT_FAULT = "fault"      # retries and fault occurrences
CAT_MARK = "mark"        # instants: chunk completions, device finish

# -- span names ---------------------------------------------------------------
SPAN_SCHED = "sched"
SPAN_SETUP = "setup"
SPAN_XFER_IN = "xfer_in"
SPAN_COMPUTE = "compute"
SPAN_XFER_OUT = "xfer_out"
SPAN_RETRY = "retry"
SPAN_BARRIER = "barrier"
SPAN_OFFLOAD = "offload"
MARK_CHUNK = "chunk"
MARK_FINISH = "finish"


@dataclass(frozen=True, slots=True)
class Span:
    """One interval (or instant, when ``t0 == t1``) on a device timeline.

    ``devid`` is ``-1`` (and ``device`` empty) for run-level spans.
    ``args`` is a sorted tuple of key/value pairs so spans stay hashable
    and their serialised form is deterministic.
    """

    name: str
    cat: str
    devid: int
    device: str
    t0: float
    t1: float
    args: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.t1} < {self.t0})"
            )

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def is_instant(self) -> bool:
        return self.t1 == self.t0

    def arg(self, key: str, default: Any = None) -> Any:
        for k, v in self.args:
            if k == key:
                return v
        return default

    def iter_args(self) -> Iterator[tuple[str, Any]]:
        return iter(self.args)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "devid": self.devid,
            "device": self.device,
            "t0": self.t0,
            "t1": self.t1,
            "args": dict(self.args),
        }


def freeze_args(args: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Sorted, hashable form of a span's argument mapping."""
    return tuple(sorted(args.items()))
