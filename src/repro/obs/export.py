"""Exporters: Chrome trace-event JSON, JSONL spans, Prometheus text.

The Chrome trace export follows the Trace Event Format's complete-event
(``"ph": "X"``) and instant-event (``"ph": "i"``) shapes, loadable
directly in Perfetto or ``chrome://tracing``:

* one **pid per device** (pid = devid + 1; pid 0 is the run-level
  "offload" process), named via ``process_name`` metadata events;
* one tid per pipeline lane (sched / xfer_in / compute / xfer_out /
  faults), named via ``thread_name`` metadata;
* fault and retry spans are colour-tagged (``cname``) so a faulted run
  shows its retry storms and losses at a glance.

Timestamps are microseconds (virtual or wall, per the tracer's clock).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import (
    CAT_FAULT,
    SPAN_BARRIER,
    SPAN_COMPUTE,
    SPAN_RETRY,
    SPAN_SCHED,
    SPAN_SETUP,
    SPAN_XFER_IN,
    SPAN_XFER_OUT,
    Span,
)
from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "metrics_to_prom",
    "write_prom",
]

#: tid lanes within each device process.
_LANES: dict[str, tuple[int, str]] = {
    SPAN_SCHED: (0, "sched"),
    SPAN_SETUP: (0, "sched"),
    SPAN_XFER_IN: (1, "xfer_in"),
    SPAN_COMPUTE: (2, "compute"),
    SPAN_XFER_OUT: (3, "xfer_out"),
    SPAN_BARRIER: (2, "compute"),  # barrier idles the compute lane
}
_FAULT_LANE = (4, "faults")

#: Chrome trace reserved colour names for the fault category.
_FAULT_COLORS = {
    SPAN_RETRY: "bad",
    "fault:retry": "bad",
    "fault:transfer-fail": "terrible",
    "fault:dropout": "terrible",
    "fault:quarantine": "terrible",
}


def _pid(span: Span) -> int:
    return span.devid + 1 if span.devid >= 0 else 0


def _lane(span: Span) -> tuple[int, str]:
    if span.cat == CAT_FAULT:
        return _FAULT_LANE
    return _LANES.get(span.name, (5, "misc"))


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """The ``traceEvents`` array: metadata + one event per span."""
    events: list[dict[str, Any]] = []

    # Process metadata: pid 0 = the offload envelope, pid devid+1 = device.
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "offload"},
        }
    )
    seen_lanes: set[tuple[int, int]] = set()
    for devid, name in sorted(tracer.device_names().items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": devid + 1,
                "tid": 0,
                "args": {"name": f"dev{devid}:{name}"},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": devid + 1,
                "tid": 0,
                "args": {"sort_index": devid + 1},
            }
        )

    for span in tracer.spans:
        pid = _pid(span)
        tid, lane_name = _lane(span) if span.devid >= 0 else (0, "offload")
        if (pid, tid) not in seen_lanes:
            seen_lanes.add((pid, tid))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane_name},
                }
            )
        ev: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "ts": span.t0 * 1e6,
            "args": dict(span.args),
        }
        if span.is_instant:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        else:
            ev["ph"] = "X"
            ev["dur"] = span.duration * 1e6
        cname = _FAULT_COLORS.get(span.name)
        if cname is None and span.cat == CAT_FAULT:
            cname = "bad"
        if cname is not None:
            ev["cname"] = cname
        events.append(ev)
    return events


def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Full Chrome trace JSON object (``traceEvents`` + metadata)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": tracer.clock, **tracer.meta},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(tracer), sort_keys=True))
    return path


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, in emission order."""
    lines = [json.dumps(s.to_dict(), sort_keys=True) for s in tracer.spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(tracer))
    return path


def _prom_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{{{inner}}}"


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def metrics_to_prom(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every metric, deterministically ordered."""
    out: list[str] = []
    seen_types: set[str] = set()

    for c in registry.counters():
        if c.name not in seen_types:
            seen_types.add(c.name)
            out.append(f"# TYPE {c.name} counter")
        out.append(f"{c.name}{_prom_labels(c.labels)} {_fmt(c.value)}")

    for g in registry.gauges():
        if g.name not in seen_types:
            seen_types.add(g.name)
            out.append(f"# TYPE {g.name} gauge")
        out.append(f"{g.name}{_prom_labels(g.labels)} {_fmt(g.value)}")

    for h in registry.histograms():
        if h.name not in seen_types:
            seen_types.add(h.name)
            out.append(f"# TYPE {h.name} histogram")
        base = dict(h.labels)
        for bound, cum in h.cumulative():
            le = "+Inf" if bound == float("inf") else _fmt(bound)
            labels = _prom_labels(
                tuple(sorted({**base, "le": le}.items()))
            )
            out.append(f"{h.name}_bucket{labels} {cum}")
        out.append(f"{h.name}_sum{_prom_labels(h.labels)} {_fmt(h.total)}")
        out.append(f"{h.name}_count{_prom_labels(h.labels)} {h.count}")

    return "\n".join(out) + ("\n" if out else "")


def write_prom(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_prom(registry))
    return path
