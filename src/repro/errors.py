"""Exception hierarchy for the HOMP reproduction.

All library errors derive from :class:`HompError` so callers can catch one
base type.  Subclasses are grouped by subsystem: parsing of the HOMP
directive syntax, machine/device configuration, data distribution and
alignment, and scheduling.
"""

from __future__ import annotations

__all__ = [
    "HompError",
    "DirectiveSyntaxError",
    "IRVerifyError",
    "MachineSpecError",
    "DeviceError",
    "MappingError",
    "DistributionError",
    "AlignmentError",
    "SchedulingError",
    "OffloadError",
    "EngineBusyError",
    "FaultPlanError",
    "FaultError",
    "ServiceError",
    "JobSpecError",
    "AdmissionError",
    "ServiceClosedError",
    "JobCancelled",
    "JobExpired",
]


class HompError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DirectiveSyntaxError(HompError, ValueError):
    """A HOMP directive string could not be parsed.

    Carries the offending ``text`` and a best-effort character ``position``
    to aid diagnostics, mirroring a compiler front-end error.
    """

    def __init__(self, message: str, *, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if text:
            where = f" at position {position}" if position is not None else ""
            message = f"{message}{where}: {text!r}"
        super().__init__(message)


class IRVerifyError(HompError, ValueError):
    """A lowered offload program failed IR verification.

    Raised when an op is structurally malformed (unknown array, policy
    rank mismatch, negative halo, ...) or when a rewrite pass meets
    irreconcilable inputs (conflicting partition policies on one array).
    """


class MachineSpecError(HompError, ValueError):
    """A machine description file or device spec is invalid."""


class DeviceError(HompError):
    """A device was addressed that does not exist or cannot execute."""


class MappingError(HompError, ValueError):
    """A ``map`` clause is inconsistent with the mapped array."""


class DistributionError(HompError, ValueError):
    """A distribution policy cannot be applied to the given region."""


class AlignmentError(DistributionError):
    """An ALIGN relationship is unresolvable (cycle, missing alignee, ...)."""


class SchedulingError(HompError):
    """A loop-distribution algorithm failed or was misconfigured."""


class OffloadError(HompError):
    """An offload region failed during execution."""


class EngineBusyError(OffloadError):
    """``run()`` was entered on an engine whose previous run is still in
    flight.  Engine objects are reusable sequentially, never concurrently:
    per-run state lives in the run's own context, but the last-run
    introspection slot (``chunk_log``/``timeline``/``faults``) is one per
    engine."""


class FaultPlanError(HompError, ValueError):
    """A fault plan or resilience policy is malformed."""


class FaultError(OffloadError):
    """Injected faults made the offload unrecoverable (e.g. every device
    was lost while iterations remained)."""


class ServiceError(HompError):
    """Base class for errors raised by the offload service (:mod:`repro.service`)."""


class JobSpecError(ServiceError, ValueError):
    """An :class:`~repro.service.OffloadJob` is malformed (bad factory,
    machine, cutoff, ...) and was rejected before admission."""


class AdmissionError(ServiceError):
    """A job submission exceeded its tenant's quota.

    ``retry_after_s`` is the service's Retry-After-style hint: the number
    of seconds after which a resubmission has a chance of being admitted
    (exact for token-bucket rate rejections, heuristic for in-flight and
    queue-capacity rejections).  ``reason`` is a stable machine-readable
    label: ``"rate"``, ``"in_flight"`` or ``"queue_full"``.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str = "",
        reason: str = "",
        retry_after_s: float = 0.0,
    ):
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = float(retry_after_s)
        super().__init__(message)


class ServiceClosedError(ServiceError):
    """A job was submitted to a service that is not running."""


class JobCancelled(ServiceError):
    """A queued job was cancelled before it was dispatched.

    Carried as the ``error`` of a :class:`~repro.service.JobResult` in
    state ``CANCELLED`` — handles resolve with it, they never raise it;
    :meth:`~repro.service.JobResult.unwrap` re-raises it like any other
    job failure.
    """


class JobExpired(ServiceError):
    """A queued job outlived its ``deadline_s`` before dispatch.

    Like :class:`JobCancelled`, this travels as the ``error`` of a
    :class:`~repro.service.JobResult` (state ``EXPIRED``) — handles
    resolve with it, never raise it.  Work already on an engine is never
    expired: the deadline is checked only while the job sits in the
    queue, so a slow *run* still completes normally.
    """
