"""Structural verification of lowered offload programs.

``verify_program`` is the gate between lowering and the pass pipeline
(and is re-run by the runtime on whatever the passes produce): a program
that passes is safe to execute.  Rules:

* the program is non-empty (at least one op or a program-scope map set);
* declarations are unique by name, with sane geometry;
* every map references a declared array, carries one policy per array
  dimension (scalars carry none), a region of matching rank, and a
  non-negative halo; a halo is only meaningful on a dim-0-partitioned
  map (a FULL map replicates the whole array — there is no boundary);
* offloads have a positive iteration space, a schedule that is a policy
  or a notation string, and a ``reduce`` op exactly when the kernel is a
  reduction; two kernels mapping the same name must bind the same host
  array (the data environment is keyed by name);
* fused groups have >= 2 members agreeing on iteration count, device
  clause and serialization, sharing at least one array, and their
  ``region_maps`` cover every member map.

Violations raise :class:`~repro.errors.IRVerifyError` naming the op.
"""

from __future__ import annotations

from repro.dist.policy import Policy
from repro.errors import IRVerifyError
from repro.ir.ops import (
    DataDecl,
    FusedOffloadOp,
    MapOp,
    OffloadOp,
    Program,
    StreamOp,
)

__all__ = ["verify_program"]


def _check_map(m: MapOp, decls: dict[str, DataDecl], where: str) -> None:
    decl = decls.get(m.array)
    if decl is None:
        raise IRVerifyError(f"{where}: map references undeclared array {m.array!r}")
    if m.policies and len(m.policies) != len(decl.shape):
        raise IRVerifyError(
            f"{where}: map {m.array!r} has {len(m.policies)} policies for a "
            f"rank-{len(decl.shape)} array"
        )
    if m.halo[0] < 0 or m.halo[1] < 0:
        raise IRVerifyError(f"{where}: map {m.array!r} has a negative halo")
    if m.halo != (0, 0) and not m.partitioned:
        raise IRVerifyError(
            f"{where}: map {m.array!r} declares a halo but is not "
            "dim-0 partitioned (FULL maps have no boundary)"
        )
    if m.region.dims and len(m.region.dims) != len(decl.shape):
        raise IRVerifyError(
            f"{where}: map {m.array!r} region rank {len(m.region.dims)} != "
            f"array rank {len(decl.shape)}"
        )


def _check_offload(
    op: OffloadOp, decls: dict[str, DataDecl], arrays_seen: dict[str, object]
) -> None:
    where = f"offload {getattr(op.kernel, 'name', '?')!r}"
    if op.n_iters <= 0:
        raise IRVerifyError(f"{where}: empty iteration space")
    if not isinstance(op.schedule, (Policy, str)) and not hasattr(
        op.schedule, "notation"
    ):
        raise IRVerifyError(
            f"{where}: schedule {op.schedule!r} is neither a policy, a "
            "notation string nor a scheduler"
        )
    kernel = op.kernel
    is_reduction = bool(getattr(kernel, "is_reduction", False))
    if is_reduction and op.reduce is None:
        raise IRVerifyError(f"{where}: reduction kernel lowered without a ReduceOp")
    if not is_reduction and op.reduce is not None:
        raise IRVerifyError(f"{where}: ReduceOp on a non-reduction kernel")
    for m in op.maps:
        _check_map(m, decls, where)
        host = getattr(kernel, "arrays", {}).get(m.array)
        if host is not None:
            prior = arrays_seen.setdefault(m.array, host)
            if prior is not host:
                raise IRVerifyError(
                    f"{where}: array {m.array!r} is bound to a different "
                    "host array than an earlier offload (the data "
                    "environment is keyed by name)"
                )
    for h in op.halos:
        if h.array not in decls:
            raise IRVerifyError(f"{where}: halo for undeclared array {h.array!r}")
        if not any(m.array == h.array and m.partitioned for m in op.maps):
            raise IRVerifyError(
                f"{where}: halo for {h.array!r}, which no partitioned map covers"
            )


def _check_fused(
    op: FusedOffloadOp, decls: dict[str, DataDecl], arrays_seen: dict[str, object]
) -> None:
    if len(op.members) < 2:
        raise IRVerifyError("fused group needs >= 2 member offloads")
    head = op.members[0]
    names = set(head.map_names)
    shared = set(names)
    for member in op.members:
        _check_offload(member, decls, arrays_seen)
        if member.n_iters != head.n_iters:
            raise IRVerifyError("fused members disagree on iteration count")
        if member.devices != head.devices:
            raise IRVerifyError("fused members disagree on device clause")
        if member.serialize_offload != head.serialize_offload:
            raise IRVerifyError("fused members disagree on serialization")
        shared &= set(member.map_names)
    if not shared:
        raise IRVerifyError("fused members share no array")
    region_names = {m.array for m in op.region_maps}
    member_names = {m.array for mem in op.members for m in mem.maps}
    if not member_names <= region_names:
        missing = sorted(member_names - region_names)
        raise IRVerifyError(f"fused region maps miss member arrays {missing}")
    for m in op.region_maps:
        _check_map(m, decls, "fused region")


def _check_stream(
    op: StreamOp, decls: dict[str, DataDecl], arrays_seen: dict[str, object]
) -> None:
    where = f"stream {getattr(op.template.kernel, 'name', '?')!r}"
    if op.batches < 1:
        raise IRVerifyError(f"{where}: batches must be >= 1, got {op.batches}")
    if op.window < 0:
        raise IRVerifyError(f"{where}: window must be >= 0, got {op.window}")
    _check_offload(op.template, decls, arrays_seen)
    if op.region_maps:
        region_names = {m.array for m in op.region_maps}
        member_names = set(op.template.map_names)
        if not member_names <= region_names:
            missing = sorted(member_names - region_names)
            raise IRVerifyError(
                f"{where}: region maps miss template arrays {missing}"
            )
        for m in op.region_maps:
            _check_map(m, decls, f"{where} region")


def verify_program(program: Program) -> Program:
    """Check ``program``; returns it unchanged so calls compose."""
    if not program.ops and not program.region_maps:
        raise IRVerifyError("empty program: no offloads and no region maps")
    decls: dict[str, DataDecl] = {}
    for d in program.decls:
        if d.name in decls:
            raise IRVerifyError(f"duplicate declaration of array {d.name!r}")
        if any(extent < 0 for extent in d.shape) or d.nbytes < 0:
            raise IRVerifyError(f"declaration {d.name!r} has negative geometry")
        decls[d.name] = d
    for m in program.region_maps:
        _check_map(m, decls, "region")
    arrays_seen: dict[str, object] = {}
    for op in program.ops:
        if isinstance(op, FusedOffloadOp):
            _check_fused(op, decls, arrays_seen)
        elif isinstance(op, StreamOp):
            _check_stream(op, decls, arrays_seen)
        else:
            _check_offload(op, decls, arrays_seen)
    return program
