"""Lowering: parsed HOMP directives + kernels -> the typed offload IR.

The front-end seam (ROADMAP 5b): :func:`from_directive` turns one Fig. 2
pragma and its bound kernel into a one-op :class:`~repro.ir.ops.Program`;
:func:`from_directives` chains several into a multi-offload program the
``fuse-adjacent-offloads`` pass can optimise; :func:`data_region` lowers
a Fig. 3 ``target data`` directive into a program-scope map set a
:class:`~repro.runtime.data_env.TargetDataRegion` is built from.

Lowering preserves the directive path's semantics exactly:

* map ``partition(...)`` entries naming a kernel array become
  :attr:`~repro.ir.ops.OffloadOp.partition_overrides` (the runtime applies
  them via ``set_partition`` before execution, and they persist on the
  kernel afterwards, as they always have);
* the schedule comes from an explicit override, else the directive's
  ``dist_schedule(target:[...])`` head policy, else ``"AUTO"``;
* without the ``parallel target`` composite the offload serialises
  (paper §III.4).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.dist.policy import Full, Policy
from repro.errors import DeviceError, SchedulingError
from repro.ir.ops import (
    DataDecl,
    MapOp,
    OffloadOp,
    Program,
    ReduceOp,
    Region,
    StreamOp,
)
from repro.kernels.base import LoopKernel
from repro.lang.pragma import OffloadDirective, parse_directive

__all__ = ["from_directive", "from_directives", "data_region", "decl_for"]


def decl_for(name: str, arr: np.ndarray) -> DataDecl:
    """Geometry declaration for one host array."""
    return DataDecl(
        name=name,
        shape=tuple(int(x) for x in arr.shape),
        dtype=str(arr.dtype),
        nbytes=int(arr.nbytes),
    )


def _parse(directive: "str | OffloadDirective") -> tuple[OffloadDirective, str]:
    if isinstance(directive, str):
        return parse_directive(directive), directive
    return directive, ""


def _lower_one(
    d: OffloadDirective,
    kernel: LoopKernel,
    *,
    schedule=None,
) -> tuple[tuple[DataDecl, ...], OffloadOp]:
    overrides = tuple(
        (m.name, m.policies[0])
        for m in d.maps
        if m.name in kernel.arrays and m.policies
    )
    override_by_name = dict(overrides)

    maps = []
    decls = []
    for m in kernel.effective_maps():
        policies = m.policies
        override = override_by_name.get(m.name)
        if override is not None:
            policies = (override, *policies[1:])
        maps.append(
            MapOp(
                array=m.name,
                direction=m.direction,
                policies=policies,
                halo=m.halo,
                region=Region.for_map(policies, m.halo),
            )
        )
        decls.append(decl_for(m.name, kernel.arrays[m.name]))

    if schedule is None:
        if d.dist_schedule is not None:
            schedule = d.dist_schedule.policies[0]
        else:
            schedule = "AUTO"

    reduce_op = None
    if kernel.is_reduction:
        reduce_op = ReduceOp(
            op=d.reduction[0] if d.reduction else "+",
            var=d.reduction[1] if d.reduction else None,
        )

    op = OffloadOp(
        kernel=kernel,
        label=kernel.label,
        n_iters=kernel.n_iters,
        schedule=schedule,
        devices=d.device_clause if d.device_clause else None,
        maps=tuple(maps),
        reduce=reduce_op,
        collapse=d.collapse,
        serialize_offload=not d.is_parallel_target,
        partition_overrides=overrides,
    )
    return tuple(decls), op


def _merge_decls(
    into: dict[str, DataDecl], decls: Iterable[DataDecl]
) -> None:
    from repro.errors import IRVerifyError

    for decl in decls:
        prior = into.get(decl.name)
        if prior is None:
            into[decl.name] = decl
        elif prior != decl:
            raise IRVerifyError(
                f"array {decl.name!r} declared with conflicting geometry: "
                f"{prior.shape}/{prior.dtype} vs {decl.shape}/{decl.dtype}"
            )


def from_directive(
    directive: "str | OffloadDirective",
    kernel: LoopKernel,
    *,
    schedule=None,
) -> Program:
    """Lower one directive + kernel into a single-offload program.

    ``schedule`` overrides the directive's ``dist_schedule`` (the
    ``offload(..., schedule=...)`` escape hatch).
    """
    d, source = _parse(directive)
    decls, op = _lower_one(d, kernel, schedule=schedule)
    merged: dict[str, DataDecl] = {}
    _merge_decls(merged, decls)
    lowered: "OffloadOp | StreamOp" = op
    if d.stream is not None:
        # stream(batches=N, window=W): the op becomes the batch template;
        # the stream-pipeline pass hoists its maps into region_maps.
        lowered = StreamOp(
            template=op, batches=d.stream.batches, window=d.stream.window
        )
    return Program(
        decls=tuple(merged.values()),
        ops=(lowered,),
        source=(source,) if source else (),
    )


def from_directives(
    pairs: "Iterable[tuple[str | OffloadDirective, LoopKernel]]",
) -> Program:
    """Lower an ordered (directive, kernel) sequence into one program.

    The resulting ops run back to back; the fusion pass may group
    adjacent compatible ones under a shared data environment.
    """
    merged: dict[str, DataDecl] = {}
    ops = []
    sources = []
    for directive, kernel in pairs:
        d, source = _parse(directive)
        decls, op = _lower_one(d, kernel)
        _merge_decls(merged, decls)
        ops.append(op)
        if source:
            sources.append(source)
    return Program(
        decls=tuple(merged.values()),
        ops=tuple(ops),
        source=tuple(sources),
    )


def data_region(
    directive: "str | OffloadDirective",
    arrays: Mapping[str, np.ndarray],
) -> Program:
    """Lower a ``target data`` directive into a program-scope map set.

    Scalars in the map clauses are skipped (they are trivially shared);
    a non-scalar map naming an array absent from ``arrays`` raises
    :class:`~repro.errors.DeviceError`, as the directive path always has.
    """
    d, source = _parse(directive)
    if not d.is_data_region:
        raise SchedulingError("directive is not a target data region")
    merged: dict[str, DataDecl] = {}
    region_maps = []
    for m in d.maps:
        if m.name not in arrays:
            if m.is_scalar:
                continue
            raise DeviceError(f"target data maps unknown array {m.name!r}")
        arr = arrays[m.name]
        _merge_decls(merged, [decl_for(m.name, arr)])
        region_maps.append(
            MapOp(
                array=m.name,
                direction=m.direction,
                policies=m.policies,
                halo=m.halo,
                region=Region.for_map(m.policies, m.halo),
            )
        )
    return Program(
        decls=tuple(merged.values()),
        region_maps=tuple(region_maps),
        region_devices=d.device_clause if d.device_clause else None,
        source=(source,) if source else (),
    )
