"""The typed offload IR: op vocabulary (ROADMAP item 5b).

Directives (``repro.lang``) are *syntax*; kernels (``repro.kernels``) are
*bodies*.  This module is the typed middle layer between them: a parsed
pragma plus its kernel lower (``repro.ir.lower``) into a small immutable
:class:`Program` of ops that the verifier checks, the rewrite passes
(``repro.ir.passes``) optimise, and the runtime executes
(:meth:`repro.runtime.runtime.HompRuntime.run_program`).

Vocabulary:

========== ==============================================================
DataDecl   one named host array: shape, dtype, bytes (geometry only)
MapOp      one ``map(dir: name partition(...) halo(lo,hi))`` with its
           symbolic :class:`Region` footprint
Region     per-dimension symbolic bounds over the loop chunk — what a
           chunk ``[start, stop)`` touches of an array, before any chunk
           is known (``concretize`` plugs real rows in)
HaloOp     a boundary exchange derived from a partitioned map's halo;
           :meth:`HaloOp.legs` computes who sends which rows to whom
ReduceOp   the loop's reduction clause (op, variable)
OffloadOp  one offloadable loop: kernel + schedule + devices + maps
FusedOffloadOp
           a back-to-back run of compatible OffloadOps sharing a data
           environment (built by the fuse-adjacent-offloads pass)
StreamOp   ``batches`` repetitions of one template offload over evolving
           data (the ``stream(batches=N, window=W)`` clause); the
           stream-pipeline pass hoists the template's maps into a
           persistent ``region_maps`` data environment
Program    an ordered sequence of offloads over a set of declarations,
           plus optional program-scope ``region_maps`` (target data)
========== ==============================================================

Every node is a frozen dataclass: passes rewrite by building new nodes
(``dataclasses.replace``), never by mutation.  The only deliberately
non-value field is :attr:`OffloadOp.kernel` — the bound loop body, a live
:class:`~repro.kernels.base.LoopKernel` the runtime executes.

``IR_VERSION`` keys the sweep-cache fingerprint: any change to lowering,
pass semantics or execution order that could perturb a cached
:class:`~repro.engine.trace.OffloadResult` must bump it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dist.policy import Full, Policy
from repro.errors import IRVerifyError
from repro.memory.space import MapDirection
from repro.util.ranges import IterRange

__all__ = [
    "IR_VERSION",
    "Bound",
    "Dim",
    "Region",
    "DataDecl",
    "MapOp",
    "HaloLeg",
    "HaloOp",
    "ReduceOp",
    "OffloadOp",
    "FusedOffloadOp",
    "StreamOp",
    "Program",
]

#: Joins the sweep-cache fingerprint (see ``repro.bench.cache``): bump on
#: any IR change that could perturb lowered-program results.
IR_VERSION = "1"

_BASES = ("zero", "extent", "chunk_start", "chunk_stop")


@dataclass(frozen=True)
class Bound:
    """One symbolic bound: an anchor plus an integer offset.

    Anchors: ``zero``/``extent`` are the array dimension's edges;
    ``chunk_start``/``chunk_stop`` are the loop chunk's edges (unknown
    until the scheduler hands a device its rows).
    """

    base: str
    offset: int = 0

    def __post_init__(self) -> None:
        if self.base not in _BASES:
            raise IRVerifyError(
                f"bound base must be one of {_BASES}, got {self.base!r}"
            )

    def resolve(self, rows: IterRange, extent: int) -> int:
        if self.base == "zero":
            anchor = 0
        elif self.base == "extent":
            anchor = extent
        elif self.base == "chunk_start":
            anchor = rows.start
        else:
            anchor = rows.stop
        return anchor + self.offset

    def __str__(self) -> str:
        if self.offset == 0:
            return self.base
        return f"{self.base}{self.offset:+d}"


@dataclass(frozen=True)
class Dim:
    """One dimension of a :class:`Region`: ``[lower, upper)``, clamped to
    the array's ``[0, extent)`` on concretization."""

    lower: Bound
    upper: Bound

    def __str__(self) -> str:
        return f"[{self.lower}:{self.upper}]"


@dataclass(frozen=True)
class Region:
    """Symbolic footprint of one mapped array under a loop chunk."""

    dims: tuple[Dim, ...]

    @classmethod
    def for_map(
        cls,
        policies: tuple[Policy, ...],
        halo: tuple[int, int],
    ) -> "Region":
        """The footprint a map clause implies.

        Dim 0 of a partitioned map follows the chunk, grown by the halo;
        every other (and every FULL) dimension covers its whole extent —
        exactly :meth:`repro.kernels.base.LoopKernel.input_region`, but
        stated symbolically before any chunk exists.
        """
        partitioned = bool(policies) and not isinstance(policies[0], Full)
        dims = []
        for d in range(len(policies)):
            if d == 0 and partitioned:
                dims.append(
                    Dim(
                        Bound("chunk_start", -halo[0]),
                        Bound("chunk_stop", halo[1]),
                    )
                )
            else:
                dims.append(Dim(Bound("zero"), Bound("extent")))
        return cls(dims=tuple(dims))

    def concretize(
        self, rows: IterRange, shape: tuple[int, ...]
    ) -> tuple[IterRange, ...]:
        """Plug a real chunk in: per-dim ranges clamped to ``[0, extent)``."""
        if len(shape) != len(self.dims):
            raise IRVerifyError(
                f"region has {len(self.dims)} dims for a rank-{len(shape)} "
                "array"
            )
        out = []
        for dim, extent in zip(self.dims, shape):
            lo = max(0, dim.lower.resolve(rows, extent))
            hi = min(extent, dim.upper.resolve(rows, extent))
            out.append(IterRange(lo, max(lo, hi)))
        return tuple(out)

    def __str__(self) -> str:
        return "".join(str(d) for d in self.dims)


@dataclass(frozen=True)
class DataDecl:
    """Geometry of one named host array in the program's data environment."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int

    @property
    def rows(self) -> int:
        """Dim-0 extent (the residency ledger's charging axis)."""
        return int(self.shape[0]) if self.shape else 1

    @property
    def row_bytes(self) -> int:
        """Bytes per dim-0 index."""
        rows = self.rows
        return self.nbytes // rows if rows else 0


@dataclass(frozen=True)
class MapOp:
    """One mapped array: direction, per-dim policies, halo, footprint."""

    array: str
    direction: MapDirection
    policies: tuple[Policy, ...] = ()
    halo: tuple[int, int] = (0, 0)
    region: Region = field(default_factory=lambda: Region(dims=()))

    @property
    def partitioned(self) -> bool:
        return bool(self.policies) and not isinstance(self.policies[0], Full)

    @property
    def is_scalar(self) -> bool:
        return not self.policies


@dataclass(frozen=True)
class HaloLeg:
    """One directed boundary transfer: ``rows`` of the array, src -> dst."""

    src: int
    dst: int
    rows: IterRange


@dataclass(frozen=True)
class HaloOp:
    """A boundary exchange for one partitioned array.

    ``lower``/``upper`` are the halo widths below/above each device's
    share.  The op is purely symbolic until :meth:`legs` is given a
    concrete :class:`~repro.dist.distribution.DimDistribution`; the
    runtime's :func:`repro.runtime.halo.plan_halo_op` then prices the legs
    on a machine and routes them through the residency ledger.
    """

    array: str
    lower: int
    upper: int
    row_bytes: int = 0

    def __post_init__(self) -> None:
        if self.lower < 0 or self.upper < 0:
            raise IRVerifyError(
                f"halo widths must be >= 0, got ({self.lower}, {self.upper})"
            )

    @staticmethod
    def _span(dist, devid: int) -> IterRange:
        """Contiguous hull of a device's owned ranges (row-block dists)."""
        ranges = dist.device_ranges(devid)
        return IterRange(
            min(r.start for r in ranges), max(r.stop for r in ranges)
        )

    def legs(self, dist) -> tuple[HaloLeg, ...]:
        """Derive the exchange legs from the Region footprints.

        A device owning span ``s`` needs the footprint
        ``[s.start - lower, s.stop + upper)``; whatever falls outside its
        own span must arrive from the adjacent owner.  For each adjacent
        owner pair (a, b) that yields two legs: a sends b's lower-halo
        rows (``footprint(b) \\ span(b)`` below, intersected with a's
        span) and b sends a's upper-halo rows.  Devices owning nothing
        take no part.
        """
        owners = [d for d in range(dist.ndev) if dist.device_size(d) > 0]
        legs: list[HaloLeg] = []
        for a, b in zip(owners, owners[1:]):
            sa, sb = self._span(dist, a), self._span(dist, b)
            # b's lower halo: rows below its span, served from a's span.
            down = IterRange(sb.start - self.lower, sb.start).intersect(sa)
            # a's upper halo: rows above its span, served from b's span.
            up = IterRange(sa.stop, sa.stop + self.upper).intersect(sb)
            if not down.empty:
                legs.append(HaloLeg(src=a, dst=b, rows=down))
            if not up.empty:
                legs.append(HaloLeg(src=b, dst=a, rows=up))
        return tuple(legs)


@dataclass(frozen=True)
class ReduceOp:
    """The loop's reduction: combining operator and directive variable."""

    op: str = "+"
    var: str | None = None


@dataclass(frozen=True)
class OffloadOp:
    """One offloadable parallel loop, fully resolved.

    ``kernel`` is the live loop body; everything else is the directive's
    contribution, normalised: the schedule (a policy or Table II
    notation), the device clause, the map set with symbolic regions, and
    the ``partition(...)`` overrides the runtime must apply to the kernel
    before execution (they outlive the call, as the directive path always
    has).
    """

    kernel: object
    label: str
    n_iters: int
    schedule: object = "AUTO"
    devices: str | None = None
    maps: tuple[MapOp, ...] = ()
    halos: tuple[HaloOp, ...] = ()
    reduce: ReduceOp | None = None
    collapse: int | None = None
    serialize_offload: bool = False
    partition_overrides: tuple[tuple[str, Policy], ...] = ()

    @property
    def map_names(self) -> tuple[str, ...]:
        return tuple(m.array for m in self.maps)


@dataclass(frozen=True)
class FusedOffloadOp:
    """Compatible back-to-back offloads sharing one data environment.

    Built by the ``fuse-adjacent-offloads`` pass; ``region_maps`` is the
    merged environment (direction-unioned, policy-reconciled) the runtime
    opens as a target-data region so the residency ledger elides the
    members' intermediate traffic.
    """

    members: tuple[OffloadOp, ...]
    region_maps: tuple[MapOp, ...]

    @property
    def devices(self) -> str | None:
        return self.members[0].devices

    @property
    def n_iters(self) -> int:
        return self.members[0].n_iters

    @property
    def serialize_offload(self) -> bool:
        return self.members[0].serialize_offload


@dataclass(frozen=True)
class StreamOp:
    """One template offload executed ``batches`` times over evolving data.

    Lowered from the ``stream(batches=N, window=W)`` clause (HSTREAM
    direction).  ``window`` is the number of dim-0 rows the stream source
    refreshes between batches: steady-state batches re-stage only that
    sliding-window delta once the ``stream-pipeline`` pass has hoisted
    the per-batch maps into the persistent ``region_maps`` environment
    the runtime opens across the whole batch sequence.
    """

    template: OffloadOp
    batches: int
    window: int = 0
    region_maps: tuple[MapOp, ...] = ()

    @property
    def devices(self) -> str | None:
        return self.template.devices

    @property
    def n_iters(self) -> int:
        return self.template.n_iters

    @property
    def serialize_offload(self) -> bool:
        return self.template.serialize_offload

    @property
    def map_names(self) -> tuple[str, ...]:
        return self.template.map_names


@dataclass(frozen=True)
class Program:
    """A lowered directive sequence: declarations + offloads in order.

    ``region_maps`` is non-empty only for ``target data`` programs — the
    program-scope data environment a
    :class:`~repro.runtime.data_env.TargetDataRegion` is built from.
    """

    decls: tuple[DataDecl, ...] = ()
    region_maps: tuple[MapOp, ...] = ()
    #: Device clause of the ``target data`` directive a region program
    #: was lowered from (None = all devices).
    region_devices: str | None = None
    ops: tuple["OffloadOp | FusedOffloadOp | StreamOp", ...] = ()
    #: Original directive texts, for provenance/debugging only.
    source: tuple[str, ...] = ()

    def decl(self, name: str) -> DataDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise IRVerifyError(f"no declaration for array {name!r}")

    @property
    def offloads(self) -> tuple[OffloadOp, ...]:
        """All member offloads in execution order (fused groups flattened)."""
        out: list[OffloadOp] = []
        for op in self.ops:
            if isinstance(op, FusedOffloadOp):
                out.extend(op.members)
            elif isinstance(op, StreamOp):
                out.append(op.template)
            else:
                out.append(op)
        return tuple(out)

    def describe(self) -> str:
        """Human-readable program listing (examples print this)."""
        lines = [f"program ({len(self.decls)} decls, {len(self.ops)} ops)"]
        for d in self.decls:
            lines.append(f"  decl {d.name}: {list(d.shape)} {d.dtype}")
        for m in self.region_maps:
            lines.append(
                f"  region map({m.direction.value}: {m.array} "
                f"partition[{', '.join(str(p) for p in m.policies)}])"
            )
        for op in self.ops:
            if isinstance(op, FusedOffloadOp):
                members = op.members
            elif isinstance(op, StreamOp):
                members = (op.template,)
            else:
                members = (op,)
            indent = "  "
            if isinstance(op, FusedOffloadOp):
                lines.append(
                    f"  fused group over {{{', '.join(sorted({m.array for m in op.region_maps}))}}}"
                )
                indent = "    "
            elif isinstance(op, StreamOp):
                lines.append(
                    f"  stream batches={op.batches} window={op.window} "
                    f"region={{{', '.join(sorted({m.array for m in op.region_maps}))}}}"
                )
                indent = "    "
            for m in members:
                halos = "".join(
                    f" halo({h.lower},{h.upper}):{h.array}" for h in m.halos
                )
                lines.append(
                    f"{indent}offload {m.kernel.name}: {m.label}"
                    f"[0:{m.n_iters}) schedule={m.schedule}"
                    f" maps={{{', '.join(m.map_names)}}}{halos}"
                )
        return "\n".join(lines)
