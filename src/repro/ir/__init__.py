"""repro.ir — the typed offload IR (ROADMAP item 5b).

One front-end path: ``parse_directive -> lower -> verify -> passes ->
execute``.  Directives lower (:mod:`repro.ir.lower`) into an immutable
:class:`Program` of typed ops (:mod:`repro.ir.ops`), the verifier
(:mod:`repro.ir.verify`) checks it, the rewrite passes
(:mod:`repro.ir.passes`) normalise maps, derive halo exchanges
symbolically and fuse adjacent offloads, and
:meth:`repro.runtime.runtime.HompRuntime.run_program` executes the
result.  See ``docs/IR.md`` for the op vocabulary, verifier rules and
fusion legality conditions.
"""

from repro.ir.lower import data_region, decl_for, from_directive, from_directives
from repro.ir.ops import (
    IR_VERSION,
    Bound,
    DataDecl,
    Dim,
    FusedOffloadOp,
    HaloLeg,
    HaloOp,
    MapOp,
    OffloadOp,
    Program,
    ReduceOp,
    Region,
    StreamOp,
)
from repro.ir.passes import (
    DEFAULT_PIPELINE,
    PASSES,
    derive_halo,
    fuse_adjacent_offloads,
    normalize_maps,
    run_passes,
    stream_pipeline,
)
from repro.ir.verify import verify_program

__all__ = [
    "IR_VERSION",
    "Bound",
    "Dim",
    "Region",
    "DataDecl",
    "MapOp",
    "HaloLeg",
    "HaloOp",
    "ReduceOp",
    "OffloadOp",
    "FusedOffloadOp",
    "StreamOp",
    "Program",
    "from_directive",
    "from_directives",
    "data_region",
    "decl_for",
    "verify_program",
    "run_passes",
    "normalize_maps",
    "derive_halo",
    "fuse_adjacent_offloads",
    "stream_pipeline",
    "DEFAULT_PIPELINE",
    "PASSES",
]
