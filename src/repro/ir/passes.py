"""Rewrite passes over lowered offload programs.

Each pass is ``Program -> Program`` on immutable nodes.  The default
pipeline, in order:

``normalize-maps``
    Dedupe/widen overlapping map clauses per op (and per program-scope
    region): duplicate maps of one array merge into a single op with the
    unioned direction (``to`` + ``from`` -> ``tofrom``), the per-side
    maximum halo, and per-dimension widened policies (identical policies
    keep, a FULL widens over a partitioned one; two *different*
    partitioned policies are irreconcilable and raise
    :class:`~repro.errors.IRVerifyError`).

``derive-halo``
    Attach a :class:`~repro.ir.ops.HaloOp` to every offload map that is
    dim-0 partitioned with a non-zero halo — the symbolic boundary
    exchange :func:`repro.runtime.halo.plan_halo_op` prices at run time.

``fuse-adjacent-offloads``
    Merge maximal runs of back-to-back compatible offloads into one
    :class:`~repro.ir.ops.FusedOffloadOp` sharing a data environment, so
    the residency ledger elides the intermediate transfers.  Fusion
    legality (all required; an incompatible pair is simply left unfused):

    * same iteration count, device clause and serialization mode;
    * at least one shared array, and every shared name bound to the
      *same host array* in both kernels;
    * for any shared array some member writes, all members mapping it
      agree on the dim-0 policy (the region must place it one way);
    * the merged region maps are constructible (read-only policy
      conflicts widen to FULL; irreconcilable ones block fusion).

Fusion never changes numerics — ground truth lives in the host arrays —
only the transfer accounting (``bytes_elided``) and virtual time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable

from repro.dist.policy import Full, Policy
from repro.errors import IRVerifyError
from repro.ir.ops import (
    FusedOffloadOp,
    HaloOp,
    MapOp,
    OffloadOp,
    Program,
    Region,
    StreamOp,
)
from repro.memory.space import MapDirection

__all__ = [
    "DEFAULT_PIPELINE",
    "PASSES",
    "run_passes",
    "normalize_maps",
    "derive_halo",
    "fuse_adjacent_offloads",
    "stream_pipeline",
]


def _direction_union(directions: Iterable[MapDirection]) -> MapDirection:
    directions = tuple(directions)
    copies_in = any(d.copies_in for d in directions)
    copies_out = any(d.copies_out for d in directions)
    if copies_in and copies_out:
        return MapDirection.TOFROM
    if copies_in:
        return MapDirection.TO
    if copies_out:
        return MapDirection.FROM
    return MapDirection.ALLOC


def _widen_policies(
    variants: list[tuple[Policy, ...]], array: str
) -> tuple[Policy, ...]:
    """Per-dimension widening of several policy tuples for one array."""
    ranks = {len(v) for v in variants}
    if len(ranks) != 1:
        raise IRVerifyError(
            f"map {array!r} appears with conflicting ranks {sorted(ranks)}"
        )
    out: list[Policy] = []
    for d in range(ranks.pop()):
        dim = {v[d] for v in variants}
        if len(dim) == 1:
            out.append(dim.pop())
            continue
        non_full = [p for p in dim if not isinstance(p, Full)]
        if len(non_full) > 1:
            raise IRVerifyError(
                f"map {array!r} dim {d}: conflicting partition policies "
                f"{sorted(str(p) for p in non_full)} cannot be widened"
            )
        # FULL covers any partitioned share: widen to replication.
        out.append(Full())
    return tuple(out)


def _merge_maps(maps: Iterable[MapOp]) -> tuple[MapOp, ...]:
    """Merge duplicate-array maps (first-appearance order)."""
    order: list[str] = []
    groups: dict[str, list[MapOp]] = {}
    for m in maps:
        if m.array not in groups:
            order.append(m.array)
            groups[m.array] = []
        groups[m.array].append(m)
    out: list[MapOp] = []
    for name in order:
        group = groups[name]
        if len(group) == 1:
            out.append(group[0])
            continue
        policies = _widen_policies([m.policies for m in group], name)
        halo = (
            max(m.halo[0] for m in group),
            max(m.halo[1] for m in group),
        )
        if not policies or isinstance(policies[0], Full):
            halo = (0, 0)  # a replicated map has no boundary
        out.append(
            MapOp(
                array=name,
                direction=_direction_union(m.direction for m in group),
                policies=policies,
                halo=halo,
                region=Region.for_map(policies, halo),
            )
        )
    return tuple(out)


def normalize_maps(program: Program) -> Program:
    """Dedupe/widen overlapping map clauses in every op and the region."""
    changed = False
    region_maps = _merge_maps(program.region_maps)
    if region_maps != program.region_maps:
        changed = True
    ops = []
    for op in program.ops:
        if isinstance(op, FusedOffloadOp):
            members = tuple(
                replace(m, maps=_merge_maps(m.maps)) for m in op.members
            )
            new = replace(op, members=members)
        elif isinstance(op, StreamOp):
            merged = _merge_maps(op.template.maps)
            new = (
                op
                if merged == op.template.maps
                else replace(op, template=replace(op.template, maps=merged))
            )
        else:
            merged = _merge_maps(op.maps)
            new = op if merged == op.maps else replace(op, maps=merged)
        if new is not op:
            changed = True
        ops.append(new)
    if not changed:
        return program
    return replace(program, region_maps=region_maps, ops=tuple(ops))


def _halos_for(op: OffloadOp, program: Program) -> tuple[HaloOp, ...]:
    halos = []
    for m in op.maps:
        if m.partitioned and m.halo != (0, 0):
            halos.append(
                HaloOp(
                    array=m.array,
                    lower=m.halo[0],
                    upper=m.halo[1],
                    row_bytes=program.decl(m.array).row_bytes,
                )
            )
    return tuple(halos)


def derive_halo(program: Program) -> Program:
    """Attach symbolic HaloOps to every stencil-shaped offload map."""
    changed = False
    ops = []
    for op in program.ops:
        if isinstance(op, FusedOffloadOp):
            members = tuple(
                replace(m, halos=_halos_for(m, program)) for m in op.members
            )
            new = replace(op, members=members)
            if members != op.members:
                changed = True
        elif isinstance(op, StreamOp):
            halos = _halos_for(op.template, program)
            new = (
                op
                if halos == op.template.halos
                else replace(op, template=replace(op.template, halos=halos))
            )
            if new is not op:
                changed = True
        else:
            halos = _halos_for(op, program)
            new = op if halos == op.halos else replace(op, halos=halos)
            if new is not op:
                changed = True
        ops.append(new)
    return replace(program, ops=tuple(ops)) if changed else program


def _written_by(members: Iterable[OffloadOp]) -> set[str]:
    return {
        m.array
        for member in members
        for m in member.maps
        if m.direction.copies_out
    }


def _try_region_maps(
    members: tuple[OffloadOp, ...],
) -> tuple[MapOp, ...] | None:
    """Merged data environment for a candidate fused group, or None."""
    try:
        return _merge_maps(m for member in members for m in member.maps)
    except IRVerifyError:
        return None


def _can_join(group: list[OffloadOp], candidate: OffloadOp) -> bool:
    head = group[0]
    if (
        candidate.n_iters != head.n_iters
        or candidate.devices != head.devices
        or candidate.serialize_offload != head.serialize_offload
    ):
        return False
    group_names = {name for m in group for name in m.map_names}
    shared = group_names & set(candidate.map_names)
    if not shared:
        return False
    # The fused environment is keyed by name: every shared name must bind
    # the same host array everywhere.
    for member in group:
        for name in set(member.map_names) & set(candidate.map_names):
            if member.kernel.arrays[name] is not candidate.kernel.arrays[name]:
                return False
    # Arrays any member writes must be placed one way: all mappers agree
    # on the dim-0 policy.
    trial = (*group, candidate)
    for name in _written_by(trial):
        dim0 = {
            m.policies[0]
            for member in trial
            for m in member.maps
            if m.array == name and m.policies
        }
        if len(dim0) > 1:
            return False
    return _try_region_maps(trial) is not None


def fuse_adjacent_offloads(program: Program) -> Program:
    """Group maximal runs of compatible adjacent offloads."""
    ops = list(program.ops)
    out: list[OffloadOp | FusedOffloadOp] = []
    i = 0
    changed = False
    while i < len(ops):
        op = ops[i]
        if not isinstance(op, OffloadOp):
            out.append(op)
            i += 1
            continue
        group = [op]
        j = i + 1
        while (
            j < len(ops)
            and isinstance(ops[j], OffloadOp)
            and _can_join(group, ops[j])
        ):
            group.append(ops[j])
            j += 1
        if len(group) > 1:
            region_maps = _try_region_maps(tuple(group))
            assert region_maps is not None  # _can_join validated each step
            out.append(
                FusedOffloadOp(members=tuple(group), region_maps=region_maps)
            )
            changed = True
        else:
            out.append(op)
        i = j
    return replace(program, ops=tuple(out)) if changed else program


def stream_pipeline(program: Program) -> Program:
    """Hoist every stream's per-batch maps into a persistent region.

    A :class:`~repro.ir.ops.StreamOp` without ``region_maps`` would open
    and tear down its template's data environment every batch, restaging
    everything.  This pass fills ``region_maps`` with the merged template
    map set, so the runtime opens *one* target-data region across the
    whole batch sequence: the residency ledger then keeps device-resident
    state between batches and steady-state batches pay only the
    sliding-window delta.  Streams whose region is already set (or whose
    template maps nothing) pass through unchanged.
    """
    changed = False
    ops = []
    for op in program.ops:
        if (
            isinstance(op, StreamOp)
            and not op.region_maps
            and op.template.maps
        ):
            op = replace(op, region_maps=_merge_maps(op.template.maps))
            changed = True
        ops.append(op)
    return replace(program, ops=tuple(ops)) if changed else program


PASSES: dict[str, Callable[[Program], Program]] = {
    "normalize-maps": normalize_maps,
    "derive-halo": derive_halo,
    "fuse-adjacent-offloads": fuse_adjacent_offloads,
    "stream-pipeline": stream_pipeline,
}

#: The standard pipeline, in application order.
DEFAULT_PIPELINE: tuple[str, ...] = (
    "normalize-maps",
    "derive-halo",
    "fuse-adjacent-offloads",
    "stream-pipeline",
)


def run_passes(
    program: Program,
    pipeline: "Iterable[str | Callable[[Program], Program]] | None" = None,
) -> Program:
    """Apply ``pipeline`` (names or callables) in order.

    ``None`` runs :data:`DEFAULT_PIPELINE`; an empty iterable disables
    rewriting entirely (the CI fusion smoke's control arm).
    """
    if pipeline is None:
        pipeline = DEFAULT_PIPELINE
    for entry in pipeline:
        if callable(entry):
            program = entry(program)
            continue
        fn = PASSES.get(entry)
        if fn is None:
            raise IRVerifyError(
                f"unknown IR pass {entry!r}; known: {sorted(PASSES)}"
            )
        program = fn(program)
    return program
