"""Half-open iteration ranges and the splitting primitives every
distribution policy is built from.

An :class:`IterRange` is a half-open interval ``[start, stop)`` over a loop
iteration space or one dimension of an array.  The invariants established
here — splits cover the parent exactly once, chunks are contiguous and
disjoint — are what the property tests in ``tests/util`` pin down, and every
scheduler relies on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["IterRange", "split_block", "split_by_weights", "chunk_starts"]


@dataclass(frozen=True, slots=True)
class IterRange:
    """A half-open range ``[start, stop)`` of loop iterations or indices."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"range stop {self.stop} < start {self.start}")

    def __len__(self) -> int:
        return self.stop - self.start

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))

    def __contains__(self, i: object) -> bool:
        return isinstance(i, int) and self.start <= i < self.stop

    @property
    def empty(self) -> bool:
        return self.stop == self.start

    def as_slice(self) -> slice:
        return slice(self.start, self.stop)

    def shift(self, offset: int) -> "IterRange":
        return IterRange(self.start + offset, self.stop + offset)

    def intersect(self, other: "IterRange") -> "IterRange":
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if hi < lo:
            return IterRange(lo, lo)
        return IterRange(lo, hi)

    def contains_range(self, other: "IterRange") -> bool:
        return self.start <= other.start and other.stop <= self.stop

    def expand(self, lo: int, hi: int, *, clamp: "IterRange | None" = None) -> "IterRange":
        """Grow by ``lo`` downward and ``hi`` upward (halo construction),
        optionally clamped to an enclosing range.

        A clamp window disjoint from the expanded range (or a negative
        ``lo``/``hi`` shrinking past empty) yields an *empty* range rather
        than an inverted one — positioned inside the clamp window when one
        is given.
        """
        start, stop = self.start - lo, self.stop + hi
        if clamp is not None:
            start = max(start, clamp.start)
            stop = min(stop, clamp.stop)
        if stop < start:
            start = stop = (
                min(max(start, clamp.start), clamp.stop)
                if clamp is not None
                else start
            )
        return IterRange(start, stop)

    def take(self, n: int) -> tuple["IterRange", "IterRange"]:
        """Split off the first ``n`` iterations: ``(head, rest)``."""
        n = max(0, min(n, len(self)))
        mid = self.start + n
        return IterRange(self.start, mid), IterRange(mid, self.stop)


def split_block(rng: IterRange, parts: int) -> list[IterRange]:
    """Divide ``rng`` into ``parts`` contiguous blocks as evenly as possible.

    Matches the paper's BLOCK policy (and the manual remainder-handling code
    in its Fig. 1 ``axpy_omp_mdev``): the first ``len(rng) % parts`` blocks
    get one extra iteration.  Blocks may be empty when ``parts > len(rng)``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    n = len(rng)
    base, remnant = divmod(n, parts)
    out: list[IterRange] = []
    pos = rng.start
    for i in range(parts):
        size = base + (1 if i < remnant else 0)
        out.append(IterRange(pos, pos + size))
        pos += size
    return out


def split_by_weights(rng: IterRange, weights: Sequence[float]) -> list[IterRange]:
    """Divide ``rng`` into contiguous chunks proportional to ``weights``.

    Used by the model- and profile-based schedulers to turn per-device
    throughputs into loop chunks.  Uses largest-remainder rounding so the
    chunk sizes sum exactly to ``len(rng)``; zero or negative weights yield
    empty chunks (a device cut off by the CUTOFF heuristic receives weight
    zero).
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    w = [max(0.0, float(x)) for x in weights]
    total = sum(w)
    n = len(rng)
    if total <= 0.0:
        # No device claims any work: give everything to the first slot so
        # the loop still executes (mirrors falling back to the host).
        sizes = [n] + [0] * (len(w) - 1)
    else:
        exact = [n * x / total for x in w]
        sizes = [int(e) for e in exact]
        shortfall = n - sum(sizes)
        # Largest fractional remainders get the leftover iterations.
        order = sorted(range(len(w)), key=lambda i: exact[i] - sizes[i], reverse=True)
        for i in order[:shortfall]:
            sizes[i] += 1
    out: list[IterRange] = []
    pos = rng.start
    for size in sizes:
        out.append(IterRange(pos, pos + size))
        pos += size
    return out


def chunk_starts(rng: IterRange, chunk: int) -> list[IterRange]:
    """Tile ``rng`` into fixed-size chunks (last one may be short)."""
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    return [
        IterRange(s, min(s + chunk, rng.stop))
        for s in range(rng.start, rng.stop, chunk)
    ] or [IterRange(rng.start, rng.start)]
