"""Small shared utilities: iteration ranges, table rendering, units."""

from repro.util.ranges import IterRange, split_block, split_by_weights, chunk_starts

__all__ = ["IterRange", "split_block", "split_by_weights", "chunk_starts"]
