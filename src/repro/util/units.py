"""Unit helpers: the machine model mixes GFLOP/s, GB/s, bytes and seconds.

Keeping the conversions in one place avoids the classic off-by-1e9 bugs in
cost models.  All internal times are seconds; public reports use
milliseconds to match the paper's figures.
"""

from __future__ import annotations

__all__ = [
    "GIGA",
    "KIB",
    "MIB",
    "GIB",
    "gflops_to_flops",
    "gbs_to_bytes_per_s",
    "seconds_to_ms",
    "ms_to_seconds",
    "fmt_ms",
    "fmt_bytes",
]

GIGA = 1e9
KIB = 1024
MIB = 1024**2
GIB = 1024**3


def gflops_to_flops(gflops: float) -> float:
    """GFLOP/s -> FLOP/s."""
    return gflops * GIGA


def gbs_to_bytes_per_s(gbs: float) -> float:
    """GB/s (decimal, as vendors quote) -> bytes/s."""
    return gbs * GIGA


def seconds_to_ms(t: float) -> float:
    return t * 1e3


def ms_to_seconds(t: float) -> float:
    return t * 1e-3


def fmt_ms(t_seconds: float) -> str:
    """Format a duration in seconds as milliseconds for reports."""
    ms = seconds_to_ms(t_seconds)
    if ms >= 100:
        return f"{ms:.1f} ms"
    if ms >= 1:
        return f"{ms:.2f} ms"
    return f"{ms:.4f} ms"


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    if n >= GIB:
        return f"{n / GIB:.2f} GiB"
    if n >= MIB:
        return f"{n / MIB:.2f} MiB"
    if n >= KIB:
        return f"{n / KIB:.2f} KiB"
    return f"{int(n)} B"
