"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's figures and tables as aligned
ASCII tables (one per table/figure).  This renderer is deliberately small:
left-aligned first column, right-aligned numeric columns, a rule under the
header — enough to diff two runs by eye.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(ncols)
    ]

    def fmt_row(row: Sequence[str]) -> str:
        parts = [row[0].ljust(widths[0])]
        parts += [row[c].rjust(widths[c]) for c in range(1, ncols)]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)


def render_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as a two-column table (figure-as-text)."""
    rows = list(zip(xs, ys))
    return render_table([x_label, y_label], rows, title=name)
