#!/usr/bin/env python3
"""History-guided distribution (Qilin-style; the paper's future work).

The analytical models carry a documented blind spot: their `Perf_dev`
numbers come from microbenchmarks, and a KNC coprocessor's DGEMM
microbenchmark (~850 GFLOP/s) wildly overstates what generic offloaded
loops achieve (~250).  A HistoryDB learns true per-device throughput from
past offloads and redistributes accordingly — and it can be persisted
between runs like Qilin's database.

Run:  python examples/history_tuning.py
"""

import tempfile
from pathlib import Path

from repro import HompRuntime, cpu_mic_node, make_kernel
from repro.sched import DynamicScheduler, HistoryDB, HistoryScheduler, Model1Scheduler

N = 512


def main() -> None:
    machine = cpu_mic_node()
    runtime = HompRuntime(machine)

    model = runtime.parallel_for(make_kernel("matmul", N), schedule=Model1Scheduler())
    print(f"MODEL_1 (believes MIC microbenchmarks): {model.total_time_ms:8.3f} ms")
    print(f"  per-device split: {model.iterations_per_device()}")

    # one exploratory dynamic run teaches the database the truth
    db = HistoryDB()
    probe = runtime.parallel_for(
        make_kernel("matmul", N), schedule=DynamicScheduler(0.05)
    )
    db.ingest(probe, machine)
    print(f"SCHED_DYNAMIC probe:                    {probe.total_time_ms:8.3f} ms "
          f"(learned {len(db)} distinct device-spec records)")

    tuned = runtime.parallel_for(
        make_kernel("matmul", N), schedule=HistoryScheduler(db)
    )
    print(f"HISTORY_AUTO (learned throughputs):     {tuned.total_time_ms:8.3f} ms")
    print(f"  per-device split: {tuned.iterations_per_device()}")
    print(f"  speedup over MODEL_1: {model.total_time_s / tuned.total_time_s:.2f}x")

    # the database persists across sessions, like Qilin's
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "history.json"
        db.save(path)
        db2 = HistoryDB.load(path)
        again = runtime.parallel_for(
            make_kernel("matmul", N), schedule=HistoryScheduler(db2)
        )
        print(f"HISTORY_AUTO from persisted DB:         {again.total_time_ms:8.3f} ms")


if __name__ == "__main__":
    main()
