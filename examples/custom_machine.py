#!/usr/bin/env python3
"""Bring your own machine: description files, microbenchmarks, heuristics.

Shows the workflow for adapting HOMP to a new machine, as paper §V
describes ("the HOMP runtime reads from a given machine description file
the specification of host CPU and accelerators"):

1. author a machine description and write it to JSON,
2. microbenchmark the links to recover Hockney (alpha, beta) constants
   (how the paper obtains its model's machine factors),
3. let the selector heuristics (paper §VI.D) pick an algorithm per kernel.

Run:  python examples/custom_machine.py
"""

import tempfile
from pathlib import Path

from repro import (
    DeviceSpec,
    DeviceType,
    HompRuntime,
    Link,
    MachineSpec,
    MemoryKind,
    make_kernel,
    select_algorithm,
)
from repro.bench.microbench import probe_link
from repro.util.tables import render_table


def build_machine() -> MachineSpec:
    """An imaginary node: one big host + two mid-range GPUs."""
    host = DeviceSpec(
        name="epyc-host",
        dev_type=DeviceType.HOSTCPU,
        sustained_gflops=900.0,
        mem_bandwidth_gbs=150.0,
        launch_overhead_s=4e-6,
    )
    gpu = lambda i: DeviceSpec(
        name=f"gpu-{i}",
        dev_type=DeviceType.NVGPU,
        sustained_gflops=3500.0,
        mem_bandwidth_gbs=600.0,
        link=Link(latency_s=8e-6, bandwidth_gbs=24.0),
        memory=MemoryKind.DISCRETE,
        launch_overhead_s=8e-6,
        setup_overhead_s=100e-6,
    )
    return MachineSpec(name="custom-node", devices=(host, gpu(0), gpu(1)))


def main() -> None:
    machine = build_machine()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "machine.json"
        machine.to_file(path)
        machine = MachineSpec.from_file(path)  # round-trip, as the runtime does
    print(machine.describe())
    print()

    probe = probe_link(machine[1].link, noise=0.02, seed=3)
    print(
        f"microbenchmarked gpu-0 link: alpha = {probe.alpha_s * 1e6:.1f} us, "
        f"beta = {probe.bandwidth_gbs():.1f} GB/s "
        f"(spec: {machine[1].link.latency_s * 1e6:.1f} us, "
        f"{machine[1].link.bandwidth_gbs:.1f} GB/s)"
    )
    print()

    runtime = HompRuntime(machine)
    rows = []
    for name, n in [("axpy", 2_000_000), ("sum", 4_000_000), ("matvec", 3000),
                    ("matmul", 768), ("stencil", 256), ("bm", 256)]:
        kernel = make_kernel(name, n)
        algo = select_algorithm(kernel, machine)
        result = runtime.parallel_for(kernel, schedule="AUTO", cutoff_ratio="auto")
        rows.append([name, algo, result.total_time_ms, result.devices_used])
    print(render_table(
        ["kernel", "selected algorithm", "time (ms)", "devices"],
        rows,
        title="selector heuristics (paper section VI.D) on the custom node",
    ))


if __name__ == "__main__":
    main()
