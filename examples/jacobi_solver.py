#!/usr/bin/env python3
"""The paper's Fig. 3 Jacobi kernel: target-data region + halo exchange.

A distributed Jacobi relaxation on an N x N grid: the ``target data``
region maps ``f``/``u``/``uold`` once for the whole solve, each iteration
runs a copy loop (aligned with the data) and a reduction sweep (AUTO
distribution), with a one-row halo exchange between them.  The distributed
result is verified against a serial solve with identical arithmetic.

Run:  python examples/jacobi_solver.py
"""

import numpy as np

from repro import HompRuntime, cpu_mic_node, full_node, gpu4_node
from repro.apps import JacobiSolver
from repro.util.units import fmt_ms


def main() -> None:
    for machine in (gpu4_node(), cpu_mic_node(), full_node()):
        runtime = HompRuntime(machine)
        solver = JacobiSolver(128, seed=7)
        result = solver.solve(runtime, max_iters=25, tol=1e-10)
        u_ref, ref_iters, ref_error = JacobiSolver(128, seed=7).reference(
            max_iters=25, tol=1e-10
        )
        ok = np.allclose(result.u, u_ref)
        assert result.iterations == ref_iters
        print(
            f"{machine.name:16s} {result.iterations:3d} iterations, "
            f"error {result.final_error:.3e}, simulated {fmt_ms(result.sim_time_s)} "
            f"(halo {fmt_ms(result.halo_time_s)}), matches serial: {ok}"
        )


if __name__ == "__main__":
    main()
