#!/usr/bin/env python3
"""Visualising the offload pipeline: why dynamic chunking wins on AXPY.

Records the per-chunk pipeline events of a BLOCK offload and a
SCHED_DYNAMIC offload of the same data-intensive loop on 4 GPUs and draws
both as ASCII Gantt charts.  Under BLOCK, each device does one monolithic
copy-in -> compute -> copy-out sequence; under dynamic chunking the
copy-in of chunk k+1 runs while chunk k computes, which is exactly the
"overlapping of data movement and computation" the paper credits for
SCHED_DYNAMIC's Fig. 5 wins.

Run:  python examples/timeline.py
"""

from repro import HompRuntime, gpu4_node, make_kernel
from repro.engine import render_timeline

N = 2_000_000


def main() -> None:
    runtime = HompRuntime(gpu4_node(2))

    for schedule in ("BLOCK", "SCHED_DYNAMIC"):
        kernel = make_kernel("axpy", N)
        result = runtime.parallel_for(
            kernel, schedule=schedule, record_events=True
        )
        timeline = result.meta["timeline"]
        overlap = timeline.device_overlap_fraction(0)
        print(f"== {result.algorithm}: {result.total_time_ms:.3f} ms "
              f"(transfer hidden under compute on dev 0: {overlap:.0%})")
        print(render_timeline(timeline, width=64))
        print()


if __name__ == "__main__":
    main()
