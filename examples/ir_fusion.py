#!/usr/bin/env python3
"""The offload IR end to end: lower, rewrite, fuse, measure elision.

Two dependent BLAS loops — ``y = A @ x`` then ``y += alpha * x`` — share
their host arrays.  Lowered one at a time they each pay the PCIe bus;
lowered together, the ``fuse-adjacent-offloads`` pass groups them under
one implicit target-data region and the residency ledger elides the
second loop's inbound traffic.  The program listing, the fused grouping
and the elided byte count are all printed; numerics are verified against
NumPy either way.

Run:  python examples/ir_fusion.py
"""

import numpy as np

from repro import HompRuntime, gpu4_node
from repro.apps.blas_chain import two_kernel_chain
from repro.ir.lower import from_directives
from repro.ir.passes import run_passes

N = 4_000


def main() -> None:
    pairs, reference = two_kernel_chain(N, alpha=0.5, seed=3)
    program = from_directives(pairs)
    print("lowered program:")
    print(program.describe())

    fused = run_passes(program)  # normalize-maps, derive-halo, fusion
    print("\nafter the default pass pipeline:")
    print(fused.describe())

    runtime = HompRuntime(gpu4_node())
    results = runtime.run_program(program)
    y_fused = pairs[1][1].arrays["y"].copy()
    assert np.allclose(y_fused, reference["y"])
    elided = sum(r.meta["residency"]["bytes_elided"] for r in results)
    region_s = results[0].meta["fusion"]["region_time_s"]
    print(f"\nfused:   {region_s * 1e3:8.3f} ms, "
          f"{elided / 1e6:.2f} MB elided (x and y stay resident)")

    pairs2, _ = two_kernel_chain(N, alpha=0.5, seed=3)
    plain = HompRuntime(gpu4_node()).run_program(
        from_directives(pairs2), passes=()
    )
    y_plain = pairs2[1][1].arrays["y"]
    assert np.array_equal(y_fused, y_plain)  # fusion never changes numerics
    plain_s = sum(r.total_time_s for r in plain)
    print(f"unfused: {plain_s * 1e3:8.3f} ms, 0.00 MB elided "
          f"(every loop re-pays its transfers)")
    print("checksums identical fused vs unfused — "
          f"sum(y) = {float(y_fused.sum()):.6f}")


if __name__ == "__main__":
    main()
