#!/usr/bin/env python3
"""Iterative BLAS workflow: power iteration over a persistent data region.

Each sweep of power iteration runs three distributed loops — ``y = A@x``,
``s = sum(y*y)``, ``x = y/sqrt(s)`` — over the *same* matrix.  Without a
``target data`` region every sweep re-transfers A over PCIe; inside one,
A crosses the bus once for the whole solve (the construct the paper's
Fig. 3 Jacobi relies on).  The distributed eigenvalue/eigenvector are
verified against a serial NumPy power iteration.

Run:  python examples/blas_workflow.py
"""

import numpy as np

from repro import HompRuntime, full_node
from repro.apps import PowerIteration

N = 1024
ITERS = 10


def main() -> None:
    runtime = HompRuntime(full_node())
    # Deploy on the GPUs: mapping arrays onto devices that will never be
    # given work (the MICs here) only wastes bus time.
    gpus = "device(0:*:NVGPU)"
    eig_ref, x_ref = PowerIteration(N, seed=3).reference(iters=ITERS)

    naive = PowerIteration(N, seed=3).run(
        runtime, iters=ITERS, devices=gpus, use_data_region=False
    )
    assert np.isclose(naive.eigenvalue, eig_ref)
    print(f"without target data: {naive.sim_time_s * 1e3:8.3f} ms "
          f"(A re-crosses PCIe on every sweep)")

    solver = PowerIteration(N, seed=3)
    region = solver.run(runtime, iters=ITERS, devices=gpus, use_data_region=True)
    assert np.isclose(region.eigenvalue, eig_ref)
    assert np.allclose(region.x, x_ref)
    print(f"with target data:    {region.sim_time_s * 1e3:8.3f} ms "
          f"(A mapped once for all {ITERS} sweeps)")
    print(f"speedup: {naive.sim_time_s / region.sim_time_s:.2f}x — "
          f"dominant |eigenvalue| = {region.eigenvalue:.4f}, verified vs NumPy")


if __name__ == "__main__":
    main()
