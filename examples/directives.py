#!/usr/bin/env python3
"""The paper's Fig. 2 AXPY directives, parsed and executed.

``axpy_homp_v1`` aligns *computation with data*: the arrays are
BLOCK-partitioned by the map clauses and the loop distribution copies
their ranges (``dist_schedule(target:[ALIGN(x)])``).

``axpy_homp_v2`` aligns *data with computation*: the loop is distributed
by the AUTO policy (runtime-selected algorithm) and the arrays follow the
loop (``partition([ALIGN(loop)])``).

Both directive strings below are, modulo whitespace, the ones printed in
the paper; ``repro.lang`` parses them into the runtime's offload objects.

Run:  python examples/directives.py
"""

import numpy as np

from repro import HompRuntime, full_node, make_kernel, parse_directive

V1 = """
#pragma omp parallel target device (*) \\
    map(tofrom: y[0:n] partition([BLOCK])) \\
    map(to: x[0:n] partition([BLOCK]), a, n)
"""
V1_LOOP = "#pragma omp parallel for distribute dist_schedule(target:[ALIGN(x)])"

V2 = """
#pragma omp parallel target device (*) \\
    map(tofrom: y[0:n] partition([ALIGN(loop)])) \\
    map(to: x[0:n] partition([ALIGN(loop)]), a, n)
"""
V2_LOOP = "#pragma omp parallel for distribute dist_schedule(target:[AUTO])"


def show(directive) -> None:
    print(f"  directives: {' '.join(directive.directives)}")
    print(f"  device:     {directive.device_clause}")
    for m in directive.maps:
        pol = ", ".join(str(p) for p in m.policies) or "(scalar)"
        print(f"  map {m.direction.value:6s} {m.name:3s} partition [{pol}]")


def run(name: str, data_directive: str, loop_directive: str) -> None:
    print(f"== {name} ==")
    d_data = parse_directive(data_directive)
    d_loop = parse_directive(loop_directive)
    show(d_data)
    print(f"  schedule:   {d_loop.dist_schedule.modifier}:"
          f"{d_loop.dist_schedule.policies[0]}")

    runtime = HompRuntime(full_node())
    kernel = make_kernel("axpy", 500_000)
    # Merge the two directives the way the compiler outlines the region:
    # data clauses from the target directive, schedule from the loop one.
    merged = d_data
    merged.dist_schedule = d_loop.dist_schedule
    result = runtime.offload(merged, kernel)
    ok = np.allclose(kernel.arrays["y"], kernel.reference()["y"])
    print(
        f"  -> {result.algorithm}: {result.total_time_ms:.3f} ms on "
        f"{result.devices_used} devices, verified={ok}"
    )
    print()


def main() -> None:
    run("axpy_homp_v1 (align computation with data)", V1, V1_LOOP)
    run("axpy_homp_v2 (align data with computation)", V2, V2_LOOP)


if __name__ == "__main__":
    main()
