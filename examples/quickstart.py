#!/usr/bin/env python3
"""Quickstart: offload one parallel loop across a heterogeneous node.

Builds the paper's evaluation machine (2 CPUs + 4 K40 GPUs + 2 MICs),
offloads AXPY under each of the seven loop-distribution algorithms of
paper Table II, verifies the numeric result, and prints the per-device
work split plus the Fig.-6-style time breakdown for the winner.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HompRuntime, full_node, make_kernel
from repro.bench.runner import ALL_POLICIES
from repro.util.tables import render_table

N = 2_000_000


def main() -> None:
    machine = full_node()
    print(machine.describe())
    print()

    runtime = HompRuntime(machine)
    rows = []
    best = None
    for policy in ALL_POLICIES:
        kernel = make_kernel("axpy", N)
        result = runtime.parallel_for(kernel, schedule=policy, cutoff_ratio="auto")
        assert np.allclose(kernel.arrays["y"], kernel.reference()["y"]), policy
        rows.append(
            [
                result.algorithm,
                result.total_time_ms,
                result.devices_used,
                result.imbalance_pct(),
            ]
        )
        if best is None or result.total_time_s < best.total_time_s:
            best = result
    print(render_table(
        ["algorithm", "time (ms)", "devices", "imbalance %"],
        rows,
        title=f"AXPY (n={N:,}) on {machine.name} — all verified against serial NumPy",
    ))

    print(f"\nBest: {best.algorithm} — per-device iterations:")
    for trace in best.participating:
        pct = trace.breakdown_pct()
        print(
            f"  {trace.name:8s} {trace.iters:>9,d} iters  "
            f"data {pct['data']:5.1f}%  compute {pct['compute']:5.1f}%  "
            f"sched {pct['sched']:4.1f}%  barrier {pct['barrier']:5.1f}%"
        )


if __name__ == "__main__":
    main()
