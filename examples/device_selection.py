#!/usr/bin/env python3
"""Device selection: extended device() clauses and the CUTOFF heuristic.

Part 1 exercises the paper's extended ``device(...)`` specifiers
(``0:*``, ``0:2,4:2``, type filters) against the full node.

Part 2 sweeps the CUTOFF ratio for a compute-intensive kernel and shows
how slow devices get dropped as the threshold rises — and that an
over-aggressive cutoff eventually hurts (paper Table V's 0.56x row).

Run:  python examples/device_selection.py
"""

from repro import HompRuntime, full_node, make_kernel, parse_device_clause
from repro.util.tables import render_table


def main() -> None:
    machine = full_node()
    runtime = HompRuntime(machine)

    print("device() clause expansion on", machine.name)
    for clause in ("0:*", "0:2", "2:4", "0:2, 4:2", "0:*:NVGPU", "0:*:MIC", "*"):
        ids = parse_device_clause(f"device({clause})", machine)
        names = [machine[i].name for i in ids]
        print(f"  device({clause:12s}) -> {names}")
    print()

    rows = []
    for cutoff in (0.0, 0.05, 0.10, 0.15, 0.25, 0.40):
        kernel = make_kernel("stencil", 256)
        result = runtime.parallel_for(
            kernel, schedule="MODEL_2_AUTO", cutoff_ratio=cutoff
        )
        used = ", ".join(sorted({t.name for t in result.participating}))
        rows.append([f"{cutoff:.0%}", result.total_time_ms, result.devices_used, used])
    print(render_table(
        ["cutoff", "time (ms)", "devices", "participating"],
        rows,
        title="stencil-256 under MODEL_2_AUTO with rising CUTOFF",
    ))


if __name__ == "__main__":
    main()
