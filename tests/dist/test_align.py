"""ALIGN resolution graph: chains, ratios, cycles, re-linking."""

import pytest

from repro.dist.align import AlignmentGraph
from repro.dist.distribution import DimDistribution
from repro.dist.policy import Align, Block
from repro.errors import AlignmentError
from repro.util.ranges import IterRange


def block_dist(n=12, ndev=3):
    return DimDistribution.from_policy(Block(), IterRange(0, n), ndev)


def test_resolve_concrete_directly():
    g = AlignmentGraph()
    d = block_dist()
    g.add_concrete("x", d)
    assert g.resolve("x") is d


def test_single_align_copies_ranges():
    g = AlignmentGraph()
    g.add_concrete("x", block_dist(12, 3))
    g.add_align("loop", Align("x"))
    out = g.resolve("loop")
    assert out.sizes() == (4, 4, 4)
    assert out.device_ranges(1) == block_dist(12, 3).device_ranges(1)


def test_align_chain_resolves_to_root():
    g = AlignmentGraph()
    g.add_concrete("root", block_dist(12, 3))
    g.add_align("a", Align("root"))
    g.add_align("b", Align("a"))
    assert g.root_of("b") == ("root", 1.0)
    assert g.resolve("b").sizes() == (4, 4, 4)


def test_ratios_compose_along_chain():
    g = AlignmentGraph()
    g.add_concrete("root", block_dist(10, 2))
    g.add_align("a", Align("root", ratio=2.0))
    g.add_align("b", Align("a", ratio=3.0))
    root, ratio = g.root_of("b")
    assert root == "root"
    assert ratio == 6.0
    assert len(g.resolve("b").region) == 60


def test_cycle_detected():
    g = AlignmentGraph()
    g.add_align("a", Align("b"))
    g.add_align("b", Align("a"))
    with pytest.raises(AlignmentError):
        g.root_of("a")


def test_self_alignment_rejected():
    g = AlignmentGraph()
    with pytest.raises(AlignmentError):
        g.add_align("a", Align("a"))


def test_missing_target_rejected():
    g = AlignmentGraph()
    g.add_align("a", Align("ghost"))
    with pytest.raises(AlignmentError):
        g.resolve("a")


def test_unknown_name_rejected():
    with pytest.raises(AlignmentError):
        AlignmentGraph().resolve("nope")


def test_cannot_be_both_concrete_and_aligned():
    g = AlignmentGraph()
    g.add_concrete("x", block_dist())
    with pytest.raises(AlignmentError):
        g.add_align("x", Align("y"))
    g2 = AlignmentGraph()
    g2.add_align("x", Align("y"))
    with pytest.raises(AlignmentError):
        g2.add_concrete("x", block_dist())


def test_relink_makes_all_nodes_concrete():
    g = AlignmentGraph()
    g.add_concrete("root", block_dist(12, 3))
    g.add_align("a", Align("root"))
    g.add_align("b", Align("a"))
    g.relink()
    # after re-linking, resolution no longer follows edges
    assert g.resolve("a").sizes() == (4, 4, 4)
    assert g.resolve("b").sizes() == (4, 4, 4)
    assert g.known("a") and g.known("b")


def test_relink_surfaces_unresolvable_nodes():
    g = AlignmentGraph()
    g.add_align("a", Align("ghost"))
    with pytest.raises(AlignmentError):
        g.relink()


def test_resolved_policy_is_preserved():
    g = AlignmentGraph()
    g.add_concrete("x", block_dist())
    align = Align("x", ratio=1.0)
    g.add_align("loop", align)
    out = g.resolve("loop")
    assert out.policy is align
