"""Multi-dimensional tile distribution (nested loops / N-D arrays)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.nested import TileDistribution, device_grid
from repro.dist.policy import Block, Cyclic, Full
from repro.errors import DistributionError
from repro.util.ranges import IterRange


class TestDeviceGrid:
    def test_one_dim(self):
        assert device_grid(7, 1) == (7,)

    def test_square(self):
        assert device_grid(4, 2) == (2, 2)
        assert device_grid(9, 2) == (3, 3)

    def test_rectangular(self):
        assert device_grid(6, 2) == (3, 2)
        assert device_grid(8, 2) == (4, 2)

    def test_prime_over_two_dims(self):
        assert device_grid(5, 2) == (5, 1)

    def test_three_dims(self):
        g = device_grid(8, 3)
        assert sorted(g, reverse=True) == list(g)
        assert np.prod(g) == 8

    def test_invalid(self):
        with pytest.raises(DistributionError):
            device_grid(0, 1)
        with pytest.raises(DistributionError):
            device_grid(4, 0)


class TestTileDistribution:
    def test_block_block_quadrants(self):
        td = TileDistribution.create((8, 8), (Block(), Block()), 4)
        assert td.grid == (2, 2)
        tiles = td.device_tiles(0)
        assert tiles == [(IterRange(0, 4), IterRange(0, 4))]
        assert td.device_tiles(3) == [(IterRange(4, 8), IterRange(4, 8))]

    def test_block_full_row_bands(self):
        td = TileDistribution.create((8, 5), (Block(), Full()), 4)
        assert td.grid == (4,)
        assert td.device_tiles(2) == [(IterRange(4, 6), IterRange(0, 5))]

    def test_full_block_column_bands(self):
        td = TileDistribution.create((5, 8), (Full(), Block()), 2)
        assert td.device_tiles(1) == [(IterRange(0, 5), IterRange(4, 8))]

    def test_cyclic_dimension_multiple_tiles(self):
        td = TileDistribution.create((6, 4), (Cyclic(1), Full()), 2)
        assert len(td.device_tiles(0)) == 3

    def test_explicit_grid(self):
        td = TileDistribution.create((8, 8), (Block(), Block()), 8, grid=(4, 2))
        assert td.grid == (4, 2)
        assert len(td.device_tiles(0)[0][0]) == 2  # 8 rows / 4
        assert len(td.device_tiles(0)[0][1]) == 4  # 8 cols / 2

    def test_grid_product_must_match(self):
        with pytest.raises(DistributionError):
            TileDistribution.create((8, 8), (Block(), Block()), 6, grid=(2, 2))

    def test_policy_rank_mismatch(self):
        with pytest.raises(DistributionError):
            TileDistribution.create((8, 8), (Block(),), 4)

    def test_all_full_rejected(self):
        with pytest.raises(DistributionError):
            TileDistribution.create((8, 8), (Full(), Full()), 4)

    def test_runtime_policy_rejected(self):
        from repro.dist.policy import Auto

        with pytest.raises(DistributionError):
            TileDistribution.create((8, 8), (Auto(), Full()), 4)

    def test_grid_coords_row_major(self):
        td = TileDistribution.create((8, 8), (Block(), Block()), 6, grid=(3, 2))
        assert td.grid_coords(0) == (0, 0)
        assert td.grid_coords(1) == (0, 1)
        assert td.grid_coords(2) == (1, 0)
        assert td.grid_coords(5) == (2, 1)
        with pytest.raises(DistributionError):
            td.grid_coords(6)

    def test_tile_elems(self):
        td = TileDistribution.create((9, 8), (Block(), Block()), 4)
        assert sum(td.tile_elems(d) for d in range(4)) == 72

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 40),
        m=st.integers(1, 40),
        ndev=st.integers(1, 12),
        pol=st.sampled_from(
            [(Block(), Block()), (Block(), Full()), (Full(), Block()),
             (Cyclic(2), Full()), (Block(), Cyclic(3))]
        ),
    )
    def test_property_tiles_cover_domain_exactly(self, n, m, ndev, pol):
        td = TileDistribution.create((n, m), pol, ndev)
        counts = np.zeros((n, m), dtype=int)
        for _, tile in td.all_tiles():
            counts[tile[0].as_slice(), tile[1].as_slice()] += 1
        # replicated FULL dims still tile exactly once because only the
        # partitioned dims split the device grid
        assert np.all(counts == 1)

    def test_numeric_tiled_matmul(self):
        """Demonstration: a 2-D tiled matmul over a 2x2 device grid
        computes the same product as numpy."""
        rng = np.random.default_rng(5)
        a = rng.standard_normal((12, 16))
        b = rng.standard_normal((16, 10))
        c = np.zeros((12, 10))
        td = TileDistribution.create(
            (c.shape[0], c.shape[1]), (Block(), Block()), 4
        )
        for _, (ri, rj) in td.all_tiles():
            c[ri.as_slice(), rj.as_slice()] = (
                a[ri.as_slice(), :] @ b[:, rj.as_slice()]
            )
        assert np.allclose(c, a @ b)
