"""Property tests for the node -> device hierarchical decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.dist import Block, Cyclic, DimDistribution, Full
from repro.dist.hierarchy import (
    HierarchicalPartition,
    hierarchical_partition,
    node_shards,
)
from repro.errors import DistributionError
from repro.util.ranges import IterRange


regions = st.builds(
    lambda start, length: IterRange(start, start + length),
    st.integers(0, 1000),
    st.integers(0, 5000),
)


class TestNodeShards:
    @given(region=regions, n_nodes=st.integers(1, 17))
    def test_property_exact_cover(self, region, n_nodes):
        shards = node_shards(region, n_nodes)
        assert len(shards) == n_nodes
        assert sum(len(s) for s in shards) == len(region)
        # Contiguous and ordered: each shard starts where the last ended.
        cursor = region.start
        for s in shards:
            assert s.start == cursor
            cursor = s.stop
        assert cursor == region.stop

    @given(
        region=regions,
        weights=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=9),
    )
    def test_property_weighted_exact_cover(self, region, weights):
        shards = node_shards(region, len(weights), weights=weights)
        assert sum(len(s) for s in shards) == len(region)

    def test_bad_node_count_rejected(self):
        with pytest.raises(DistributionError):
            node_shards(IterRange(0, 10), 0)

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            node_shards(IterRange(0, 10), 3, weights=[1.0, 2.0])


class TestHierarchicalPartition:
    @given(
        region=regions,
        device_counts=st.lists(st.integers(1, 8), min_size=1, max_size=6),
        policy=st.sampled_from([Block(), Cyclic()]),
    )
    def test_property_two_level_exact_cover(self, region, device_counts, policy):
        hp = hierarchical_partition(region, device_counts, intra_policy=policy)
        assert hp.n_nodes == len(device_counts)
        covered = sorted(
            i for r in hp.flat_ranges() for i in range(r.start, r.stop)
        )
        assert covered == list(range(region.start, region.stop))

    @given(
        region=regions,
        ndev=st.integers(1, 12),
        policy=st.sampled_from([Block(), Cyclic()]),
    )
    def test_property_single_node_degenerates_to_flat_split(
        self, region, ndev, policy
    ):
        """One node with N devices == today's flat DimDistribution."""
        hp = hierarchical_partition(region, [ndev], intra_policy=policy)
        assert hp.node_shards == (region,)
        flat = policy.split(region, ndev)
        assert [list(per_dev) for per_dev in hp.device_parts[0]] == [
            list(ranges) for ranges in flat
        ]
        # And DimDistribution accepts the same parts as an exact cover.
        dist = DimDistribution(
            region=region,
            parts=tuple(tuple(r) for r in flat),
            policy=policy,
        )
        assert dist.parts == hp.device_parts[0]

    def test_full_policy_rejected(self):
        with pytest.raises(DistributionError, match="replicat|runtime|cover"):
            hierarchical_partition(IterRange(0, 100), [2, 2], intra_policy=Full())

    def test_runtime_policies_rejected(self):
        from repro.dist import Align, Auto

        for policy in (Align("loop"), Auto()):
            with pytest.raises(DistributionError, match="runtime"):
                hierarchical_partition(
                    IterRange(0, 100), [2, 2], intra_policy=policy
                )

    def test_empty_device_count_rejected(self):
        with pytest.raises(DistributionError):
            hierarchical_partition(IterRange(0, 100), [])
        with pytest.raises(DistributionError):
            hierarchical_partition(IterRange(0, 100), [2, 0])

    def test_bad_cover_rejected_by_dataclass(self):
        with pytest.raises(DistributionError, match="covers"):
            HierarchicalPartition(
                region=IterRange(0, 10),
                node_shards=(IterRange(0, 10),),
                device_parts=(((IterRange(0, 4),),),),
            )

    def test_weighted_nodes_bias_shards(self):
        hp = hierarchical_partition(
            IterRange(0, 900), [1, 1], weights=[2.0, 1.0]
        )
        assert len(hp.node_shards[0]) == 600
        assert len(hp.node_shards[1]) == 300
