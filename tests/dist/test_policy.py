"""Table I distribution policies and the policy token parser."""

import pytest
from hypothesis import given, strategies as st

from repro.dist.policy import Align, Auto, Block, Cyclic, Full, parse_policy
from repro.errors import DirectiveSyntaxError, DistributionError
from repro.util.ranges import IterRange


class TestFull:
    def test_replicates(self):
        parts = Full().split(IterRange(0, 10), 3)
        assert len(parts) == 3
        assert all(p == [IterRange(0, 10)] for p in parts)

    def test_invalid_ndev(self):
        with pytest.raises(DistributionError):
            Full().split(IterRange(0, 10), 0)


class TestBlock:
    def test_contiguous_blocks(self):
        parts = Block().split(IterRange(0, 10), 4)
        assert [p[0] for p in parts] == [
            IterRange(0, 3), IterRange(3, 6), IterRange(6, 8), IterRange(8, 10)
        ]

    def test_str(self):
        assert str(Block()) == "BLOCK"


class TestCyclic:
    def test_round_robin(self):
        parts = Cyclic(2).split(IterRange(0, 10), 2)
        assert parts[0] == [IterRange(0, 2), IterRange(4, 6), IterRange(8, 10)]
        assert parts[1] == [IterRange(2, 4), IterRange(6, 8)]

    def test_covers_exactly(self):
        parts = Cyclic(3).split(IterRange(0, 11), 4)
        total = sum(len(r) for dev in parts for r in dev)
        assert total == 11

    def test_chunk_must_be_positive(self):
        with pytest.raises(DistributionError):
            Cyclic(0)

    def test_str(self):
        assert str(Cyclic()) == "CYCLIC"
        assert str(Cyclic(4)) == "CYCLIC(4)"

    @given(
        n=st.integers(0, 500),
        chunk=st.integers(1, 17),
        ndev=st.integers(1, 9),
    )
    def test_property_disjoint_cover(self, n, chunk, ndev):
        parts = Cyclic(chunk).split(IterRange(0, n), ndev)
        seen = set()
        for dev in parts:
            for r in dev:
                for i in r:
                    assert i not in seen
                    seen.add(i)
        assert seen == set(range(n))


class TestAlignAuto:
    def test_align_needs_graph(self):
        with pytest.raises(DistributionError):
            Align("x").split(IterRange(0, 10), 2)

    def test_auto_needs_scheduler(self):
        with pytest.raises(DistributionError):
            Auto().split(IterRange(0, 10), 2)

    def test_align_validation(self):
        with pytest.raises(DistributionError):
            Align("")
        with pytest.raises(DistributionError):
            Align("x", ratio=0)

    def test_needs_runtime_flags(self):
        assert Align("x").needs_runtime
        assert Auto().needs_runtime
        assert not Block().needs_runtime
        assert not Full().needs_runtime

    def test_str_forms(self):
        assert str(Align("x")) == "ALIGN(x)"
        assert str(Align("x", 2.0)) == "ALIGN(x,2)"
        assert str(Auto()) == "AUTO"


class TestParsePolicy:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("FULL", Full()),
            ("full", Full()),
            ("BLOCK", Block()),
            (" block ", Block()),
            ("AUTO", Auto()),
            ("CYCLIC", Cyclic()),
            ("CYCLIC(8)", Cyclic(8)),
            ("ALIGN(x)", Align("x")),
            ("ALIGN(loop1)", Align("loop1")),
            ("align(x, 2.0)", Align("x", 2.0)),
            ("ALIGN(x,0.5)", Align("x", 0.5)),
        ],
    )
    def test_valid_tokens(self, text, expected):
        assert parse_policy(text) == expected

    @pytest.mark.parametrize(
        "text", ["", "BLOK", "ALIGN()", "ALIGN(1x)", "CYCLIC(-1)", "ALIGN(x" ]
    )
    def test_invalid_tokens(self, text):
        with pytest.raises(DirectiveSyntaxError):
            parse_policy(text)

    def test_round_trip_via_str(self):
        for p in (Full(), Block(), Auto(), Cyclic(4), Align("u", 2.0)):
            assert parse_policy(str(p)) == p
