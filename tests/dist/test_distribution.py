"""DimDistribution / ArrayDistribution invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.dist.distribution import ArrayDistribution, DimDistribution
from repro.dist.policy import Auto, Block, Cyclic, Full
from repro.errors import DistributionError
from repro.util.ranges import IterRange


def block_dist(n=10, ndev=3):
    return DimDistribution.from_policy(Block(), IterRange(0, n), ndev)


class TestDimDistribution:
    def test_from_block_policy(self):
        d = block_dist(10, 3)
        assert d.sizes() == (4, 3, 3)
        assert not d.replicated

    def test_from_full_policy_is_replicated(self):
        d = DimDistribution.from_policy(Full(), IterRange(0, 10), 3)
        assert d.replicated
        assert d.sizes() == (10, 10, 10)

    def test_runtime_policy_rejected(self):
        with pytest.raises(DistributionError):
            DimDistribution.from_policy(Auto(), IterRange(0, 10), 2)

    def test_coverage_enforced(self):
        with pytest.raises(DistributionError):
            DimDistribution(
                region=IterRange(0, 10),
                parts=((IterRange(0, 3),), (IterRange(3, 6),)),  # misses 6..10
                policy=Block(),
            )

    def test_owner_of(self):
        d = block_dist(10, 3)
        assert d.owner_of(0) == 0
        assert d.owner_of(4) == 1
        assert d.owner_of(9) == 2

    def test_owner_of_outside_region(self):
        with pytest.raises(DistributionError):
            block_dist().owner_of(99)

    def test_scaled_by_integer_ratio(self):
        d = block_dist(10, 2)
        s = d.scaled(2.0, Block())
        assert len(s.region) == 20
        assert s.sizes() == (10, 10)
        assert s.device_ranges(0)[0] == IterRange(0, 10)

    def test_scaled_invalid_ratio(self):
        with pytest.raises(DistributionError):
            block_dist().scaled(0.0, Block())

    def test_from_chunks(self):
        chunks = [IterRange(0, 7), IterRange(7, 7), IterRange(7, 10)]
        d = DimDistribution.from_chunks(IterRange(0, 10), chunks, Block())
        assert d.sizes() == (7, 0, 3)
        assert d.device_ranges(1) == ()

    @given(n=st.integers(0, 300), ndev=st.integers(1, 8))
    def test_property_block_cover_disjoint(self, n, ndev):
        d = DimDistribution.from_policy(Block(), IterRange(0, n), ndev)
        seen = set()
        for dev in range(ndev):
            for r in d.device_ranges(dev):
                for i in r:
                    assert i not in seen
                    seen.add(i)
        assert seen == set(range(n))

    @given(n=st.integers(1, 200), ndev=st.integers(1, 6), chunk=st.integers(1, 9))
    def test_property_cyclic_owner_round_robin(self, n, ndev, chunk):
        d = DimDistribution.from_policy(Cyclic(chunk), IterRange(0, n), ndev)
        for i in range(n):
            assert d.owner_of(i) == (i // chunk) % ndev


class TestArrayDistribution:
    def make(self, n=12, m=5, ndev=3):
        rows = DimDistribution.from_policy(Block(), IterRange(0, n), ndev)
        cols = DimDistribution.from_policy(Full(), IterRange(0, m), ndev)
        return ArrayDistribution(dims=(rows, cols))

    def test_shape(self):
        assert self.make().shape == (12, 5)

    def test_device_index_block_by_full(self):
        a = self.make(12, 5, 3)
        assert a.device_index(0) == (slice(0, 4), slice(0, 5))
        assert a.device_index(2) == (slice(8, 12), slice(0, 5))

    def test_device_index_none_for_empty_owner(self):
        rows = DimDistribution.from_policy(Block(), IterRange(0, 2), 3)
        cols = DimDistribution.from_policy(Full(), IterRange(0, 4), 3)
        a = ArrayDistribution(dims=(rows, cols))
        assert a.device_index(2) is None

    def test_device_index_rejects_non_contiguous(self):
        rows = DimDistribution.from_policy(Cyclic(1), IterRange(0, 6), 2)
        cols = DimDistribution.from_policy(Full(), IterRange(0, 4), 2)
        a = ArrayDistribution(dims=(rows, cols))
        with pytest.raises(DistributionError):
            a.device_index(0)

    def test_device_elems(self):
        a = self.make(12, 5, 3)
        assert a.device_elems(0) == 4 * 5

    def test_mismatched_ndev_rejected(self):
        rows = DimDistribution.from_policy(Block(), IterRange(0, 6), 2)
        cols = DimDistribution.from_policy(Full(), IterRange(0, 4), 3)
        with pytest.raises(DistributionError):
            ArrayDistribution(dims=(rows, cols))

    def test_empty_dims_rejected(self):
        with pytest.raises(DistributionError):
            ArrayDistribution(dims=())
