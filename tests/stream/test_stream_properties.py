"""Property suite for stream batch sequencing (hypothesis).

Three families of invariants over arbitrary stream shapes:

* **Item conservation** — every batch of every stream distributes the
  kernel's full iteration space: per-batch trace iters sum to
  ``n_iters``, and the stream yields exactly ``batches`` results with
  strictly increasing cumulative finish times.
* **Degenerate equality** — a 1-batch stream *is* the one-shot path:
  byte-identical (pickle-equal) results on both the ``virtual`` and
  ``batch`` backends, and equal checksums.
* **Rebalance exact cover** — whatever rate history STREAM_REBALANCE
  has accumulated, its per-batch split is a contiguous, gap-free,
  overlap-free partition of the iteration space.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.apps import OnlineSumKernel, SlidingStencilKernel
from repro.kernels.registry import make_kernel
from repro.machine.presets import full_node, gpu4_node
from repro.runtime import HompRuntime
from repro.sched.base import SchedContext
from repro.sched.stream_rebalance import StreamRebalanceScheduler
from repro.util.ranges import IterRange


# -- item conservation --------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    batches=st.integers(min_value=1, max_value=6),
    window=st.integers(min_value=0, max_value=64),
    schedule=st.sampled_from(["BLOCK", "STREAM_REBALANCE", "SCHED_DYNAMIC"]),
)
def test_every_batch_conserves_iterations(batches, window, schedule):
    rt = HompRuntime(machine=gpu4_node())
    kernel = OnlineSumKernel(512, seed=2)
    sr = rt.stream(kernel, batches=batches, window=window, schedule=schedule)
    assert len(sr.results) == batches
    assert sr.batches == batches
    for result in sr.results:
        assert sum(t.iters for t in result.traces) == kernel.n_iters
    # Cumulative stream times are strictly increasing, so every
    # per-batch latency is positive.
    assert all(dt > 0 for dt in sr.batch_times_s)


@settings(max_examples=10, deadline=None)
@given(
    batches=st.integers(min_value=2, max_value=5),
    devices=st.lists(
        st.integers(min_value=0, max_value=3),
        min_size=1, max_size=4, unique=True,
    ),
)
def test_conservation_holds_on_any_device_subset(batches, devices):
    rt = HompRuntime(machine=gpu4_node())
    kernel = OnlineSumKernel(300, seed=4)
    sr = rt.stream(
        kernel, batches=batches, window=16,
        schedule="STREAM_REBALANCE", devices=list(devices),
    )
    for result in sr.results:
        assert sum(t.iters for t in result.traces) == kernel.n_iters
        assert len(result.traces) == len(devices)


# -- degenerate stream == one-shot -------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(["axpy", "sum", "stencil"]),
    schedule=st.sampled_from(["BLOCK", "MODEL_1_AUTO"]),
    executor=st.sampled_from(["virtual", "batch"]),
)
def test_degenerate_stream_pickles_identically(name, schedule, executor):
    n = 64 if name == "stencil" else 512
    sr = HompRuntime(machine=full_node()).stream(
        make_kernel(name, n, seed=7),
        batches=1, window=32, schedule=schedule, executor=executor,
    )
    one_shot = HompRuntime(machine=full_node()).parallel_for(
        make_kernel(name, n, seed=7), schedule=schedule, executor=executor,
    )
    assert sr.meta == {"degenerate": True}
    assert pickle.dumps(sr.results[0]) == pickle.dumps(one_shot)


def test_degenerate_checksum_equals_one_shot():
    k_stream = SlidingStencilKernel(64, seed=9)
    k_solo = SlidingStencilKernel(64, seed=9)
    HompRuntime(machine=gpu4_node()).stream(
        k_stream, batches=1, window=8, schedule="BLOCK"
    )
    HompRuntime(machine=gpu4_node()).parallel_for(k_solo, schedule="BLOCK")
    assert k_stream.checksum() == k_solo.checksum()


# -- multi-batch checksum equality across schedulers --------------------------

@settings(max_examples=8, deadline=None)
@given(
    batches=st.integers(min_value=2, max_value=5),
    window=st.integers(min_value=1, max_value=48),
)
def test_stream_checksum_is_scheduler_invariant(batches, window):
    def run(schedule):
        kernel = SlidingStencilKernel(64, seed=11)
        HompRuntime(machine=full_node()).stream(
            kernel, batches=batches, window=window, schedule=schedule
        )
        return kernel.checksum()

    assert run("BLOCK") == run("STREAM_REBALANCE")


# -- rebalance split exact cover ----------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10_000),
    rates=st.lists(
        st.one_of(
            st.none(),
            st.floats(min_value=0.01, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=1, max_size=4,
    ),
    data=st.data(),
)
def test_rebalance_split_exactly_covers_iter_space(n, rates, data):
    machine = gpu4_node()
    ndev = len(rates)
    s = StreamRebalanceScheduler()
    for devid, rate in enumerate(rates):
        if rate is not None:
            s._rates[devid] = rate
    ctx = SchedContext(
        kernel=make_kernel("axpy", n),
        devices=list(machine.devices)[:ndev],
    )
    s.start(ctx)
    chunks = []
    for d in range(ndev):
        chunk = s.next(d)
        if chunk is not None:
            chunks.append(chunk)
        assert s.next(d) is None
    chunks.sort(key=lambda c: c.start)
    assert chunks, "some device must receive work"
    assert chunks[0].start == 0
    assert chunks[-1].stop == n
    for prev, nxt in zip(chunks, chunks[1:]):
        assert prev.stop == nxt.start
    assert sum(len(c) for c in chunks) == n
    # A random subset of devices may also die mid-batch; surrendered
    # chunks plus served chunks still tile the space exactly once.
    lost = data.draw(
        st.lists(st.integers(min_value=0, max_value=ndev - 1),
                 max_size=ndev, unique=True)
    )
    s.start(SchedContext(
        kernel=make_kernel("axpy", n),
        devices=list(machine.devices)[:ndev],
    ))
    covered = []
    for d in range(ndev):
        if d in lost:
            covered.extend(s.device_lost(d))
        else:
            chunk = s.next(d)
            if chunk is not None:
                covered.append(chunk)
    covered.sort(key=lambda c: c.start)
    assert sum(len(c) for c in covered) == n
    for prev, nxt in zip(covered, covered[1:]):
        assert prev.stop == nxt.start
