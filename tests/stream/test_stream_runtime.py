"""Stream runner semantics: metadata, elision, faults, and the IR path."""

import numpy as np
import pytest

from repro.apps import OnlineSumKernel, SlidingStencilKernel
from repro.errors import OffloadError, SchedulingError
from repro.faults.plan import DeviceDropout, FaultPlan
from repro.ir.lower import from_directive
from repro.kernels.registry import make_kernel
from repro.machine.presets import full_node, gpu4_node
from repro.runtime import HompRuntime, StreamResult
from repro.runtime.stream import run_stream


def stream(kernel, **kw):
    kw.setdefault("batches", 4)
    kw.setdefault("window", 16)
    kw.setdefault("schedule", "BLOCK")
    return HompRuntime(machine=gpu4_node()).stream(kernel, **kw)


class TestValidation:
    def test_batches_must_be_positive(self):
        with pytest.raises(SchedulingError, match="batches"):
            stream(OnlineSumKernel(100), batches=0)

    def test_window_must_be_non_negative(self):
        with pytest.raises(SchedulingError, match="window"):
            stream(OnlineSumKernel(100), window=-1)

    def test_engine_and_executor_conflict(self):
        from repro.engine.simulator import OffloadEngine

        with pytest.raises(OffloadError, match="not both"):
            stream(
                OnlineSumKernel(100),
                engine=OffloadEngine(machine=gpu4_node()),
                executor="virtual",
            )


class TestResultShape:
    def test_stream_result_metadata(self):
        sr = stream(SlidingStencilKernel(48, seed=1), batches=3)
        assert isinstance(sr, StreamResult)
        assert sr.kernel_name == "stream-stencil"
        assert sr.batches == 3 and len(sr.results) == 3
        assert sr.meta["pipelined"] is True
        assert sr.meta["device_ids"] == [0, 1, 2, 3]

    def test_batches_stamped_in_result_meta(self):
        sr = stream(OnlineSumKernel(256, seed=1), batches=3)
        for k, result in enumerate(sr.results):
            assert result.meta["stream"] == {
                "batch": k, "batches": 3, "window": 16,
            }

    def test_throughput_consistent_with_total(self):
        sr = stream(OnlineSumKernel(256, seed=1), batches=5)
        assert sr.throughput_batches_per_s == pytest.approx(
            5 / sr.total_time_s
        )

    def test_reductions_one_per_batch(self):
        sr = stream(OnlineSumKernel(256, seed=1), batches=4)
        assert len(sr.reductions) == 4
        assert all(r is not None for r in sr.reductions)


class TestResidency:
    def test_steady_state_elides_bytes(self):
        sr = stream(SlidingStencilKernel(64, seed=1), batches=6, window=8)
        assert sr.bytes_elided > 0
        assert sr.bytes_moved > 0
        # Steady-state batches are cheaper than the cold first batch.
        times = sr.batch_times_s
        assert min(times[1:]) < times[0]

    def test_fallback_window_invalidation_without_hook(self):
        # A kernel with no stream_advance still re-stages the leading
        # window rows of its inbound maps each batch.
        sr = stream(make_kernel("axpy", 4096, seed=2), batches=4, window=64)
        assert sr.bytes_elided > 0

    def test_zero_window_stream_moves_minimum(self):
        # window=0 and no advance: after batch 0 nothing is re-staged in,
        # so a wider window strictly increases bytes moved.
        narrow = stream(make_kernel("axpy", 4096, seed=2),
                        batches=4, window=0)
        wide = stream(make_kernel("axpy", 4096, seed=2),
                      batches=4, window=512)
        assert narrow.bytes_moved < wide.bytes_moved


class TestNumerics:
    def test_final_state_matches_replayed_advances(self):
        # Replay the same deterministic advances on a host-only copy:
        # the streamed sum of the final batch must match exactly.
        kernel = OnlineSumKernel(500, seed=3)
        shadow = OnlineSumKernel(500, seed=3)
        sr = stream(kernel, batches=5, window=32)
        for batch in range(1, 5):
            shadow.stream_advance(batch, 32)
        assert sr.reductions[-1] == float(shadow.arrays["x"].sum())

    def test_outputs_identical_across_backends(self):
        def run(executor):
            k = SlidingStencilKernel(48, seed=5)
            HompRuntime(machine=full_node()).stream(
                k, batches=3, window=8,
                schedule="BLOCK", executor=executor,
            )
            return k.arrays["u_out"].copy()

        assert np.array_equal(run("virtual"), run("batch"))


class TestFaults:
    def test_mid_stream_dropout_persists_for_later_batches(self):
        probe = stream(OnlineSumKernel(2000, seed=1), batches=6)
        t_drop = probe.total_time_s * 0.3
        plan = FaultPlan.of(DeviceDropout(devid=0, t=t_drop))
        sr = stream(OnlineSumKernel(2000, seed=1), batches=6,
                    fault_plan=plan)
        dev0 = [
            {t.devid: t for t in r.traces}[0] for r in sr.results
        ]
        assert any(t.lost for t in dev0)
        # Once lost, device 0 never serves a later batch.
        seen_lost = False
        for t in dev0:
            if seen_lost:
                assert t.iters == 0
            seen_lost = seen_lost or t.lost
        assert sr.reductions == probe.reductions  # checksums unharmed


class TestIRPath:
    DIRECTIVE = (
        "#pragma omp parallel for target device(*) "
        "map(tofrom: y[0:n] partition([BLOCK])) "
        "map(to: x[0:n] partition([BLOCK]), a, n) "
        "stream(batches=3, window=32)"
    )

    def test_run_program_returns_stream_result(self):
        prog = from_directive(
            self.DIRECTIVE, make_kernel("axpy", 1024), schedule="BLOCK"
        )
        (result,) = HompRuntime(gpu4_node()).run_program(prog)
        assert isinstance(result, StreamResult)
        assert result.batches == 3
        assert result.window == 32

    def test_run_stream_entry_point_matches_runtime_method(self):
        prog = from_directive(
            self.DIRECTIVE, make_kernel("axpy", 1024), schedule="BLOCK"
        )
        from repro.ir.passes import run_passes

        (op,) = run_passes(prog).ops
        rt = HompRuntime(gpu4_node())
        sr = run_stream(rt, op, {d.name: d for d in prog.decls})
        direct = stream(make_kernel("axpy", 1024), batches=3, window=32)
        assert sr.total_time_s == direct.total_time_s
