"""``stream(batches=N, window=W)`` clause: parsing, errors, round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DirectiveSyntaxError
from repro.lang.pragma import parse_directive
from repro.lang.render import render_directive
from repro.lang.stream_clause import ParsedStream, parse_stream_clause

STREAMED = (
    "#pragma omp parallel for target device(*) "
    "map(tofrom: x[0:n] partition([BLOCK])) "
    "stream(batches=1000, window=64)"
)


class TestParseClause:
    def test_batches_only(self):
        assert parse_stream_clause("batches=10") == ParsedStream(batches=10)

    def test_batches_and_window_any_order(self):
        expect = ParsedStream(batches=5, window=7)
        assert parse_stream_clause("batches=5, window=7") == expect
        assert parse_stream_clause("window=7, batches=5") == expect

    def test_parenthesised_body_accepted(self):
        assert parse_stream_clause("(batches=3)") == ParsedStream(batches=3)

    @pytest.mark.parametrize(
        "body",
        [
            "",
            "window=4",            # batches is required
            "batches",             # not key=value
            "batches=ten",         # not an integer
            "batches=2, depth=1",  # unknown key
            "batches=2, batches=3",  # duplicate key
        ],
    )
    def test_malformed_bodies_raise(self, body):
        with pytest.raises(DirectiveSyntaxError):
            parse_stream_clause(body)

    def test_bounds(self):
        with pytest.raises(DirectiveSyntaxError):
            ParsedStream(batches=0)
        with pytest.raises(DirectiveSyntaxError):
            ParsedStream(batches=1, window=-1)


class TestDirectiveIntegration:
    def test_directive_carries_stream(self):
        d = parse_directive(STREAMED)
        assert d.stream == ParsedStream(batches=1000, window=64)

    def test_directive_without_stream_has_none(self):
        d = parse_directive(
            "#pragma omp parallel for target device(*) "
            "map(tofrom: x[0:n] partition([BLOCK]))"
        )
        assert d.stream is None

    def test_render_omits_zero_window(self):
        d = parse_directive(STREAMED.replace(", window=64", ""))
        text = render_directive(d)
        assert "stream(batches=1000)" in text
        assert "window" not in text

    def test_round_trip_exact(self):
        d = parse_directive(STREAMED)
        text = render_directive(d)
        assert parse_directive(text) == d
        # Render is idempotent on its own output.
        assert render_directive(parse_directive(text)) == text


@given(
    batches=st.integers(min_value=1, max_value=10**6),
    window=st.integers(min_value=0, max_value=10**6),
)
def test_property_stream_round_trip(batches, window):
    clause = (
        f"stream(batches={batches}, window={window})"
        if window
        else f"stream(batches={batches})"
    )
    text = (
        "#pragma omp parallel for target device(*) "
        f"map(tofrom: x[0:n] partition([BLOCK])) {clause}"
    )
    d = parse_directive(text)
    assert d.stream == ParsedStream(batches=batches, window=window)
    assert parse_directive(render_directive(d)) == d
