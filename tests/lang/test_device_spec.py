"""Extended device(...) clause parsing (paper §III.1)."""

import pytest

from repro.errors import DirectiveSyntaxError
from repro.lang.device_spec import DeviceSelector, parse_device_clause
from repro.machine.presets import full_node
from repro.machine.spec import DeviceType


@pytest.fixture
def machine():
    return full_node()  # 0,1 = cpu; 2..5 = gpu; 6,7 = mic


class TestPaperExamples:
    """Every 'legal device target' the paper lists in §III.1."""

    def test_all_devices(self, machine):
        assert parse_device_clause("device(0:*)", machine) == list(range(8))

    def test_explicit_list(self, machine):
        assert parse_device_clause("device(0, 2, 3, 5)", machine) == [0, 2, 3, 5]

    def test_two_ranges(self, machine):
        assert parse_device_clause("device(0:2, 4:2)", machine) == [0, 1, 4, 5]

    def test_type_filter(self, machine):
        assert parse_device_clause(
            "device(0:*:HOMP_DEVICE_NVGPU)", machine
        ) == [2, 3, 4, 5]


def test_bare_star(machine):
    assert parse_device_clause("device(*)", machine) == list(range(8))


def test_short_type_filter(machine):
    assert parse_device_clause("device(0:*:MIC)", machine) == [6, 7]


def test_single_id_defaults_to_count_one(machine):
    assert parse_device_clause("device(3)", machine) == [3]


def test_clause_without_keyword(machine):
    assert parse_device_clause("(0:2)", machine) == [0, 1]
    assert parse_device_clause("0:2", machine) == [0, 1]


def test_duplicates_removed_order_preserved(machine):
    assert parse_device_clause("device(3, 0:2, 3)", machine) == [3, 0, 1]


def test_range_starting_midway(machine):
    assert parse_device_clause("device(6:*)", machine) == [6, 7]


@pytest.mark.parametrize(
    "text",
    [
        "device()",
        "device(,)",
        "device(99)",
        "device(-1)",
        "device(0:0)",
        "device(7:5)",       # exceeds machine
        "device(0:*:TPU)",   # unknown type
        "device(x)",
        "device(0:y)",
        "device(*:2)",       # '*' takes no count
    ],
)
def test_invalid_clauses(machine, text):
    with pytest.raises(DirectiveSyntaxError):
        parse_device_clause(text, machine)


def test_type_filter_selecting_nothing_rejected(machine):
    gpu_only = machine.subset([2, 3])
    with pytest.raises(DirectiveSyntaxError):
        parse_device_clause("device(0:*:MIC)", gpu_only)


class TestSelector:
    def test_expand_respects_count(self, machine):
        sel = DeviceSelector(initial=2, count=2, type_filter=None)
        assert sel.expand(machine) == [2, 3]

    def test_expand_star(self, machine):
        sel = DeviceSelector(initial=4, count=None, type_filter=None)
        assert sel.expand(machine) == [4, 5, 6, 7]

    def test_expand_filters_type(self, machine):
        sel = DeviceSelector(initial=0, count=None, type_filter=DeviceType.HOSTCPU)
        assert sel.expand(machine) == [0, 1]
