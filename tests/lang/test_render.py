"""Directive rendering and parse/render round-trips (grammar fuzzing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.policy import Align, Block, Cyclic, Full, Auto
from repro.lang.dist_schedule import ParsedDistSchedule
from repro.lang.map_clause import ArraySection, ParsedMap
from repro.lang.pragma import OffloadDirective, parse_directive
from repro.lang.render import render_directive
from repro.memory.space import MapDirection


def test_render_fig2_style():
    d = OffloadDirective(
        directives=("parallel", "target"),
        device_clause="(*)",
        maps=[
            ParsedMap(
                name="y",
                direction=MapDirection.TOFROM,
                sections=(ArraySection("0", "n"),),
                policies=(Block(),),
            ),
            ParsedMap(name="a", direction=MapDirection.TO),
        ],
    )
    text = render_directive(d)
    assert text.startswith("#pragma omp parallel target device(*)")
    assert "map(tofrom: y[0:n] partition([BLOCK]))" in text
    assert "map(to: a)" in text


def test_round_trip_of_paper_fig3_sweep():
    src = ("omp parallel for target device(*) reduction(+:error) "
           "distribute dist_schedule(target:[AUTO])")
    d = parse_directive(src)
    d2 = parse_directive(render_directive(d))
    assert d2.directives == d.directives
    assert d2.reduction == d.reduction
    assert d2.dist_schedule == d.dist_schedule


_names = st.sampled_from(["x", "y", "u", "uold", "f", "data1"])
_policies_1d = st.sampled_from([Full(), Block(), Cyclic(), Cyclic(4), Align("loop"), Align("loop1", 2.0)])


@st.composite
def parsed_maps(draw):
    name = draw(_names)
    ndim = draw(st.integers(0, 3))
    sections = tuple(
        ArraySection(str(draw(st.integers(0, 9))), draw(st.sampled_from(["n", "m", "64"])))
        for _ in range(ndim)
    )
    policies = tuple(draw(_policies_1d) for _ in range(ndim))
    halo = (0, 0)
    if ndim:
        halo = (draw(st.integers(0, 3)), draw(st.integers(0, 3)))
    return ParsedMap(
        name=name,
        direction=draw(st.sampled_from(list(MapDirection))),
        sections=sections,
        policies=policies,
        halo=halo,
    )


@st.composite
def directives(draw):
    kind = draw(st.sampled_from([("target",), ("parallel", "target"),
                                 ("parallel", "for", "target"),
                                 ("parallel", "target", "data")]))
    maps = draw(st.lists(parsed_maps(), max_size=4))
    dist = None
    if draw(st.booleans()):
        dist = ParsedDistSchedule(
            modifier=draw(st.sampled_from(["target", "teams"])),
            policies=tuple(
                draw(st.lists(st.sampled_from([Auto(), Block(), Full(), Align("x")]),
                              min_size=1, max_size=2))
            ),
        )
    reduction = ("+", "err") if draw(st.booleans()) else None
    collapse = draw(st.sampled_from([None, 2, 3]))
    return OffloadDirective(
        directives=kind,
        device_clause=draw(st.sampled_from([None, "(*)", "(0:2)", "(0:*:NVGPU)"])),
        maps=maps,
        dist_schedule=dist,
        reduction=reduction,
        collapse=collapse,
    )


@settings(max_examples=150, deadline=None)
@given(d=directives())
def test_property_parse_render_round_trip(d):
    # Exact round trip: the renderer emits consecutive same-direction
    # maps as one clause run, so the parsed map *list* (order included)
    # reproduces the original — not merely the same set.
    text = render_directive(d)
    parsed = parse_directive(text)
    assert parsed == d


@settings(max_examples=150, deadline=None)
@given(d=directives())
def test_property_render_is_idempotent(d):
    text = render_directive(d)
    assert render_directive(parse_directive(text)) == text


def test_render_preserves_interleaved_map_directions():
    # to / from / to must stay three clauses in order; global grouping
    # by direction would fold the two to-maps together and reorder.
    d = parse_directive(
        "omp parallel target map(to: x[0:n]) map(from: y[0:n]) map(to: z)"
    )
    text = render_directive(d)
    assert text.index("map(to: x") < text.index("map(from: y") < text.index(
        "map(to: z"
    )
    assert parse_directive(text) == d
