"""map(...) clause parsing with partition and halo parameters."""

import pytest

from repro.dist.policy import Align, Block, Full
from repro.errors import DirectiveSyntaxError
from repro.lang.map_clause import parse_map_clause
from repro.memory.space import MapDirection


def test_simple_scalar_maps():
    maps = parse_map_clause("map(to: a, n)")
    assert [m.name for m in maps] == ["a", "n"]
    assert all(m.is_scalar for m in maps)
    assert all(m.direction is MapDirection.TO for m in maps)


def test_array_section_with_block_partition():
    """The paper's Fig. 2 v1 y-map."""
    maps = parse_map_clause("map(tofrom: y[0:n] partition([BLOCK]))")
    (m,) = maps
    assert m.name == "y"
    assert m.direction is MapDirection.TOFROM
    assert m.sections[0].lower == "0"
    assert m.sections[0].extent == "n"
    assert m.policies == (Block(),)


def test_align_partition():
    """The paper's Fig. 2 v2 x-map."""
    maps = parse_map_clause("map(to: x[0:n] partition([ALIGN(loop)]), a, n)")
    assert maps[0].policies == (Align("loop"),)
    assert maps[1].is_scalar and maps[2].is_scalar


def test_two_dimensional_partition():
    """The paper's Fig. 3 f-map: partition([ALIGN(loop1)], FULL)."""
    maps = parse_map_clause(
        "map(to: f[0:n][0:m] partition([ALIGN(loop1)], FULL))"
    )
    (m,) = maps
    assert len(m.sections) == 2
    assert m.policies == (Align("loop1"), Full())


def test_halo_with_elided_upper():
    """The paper's Fig. 3 uold-map: halo(1,)."""
    maps = parse_map_clause(
        "map(alloc: uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))"
    )
    (m,) = maps
    assert m.direction is MapDirection.ALLOC
    assert m.halo == (1, 1)


def test_halo_two_widths():
    maps = parse_map_clause("map(to: u[0:n] partition([BLOCK]) halo(2,3))")
    assert maps[0].halo == (2, 3)


def test_section_without_partition_defaults_to_full():
    maps = parse_map_clause("map(to: x[0:n])")
    assert maps[0].policies == (Full(),)


def test_direction_required():
    with pytest.raises(DirectiveSyntaxError):
        parse_map_clause("map(x, y)")


def test_unknown_direction():
    with pytest.raises(Exception):
        parse_map_clause("map(sideways: x)")


def test_policy_count_must_match_sections():
    with pytest.raises(DirectiveSyntaxError):
        parse_map_clause("map(to: x[0:n][0:m] partition([BLOCK]))")


def test_negative_halo_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_map_clause("map(to: x[0:n] partition([BLOCK]) halo(-1,0))")


def test_empty_map_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_map_clause("map(to: )")


def test_unbalanced_brackets_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_map_clause("map(to: x[0:n partition([BLOCK]))")


def test_garbage_after_item_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_map_clause("map(to: x[0:n] wibble(1))")


def test_commas_inside_partition_do_not_split_items():
    maps = parse_map_clause(
        "map(to: u[0:n][0:m] partition([ALIGN(loop1)], FULL), v[0:n])"
    )
    assert [m.name for m in maps] == ["u", "v"]
