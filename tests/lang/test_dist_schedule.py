"""dist_schedule(target:...) clause parsing (paper §III.2)."""

import pytest

from repro.dist.policy import Align, Auto, Block
from repro.errors import DirectiveSyntaxError
from repro.lang.dist_schedule import parse_dist_schedule


def test_target_auto():
    out = parse_dist_schedule("dist_schedule(target:[AUTO])")
    assert out.modifier == "target"
    assert out.policies == (Auto(),)


def test_target_align():
    out = parse_dist_schedule("dist_schedule(target:[ALIGN(x)])")
    assert out.policies == (Align("x"),)


def test_target_align_loop_label():
    out = parse_dist_schedule("dist_schedule(target:[ALIGN(loop1)])")
    assert out.policies == (Align("loop1"),)


def test_teams_modifier():
    out = parse_dist_schedule("dist_schedule(teams:[BLOCK])")
    assert out.modifier == "teams"
    assert out.policies == (Block(),)


def test_multiple_policies_for_nested_loops():
    out = parse_dist_schedule("dist_schedule(target:[BLOCK],[FULL])")
    assert out.policies == (Block(),)[:1] + out.policies[1:]
    assert len(out.policies) == 2


def test_without_keyword_prefix():
    out = parse_dist_schedule("(target:[AUTO])")
    assert out.policies == (Auto(),)


def test_missing_modifier_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_dist_schedule("dist_schedule([AUTO])")


def test_unknown_modifier_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_dist_schedule("dist_schedule(nodes:[AUTO])")


def test_empty_policies_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_dist_schedule("dist_schedule(target:)")


def test_bad_policy_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_dist_schedule("dist_schedule(target:[SOMETIMES])")
