"""Whole-directive parsing: the paper's Fig. 2 and Fig. 3 pragmas."""

import pytest

from repro.dist.policy import Align, Auto, Block, Full
from repro.errors import DirectiveSyntaxError
from repro.lang.pragma import parse_directive
from repro.memory.space import MapDirection

FIG2_V1 = """#pragma omp parallel target device (*) \\
    map(tofrom: y[0:n] partition([BLOCK])) \\
    map(to: x[0:n] partition([BLOCK]),a,n)"""

FIG2_V1_LOOP = (
    "#pragma omp parallel for distribute dist_schedule(target:[ALIGN(x)])"
)

FIG2_V2 = """#pragma omp parallel target device (*) \\
    map(tofrom: y[0:n] partition([ALIGN(loop)])) \\
    map(to: x[0:n] partition([ALIGN(loop)]),a,n)"""

FIG3_DATA = """#pragma omp parallel target data device(*) \\
  map(to:n, m, omega, ax, ay, b, \\
    f[0:n][0:m] partition([ALIGN(loop1)], FULL)) \\
  map(tofrom:u[0:n][0:m] \\
    partition([ALIGN(loop1)], FULL)) \\
  map(alloc:uold[0:n][0:m] \\
    partition([ALIGN(loop1)], FULL) halo(1,))"""

FIG3_SWEEP = """#pragma omp parallel for target device(*) \\
  reduction(+:error) \\
  distribute dist_schedule(target:[AUTO])"""

FIG3_COPY = """#pragma omp parallel for target device(*) collapse(2) \\
  distribute dist_schedule(target:[ALIGN(loop1)])"""


def test_fig2_v1_data_directive():
    d = parse_directive(FIG2_V1)
    assert d.is_parallel_target
    assert d.device_clause == "(*)"
    names = [m.name for m in d.maps]
    assert names == ["y", "x", "a", "n"]
    assert d.maps[0].direction is MapDirection.TOFROM
    assert d.maps[0].policies == (Block(),)
    assert d.maps[2].is_scalar


def test_fig2_v1_loop_directive():
    d = parse_directive(FIG2_V1_LOOP)
    assert "distribute" in d.directives
    assert d.dist_schedule.policies == (Align("x"),)


def test_fig2_v2_aligns_data_with_loop():
    d = parse_directive(FIG2_V2)
    assert d.maps[0].policies == (Align("loop"),)
    assert d.maps[1].policies == (Align("loop"),)


def test_fig3_data_region():
    d = parse_directive(FIG3_DATA)
    assert d.is_data_region
    by_name = {m.name: m for m in d.maps}
    assert by_name["f"].policies == (Align("loop1"), Full())
    assert by_name["uold"].direction is MapDirection.ALLOC
    assert by_name["uold"].halo == (1, 1)
    assert by_name["u"].direction is MapDirection.TOFROM
    # the six scalars
    assert by_name["omega"].is_scalar


def test_fig3_sweep_directive():
    d = parse_directive(FIG3_SWEEP)
    assert d.reduction == ("+", "error")
    assert d.dist_schedule.policies == (Auto(),)


def test_fig3_copy_directive():
    d = parse_directive(FIG3_COPY)
    assert d.collapse == 2
    assert d.dist_schedule.policies == (Align("loop1"),)


def test_halo_exchange_directive():
    d = parse_directive("#pragma omp halo_exchange (uold)")
    assert d.other_clauses.get("halo_exchange") == "uold"


def test_pragma_prefix_optional():
    d = parse_directive("omp parallel target device(0:2)")
    assert d.is_parallel_target
    assert d.device_clause == "(0:2)"


def test_plain_target_is_not_parallel_target():
    d = parse_directive("omp target device(0)")
    assert not d.is_parallel_target


def test_unknown_directive_word_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_directive("omp paralel target device(0)")


def test_empty_directive_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_directive("#pragma omp")


def test_unbalanced_clause_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_directive("omp target device(0")


def test_bad_collapse_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_directive("omp parallel for collapse(two)")


def test_bad_reduction_rejected():
    with pytest.raises(DirectiveSyntaxError):
        parse_directive("omp parallel for reduction(error)")


@pytest.mark.parametrize(
    "text, clause",
    [
        ("omp parallel for distribute dist_schedule(target:[AUTO]) "
         "dist_schedule(target:[BLOCK])", "dist_schedule"),
        ("omp parallel for reduction(+:err) reduction(*:err)", "reduction"),
        ("omp parallel for collapse(2) collapse(3)", "collapse"),
        ("omp parallel target device(*) device(0:2)", "device"),
        ("omp parallel for num_threads(4) num_threads(8)", "num_threads"),
    ],
)
def test_duplicate_clause_rejected(text, clause):
    # A repeated clause would silently overwrite the first parse; the
    # error must name the offending clause.
    with pytest.raises(DirectiveSyntaxError, match=clause):
        parse_directive(text)


def test_repeated_map_clauses_allowed():
    # map() is the one legitimately repeatable clause (Fig. 2/3 use
    # several); repetition extends the map list.
    d = parse_directive(
        "omp parallel target map(to: x[0:n]) map(to: a) map(from: y[0:n])"
    )
    assert [m.name for m in d.maps] == ["x", "a", "y"]
