"""Lowering directives + kernels into offload programs."""

import numpy as np
import pytest

from repro.dist.policy import Align, Auto, Block, Full
from repro.errors import DeviceError, IRVerifyError, SchedulingError
from repro.ir.lower import data_region, decl_for, from_directive, from_directives
from repro.ir.ops import ReduceOp
from repro.kernels.registry import make_kernel
from repro.memory.space import MapDirection


def test_decl_for_captures_geometry():
    arr = np.zeros((10, 4))
    d = decl_for("A", arr)
    assert (d.name, d.shape, d.dtype, d.nbytes) == ("A", (10, 4), "float64", 320)


def test_from_directive_basic_offload():
    kernel = make_kernel("axpy", 1000, seed=0)
    program = from_directive("omp parallel target device(*)", kernel)
    assert len(program.ops) == 1
    op = program.ops[0]
    assert op.kernel is kernel
    assert op.n_iters == 1000
    assert op.schedule == "AUTO"
    assert op.devices == "(*)"
    assert not op.serialize_offload
    assert set(op.map_names) == set(kernel.arrays)
    assert {d.name for d in program.decls} == set(kernel.arrays)
    assert program.source == ("omp parallel target device(*)",)


def test_from_directive_schedule_from_dist_schedule():
    kernel = make_kernel("axpy", 100, seed=0)
    program = from_directive(
        "omp parallel for target distribute dist_schedule(target:[BLOCK])",
        kernel,
    )
    assert program.ops[0].schedule == Block()
    assert program.ops[0].devices is None


def test_from_directive_explicit_schedule_wins():
    kernel = make_kernel("axpy", 100, seed=0)
    program = from_directive(
        "omp parallel target distribute dist_schedule(target:[BLOCK])",
        kernel,
        schedule="SCHED_DYNAMIC",
    )
    assert program.ops[0].schedule == "SCHED_DYNAMIC"


def test_from_directive_partition_overrides_applied_to_maps():
    kernel = make_kernel("axpy", 100, seed=0)
    program = from_directive(
        "omp parallel target map(tofrom: y[0:n] partition([ALIGN(loop)]))",
        kernel,
    )
    op = program.ops[0]
    assert op.partition_overrides == (("y", Align("loop")),)
    by_name = {m.array: m for m in op.maps}
    assert by_name["y"].policies[0] == Align("loop")
    # The kernel itself is untouched at lower time: the override is
    # recorded on the op and applied by the runtime at execution.
    assert kernel.effective_maps() == kernel.maps()


def test_from_directive_without_parallel_target_serialises():
    kernel = make_kernel("axpy", 100, seed=0)
    program = from_directive("omp target device(0)", kernel)
    assert program.ops[0].serialize_offload
    assert program.ops[0].devices == "(0)"


def test_from_directive_reduction_kernel_gets_reduce_op():
    kernel = make_kernel("sum", 100, seed=0)
    program = from_directive(
        "omp parallel for target reduction(+:error)", kernel
    )
    assert program.ops[0].reduce == ReduceOp(op="+", var="error")
    non_red = from_directive(
        "omp parallel target device(*)", make_kernel("axpy", 100, seed=0)
    )
    assert non_red.ops[0].reduce is None


def test_from_directive_collapse_clause():
    kernel = make_kernel("axpy", 100, seed=0)
    program = from_directive("omp parallel for target collapse(2)", kernel)
    assert program.ops[0].collapse == 2


def test_from_directives_merges_shared_decls():
    from repro.apps.blas_chain import two_kernel_chain

    pairs, _ = two_kernel_chain(64)
    program = from_directives(pairs)
    assert len(program.ops) == 2
    assert {d.name for d in program.decls} == {"A", "x", "y"}
    assert len(program.decls) == 3  # shared x/y declared once


def test_from_directives_conflicting_geometry_rejected():
    k1 = make_kernel("axpy", 100, seed=0)
    k2 = make_kernel("axpy", 200, seed=0)
    with pytest.raises(IRVerifyError, match="conflicting geometry"):
        from_directives(
            [
                ("omp parallel target", k1),
                ("omp parallel target", k2),
            ]
        )


# -- data regions ------------------------------------------------------------

FIG3_DATA = """#pragma omp parallel target data device(*) \\
  map(to:n, m, f[0:n][0:m] partition([ALIGN(loop1)], FULL)) \\
  map(tofrom:u[0:n][0:m] partition([ALIGN(loop1)], FULL)) \\
  map(alloc:uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))"""


def fig3_arrays(n=16, m=8):
    return {
        "f": np.zeros((n, m)),
        "u": np.zeros((n, m)),
        "uold": np.zeros((n, m)),
    }


def test_data_region_lowering():
    program = data_region(FIG3_DATA, fig3_arrays())
    assert program.ops == ()
    assert program.region_devices == "(*)"
    by_name = {m.array: m for m in program.region_maps}
    assert set(by_name) == {"f", "u", "uold"}  # scalars skipped
    assert by_name["uold"].direction is MapDirection.ALLOC
    assert by_name["uold"].halo == (1, 1)
    assert by_name["u"].policies == (Align("loop1"), Full())


def test_data_region_rejects_non_data_directive():
    with pytest.raises(SchedulingError):
        data_region("omp parallel target device(*)", {})


def test_data_region_rejects_unknown_array():
    with pytest.raises(DeviceError):
        data_region(
            "omp parallel target data map(to: ghost[0:n] partition([BLOCK]))",
            {},
        )
