"""IR op vocabulary: symbolic regions, halo legs, immutability, verifier."""

import dataclasses

import numpy as np
import pytest

from repro.dist.distribution import DimDistribution
from repro.dist.policy import Align, Block, Full
from repro.errors import IRVerifyError
from repro.ir.lower import from_directive
from repro.ir.ops import (
    Bound,
    DataDecl,
    Dim,
    HaloOp,
    MapOp,
    OffloadOp,
    Program,
    Region,
)
from repro.ir.verify import verify_program
from repro.kernels.registry import make_kernel
from repro.memory.space import MapDirection
from repro.util.ranges import IterRange


# -- Bound / Region ----------------------------------------------------------


def test_bound_resolves_each_anchor():
    rows = IterRange(10, 20)
    assert Bound("zero").resolve(rows, 100) == 0
    assert Bound("extent").resolve(rows, 100) == 100
    assert Bound("chunk_start", -2).resolve(rows, 100) == 8
    assert Bound("chunk_stop", 3).resolve(rows, 100) == 23

def test_bound_rejects_unknown_anchor():
    with pytest.raises(IRVerifyError):
        Bound("middle")


def test_region_for_partitioned_map_follows_chunk_with_halo():
    r = Region.for_map((Block(), Full()), (1, 2))
    assert str(r) == "[chunk_start-1:chunk_stop+2][zero:extent]"
    got = r.concretize(IterRange(10, 20), (100, 8))
    assert got == (IterRange(9, 22), IterRange(0, 8))


def test_region_concretize_clamps_to_array_edges():
    r = Region.for_map((Block(),), (3, 3))
    assert r.concretize(IterRange(0, 5), (50,)) == (IterRange(0, 8),)
    assert r.concretize(IterRange(45, 50), (50,)) == (IterRange(42, 50),)


def test_region_full_map_covers_extent():
    r = Region.for_map((Full(), Full()), (0, 0))
    assert r.concretize(IterRange(3, 4), (10, 20)) == (
        IterRange(0, 10),
        IterRange(0, 20),
    )


def test_region_rank_mismatch_rejected():
    r = Region.for_map((Block(),), (0, 0))
    with pytest.raises(IRVerifyError):
        r.concretize(IterRange(0, 1), (10, 10))


@pytest.mark.parametrize("kname,n", [("axpy", 200), ("matvec", 64)])
def test_region_matches_kernel_input_region(kname, n):
    # The symbolic Region must reproduce LoopKernel.input_region exactly
    # for every map, chunk and halo the kernel path computes.
    kernel = make_kernel(kname, n, seed=1)
    for m in kernel.effective_maps():
        region = Region.for_map(m.policies, m.halo)
        arr = kernel.arrays[m.name]
        for rows in (IterRange(0, 7), IterRange(5, n // 2), IterRange(n - 3, n)):
            assert region.concretize(rows, arr.shape) == kernel.input_region(
                m, rows
            )


# -- DataDecl ----------------------------------------------------------------


def test_decl_rows_and_row_bytes():
    d = DataDecl(name="A", shape=(100, 8), dtype="float64", nbytes=6400)
    assert d.rows == 100
    assert d.row_bytes == 64
    scalar = DataDecl(name="s", shape=(), dtype="float64", nbytes=8)
    assert scalar.rows == 1
    assert scalar.row_bytes == 8


# -- HaloOp ------------------------------------------------------------------


def block_dist(n, ndev):
    return DimDistribution.from_policy(Block(), IterRange(0, n), ndev)


def test_halo_legs_adjacent_pairs_both_ways():
    op = HaloOp(array="u", lower=1, upper=1, row_bytes=8)
    legs = op.legs(block_dist(100, 4))
    assert [(l.src, l.dst, (l.rows.start, l.rows.stop)) for l in legs] == [
        (0, 1, (24, 25)),
        (1, 0, (25, 26)),
        (1, 2, (49, 50)),
        (2, 1, (50, 51)),
        (2, 3, (74, 75)),
        (3, 2, (75, 76)),
    ]


def test_halo_legs_asymmetric_widths():
    # lower=2 feeds each device's lower halo; upper=0 sends nothing up.
    op = HaloOp(array="u", lower=2, upper=0)
    legs = op.legs(block_dist(100, 2))
    assert [(l.src, l.dst, (l.rows.start, l.rows.stop)) for l in legs] == [
        (0, 1, (48, 50)),
    ]


def test_halo_legs_skip_empty_owners():
    op = HaloOp(array="u", lower=1, upper=1)
    legs = op.legs(block_dist(2, 4))  # only devices 0 and 1 own a row
    assert {(l.src, l.dst) for l in legs} == {(0, 1), (1, 0)}


def test_halo_zero_width_no_legs():
    assert HaloOp(array="u", lower=0, upper=0).legs(block_dist(100, 4)) == ()


def test_halo_negative_width_rejected():
    with pytest.raises(IRVerifyError):
        HaloOp(array="u", lower=-1, upper=0)


# -- immutability ------------------------------------------------------------


def test_ir_nodes_are_frozen():
    nodes = [
        Bound("zero"),
        Dim(Bound("zero"), Bound("extent")),
        Region(dims=()),
        DataDecl(name="x", shape=(4,), dtype="float64", nbytes=32),
        MapOp(array="x", direction=MapDirection.TO),
        HaloOp(array="x", lower=1, upper=1),
        Program(),
    ]
    for node in nodes:
        field = dataclasses.fields(node)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(node, field, None)


# -- Program / verifier ------------------------------------------------------


def program_for(kname="axpy", n=100):
    kernel = make_kernel(kname, n, seed=0)
    return from_directive("omp parallel target device(*)", kernel), kernel


def test_program_decl_lookup():
    program, kernel = program_for()
    assert program.decl("y").shape == kernel.arrays["y"].shape
    with pytest.raises(IRVerifyError):
        program.decl("nope")


def test_verify_accepts_lowered_program():
    program, _ = program_for()
    assert verify_program(program) is program


def test_verify_rejects_empty_program():
    with pytest.raises(IRVerifyError):
        verify_program(Program())


def test_verify_rejects_duplicate_decls():
    program, _ = program_for()
    bad = dataclasses.replace(program, decls=program.decls + program.decls[:1])
    with pytest.raises(IRVerifyError):
        verify_program(bad)


def test_verify_rejects_policy_rank_mismatch():
    program, _ = program_for()
    op = program.ops[0]
    maps = tuple(
        dataclasses.replace(m, policies=m.policies + (Full(),))
        for m in op.maps
    )
    bad = dataclasses.replace(
        program, ops=(dataclasses.replace(op, maps=maps),)
    )
    with pytest.raises(IRVerifyError):
        verify_program(bad)


def test_verify_rejects_halo_on_replicated_map():
    program, _ = program_for()
    op = program.ops[0]
    maps = tuple(
        dataclasses.replace(m, policies=(Full(),), halo=(1, 1))
        for m in op.maps
    )
    bad = dataclasses.replace(
        program, ops=(dataclasses.replace(op, maps=maps),)
    )
    with pytest.raises(IRVerifyError):
        verify_program(bad)


def test_verify_rejects_host_array_identity_violation():
    # Two ops mapping the same name must bind the same host ndarray.
    k1 = make_kernel("axpy", 100, seed=0)
    k2 = make_kernel("axpy", 100, seed=1)
    from repro.ir.lower import from_directives

    program = from_directives(
        [
            ("omp parallel target device(*)", k1),
            ("omp parallel target device(*)", k2),
        ]
    )
    with pytest.raises(IRVerifyError):
        verify_program(program)


def test_program_offloads_flatten_fused_groups():
    from repro.ir.ops import FusedOffloadOp
    from repro.ir.passes import run_passes

    k = make_kernel("axpy", 100, seed=0)
    from repro.ir.lower import from_directives

    program = from_directives(
        [
            ("omp parallel target device(*)", k),
            ("omp parallel target device(*)", k),
        ]
    )
    fused = run_passes(program)
    assert isinstance(fused.ops[0], FusedOffloadOp)
    assert fused.offloads == program.ops


def test_describe_lists_ops():
    program, kernel = program_for()
    text = program.describe()
    assert kernel.name in text
    assert "decl y" in text
