"""Rewrite passes: normalize-maps, derive-halo, fuse-adjacent-offloads."""

import dataclasses

import numpy as np
import pytest

from repro.dist.policy import Align, Block, Cyclic, Full
from repro.errors import IRVerifyError
from repro.ir.lower import from_directive, from_directives
from repro.ir.ops import FusedOffloadOp, MapOp, Program, Region
from repro.ir.passes import (
    DEFAULT_PIPELINE,
    derive_halo,
    fuse_adjacent_offloads,
    normalize_maps,
    run_passes,
)
from repro.ir.verify import verify_program
from repro.kernels.registry import make_kernel
from repro.memory.space import MapDirection


def region_program(*maps):
    import repro.ir.lower as lower

    decls = tuple(
        lower.decl_for(m.array, np.zeros(100)) for m in {m.array: m for m in maps}.values()
    )
    return Program(decls=decls, region_maps=tuple(maps))


def mk(array, direction, policy, halo=(0, 0)):
    policies = (policy,)
    return MapOp(
        array=array,
        direction=direction,
        policies=policies,
        halo=halo,
        region=Region.for_map(policies, halo),
    )


# -- normalize-maps ----------------------------------------------------------


def test_normalize_merges_duplicate_maps_direction_union():
    program = region_program(
        mk("u", MapDirection.TO, Block(), halo=(1, 0)),
        mk("u", MapDirection.FROM, Block(), halo=(0, 2)),
    )
    out = normalize_maps(program)
    assert len(out.region_maps) == 1
    merged = out.region_maps[0]
    assert merged.direction is MapDirection.TOFROM
    assert merged.policies == (Block(),)
    assert merged.halo == (1, 2)  # per-side maximum


def test_normalize_widens_full_over_partitioned():
    program = region_program(
        mk("x", MapDirection.TO, Block(), halo=(1, 1)),
        mk("x", MapDirection.TO, Full()),
    )
    merged = normalize_maps(program).region_maps[0]
    assert merged.policies == (Full(),)
    assert merged.halo == (0, 0)  # a replicated map has no boundary


def test_normalize_conflicting_partitions_rejected():
    program = region_program(
        mk("x", MapDirection.TO, Block()),
        mk("x", MapDirection.TO, Cyclic()),
    )
    with pytest.raises(IRVerifyError, match="conflicting partition"):
        normalize_maps(program)


def test_normalize_is_identity_when_nothing_merges():
    kernel = make_kernel("axpy", 100, seed=0)
    program = from_directive("omp parallel target", kernel)
    assert normalize_maps(program) is program


# -- derive-halo -------------------------------------------------------------


def test_derive_halo_attaches_ops_with_row_bytes():
    kernel = make_kernel("stencil", 64, seed=0)
    program = from_directive("omp parallel target device(*)", kernel)
    out = derive_halo(program)
    halos = out.ops[0].halos
    halo_maps = {
        m.array: m.halo
        for m in program.ops[0].maps
        if m.partitioned and m.halo != (0, 0)
    }
    assert {h.array for h in halos} == set(halo_maps)
    for h in halos:
        assert (h.lower, h.upper) == halo_maps[h.array]
        assert h.row_bytes == program.decl(h.array).row_bytes
        assert h.row_bytes > 0


def test_derive_halo_identity_without_stencils():
    program = from_directive(
        "omp parallel target", make_kernel("axpy", 100, seed=0)
    )
    assert derive_halo(program) is program


# -- fuse-adjacent-offloads --------------------------------------------------


def chain_program(n=64):
    from repro.apps.blas_chain import two_kernel_chain

    pairs, _ = two_kernel_chain(n)
    return from_directives(pairs)


def test_fusion_groups_compatible_chain():
    program = chain_program()
    fused = fuse_adjacent_offloads(program)
    assert len(fused.ops) == 1
    group = fused.ops[0]
    assert isinstance(group, FusedOffloadOp)
    assert len(group.members) == 2
    by_name = {m.array: m for m in group.region_maps}
    # matvec reads x replicated, axpy reads it aligned: widened to FULL
    assert by_name["x"].policies == (Full(),)
    # y: FROM (matvec) + TOFROM (axpy) -> TOFROM, aligned both times
    assert by_name["y"].direction is MapDirection.TOFROM
    assert by_name["y"].policies == (Align("loop"),)
    assert verify_program(fused) is fused


def test_fusion_requires_host_array_identity():
    # axpy and sum both map an "x", but each kernel owns a distinct host
    # array (pooled inputs hand out fresh copies): the shared *name* is
    # not enough, fusion demands the same ndarray object.
    k1 = make_kernel("axpy", 100, seed=0)
    k2 = make_kernel("sum", 100, seed=0)
    program = from_directives(
        [
            ("omp parallel target", k1),
            ("omp parallel target", k2),
        ]
    )
    fused = fuse_adjacent_offloads(program)
    assert len(fused.ops) == 2  # unfused: x binds different host arrays


def test_fusion_requires_matching_iteration_count():
    program = chain_program()
    second = dataclasses.replace(
        program.ops[1], n_iters=program.ops[1].n_iters // 2
    )
    program = dataclasses.replace(program, ops=(program.ops[0], second))
    assert fuse_adjacent_offloads(program).ops == program.ops


def test_fusion_requires_matching_devices_and_serialization():
    k = make_kernel("axpy", 100, seed=0)
    program = from_directives(
        [
            ("omp parallel target device(*)", k),
            ("omp target device(*)", k),  # serialised member
        ]
    )
    assert fuse_adjacent_offloads(program).ops == program.ops


def test_fusion_never_raises_on_irreconcilable_maps():
    # Same host array, written, but partitioned two different ways:
    # fusion is simply skipped, not an error.
    k1 = make_kernel("axpy", 100, seed=0)
    k2 = make_kernel("axpy", 100, seed=0)
    k2.arrays.update(k1.arrays)  # share host arrays
    k2.set_partition("y", Cyclic())
    program = from_directives(
        [("omp parallel target", k1), ("omp parallel target", k2)]
    )
    fused = fuse_adjacent_offloads(program)
    assert not any(isinstance(op, FusedOffloadOp) for op in fused.ops)


# -- run_passes --------------------------------------------------------------


def test_run_passes_default_pipeline():
    program = chain_program()
    fused = run_passes(program)
    assert isinstance(fused.ops[0], FusedOffloadOp)


def test_run_passes_empty_pipeline_disables_rewriting():
    program = chain_program()
    assert run_passes(program, ()) is program


def test_run_passes_accepts_callables():
    program = chain_program()
    seen = []

    def spy(p):
        seen.append(p)
        return p

    assert run_passes(program, (spy,)) is program
    assert seen == [program]


def test_run_passes_unknown_name_rejected():
    with pytest.raises(IRVerifyError, match="unknown IR pass"):
        run_passes(chain_program(), ("inline-everything",))


def test_default_pipeline_names_are_registered():
    from repro.ir.passes import PASSES

    assert set(DEFAULT_PIPELINE) <= set(PASSES)
