"""Exact-match pins for symbolic halo derivation (HaloOp -> legs -> cost).

The IR derives boundary legs from Region footprints; these tests pin the
derived transfers and priced times *exactly* for radii 1-3 on every
memory-kind combination the machine presets exercise: all-shared,
all-discrete, UNIFIED pairs, and a mixed two-shared+one-discrete node.
"""

import dataclasses

import pytest

from repro.dist.distribution import DimDistribution
from repro.dist.policy import Block
from repro.ir.ops import HaloOp
from repro.machine.presets import (
    cpu_spec,
    gpu4_node,
    homogeneous_node,
    k40_spec,
    k40_unified_spec,
)
from repro.machine.spec import MachineSpec
from repro.runtime.halo import plan_halo_exchange, plan_halo_op
from repro.util.ranges import IterRange

ROW_BYTES = 800


def dist(n, ndev):
    return DimDistribution.from_policy(Block(), IterRange(0, n), ndev)


def shared_discrete_node():
    """Two host-shared CPUs + one discrete GPU."""
    return MachineSpec(
        name="2cpu+1gpu",
        devices=(
            dataclasses.replace(cpu_spec(), name="cpu-0"),
            dataclasses.replace(cpu_spec(), name="cpu-1"),
            k40_spec("k40-0"),
        ),
    )


def unified_pair():
    return MachineSpec(
        name="2um",
        devices=(
            k40_unified_spec("um-0"),
            dataclasses.replace(k40_unified_spec(), name="um-1"),
        ),
    )


def legs_of(ex):
    return [(t.src, t.dst, (t.rows.start, t.rows.stop)) for t in ex.transfers]


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_shared_node_legs_pinned_and_free(radius):
    # 90 rows over 3 CPUs: blocks [0,30) [30,60) [60,90).
    m = homogeneous_node(3, cpu_spec())
    op = HaloOp(array="u", lower=radius, upper=radius, row_bytes=ROW_BYTES)
    ex = plan_halo_op(m, dist(90, 3), op)
    assert legs_of(ex) == [
        (0, 1, (30 - radius, 30)),
        (1, 0, (30, 30 + radius)),
        (1, 2, (60 - radius, 60)),
        (2, 1, (60, 60 + radius)),
    ]
    assert ex.total_bytes == 4 * radius * ROW_BYTES
    assert ex.time_s == 0.0  # host-shared endpoints exchange for free


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_discrete_node_legs_and_cost_pinned(radius):
    # 100 rows over 4 GPUs: blocks of 25.
    m = gpu4_node()
    op = HaloOp(array="u", lower=radius, upper=radius, row_bytes=ROW_BYTES)
    ex = plan_halo_op(m, dist(100, 4), op)
    assert legs_of(ex) == [
        (0, 1, (25 - radius, 25)),
        (1, 0, (25, 25 + radius)),
        (1, 2, (50 - radius, 50)),
        (2, 1, (50, 50 + radius)),
        (2, 3, (75 - radius, 75)),
        (3, 2, (75, 75 + radius)),
    ]
    assert ex.total_bytes == 6 * radius * ROW_BYTES
    # Middle devices each cross their link four times (2 sends + 2
    # receives); the exchange completes when the slowest is done.
    link = m[1].link
    assert ex.time_s == pytest.approx(
        4 * link.transfer_time(radius * ROW_BYTES)
    )


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_unified_pair_moves_bytes_for_free(radius):
    m = unified_pair()
    op = HaloOp(array="u", lower=radius, upper=radius, row_bytes=ROW_BYTES)
    ex = plan_halo_op(m, dist(100, 2), op)
    assert legs_of(ex) == [
        (0, 1, (50 - radius, 50)),
        (1, 0, (50, 50 + radius)),
    ]
    assert ex.total_bytes == 2 * radius * ROW_BYTES
    # UNIFIED pages migrate at access time (the engine's unified model
    # charges that); the exchange itself is free.
    assert ex.time_s == 0.0


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_mixed_shared_discrete_node_pinned(radius):
    # cpu-0 [0,30) | cpu-1 [30,60) | k40 [60,90): the cpu-cpu pair is
    # free, only the k40's two crossings cost link time.
    m = shared_discrete_node()
    op = HaloOp(array="u", lower=radius, upper=radius, row_bytes=ROW_BYTES)
    ex = plan_halo_op(m, dist(90, 3), op)
    assert legs_of(ex) == [
        (0, 1, (30 - radius, 30)),
        (1, 0, (30, 30 + radius)),
        (1, 2, (60 - radius, 60)),
        (2, 1, (60, 60 + radius)),
    ]
    gpu_link = m[2].link
    assert ex.time_s == pytest.approx(
        2 * gpu_link.transfer_time(radius * ROW_BYTES)
    )


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_asymmetric_widths_pinned(radius):
    # lower=radius, upper=0: only the down legs (feeding each device's
    # lower halo) survive.
    m = gpu4_node(2)
    op = HaloOp(array="u", lower=radius, upper=0, row_bytes=ROW_BYTES)
    ex = plan_halo_op(m, dist(100, 2), op)
    assert legs_of(ex) == [(0, 1, (50 - radius, 50))]
    assert ex.total_bytes == radius * ROW_BYTES


@pytest.mark.parametrize("radius", [1, 2, 3])
@pytest.mark.parametrize(
    "machine,n,ndev",
    [
        (gpu4_node(), 100, 4),
        (homogeneous_node(3, cpu_spec()), 90, 3),
        (unified_pair(), 100, 2),
        (shared_discrete_node(), 90, 3),
    ],
    ids=["gpu4", "shared3", "unified2", "mixed3"],
)
def test_width_surface_equals_ir_op(machine, n, ndev, radius):
    # plan_halo_exchange is declared a thin wrapper over plan_halo_op;
    # the two must agree transfer for transfer.
    d = dist(n, ndev)
    via_width = plan_halo_exchange(
        machine, d, width=radius, row_bytes=ROW_BYTES
    )
    via_op = plan_halo_op(
        machine,
        d,
        HaloOp(array="u", lower=radius, upper=radius, row_bytes=ROW_BYTES),
    )
    assert via_width == via_op


def test_derived_halo_op_prices_like_directive_path():
    # End to end: lower a stencil offload, run derive-halo, price the
    # attached op — identical to the width-surface plan the runtime's
    # halo_exchange directive would produce (RADIUS = 3).
    from repro.ir.lower import from_directive
    from repro.ir.passes import derive_halo
    from repro.kernels.registry import make_kernel
    from repro.kernels.stencil import RADIUS

    kernel = make_kernel("stencil", 64, seed=0)
    program = derive_halo(from_directive("omp parallel target", kernel))
    (halo_op,) = program.ops[0].halos
    assert (halo_op.lower, halo_op.upper) == (RADIUS, RADIUS)
    assert halo_op.row_bytes == kernel.row_nbytes("u_in")
    m = gpu4_node()
    d = dist(64, 4)
    assert plan_halo_op(m, d, halo_op) == plan_halo_exchange(
        m, d, width=RADIUS, row_bytes=halo_op.row_bytes
    )
