"""IR-path vs legacy-directive-path differential: byte identity.

``HompRuntime.offload`` now routes every directive through ``parse ->
lower -> verify -> passes -> execute``.  The scale-down contract demands
that a *single-offload* program produce a result byte-identical (pickle
equality) to the historical direct interpretation of the directive.  The
legacy interpreter no longer exists in the runtime, so it is replicated
verbatim here (from the pre-IR ``offload``) and both paths run over the
differential grid on the deterministic virtual backend; the threaded
backend's wall-clock times are nondeterministic, so there agreement is
numeric only.
"""

import pickle

import numpy as np
import pytest

from repro.kernels.registry import make_kernel
from repro.lang.pragma import parse_directive
from repro.machine.presets import full_node, gpu4_node
from repro.runtime.runtime import HompRuntime

GRID = [
    ("BLOCK", "axpy"),
    ("BLOCK", "sum"),
    ("SCHED_DYNAMIC", "axpy"),
    ("SCHED_DYNAMIC", "sum"),
    ("SCHED_GUIDED", "matvec"),
    ("SCHED_PROFILE_AUTO", "sum"),
]
N = 60_000
SIZES = {"matvec": 2_000}

DIRECTIVE = (
    "omp parallel target device(*) "
    "map(tofrom: y[0:n] partition([BLOCK]))"
)


def legacy_offload(rt, directive, kernel, **kwargs):
    """The pre-IR ``HompRuntime.offload`` body, replicated verbatim."""
    d = parse_directive(directive) if isinstance(directive, str) else directive
    devices = d.device_clause if d.device_clause else None
    for m in d.maps:
        if m.name in kernel.arrays and m.policies:
            kernel.set_partition(m.name, m.policies[0])
    schedule = kwargs.pop("schedule", None)
    if schedule is None:
        if d.dist_schedule is not None:
            schedule = d.dist_schedule.policies[0]
        else:
            schedule = "AUTO"
    kwargs.setdefault("serialize_offload", not d.is_parallel_target)
    return rt.parallel_for(kernel, schedule=schedule, devices=devices, **kwargs)


def run_pair(policy, kname, *, directive=None, machine=gpu4_node, **kwargs):
    """One kernel through both paths, each on a fresh runtime (profile
    history and scheduler state must not leak between the arms).

    The Table II notations (``SCHED_*``) are not ``dist_schedule``
    policies, so the grid exercises them through the ``schedule=``
    escape hatch, which both paths resolve identically.
    """
    n = SIZES.get(kname, N)
    if directive is None:
        directive = "omp parallel target device(*)"
        kwargs.setdefault("schedule", policy)
    k_ir = make_kernel(kname, n, seed=7)
    r_ir = HompRuntime(machine()).offload(directive, k_ir, **dict(kwargs))
    k_legacy = make_kernel(kname, n, seed=7)
    r_legacy = legacy_offload(
        HompRuntime(machine()), directive, k_legacy, **dict(kwargs)
    )
    return k_ir, r_ir, k_legacy, r_legacy


@pytest.mark.parametrize("policy,kname", GRID, ids=[f"{p}-{k}" for p, k in GRID])
def test_ir_path_byte_identical_on_virtual_backend(policy, kname):
    _, r_ir, _, r_legacy = run_pair(policy, kname)
    assert pickle.dumps(r_ir) == pickle.dumps(r_legacy)


@pytest.mark.parametrize("policy,kname", GRID, ids=[f"{p}-{k}" for p, k in GRID])
def test_ir_path_same_numerics(policy, kname):
    k_ir, r_ir, k_legacy, r_legacy = run_pair(policy, kname)
    if k_ir.is_reduction:
        assert r_ir.reduction == r_legacy.reduction
    else:
        for name in k_ir.arrays:
            assert np.array_equal(k_ir.arrays[name], k_legacy.arrays[name])


def test_ir_path_byte_identical_with_partition_override():
    _, r_ir, _, r_legacy = run_pair(
        "BLOCK", "axpy", directive=DIRECTIVE, schedule="BLOCK"
    )
    assert pickle.dumps(r_ir) == pickle.dumps(r_legacy)


def test_ir_path_applies_partition_override_to_kernel():
    from repro.dist.policy import Block

    k_ir, _, k_legacy, _ = run_pair(
        "BLOCK", "axpy", directive=DIRECTIVE, schedule="BLOCK"
    )
    # The override persists on the kernel after the call, as it always has.
    for k in (k_ir, k_legacy):
        by_name = {m.name: m for m in k.effective_maps()}
        assert by_name["y"].policies[0] == Block()


def test_serialized_offload_byte_identical():
    # Without the `parallel target` composite the offload serialises.
    _, r_ir, _, r_legacy = run_pair(
        "BLOCK", "axpy", directive="omp target device(*)", schedule="BLOCK"
    )
    assert r_ir.meta.get("serialized") == r_legacy.meta.get("serialized")
    assert pickle.dumps(r_ir) == pickle.dumps(r_legacy)


def test_device_clause_byte_identical_on_heterogeneous_node():
    _, r_ir, _, r_legacy = run_pair(
        "SCHED_DYNAMIC",
        "axpy",
        directive="omp parallel target device(0:*:NVGPU)",
        machine=full_node,
        schedule="SCHED_DYNAMIC",
    )
    assert pickle.dumps(r_ir) == pickle.dumps(r_legacy)


@pytest.mark.parametrize(
    "policy,kname", [("BLOCK", "axpy"), ("SCHED_DYNAMIC", "sum")]
)
def test_ir_path_agrees_numerically_on_threaded_backend(policy, kname):
    k_ir, r_ir, k_legacy, r_legacy = run_pair(
        policy, kname, executor="threaded"
    )
    if k_ir.is_reduction:
        assert np.isclose(r_ir.reduction, r_legacy.reduction, rtol=1e-9)
    else:
        ref = k_ir.reference()
        for name, expected in ref.items():
            assert np.allclose(k_ir.arrays[name], expected)
            assert np.allclose(k_legacy.arrays[name], expected)
